// willow_cli — run a scenario file through the simulator and report.
//
//   willow_cli <scenario-file> [--csv <prefix>] [--json <file>]
//                              [--trace <file>] [--metrics]
//   willow_cli --check <scenario-file>  # parse + validate only, no run
//   willow_cli --describe            # list scenario keys by example
//   willow_cli --keys                # machine-readable key<TAB>sample table
//
// The scenario format is documented in sim/scenario_io.h.  With --csv, the
// recorded time series are written to <prefix>_supply.csv,
// <prefix>_power.csv, <prefix>_migrations.csv, and <prefix>_servers.csv.
// --trace streams every control-plane event (budgets, demand reports, link
// messages, migrations, throttles, UPS activity) to a JSONL file whose bytes
// are identical for any `threads` setting; --metrics prints the run's
// counters, histograms, and per-phase wall-clock timers.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "obs/sink.h"
#include "sim/result_io.h"
#include "sim/scenario_io.h"
#include "sim/simulation.h"
#include "util/table.h"

namespace {

using namespace willow;

void describe() {
  std::cout << R"(Scenario keys (key = value, '#' comments):
  schema_version = 2           optional dialect stamp (reject-if-newer)
  utilization = 0.5            offered load vs thermally sustainable envelope
  seed = 42                    RNG seed
  warmup_ticks = 20            ticks ignored before recording
  measure_ticks = 200          ticks recorded
  threads = 0                  tick-engine workers (0 = hw concurrency,
                               1 = serial; results identical either way)
  zones = 2                    hierarchy shape
  racks_per_zone = 3
  servers_per_rack = 3
  smoothing_alpha = 0.7        Eq. 4 EWMA weight
  thermal_c1 = 0.08            RC heating coefficient
  thermal_c2 = 0.05            RC cooling rate
  ambient_c = 25
  thermal_limit_c = 70
  nameplate_w = 450
  hot_zone_servers = 4         last N servers in the hot zone
  hot_ambient_c = 40
  margin_w = 1.5               P_min migration margin
  migration_cost_w = 0.5
  eta1 = 4                     supply period multiplier
  eta2 = 7                     consolidation period multiplier
  consolidation_threshold = 0.5
  packing = ffdlr              ffdlr | ff | ffd | bfd | wfd
  allocation = demand          demand | capacity
  prefer_local = true
  enforce_unidirectional = true
  shedding = drop              drop | degrade
  degraded_service_level = 0.5
  priority_levels = 1
  demand_quantum_w = 1
  ipc_chain_fraction = 0       wire app chains with IPC flows
  ipc_flow_units = 0.25
  supply = constant 500        constant W | steps w... | sine base amp period
                               | solar floor peak day cloud seed | fig15 | fig19
  intensity = diurnal 1 0.4 48 demand multiplier: constant F |
                               diurnal base amp period [phase] | trace f...
  cooling_cop = 3.5            enable the cooling plant (records PUE)
  rack_circuit_w = 120         under-designed rack feed rating
  migration_periods_per_gib = 2  VM transfer latency (0 = instantaneous)
  sla_inflation = 5            enable the QoS tracker (M/M/1, 5x = 80% rho)
  report_loss_probability = 0.1  fault injection: lost demand reports
  churn_probability = 0.05     workload churn (departures + arrivals)
  incremental_control = true   change-driven control plane (identical trace)
  shadow_diff = false          re-derive every incremental skip; throw on diff
  report_deadband_w = 0        min demand movement before a node re-reports

Fault plane (docs/fault_model.md; all default off, seed-deterministic):
  link_up_loss_probability = 0.05       demand report lost (child retries)
  link_up_delay_probability = 0.05      report deferred to the next sweep
  link_up_duplicate_probability = 0.02  report delivered twice (idempotent)
  link_down_loss_probability = 0.05     budget directive lost (retry queue)
  link_down_duplicate_probability = 0.02  directive delivered twice
  power_sensor_stuck_probability = 0.01   per-tick stuck-at onset
  power_sensor_bias_probability = 0.01    per-tick additive-offset onset
  power_sensor_dropout_probability = 0.01 per-tick no-reading onset
  power_sensor_bias_w = 4               offset during a bias episode
  temp_sensor_stuck_probability = 0.01
  temp_sensor_bias_probability = 0.01
  temp_sensor_dropout_probability = 0.01
  temp_sensor_bias_c = 3
  sensor_fault_mean_ticks = 5           mean episode length
  crash_probability = 0.002             per-server, per-tick crash onset
  crash_down_ticks = 10                 outage length for random crashes
  crash_event = 40 0 1 8                scripted: tick first last [down]
  ups = 90000 220 160 0.8               capacity_j discharge_w charge_w [soc]
  ups_failure = 60 80                   battery failed open over [first,last]
  stale_timeout_ticks = 3               degraded mode: reports stale after N
  stale_decay = 0.9                     per-tick decay of synthetic demand
  directive_retry_limit = 3             lost-directive retries before abandon
)";
}

void print_keys() {
  for (const auto& k : sim::scenario_keys()) {
    std::cout << k.key << '\t' << k.sample << '\n';
  }
}

bool write_series(const std::string& path, const char* column,
                  const util::TimeSeries& series) {
  util::Table t({"t", column});
  t.set_precision(5);
  for (std::size_t i = 0; i < series.size(); ++i) {
    t.row().add(series.times()[i]).add(series.at(i));
  }
  return t.write_csv_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--describe") == 0) {
    describe();
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--keys") == 0) {
    print_keys();
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--check") == 0) {
    if (argc != 3) {
      std::cerr << "usage: willow_cli --check <scenario-file>\n";
      return 2;
    }
    try {
      (void)sim::load_scenario_file(argv[2]);
      std::cout << "ok: " << argv[2] << "\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (argc < 2) {
    std::cerr << "usage: willow_cli <scenario-file> [--csv <prefix>]"
                 " [--json <file>] [--trace <file>] [--metrics]\n"
                 "       willow_cli --check <scenario-file>\n"
                 "       willow_cli --describe | --keys\n";
    return 2;
  }
  std::string csv_prefix;
  std::string json_path;
  std::string trace_path;
  bool print_metrics = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else {
      std::cerr << "unknown or incomplete option '" << argv[i] << "'\n";
      return 2;
    }
  }

  try {
    auto cfg = sim::load_scenario_file(argv[1]);
    std::shared_ptr<obs::JsonlTraceSink> trace;
    if (!trace_path.empty()) {
      trace = std::make_shared<obs::JsonlTraceSink>(trace_path);
      cfg.sinks.push_back(trace);
    }
    sim::Simulation simulation(std::move(cfg));
    const auto r = simulation.run();

    std::cout << "ticks recorded:        " << r.ticks << "\n";
    std::cout << "mean supply:           " << r.supply_series.stats().mean()
              << " W\n";
    std::cout << "mean consumption:      " << r.total_power.stats().mean()
              << " W\n";
    std::cout << "max temperature:       " << r.max_temperature_c
              << " degC (violated: " << (r.thermal_violation ? "YES" : "no")
              << ")\n";
    const auto& st = r.controller_stats;
    std::cout << "migrations:            " << st.total_migrations() << " ("
              << st.demand_migrations << " demand, "
              << st.consolidation_migrations << " consolidation; "
              << st.local_migrations << " local / " << st.nonlocal_migrations
              << " non-local)\n";
    std::cout << "quick re-migrations:   " << r.quick_remigrations << "\n";
    std::cout << "drops / revivals:      " << st.drops << " / " << st.revivals
              << "\n";
    std::cout << "degrades / restores:   " << st.degrades << " / "
              << st.restores << "\n";
    std::cout << "sleeps / wakes:        " << st.sleeps << " / " << st.wakes
              << "\n";
    double asleep = 0.0;
    for (const auto& s : r.servers) asleep += s.asleep_fraction;
    std::cout << "mean servers asleep:   " << asleep << "\n";
    std::cout << "mean imbalance:        " << r.imbalance.stats().mean()
              << " W (Eq. 9)\n";
    if (!r.qos_satisfaction.empty()) {
      std::cout << "SLA satisfaction:      "
                << r.qos_satisfaction.stats().mean() * 100.0
                << " % (mean inflation "
                << r.qos_mean_inflation.stats().mean() << "x)\n";
    }
    if (!r.pue.empty()) {
      std::cout << "mean facility power:   "
                << r.facility_power.stats().mean() << " W (PUE "
                << r.pue.stats().mean() << ")\n";
    }
    if (r.remote_flow_traffic.stats().max() > 0.0) {
      std::cout << "remote IPC traffic:    "
                << r.remote_flow_traffic.stats().mean()
                << " units/tick (mean hops "
                << r.mean_flow_hops.stats().mean() << ")\n";
    }

    if (!csv_prefix.empty()) {
      bool ok = write_series(csv_prefix + "_supply.csv", "supply_w",
                             r.supply_series);
      ok &= write_series(csv_prefix + "_power.csv", "consumed_w",
                         r.total_power);
      ok &= write_series(csv_prefix + "_migrations.csv", "migrations",
                         r.migrations_per_tick);
      util::Table servers({"server", "mean_power_w", "mean_temp_c",
                           "mean_utilization", "asleep_fraction"});
      for (std::size_t i = 0; i < r.servers.size(); ++i) {
        servers.row()
            .add(static_cast<long long>(i + 1))
            .add(r.servers[i].consumed_power.mean())
            .add(r.servers[i].temperature.mean())
            .add(r.servers[i].utilization.mean())
            .add(r.servers[i].asleep_fraction);
      }
      ok &= servers.write_csv_file(csv_prefix + "_servers.csv");
      std::cout << (ok ? "csv written with prefix " : "csv write FAILED: ")
                << csv_prefix << "\n";
      if (!ok) return 1;
    }
    if (!json_path.empty()) {
      std::ofstream jf(json_path);
      if (!jf) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
      }
      sim::write_result_json(jf, r);
      std::cout << "json written to " << json_path << "\n";
    }
    if (trace) {
      std::cout << "trace written to " << trace_path << " ("
                << trace->lines_written() << " events)\n";
    }
    if (print_metrics) {
      const auto& m = r.metrics;
      util::Table counters({"counter", "value"});
      for (const auto& c : m.counters) {
        counters.row().add(c.name).add(static_cast<long long>(c.value));
      }
      std::cout << "\n";
      counters.print(std::cout);
      if (!m.gauges.empty()) {
        util::Table gauges({"gauge", "value"});
        for (const auto& g : m.gauges) gauges.row().add(g.name).add(g.value);
        std::cout << "\n";
        gauges.print(std::cout);
      }
      if (!m.histograms.empty()) {
        util::Table hists({"histogram", "count", "sum", "mean"});
        for (const auto& h : m.histograms) {
          hists.row().add(h.name).add(static_cast<long long>(h.count))
              .add(h.sum)
              .add(h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
        }
        std::cout << "\n";
        hists.print(std::cout);
      }
      if (!m.timers.empty()) {
        util::Table timers({"timer", "count", "total_s"});
        timers.set_precision(6);
        for (const auto& t : m.timers) {
          timers.row().add(t.name).add(static_cast<long long>(t.count))
              .add(t.total_seconds);
        }
        std::cout << "\n";
        timers.print(std::cout);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
