// willow_cli — run a scenario file through the simulator and report.
//
//   willow_cli <scenario-file> [--set key=value]... [--csv <prefix>]
//                              [--json <file>] [--trace <file>] [--metrics]
//   willow_cli --check <scenario-file>  # parse + validate only, no run
//   willow_cli --describe            # scenario keys + help, from the registry
//   willow_cli --keys                # machine-readable key<TAB>sample table
//
// --set overlays one scenario assignment on top of the file (repeatable;
// later wins).  Keys are validated against the scenario_keys() registry —
// the same table --describe/--keys print — so a typo fails before the run.
//
// The scenario format is documented in sim/scenario_io.h.  With --csv, the
// recorded time series are written to <prefix>_supply.csv,
// <prefix>_power.csv, <prefix>_migrations.csv, and <prefix>_servers.csv.
// --trace streams every control-plane event (budgets, demand reports, link
// messages, migrations, throttles, UPS activity) to a JSONL file whose bytes
// are identical for any `threads` setting; --metrics prints the run's
// counters, histograms, and per-phase wall-clock timers.
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "sim/result_io.h"
#include "sim/scenario_io.h"
#include "sim/simulation.h"
#include "util/table.h"

namespace {

using namespace willow;

void describe() {
  // Rendered from the scenario_keys() registry — the single source of truth
  // for the key surface (the roundtrip test pins it to the parser, the
  // docs-drift gate pins it to the manual).  Sample values shown.
  std::cout << "Scenario keys (key = value, '#' comments; sample values "
               "shown, docs/scenario_format.md for defaults):\n";
  for (const auto& k : sim::scenario_keys()) {
    const std::string lhs = "  " + k.key + " = " + k.sample;
    std::cout << lhs;
    constexpr std::size_t kHelpColumn = 42;
    if (lhs.size() + 2 > kHelpColumn) {
      std::cout << '\n' << std::string(kHelpColumn, ' ');
    } else {
      std::cout << std::string(kHelpColumn - lhs.size(), ' ');
    }
    std::cout << k.help << '\n';
  }
}

void print_keys() {
  for (const auto& k : sim::scenario_keys()) {
    std::cout << k.key << '\t' << k.sample << '\n';
  }
}

bool write_series(const std::string& path, const char* column,
                  const util::TimeSeries& series) {
  util::Table t({"t", column});
  t.set_precision(5);
  for (std::size_t i = 0; i < series.size(); ++i) {
    t.row().add(series.times()[i]).add(series.at(i));
  }
  return t.write_csv_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--describe") == 0) {
    describe();
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--keys") == 0) {
    print_keys();
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--check") == 0) {
    if (argc != 3) {
      std::cerr << "usage: willow_cli --check <scenario-file>\n";
      return 2;
    }
    try {
      (void)sim::load_scenario_file(argv[2]);
      std::cout << "ok: " << argv[2] << "\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (argc < 2) {
    std::cerr << "usage: willow_cli <scenario-file> [--set key=value]..."
                 " [--csv <prefix>]\n"
                 "                  [--json <file>] [--trace <file>]"
                 " [--metrics]\n"
                 "       willow_cli --check <scenario-file>\n"
                 "       willow_cli --describe | --keys\n";
    return 2;
  }
  std::string csv_prefix;
  std::string json_path;
  std::string trace_path;
  std::vector<std::string> overrides;  // "key = value" scenario lines
  bool print_metrics = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc) {
      const std::string assign = argv[++i];
      const std::size_t eq = assign.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--set expects key=value, got '" << assign << "'\n";
        return 2;
      }
      std::string key = assign.substr(0, eq);
      key.erase(0, key.find_first_not_of(" \t"));
      key.erase(key.find_last_not_of(" \t") + 1);
      if (!sim::is_scenario_key(key)) {
        std::cerr << "--set: '" << key
                  << "' is not a scenario key (see --keys)\n";
        return 2;
      }
      overrides.push_back(key + " = " + assign.substr(eq + 1));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else {
      std::cerr << "unknown or incomplete option '" << argv[i] << "'\n";
      return 2;
    }
  }

  try {
    std::ifstream scenario_file(argv[1]);
    if (!scenario_file) {
      std::cerr << "cannot open scenario file: " << argv[1] << "\n";
      return 1;
    }
    std::string scenario_text((std::istreambuf_iterator<char>(scenario_file)),
                              std::istreambuf_iterator<char>());
    for (const auto& line : overrides) {
      scenario_text += '\n';
      scenario_text += line;
    }
    std::istringstream scenario_stream(scenario_text);
    auto cfg = sim::parse_scenario(scenario_stream);
    std::shared_ptr<obs::JsonlTraceSink> trace;
    if (!trace_path.empty()) {
      trace = std::make_shared<obs::JsonlTraceSink>(trace_path);
      cfg.sinks.push_back(trace);
    }
    sim::Simulation simulation(std::move(cfg));
    const auto r = simulation.run();

    std::cout << "ticks recorded:        " << r.ticks << "\n";
    std::cout << "mean supply:           " << r.supply_series.stats().mean()
              << " W\n";
    std::cout << "mean consumption:      " << r.total_power.stats().mean()
              << " W\n";
    std::cout << "max temperature:       " << r.max_temperature_c
              << " degC (violated: " << (r.thermal_violation ? "YES" : "no")
              << ")\n";
    const auto& st = r.controller_stats;
    std::cout << "migrations:            " << st.total_migrations() << " ("
              << st.demand_migrations << " demand, "
              << st.consolidation_migrations << " consolidation; "
              << st.local_migrations << " local / " << st.nonlocal_migrations
              << " non-local)\n";
    std::cout << "quick re-migrations:   " << r.quick_remigrations << "\n";
    std::cout << "drops / revivals:      " << st.drops << " / " << st.revivals
              << "\n";
    std::cout << "degrades / restores:   " << st.degrades << " / "
              << st.restores << "\n";
    std::cout << "sleeps / wakes:        " << st.sleeps << " / " << st.wakes
              << "\n";
    double asleep = 0.0;
    for (const auto& s : r.servers) asleep += s.asleep_fraction;
    std::cout << "mean servers asleep:   " << asleep << "\n";
    std::cout << "mean imbalance:        " << r.imbalance.stats().mean()
              << " W (Eq. 9)\n";
    if (!r.qos_satisfaction.empty()) {
      std::cout << "SLA satisfaction:      "
                << r.qos_satisfaction.stats().mean() * 100.0
                << " % (mean inflation "
                << r.qos_mean_inflation.stats().mean() << "x)\n";
    }
    if (!r.pue.empty()) {
      std::cout << "mean facility power:   "
                << r.facility_power.stats().mean() << " W (PUE "
                << r.pue.stats().mean() << ")\n";
    }
    if (r.remote_flow_traffic.stats().max() > 0.0) {
      std::cout << "remote IPC traffic:    "
                << r.remote_flow_traffic.stats().mean()
                << " units/tick (mean hops "
                << r.mean_flow_hops.stats().mean() << ")\n";
    }

    if (!csv_prefix.empty()) {
      bool ok = write_series(csv_prefix + "_supply.csv", "supply_w",
                             r.supply_series);
      ok &= write_series(csv_prefix + "_power.csv", "consumed_w",
                         r.total_power);
      ok &= write_series(csv_prefix + "_migrations.csv", "migrations",
                         r.migrations_per_tick);
      // Rows are keyed by PMU leaf id (result schema v3's "node"), the
      // stable join key against traces; the 1-based paper number is kept as
      // a convenience column.
      util::Table servers({"node", "server", "mean_power_w", "mean_temp_c",
                           "mean_utilization", "asleep_fraction"});
      for (std::size_t i = 0; i < r.server_nodes.size(); ++i) {
        const auto& m = r.server_metrics(r.server_nodes[i]);
        servers.row()
            .add(static_cast<long long>(r.server_nodes[i]))
            .add(static_cast<long long>(i + 1))
            .add(m.consumed_power.mean())
            .add(m.temperature.mean())
            .add(m.utilization.mean())
            .add(m.asleep_fraction);
      }
      ok &= servers.write_csv_file(csv_prefix + "_servers.csv");
      std::cout << (ok ? "csv written with prefix " : "csv write FAILED: ")
                << csv_prefix << "\n";
      if (!ok) return 1;
    }
    if (!json_path.empty()) {
      std::ofstream jf(json_path);
      if (!jf) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
      }
      sim::write_result_json(jf, r);
      std::cout << "json written to " << json_path << "\n";
    }
    if (trace) {
      std::cout << "trace written to " << trace_path << " ("
                << trace->lines_written() << " events)\n";
    }
    if (print_metrics) {
      const auto& m = r.metrics;
      util::Table counters({"counter", "value"});
      for (const auto& c : m.counters) {
        counters.row().add(c.name).add(static_cast<long long>(c.value));
      }
      std::cout << "\n";
      counters.print(std::cout);
      if (!m.gauges.empty()) {
        util::Table gauges({"gauge", "value"});
        for (const auto& g : m.gauges) gauges.row().add(g.name).add(g.value);
        std::cout << "\n";
        gauges.print(std::cout);
      }
      if (!m.histograms.empty()) {
        util::Table hists({"histogram", "count", "sum", "mean"});
        for (const auto& h : m.histograms) {
          hists.row().add(h.name).add(static_cast<long long>(h.count))
              .add(h.sum)
              .add(h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
        }
        std::cout << "\n";
        hists.print(std::cout);
      }
      if (!m.timers.empty()) {
        util::Table timers({"timer", "count", "total_s"});
        timers.set_precision(6);
        for (const auto& t : m.timers) {
          timers.row().add(t.name).add(static_cast<long long>(t.count))
              .add(t.total_seconds);
        }
        std::cout << "\n";
        timers.print(std::cout);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
