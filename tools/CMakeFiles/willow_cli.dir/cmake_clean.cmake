file(REMOVE_RECURSE
  "CMakeFiles/willow_cli.dir/willow_cli.cc.o"
  "CMakeFiles/willow_cli.dir/willow_cli.cc.o.d"
  "willow_cli"
  "willow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
