# Empty dependencies file for willow_cli.
# This may be replaced when dependencies are built.
