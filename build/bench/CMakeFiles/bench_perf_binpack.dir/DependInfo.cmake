
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_binpack.cc" "bench/CMakeFiles/bench_perf_binpack.dir/perf_binpack.cc.o" "gcc" "bench/CMakeFiles/bench_perf_binpack.dir/perf_binpack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/willow_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/willow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/willow_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/willow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/willow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/willow_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/willow_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/willow_power.dir/DependInfo.cmake"
  "/root/repo/build/src/binpack/CMakeFiles/willow_binpack.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/willow_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
