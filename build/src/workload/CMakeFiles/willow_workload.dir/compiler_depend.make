# Empty compiler generated dependencies file for willow_workload.
# This may be replaced when dependencies are built.
