#include "common.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#include "util/json.h"
#include "util/thread_pool.h"

namespace willow::bench {

using namespace willow::util::literals;

sim::SimConfig paper_sim_config(double utilization, unsigned long long seed) {
  sim::SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 15;
  cfg.measure_ticks = 60;
  cfg.seed = seed;
  // Benches already fan out across their own ThreadPool (utilization_sweep);
  // keep every inner simulation serial so pools do not nest.  Results are
  // bit-identical for any thread count, so this is purely a scheduling choice.
  cfg.threads = 1;
  return cfg;
}

sim::SimConfig hot_zone_sim_config(double utilization,
                                   unsigned long long seed) {
  auto cfg = paper_sim_config(utilization, seed);
  cfg.datacenter.ambient_overrides.assign(18, 25_degC);
  for (int i = 14; i < 18; ++i) {
    cfg.datacenter.ambient_overrides[i] = 40_degC;
  }
  return cfg;
}

std::vector<SweepPoint> utilization_sweep(const std::vector<double>& points,
                                          bool hot_zone, int seeds) {
  std::vector<SweepPoint> out(points.size());
  util::ThreadPool pool;
  std::mutex mutex;
  util::parallel_for(pool, points.size(), [&](std::size_t i) {
    SweepPoint p;
    p.utilization = points[i];
    util::RunningStats switch_power;
    for (int s = 0; s < seeds; ++s) {
      const auto seed = 1000ULL * (s + 1) + i;
      auto cfg = hot_zone ? hot_zone_sim_config(points[i], seed)
                          : paper_sim_config(points[i], seed);
      const auto r = sim::run_simulation(std::move(cfg));
      p.demand_migrations += r.measured_demand_migrations();
      p.consolidation_migrations += r.measured_consolidation_migrations();
      p.normalized_migration_traffic +=
          r.normalized_migration_traffic.stats().mean();
      for (const auto& sw : r.level1_switches) {
        switch_power.add(sw.power.mean());
        p.level1_migration_cost_w += sw.migration_cost.mean();
      }
      p.mean_total_power_w += r.total_power.stats().mean();
      for (const auto& srv : r.servers) p.asleep_servers += srv.asleep_fraction;
    }
    const double n = seeds;
    p.demand_migrations /= n;
    p.consolidation_migrations /= n;
    p.normalized_migration_traffic /= n;
    p.level1_migration_cost_w /= n;
    p.mean_total_power_w /= n;
    p.asleep_servers /= n;
    p.level1_switch_power_w = switch_power.mean();
    p.level1_switch_power_stddev = switch_power.stddev();
    std::lock_guard<std::mutex> lock(mutex);
    out[i] = p;
  });
  return out;
}

void emit(util::Table& table, int argc, char** argv, const std::string& title) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  if (argc > 1) {
    if (table.write_csv_file(argv[1])) {
      std::cout << "(csv written to " << argv[1] << ")\n";
    } else {
      std::cerr << "failed to write csv to " << argv[1] << '\n';
    }
  }
  std::cout << std::endl;
}

bool write_perf_json(const std::string& path, const std::string& bench,
                     const std::vector<PerfPoint>& points) {
  std::ofstream os(path);
  if (!os) return false;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("bench").value(bench);
  w.key("points").begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.key("scenario").value(p.scenario);
    w.key("servers").value(p.servers);
    w.key("threads").value(p.threads);
    // Unset (0) means "the machine running the writer": benches record
    // points and write the file in one process.
    w.key("hw_threads")
        .value(p.hw_threads != 0
                   ? p.hw_threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency()));
    w.key("ticks").value(static_cast<long long>(p.ticks));
    w.key("wall_seconds").value(p.wall_seconds);
    w.key("ticks_per_second").value(p.ticks_per_second);
    w.key("speedup_vs_serial").value(p.speedup_vs_serial);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace willow::bench
