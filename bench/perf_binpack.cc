// Performance — FFDLR and baselines (Sec. V-A2).
//
// The paper relies on FFDLR's O(n log n) bound for its O(log n) distributed
// decision-time claim.  These benchmarks time the packers across instance
// sizes (time per element should stay near-flat for n log n growth) and the
// exact solver on the small instances the tests verify quality against.
#include <benchmark/benchmark.h>

#include "binpack/exact.h"
#include "binpack/pack.h"
#include "binpack/vbp.h"
#include "util/rng.h"

namespace {

using willow::binpack::Algorithm;
using willow::binpack::Bin;
using willow::binpack::Item;

struct Instance {
  std::vector<Item> items;
  std::vector<Bin> bins;
};

Instance make_instance(std::size_t n_items, std::size_t n_bins,
                       unsigned long long seed) {
  willow::util::Rng rng(seed);
  Instance inst;
  inst.items.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    inst.items.push_back({i + 1, rng.uniform(0.5, 9.0), 0});
  }
  inst.bins.reserve(n_bins);
  for (std::size_t b = 0; b < n_bins; ++b) {
    inst.bins.push_back({1000 + b, rng.uniform(5.0, 30.0), 0});
  }
  return inst;
}

void BM_Pack(benchmark::State& state, Algorithm algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, n / 2 + 1, 42);
  for (auto _ : state) {
    auto result = willow::binpack::pack(inst.items, inst.bins, algo);
    benchmark::DoNotOptimize(result.placed_size);
  }
  state.SetComplexityN(state.range(0));
}

void BM_FFDLR(benchmark::State& state) { BM_Pack(state, Algorithm::kFfdlr); }
void BM_FirstFitDecreasing(benchmark::State& state) {
  BM_Pack(state, Algorithm::kFirstFitDecreasing);
}
void BM_BestFitDecreasing(benchmark::State& state) {
  BM_Pack(state, Algorithm::kBestFitDecreasing);
}

void BM_VbpFfdlr(benchmark::State& state) {
  // The classical unlimited-bins problem [Friesen & Langston]; the O(n log n)
  // complexity the paper's Sec. V-A2 analysis rests on.
  const auto n = static_cast<std::size_t>(state.range(0));
  willow::util::Rng rng(5);
  std::vector<double> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) items.push_back(rng.uniform(0.05, 1.0));
  const std::vector<double> sizes{0.25, 0.5, 0.75, 1.0};
  for (auto _ : state) {
    auto result = willow::binpack::vbp_ffdlr(items, sizes);
    benchmark::DoNotOptimize(result.total_capacity);
  }
  state.SetComplexityN(state.range(0));
}

void BM_ExactSmall(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 4, 7);
  for (auto _ : state) {
    auto result = willow::binpack::exact_pack(inst.items, inst.bins, 16);
    benchmark::DoNotOptimize(result.max_placed);
  }
}

}  // namespace

BENCHMARK(BM_FFDLR)->RangeMultiplier(4)->Range(16, 4096)->Complexity();
BENCHMARK(BM_VbpFfdlr)->RangeMultiplier(4)->Range(16, 4096)->Complexity();
BENCHMARK(BM_FirstFitDecreasing)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_BestFitDecreasing)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_ExactSmall)->DenseRange(6, 12, 2);
