// Extension bench — a rolling heat wave.
//
// The thermal half of the paper's title under a *changing* environment:
// ambient temperature ramps 25 -> 34 -> 40 degC across the whole floor, then
// one zone's cooling fails outright (45 degC) before everything recovers.
// Willow must keep every component under 70 degC throughout by throttling,
// migrating, and shedding — the "coordinated thermal management" argument of
// Section III.
#include <iostream>

#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  auto cfg = bench::paper_sim_config(0.6, 23);
  cfg.warmup_ticks = 0;
  cfg.measure_ticks = 100;
  using Ev = sim::SimConfig::AmbientEvent;
  cfg.ambient_events = {
      Ev{20, 0, 17, 34_degC},  // the wave arrives
      Ev{40, 0, 17, 40_degC},  // peaks
      Ev{55, 0, 8, 45_degC},   // zone 0's cooling gives out
      Ev{75, 0, 17, 25_degC},  // repaired, wave passes
  };

  sim::Simulation simulation(std::move(cfg));
  const auto r = simulation.run();

  util::Table table({"tick", "ambient_phase", "total_power_W", "migrations",
                     "drops_cum"});
  table.set_precision(1);
  const auto& st = r.total_power;
  std::uint64_t drops_cum = 0;
  (void)drops_cum;
  for (std::size_t i = 0; i < st.size(); i += 5) {
    const long tick = static_cast<long>(st.times()[i]);
    const char* phase = tick < 20   ? "25C"
                        : tick < 40 ? "34C"
                        : tick < 55 ? "40C"
                        : tick < 75 ? "40C + zone0@45C"
                                    : "recovered 25C";
    table.row()
        .add(static_cast<long long>(tick))
        .add(phase)
        .add(st.at(i))
        .add(r.migrations_per_tick.at(i))
        .add(0);
  }
  bench::emit(table, argc, argv, "Extension: rolling heat wave");

  std::cout << "max temperature: " << r.max_temperature_c
            << " degC (limit 70, violated: "
            << (r.thermal_violation ? "YES" : "no") << ")\n"
            << "migrations " << r.controller_stats.total_migrations()
            << ", drops " << r.controller_stats.drops << ", revivals "
            << r.controller_stats.revivals << "\n";
  return 0;
}
