// Performance — controller decision time vs datacenter size (Sec. V-A2).
//
// The paper argues the distributed decision process is O(log n) per level
// with constant per-level bin-packing cost; here we time a full centralized
// tick (which is Theta(n) in the plant size because it touches every server
// once) and the supply adaptation alone, across fleet sizes.  Near-linear
// whole-tick scaling confirms there is no super-linear term hiding in the
// matching.
#include <benchmark/benchmark.h>

#include "common.h"
#include "workload/demand.h"

namespace {

using namespace willow;

struct Plant {
  std::unique_ptr<sim::Datacenter> dc;
  std::unique_ptr<core::Controller> controller;
  std::unique_ptr<util::Rng> rng;
  workload::PoissonDemand demand{util::Watts{1.0}};
  double supply_w = 0.0;

  explicit Plant(std::size_t servers) {
    sim::DatacenterOptions options;
    options.layout.zones = 2;
    options.layout.racks_per_zone = std::max<std::size_t>(1, servers / 8);
    options.layout.servers_per_rack = 4;
    options.server.thermal.c1 = 0.08;
    options.server.thermal.c2 = 0.05;
    options.server.power_model = power::ServerPowerModel::paper_simulation();
    dc = sim::build_datacenter(options);
    rng = std::make_unique<util::Rng>(99);
    workload::AppIdAllocator ids;
    workload::MixConfig mix;
    mix.unit_power = util::Watts{1.0};
    mix.target_mean_per_server = util::Watts{18.125 * 0.6};
    for (auto s : dc->servers) {
      for (auto& app : workload::build_mix(mix, ids, *rng)) {
        dc->cluster.place(std::move(app), s);
      }
    }
    core::ControllerConfig cfg;
    cfg.margin = util::Watts{1.5};
    cfg.migration_cost = util::Watts{0.5};
    cfg.utilization_reference = core::UtilizationReference::kThermalSustainable;
    controller = std::make_unique<core::Controller>(dc->cluster, cfg);
    supply_w = 28.125 * static_cast<double>(dc->servers.size()) * 0.85;
  }

  void tick() {
    dc->cluster.refresh_demands(demand, *rng);
    controller->tick(util::Watts{supply_w});
    dc->cluster.step_thermal(util::Seconds{1.0});
  }
};

void BM_ControllerTick(benchmark::State& state) {
  Plant plant(static_cast<std::size_t>(state.range(0)));
  // Warm up so steady-state ticks are measured, not initial consolidation.
  for (int i = 0; i < 20; ++i) plant.tick();
  for (auto _ : state) {
    plant.tick();
  }
  state.SetComplexityN(state.range(0));
  state.counters["servers"] =
      static_cast<double>(plant.dc->servers.size());
  state.counters["migrations"] =
      static_cast<double>(plant.controller->stats().total_migrations());
}

void BM_SupplyAdaptation(benchmark::State& state) {
  Plant plant(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < 5; ++i) plant.tick();
  double supply = plant.supply_w;
  for (auto _ : state) {
    supply = supply * 0.999;  // always a (tiny) tightening event
    plant.controller->force_supply_adaptation(util::Watts{supply});
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_ControllerTick)->RangeMultiplier(4)->Range(16, 1024)->Complexity();
BENCHMARK(BM_SupplyAdaptation)->RangeMultiplier(4)->Range(16, 1024)->Complexity();
