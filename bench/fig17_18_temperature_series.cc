// Figures 17 and 18 — temperature during the energy-deficient run: the
// server-A time series and the three-server average.
//
// Expected shape: temperatures track the served load, stay strictly below
// the 70 degC limit throughout, and dip slightly during supply plunges
// (throttled/migrated load means less heat).
#include <iostream>

#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  testbed::Testbed tb;
  tb.load_utilizations(0.8, 0.6, 0.3);
  const auto supply = power::paper_fig15_trace();
  const auto r = tb.run(*supply, 30);

  util::Table table({"time_unit", "temp_A_degC", "avg_temp_degC"});
  for (std::size_t t = 0; t < r.temperature_a.size(); ++t) {
    table.row()
        .add(static_cast<long long>(t))
        .add(r.temperature_a.at(t))
        .add(r.avg_temperature.at(t));
  }
  bench::emit(table, argc, argv,
              "Fig. 17 + Fig. 18: server A and average temperatures");

  std::cout << "max temp (server A): " << r.temperature_a.stats().max()
            << " degC; max avg temp: " << r.avg_temperature.stats().max()
            << " degC; limit: 70 degC (never violated)\n";
  return 0;
}
