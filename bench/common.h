// Shared scaffolding for the figure/table regeneration benches.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section V).  Numbers are produced by the same library code the
// tests exercise; each binary prints the series the paper plots, and writes
// a CSV next to it when invoked with an output path argument.
#pragma once

#include <string>
#include <vector>

#include "sim/simulation.h"
#include "testbed/testbed.h"
#include "util/table.h"

namespace willow::bench {

/// The Fig. 3 datacenter with the paper's thermal constants (c1 = 0.08,
/// c2 = 0.05, 450 W nameplate, 70 degC limit), uniform 25 degC ambient.
sim::SimConfig paper_sim_config(double utilization, unsigned long long seed);

/// Same, with the Sec. V-B3 hot zone: servers 15-18 at 40 degC ambient.
sim::SimConfig hot_zone_sim_config(double utilization, unsigned long long seed);

/// Averages of the quantities Figures 9-12 plot at one utilization point,
/// across `seeds` independent runs (run in parallel across hardware threads).
struct SweepPoint {
  double utilization = 0.0;
  double demand_migrations = 0.0;
  double consolidation_migrations = 0.0;
  double normalized_migration_traffic = 0.0;
  double level1_switch_power_w = 0.0;       ///< mean per physical switch
  double level1_switch_power_stddev = 0.0;  ///< across level-1 switches
  double level1_migration_cost_w = 0.0;
  double mean_total_power_w = 0.0;
  double asleep_servers = 0.0;
};

/// Run the sweep for the given utilization points with (or without) the hot
/// zone, averaged over `seeds` seeds.
std::vector<SweepPoint> utilization_sweep(const std::vector<double>& points,
                                          bool hot_zone, int seeds = 3);

/// Print the table, then write CSV to argv[1] if the caller received one.
void emit(util::Table& table, int argc, char** argv,
          const std::string& title);

/// One measured configuration of a perf sweep (see perf_tick_scaling.cc).
struct PerfPoint {
  std::string scenario;
  std::size_t servers = 0;
  std::size_t threads = 0;
  /// Hardware threads of the machine that produced the point.  Scaling
  /// gates read this: a threads=4 point measured on a single-core box can
  /// only show overhead, never speedup, and is judged accordingly
  /// (scripts/check_bench_regression.sh).
  std::size_t hw_threads = 0;
  long ticks = 0;
  double wall_seconds = 0.0;
  double ticks_per_second = 0.0;
  double speedup_vs_serial = 1.0;  ///< vs threads=1 of the same scenario
};

/// Write a perf sweep as machine-readable JSON (the BENCH_*.json baseline
/// files the CI smoke run records).  Returns false on I/O failure.
bool write_perf_json(const std::string& path, const std::string& bench,
                     const std::vector<PerfPoint>& points);

}  // namespace willow::bench
