// Figure 12 — migration cost deposited on the level-1 switches vs
// utilization.
//
// Expected shape: follows the total-migrations trend of Figure 10 (rise,
// mid-range peak, high-utilization decline).
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                   0.7, 0.8, 0.9, 0.95};
  const auto sweep = bench::utilization_sweep(points, /*hot_zone=*/false);
  util::Table table({"utilization_%", "level1_migration_cost_W"});
  for (const auto& p : sweep) {
    table.row().add(p.utilization * 100.0).add(p.level1_migration_cost_w);
  }
  bench::emit(table, argc, argv, "Fig. 12: migration cost in level-1 switches");
  return 0;
}
