// Extension bench — the QoS value of adaptation.
//
// The paper's thesis: adapt to supply variations "while still meeting the
// desired QoS requirements".  Under the same plunging supply, compares SLA
// satisfaction (M/M/1 response-time inflation <= 5x, i.e. servers may run to
// 80% of serviceable capacity) across operating points.  Under deficiency the
// latency-power tradeoff is stark: packing servers full (FFDLR's intent)
// minimizes power but queues requests past the SLA; the fill-fraction knob
// buys satisfaction back at a power premium.
#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  struct Variant {
    const char* name;
    void (*tweak)(sim::SimConfig&);
  };
  const Variant variants[] = {
      {"full Willow (pack full)", [](sim::SimConfig&) {}},
      {"fill-capped 0.75",
       [](sim::SimConfig& cfg) { cfg.controller.target_fill_fraction = 0.75; }},
      {"no consolidation",
       [](sim::SimConfig& cfg) { cfg.controller.consolidation_threshold = 0.0; }},
      {"no migrations",
       [](sim::SimConfig& cfg) { cfg.controller.margin = util::Watts{1e6}; }},
  };
  util::Table table({"variant", "sla_satisfaction_%", "mean_inflation",
                     "drops", "migrations"});
  for (const auto& v : variants) {
    double satisfaction = 0, inflation = 0, drops = 0, migrations = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::hot_zone_sim_config(0.6, seed);
      cfg.sla_inflation = 5.0;
      cfg.supply = std::make_shared<power::SinusoidSupply>(
          util::Watts{28.125 * 18.0 * 0.85}, util::Watts{28.125 * 18.0 * 0.15},
          1_s * 20.0);
      v.tweak(cfg);
      const auto r = sim::run_simulation(std::move(cfg));
      satisfaction += r.qos_satisfaction.stats().mean();
      inflation += r.qos_mean_inflation.stats().mean();
      drops += static_cast<double>(r.controller_stats.drops);
      migrations += static_cast<double>(r.controller_stats.total_migrations());
    }
    table.row()
        .add(v.name)
        .add(satisfaction / 3.0 * 100.0)
        .add(inflation / 3.0)
        .add(drops / 3.0)
        .add(migrations / 3.0);
  }
  bench::emit(table, argc, argv, "Extension: SLA satisfaction under adaptation");
  return 0;
}
