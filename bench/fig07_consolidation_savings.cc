// Figure 7 — per-server power saved by consolidation at 40% utilization with
// the hot zone active.
//
// Expected shape: positive savings across the fleet with the maximum in
// servers 15-18 — Willow drains the hot zone first, so those servers spend
// the most time shut down.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"server", "ambient_degC", "saved_W", "asleep_%"});
  std::vector<util::RunningStats> saved(18), asleep(18);
  for (unsigned long long seed : {23ULL, 17ULL, 5ULL, 29ULL, 31ULL}) {
    const auto r = sim::run_simulation(bench::hot_zone_sim_config(0.4, seed));
    for (int i = 0; i < 18; ++i) {
      const auto& m = r.server_metrics(r.server_nodes[i]);
      saved[i].add(m.saved_power_w);
      asleep[i].add(m.asleep_fraction);
    }
  }
  for (int i = 0; i < 18; ++i) {
    table.row()
        .add(static_cast<long long>(i + 1))
        .add(i >= 14 ? 40.0 : 25.0)
        .add(saved[i].mean())
        .add(asleep[i].mean() * 100.0);
  }
  bench::emit(table, argc, argv,
              "Fig. 7: power saved per server by consolidation (U = 40%)");
  return 0;
}
