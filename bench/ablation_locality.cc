// Ablation — the local-first migration preference (Sec. IV-E).
//
// The paper prefers local migrations to reduce network overhead and avoid
// IP reconfiguration.  Compares local-first against a single global matching
// at the root: expected effect is a much larger share of non-local
// migrations and more traffic crossing the upper-level switches.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"policy", "local", "non_local", "root_switch_traffic",
                     "level1_switch_traffic", "drops"});
  for (bool prefer_local : {true, false}) {
    double local = 0, nonlocal = 0, root_traffic = 0, l1_traffic = 0,
           drops = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::hot_zone_sim_config(0.5, seed);
      cfg.controller.prefer_local = prefer_local;
      sim::Simulation simulation(std::move(cfg));
      const auto r = simulation.run();
      local += static_cast<double>(r.controller_stats.local_migrations);
      nonlocal += static_cast<double>(r.controller_stats.nonlocal_migrations);
      drops += static_cast<double>(r.controller_stats.drops);
      auto& fabric = simulation.fabric();
      const auto root = simulation.datacenter().root;
      root_traffic += fabric.stats(root).total_migration_traffic;
      for (const auto g : fabric.level1_groups()) {
        l1_traffic += fabric.stats(g).total_migration_traffic;
      }
    }
    table.row()
        .add(prefer_local ? "local-first (paper)" : "global matching")
        .add(local / 3.0)
        .add(nonlocal / 3.0)
        .add(root_traffic / 3.0)
        .add(l1_traffic / 3.0)
        .add(drops / 3.0);
  }
  bench::emit(table, argc, argv, "Ablation: local-first migration preference");
  return 0;
}
