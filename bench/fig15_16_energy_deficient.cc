// Figures 15 and 16 — the energy-deficient testbed run at ~60% average
// utilization: the injected supply-variation trace and the per-time-unit
// migration counts.
//
// Expected shape: migrations spike when the supply plunges (t = 7) and stay
// at zero while the plunge persists (t = 8..10) — the decision-stability
// property — and recoveries trigger no migrations (constraint-driven only).
// Note (EXPERIMENTS.md): with the Table-I power calibration the idle floors
// bound plunge depth, and later equal-depth dips degrade (drop) rather than
// migrate because the first plunge already packed the surplus server.
#include <iostream>

#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  testbed::Testbed tb;
  tb.load_utilizations(0.8, 0.6, 0.3);
  const auto supply = power::paper_fig15_trace();
  const auto r = tb.run(*supply, 30);

  util::Table table({"time_unit", "supply_W", "migrations", "util_A", "util_B",
                     "util_C"});
  for (std::size_t t = 0; t < r.supply.size(); ++t) {
    table.row()
        .add(static_cast<long long>(t))
        .add(r.supply.at(t))
        .add(r.migrations.at(t))
        .add(r.utilization[0].at(t))
        .add(r.utilization[1].at(t))
        .add(r.utilization[2].at(t));
  }
  bench::emit(table, argc, argv,
              "Fig. 15 + Fig. 16: supply variation and migrations "
              "(energy-deficient, 60% avg utilization)");

  std::cout << "total migrations: " << r.stats.total_migrations()
            << ", drops: " << r.stats.drops
            << ", revivals: " << r.stats.revivals
            << ", ping-pong observed: " << (r.ping_pong ? "YES" : "no")
            << "\n";
  return 0;
}
