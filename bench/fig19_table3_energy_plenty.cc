// Figure 19 and Table III — the energy-plenty consolidation run.
//
// Servers start at (80, 40, 20)% utilization under a supply averaging
// ~750 W (enough for all three at 100%).  Expected outcome (Sec. V-C5):
// server C is drained and shut down, never woken; A and B absorb its load;
// the fleet saves ~27.5% against the unconsolidated ~580 W draw.
#include <iostream>

#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  testbed::Testbed tb;
  tb.load_utilizations(0.8, 0.4, 0.2);
  const auto supply = power::paper_fig19_trace();
  const auto r = tb.run(*supply, 30);

  util::Table trace({"time_unit", "supply_W", "consumed_A_W", "consumed_B_W",
                     "consumed_C_W"});
  for (std::size_t t = 0; t < r.supply.size(); ++t) {
    trace.row()
        .add(static_cast<long long>(t))
        .add(r.supply.at(t))
        .add(r.consumed[0].at(t))
        .add(r.consumed[1].at(t))
        .add(r.consumed[2].at(t));
  }
  bench::emit(trace, argc, argv,
              "Fig. 19: supply variation (energy plenty) and per-server draw");

  util::Table table3(
      {"server", "initial_utilization_%", "final_utilization_%", "state"});
  const char* names[] = {"A", "B", "C"};
  const double initial[] = {80.0, 40.0, 20.0};
  for (int i = 0; i < 3; ++i) {
    table3.row()
        .add(names[i])
        .add(initial[i])
        .add(r.final_utilization[i] * 100.0)
        .add(r.asleep[i] ? "shut down" : "running");
  }
  std::cout << "== Table III: server utilizations before/after ==\n";
  table3.print(std::cout);

  const double before = 580.0;
  double after = 0.0;
  for (int i = 0; i < 3; ++i) after += r.consumed[i].mean_between(20.0, 30.0);
  std::cout << "power before consolidation ~" << before << " W, after ~"
            << after << " W => savings "
            << (before - after) / before * 100.0 << "% (paper: ~27.5%)\n";
  return 0;
}
