// Figure 9 — demand-driven vs consolidation-driven migrations across the
// utilization sweep (uniform ambient, Sec. V-B4).
//
// Expected shape: consolidation-driven migrations dominate at low
// utilization, demand-driven counts grow with utilization, and the two meet
// around the middle of the range.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9};
  const auto sweep = bench::utilization_sweep(points, /*hot_zone=*/false);
  util::Table table({"utilization_%", "demand_driven", "consolidation_driven",
                     "total"});
  for (const auto& p : sweep) {
    table.row()
        .add(p.utilization * 100.0)
        .add(p.demand_migrations)
        .add(p.consolidation_migrations)
        .add(p.demand_migrations + p.consolidation_migrations);
  }
  bench::emit(table, argc, argv,
              "Fig. 9: demand-driven vs consolidation-driven migrations");
  return 0;
}
