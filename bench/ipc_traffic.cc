// Extension bench — IPC-heavy workloads (the paper's future-work scenario).
//
// Every server's applications form a chatty chain that starts co-located.
// As Willow migrates and consolidates, chains may separate and their traffic
// starts crossing the switch fabric.  Sweeps utilization and compares the
// local-first policy against global matching: locality should keep separated
// tiers fewer switch-hops apart.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"utilization_%", "policy", "remote_flow_units",
                     "mean_flow_hops", "migrations"});
  for (double u : {0.3, 0.5, 0.7}) {
    for (bool prefer_local : {true, false}) {
      double remote = 0, hops = 0, migrations = 0;
      for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
        auto cfg = bench::paper_sim_config(u, seed);
        cfg.ipc_chain_fraction = 1.0;
        cfg.ipc_flow_units = 0.25;
        cfg.controller.prefer_local = prefer_local;
        const auto r = sim::run_simulation(std::move(cfg));
        remote += r.remote_flow_traffic.stats().mean();
        hops += r.mean_flow_hops.stats().mean();
        migrations +=
            static_cast<double>(r.controller_stats.total_migrations());
      }
      table.row()
          .add(u * 100.0)
          .add(prefer_local ? "local-first" : "global")
          .add(remote / 3.0)
          .add(hops / 3.0)
          .add(migrations / 3.0);
    }
  }
  bench::emit(table, argc, argv,
              "Extension: IPC flow traffic under migration policies");
  return 0;
}
