// Extension bench — holistic facility power (Sec. VI future work: "Willow
// must consider the energy consumed by cooling infrastructure as well").
//
// Sweeps utilization with the cooling plant attached, in a cool facility and
// a hot one: PUE worsens with outside temperature, and the consolidation the
// controller does at low utilization pays off roughly (1 + 1/COP)-fold at
// the facility meter.
#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  util::Table table({"utilization_%", "outside_degC", "it_power_W",
                     "facility_W", "PUE", "asleep_servers"});
  for (double outside : {25.0, 35.0}) {
    for (double u : {0.15, 0.4, 0.7, 0.9}) {
      double it = 0, facility = 0, pue = 0, asleep = 0;
      for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
        auto cfg = bench::paper_sim_config(u, seed);
        power::CoolingConfig cool;
        cool.reference_outside = 25_degC;
        cfg.cooling = power::CoolingModel(cool);
        // Model a hotter heat-rejection environment by shifting reference.
        cool.cop_at_reference =
            power::CoolingModel(power::CoolingConfig{})
                .cop(util::Celsius{outside});
        cfg.cooling = power::CoolingModel(cool);
        const auto r = sim::run_simulation(std::move(cfg));
        it += r.total_power.stats().mean();
        facility += r.facility_power.stats().mean();
        pue += r.pue.stats().mean();
        for (const auto& s : r.servers) asleep += s.asleep_fraction;
      }
      table.row()
          .add(u * 100.0)
          .add(outside)
          .add(it / 3.0)
          .add(facility / 3.0)
          .add(pue / 3.0)
          .add(asleep / 3.0);
    }
  }
  bench::emit(table, argc, argv,
              "Extension: facility power and PUE with the cooling plant");
  return 0;
}
