// Ablation — the demand-smoothing constant alpha (Eq. 4).
//
// Small alpha reacts slowly (stale demand estimates misallocate budgets);
// alpha = 1 forwards raw Poisson noise into the budget division.  Expected:
// migrations and imbalance are lowest at intermediate alpha.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"alpha", "migrations", "quick_remigrations",
                     "mean_imbalance_W", "drops"});
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    double migrations = 0, remigrations = 0, imbalance = 0, drops = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::paper_sim_config(0.6, seed);
      cfg.datacenter.smoothing_alpha = alpha;
      const auto r = sim::run_simulation(std::move(cfg));
      migrations += static_cast<double>(r.controller_stats.total_migrations());
      remigrations += static_cast<double>(r.quick_remigrations);
      imbalance += r.imbalance.stats().mean();
      drops += static_cast<double>(r.controller_stats.drops);
    }
    table.row()
        .add(alpha)
        .add(migrations / 3.0)
        .add(remigrations / 3.0)
        .add(imbalance / 3.0)
        .add(drops / 3.0);
  }
  bench::emit(table, argc, argv, "Ablation: demand smoothing alpha (Eq. 4)");
  return 0;
}
