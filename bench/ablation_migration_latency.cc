// Ablation — migration latency (extension).
//
// The paper treats a migration as completing within the decision period.
// Real VM transfers take image-size-proportional time, during which the load
// still burns power at the source and the target capacity is reserved.
// Sweeps the transfer speed and watches how much slower the fleet reacts to
// a supply plunge: slower pipes mean longer deficits and more shedding.
#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  util::Table table({"periods_per_GiB", "migrations", "initiated_in_window",
                     "drops", "dropped_W", "asleep_servers"});
  for (double speed : {0.0, 0.5, 2.0, 6.0}) {
    double migrations = 0, drops = 0, dropped_w = 0, asleep = 0, landed = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::paper_sim_config(0.6, seed);
      cfg.controller.migration_periods_per_gib = speed;
      // Plunge to 75% of the envelope mid-run.
      std::vector<util::Watts> levels;
      for (int i = 0; i < 75; ++i) {
        levels.emplace_back(28.125 * 18.0 * (i < 35 ? 1.0 : 0.75));
      }
      cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
      const auto r = sim::run_simulation(std::move(cfg));
      migrations += static_cast<double>(r.controller_stats.total_migrations());
      drops += static_cast<double>(r.controller_stats.drops);
      dropped_w += r.controller_stats.dropped_demand.value();
      for (const auto& s : r.servers) asleep += s.asleep_fraction;
      landed += r.migrations_per_tick.stats().sum();
    }
    table.row()
        .add(speed)
        .add(migrations / 3.0)
        .add(landed / 3.0)
        .add(drops / 3.0)
        .add(dropped_w / 3.0)
        .add(asleep / 3.0);
  }
  bench::emit(table, argc, argv, "Ablation: VM migration transfer speed");
  return 0;
}
