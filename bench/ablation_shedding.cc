// Ablation — shedding policy and QoS priorities (the paper's future-work
// "multiple QoS classes").
//
// Under a persistent deep deficiency, compares whole-app drops against
// degrade-then-drop, with three priority classes in the mix.  Expected:
// degrade-then-drop keeps far more applications alive (at reduced service),
// and in both policies the lowest priority class absorbs the shedding.
#include <iostream>

#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  util::Table table({"policy", "drops", "degrades", "revivals", "restores",
                     "apps_fully_serving", "apps_degraded", "apps_dropped",
                     "dropped_by_priority_0", "by_priority_1",
                     "by_priority_2"});
  for (auto policy : {core::SheddingPolicy::kDropWhole,
                      core::SheddingPolicy::kDegradeThenDrop}) {
    double drops = 0, degrades = 0, revivals = 0, restores = 0;
    double full = 0, degraded = 0, dropped = 0;
    double by_prio[3] = {0, 0, 0};
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::paper_sim_config(0.7, seed);
      cfg.mix.priority_levels = 3;
      cfg.controller.shedding = policy;
      cfg.controller.degraded_service_level = 0.5;
      // Persistent deficiency: 80% of the sustainable envelope.
      cfg.supply =
          std::make_shared<power::ConstantSupply>(util::Watts{28.125 * 18.0 * 0.8});
      sim::Simulation simulation(std::move(cfg));
      const auto r = simulation.run();
      drops += static_cast<double>(r.controller_stats.drops);
      degrades += static_cast<double>(r.controller_stats.degrades);
      revivals += static_cast<double>(r.controller_stats.revivals);
      restores += static_cast<double>(r.controller_stats.restores);
      auto& cluster = simulation.datacenter().cluster;
      for (auto s : cluster.server_ids()) {
        for (const auto& a : cluster.server(s).apps()) {
          if (a.dropped()) {
            dropped += 1;
            by_prio[std::min(a.priority(), 2)] += 1;
          } else if (a.degraded()) {
            degraded += 1;
          } else {
            full += 1;
          }
        }
      }
    }
    table.row()
        .add(policy == core::SheddingPolicy::kDropWhole ? "drop-whole (paper)"
                                                        : "degrade-then-drop")
        .add(drops / 3.0)
        .add(degrades / 3.0)
        .add(revivals / 3.0)
        .add(restores / 3.0)
        .add(full / 3.0)
        .add(degraded / 3.0)
        .add(dropped / 3.0)
        .add(by_prio[0] / 3.0)
        .add(by_prio[1] / 3.0)
        .add(by_prio[2] / 3.0);
  }
  bench::emit(table, argc, argv,
              "Ablation: shedding policy with 3 QoS priority classes");
  return 0;
}
