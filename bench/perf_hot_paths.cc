// Performance — the per-tick hot paths outside the packer: thermal stepping,
// EWMA updates, fabric accounting, and budget allocation.  These run once
// per server (or per node) per demand period; their costs bound how short
// ΔD can be for a given fleet size.
#include <benchmark/benchmark.h>

#include "core/allocation.h"
#include "net/fabric.h"
#include "thermal/thermal_model.h"
#include "util/ewma.h"
#include "util/rng.h"

namespace {

using namespace willow;
using namespace willow::util::literals;

void BM_ThermalStep(benchmark::State& state) {
  thermal::ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  thermal::ThermalModel model(p);
  double power = 100.0;
  for (auto _ : state) {
    model.step(util::Watts{power}, 1_s);
    power = power > 400.0 ? 50.0 : power + 1.0;
    benchmark::DoNotOptimize(model.temperature());
  }
}

void BM_PowerLimit(benchmark::State& state) {
  thermal::ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  thermal::ThermalModel model(p, 55_degC);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.power_limit(1_s));
  }
}

void BM_EwmaUpdate(benchmark::State& state) {
  util::Ewma<double> filter(0.7);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.update(x));
    x += 1.0;
  }
}

void BM_Allocation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<util::Watts> demands, caps;
  for (std::size_t i = 0; i < n; ++i) {
    demands.emplace_back(rng.uniform(5.0, 50.0));
    caps.emplace_back(rng.uniform(20.0, 80.0));
  }
  for (auto _ : state) {
    auto r = core::allocate_proportional(util::Watts{20.0 * n}, demands, caps);
    benchmark::DoNotOptimize(r.unallocated);
  }
  state.SetComplexityN(state.range(0));
}

void BM_FabricMigration(benchmark::State& state) {
  hier::Tree tree(0.7);
  const auto root = tree.add_root("dc");
  std::vector<hier::NodeId> servers;
  for (int z = 0; z < 4; ++z) {
    const auto zone = tree.add_child(root, "z");
    for (int r = 0; r < 4; ++r) {
      const auto rack = tree.add_child(zone, "r");
      for (int s = 0; s < 4; ++s) servers.push_back(tree.add_child(rack, "s"));
    }
  }
  net::Fabric fabric(tree, net::FabricConfig{});
  util::Rng rng(5);
  fabric.begin_period();
  for (auto _ : state) {
    const auto a = servers[rng.index(servers.size())];
    const auto b = servers[rng.index(servers.size())];
    benchmark::DoNotOptimize(fabric.add_migration(a, b, 1.0));
  }
}

}  // namespace

BENCHMARK(BM_ThermalStep);
BENCHMARK(BM_PowerLimit);
BENCHMARK(BM_EwmaUpdate);
BENCHMARK(BM_Allocation)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_FabricMigration);
