// Performance — the per-tick hot paths outside the packer: thermal stepping,
// EWMA updates, fabric accounting, and budget allocation.  These run once
// per server (or per node) per demand period; their costs bound how short
// ΔD can be for a given fleet size.
#include <benchmark/benchmark.h>

#include "core/allocation.h"
#include "core/controller.h"
#include "net/fabric.h"
#include "thermal/thermal_model.h"
#include "util/ewma.h"
#include "util/rng.h"

namespace {

using namespace willow;
using namespace willow::util::literals;

void BM_ThermalStep(benchmark::State& state) {
  thermal::ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  thermal::ThermalModel model(p);
  double power = 100.0;
  for (auto _ : state) {
    model.step(util::Watts{power}, 1_s);
    power = power > 400.0 ? 50.0 : power + 1.0;
    benchmark::DoNotOptimize(model.temperature());
  }
}

void BM_PowerLimit(benchmark::State& state) {
  thermal::ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  thermal::ThermalModel model(p, 55_degC);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.power_limit(1_s));
  }
}

void BM_EwmaUpdate(benchmark::State& state) {
  util::Ewma<double> filter(0.7);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.update(x));
    x += 1.0;
  }
}

void BM_Allocation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<util::Watts> demands, caps;
  for (std::size_t i = 0; i < n; ++i) {
    demands.emplace_back(rng.uniform(5.0, 50.0));
    caps.emplace_back(rng.uniform(20.0, 80.0));
  }
  for (auto _ : state) {
    auto r = core::allocate_proportional(util::Watts{20.0 * n}, demands, caps);
    benchmark::DoNotOptimize(r.unallocated);
  }
  state.SetComplexityN(state.range(0));
}

void BM_FabricMigration(benchmark::State& state) {
  hier::Tree tree(0.7);
  const auto root = tree.add_root("dc");
  std::vector<hier::NodeId> servers;
  for (int z = 0; z < 4; ++z) {
    const auto zone = tree.add_child(root, "z");
    for (int r = 0; r < 4; ++r) {
      const auto rack = tree.add_child(zone, "r");
      for (int s = 0; s < 4; ++s) servers.push_back(tree.add_child(rack, "s"));
    }
  }
  net::Fabric fabric(tree, net::FabricConfig{});
  util::Rng rng(5);
  fabric.begin_period();
  for (auto _ : state) {
    const auto a = servers[rng.index(servers.size())];
    const auto b = servers[rng.index(servers.size())];
    benchmark::DoNotOptimize(fabric.add_migration(a, b, 1.0));
  }
}

/// The whole control loop, full recompute vs change-driven, quiescent vs
/// churning fleet.  Args: {servers, incremental, churn}.  Without churn the
/// demand estimates reach their bitwise fixed point during setup, so the
/// incremental walk measures its steady-state floor (flat leaf scans only);
/// with churn ~1% of servers change demand before every tick and the dirty
/// subtrees re-aggregate.
void BM_ControllerTick(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  const bool churn = state.range(2) != 0;

  core::ServerConfig sc;
  sc.thermal.c1 = 0.08;
  sc.thermal.c2 = 0.05;
  sc.thermal.ambient = 25_degC;
  sc.thermal.limit = 70_degC;
  sc.thermal.nameplate = 450_W;
  sc.power_model = power::ServerPowerModel(10_W, 450_W);

  core::Cluster cluster(0.7);
  const auto root = cluster.add_root("dc");
  std::vector<hier::NodeId> leaves;
  workload::AppIdAllocator ids;
  util::Rng rng(17);
  hier::NodeId rack = hier::kNoNode;
  for (std::size_t s = 0; s < servers; ++s) {
    if (s % 20 == 0) rack = cluster.add_group(root, "rack");
    const auto leaf = cluster.add_server(rack, "s", sc);
    leaves.push_back(leaf);
    cluster.place(workload::Application(ids.next(), 0,
                                        util::Watts{rng.uniform(20.0, 60.0)},
                                        512_MB),
                  leaf);
  }

  core::ControllerConfig cfg;
  cfg.incremental = incremental;
  core::Controller ctl(cluster, cfg);
  const util::Watts supply{static_cast<double>(servers) * 80.0};
  for (int t = 0; t < 100; ++t) ctl.tick(supply);  // settle the estimators

  const std::size_t churned = std::max<std::size_t>(1, servers / 100);
  for (auto _ : state) {
    if (churn) {
      for (std::size_t i = 0; i < churned; ++i) {
        const auto leaf = leaves[rng.index(leaves.size())];
        auto& apps = cluster.server(leaf).apps();
        if (!apps.empty()) {
          apps.front().set_demand(util::Watts{rng.uniform(20.0, 60.0)});
          ctl.note_external_change(leaf);
        }
      }
    }
    ctl.tick(supply);
    benchmark::DoNotOptimize(ctl.stats().total_migrations());
  }
}

}  // namespace

BENCHMARK(BM_ThermalStep);
BENCHMARK(BM_PowerLimit);
BENCHMARK(BM_EwmaUpdate);
BENCHMARK(BM_Allocation)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_FabricMigration);
BENCHMARK(BM_ControllerTick)
    ->ArgsProduct({{1000, 10000}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
