// Figure 5 — average per-server power consumption vs utilization with the
// hot zone active (Ta = 25 degC for servers 1-14, 40 degC for 15-18).
//
// Expected shape: power rises with utilization; the hot-zone servers draw
// less because their thermal constraint presents less surplus, converging
// only up to the limit the constraint allows.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"utilization_%", "cold_servers_W", "hot_servers_W",
                     "hottest_single_W", "thermal_violations"});
  for (double u : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    util::RunningStats cold, hot;
    bool violation = false;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      const auto r =
          sim::run_simulation(bench::hot_zone_sim_config(u, seed));
      for (int i = 0; i < 14; ++i)
        cold.add(r.server_metrics(r.server_nodes[i]).consumed_power.mean());
      for (int i = 14; i < 18; ++i)
        hot.add(r.server_metrics(r.server_nodes[i]).consumed_power.mean());
      violation |= r.thermal_violation;
    }
    table.row()
        .add(u * 100.0)
        .add(cold.mean())
        .add(hot.mean())
        .add(hot.max())
        .add(violation ? 1 : 0);
  }
  bench::emit(table, argc, argv,
              "Fig. 5: average server power vs utilization (hot zone 15-18)");
  return 0;
}
