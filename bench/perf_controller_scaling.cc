// Perf baseline for the incremental control plane: fleet size x churn rate,
// full recompute vs change-driven walks.
//
// For every configuration the simulation runs twice — once with
// incremental_control off (the controller re-walks the whole PMU tree each
// tick) and once on (dirty-set aggregation, memoized budget division,
// packing reuse).  The two runs must produce identical results (asserted via
// a determinism checksum); only the controller's wall time may differ.  The
// timed quantity is the `sim.phase.controller.measured` timer, which counts
// Controller::tick() wall time on post-warmup ticks only, so the low-churn
// configurations measure the settled steady state where the incremental walk
// skips nearly everything.
//
// Writes the sweep to BENCH_controller_scaling.json (or argv[1]); the
// `speedup_vs_serial` field of an incremental point is its controller-tick
// speedup against the full-recompute run of the same configuration (1.0 on
// the full rows).  scripts/perf_smoke.sh gates on the 10k-server low-churn
// speedup staying above 1.
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common.h"

namespace willow::bench {
namespace {

struct Fleet {
  std::string name;
  sim::DatacenterLayout layout;
  /// Low-churn warmup override.  The steady-state showcase needs the thermal
  /// plant settled (~650 ticks at the paper's cooling rate); at 100k servers
  /// that warmup alone would cost the full-recompute run tens of minutes, so
  /// the largest fleet measures the late transient instead — demand-side
  /// skipping is already in effect there, thermal limits still roll.
  long low_churn_warmup = 720;
};

struct Churn {
  std::string name;
  double probability;
  double demand_quantum_w;  ///< 0 = deterministic constant demand
  long warmup;              ///< low churn needs the thermal plant to settle
  long measure;
};

sim::SimConfig sweep_config(const Fleet& fleet, const Churn& churn,
                            bool incremental) {
  auto cfg = paper_sim_config(0.5, /*seed=*/4242);
  cfg.datacenter.layout = fleet.layout;
  cfg.warmup_ticks = churn.warmup;
  cfg.measure_ticks = churn.measure;
  cfg.churn_probability = churn.probability;
  cfg.demand_quantum = util::Watts{churn.demand_quantum_w};
  cfg.incremental_control = incremental;
  cfg.threads = 0;  // sim phases on all cores; the controller phase is serial
  return cfg;
}

struct Measured {
  double controller_seconds = 0.0;  ///< post-warmup Controller::tick() total
  std::uint64_t controller_ticks = 0;
  double checksum = 0.0;
};

Measured run_once(const Fleet& fleet, const Churn& churn, bool incremental) {
  sim::Simulation simulation(sweep_config(fleet, churn, incremental));
  const auto result = simulation.run();
  Measured m;
  for (const auto& t : result.metrics.timers) {
    if (t.name == "sim.phase.controller.measured") {
      m.controller_seconds = t.total_seconds;
      m.controller_ticks = t.count;
    }
  }
  m.checksum = result.total_power.stats().sum() + result.max_temperature_c +
               static_cast<double>(result.churn_departures) +
               static_cast<double>(result.controller_stats.total_migrations());
  return m;
}

int run(int argc, char** argv) {
  std::vector<Fleet> fleets{
      {"servers_1k", {5, 10, 20}},
      {"servers_10k", {10, 25, 40}},
      {"servers_100k", {20, 50, 100}, /*low_churn_warmup=*/160},
  };
  // Low churn holds demand bitwise-constant (quantum 0), so once the thermal
  // plant reaches its bitwise fixed point (~650 ticks at the paper's cooling
  // rate) the steady-state tick does no re-aggregation at all — the warmup
  // must cover that settling horizon or the "steady state" still re-rolls
  // thermal limits every tick.  Medium/high keep Poisson demand plus
  // workload churn, where the dirty set stays large — those guard the
  // regression bound rather than showcase skipping.
  std::vector<Churn> churns{
      {"low", 0.0, 0.0, 720, 60},
      {"medium", 0.02, 1.0, 40, 60},
      {"high", 0.2, 1.0, 40, 60},
  };
  const bool quick = argc > 2 && std::string(argv[2]) == "--quick";
  if (quick) fleets.pop_back();  // skip the 100k sweep in smoke runs

  std::vector<PerfPoint> points;
  util::Table table({"fleet", "churn", "mode", "ctl_ms_per_tick", "speedup"});
  table.set_precision(4);
  bool deterministic = true;
  double speedup_10k_low = 0.0;
  double worst_high_churn = std::numeric_limits<double>::infinity();
  for (const auto& fleet : fleets) {
    for (const auto& churn : churns) {
      Churn regime = churn;
      if (regime.name == "low") regime.warmup = fleet.low_churn_warmup;
      const Measured full = run_once(fleet, regime, /*incremental=*/false);
      const Measured inc = run_once(fleet, regime, /*incremental=*/true);
      if (full.checksum != inc.checksum) {
        std::cerr << "ERROR: " << fleet.name << "/" << churn.name
                  << ": incremental run diverged from full recompute\n";
        deterministic = false;
      }
      const double speedup = inc.controller_seconds > 0.0
                                 ? full.controller_seconds /
                                       inc.controller_seconds
                                 : 1.0;
      if (fleet.name == "servers_10k" && churn.name == "low") {
        speedup_10k_low = speedup;
      }
      if (churn.name == "high") {
        worst_high_churn = std::min(worst_high_churn, speedup);
      }
      for (const bool is_inc : {false, true}) {
        const Measured& m = is_inc ? inc : full;
        PerfPoint p;
        p.scenario = fleet.name + "/" + churn.name + "/" +
                     (is_inc ? "incremental" : "full");
        p.servers = fleet.layout.total_servers();
        p.threads = 0;
        p.ticks = static_cast<long>(m.controller_ticks);
        p.wall_seconds = m.controller_seconds;
        p.ticks_per_second =
            m.controller_seconds > 0.0
                ? static_cast<double>(m.controller_ticks) /
                      m.controller_seconds
                : 0.0;
        p.speedup_vs_serial = is_inc ? speedup : 1.0;
        points.push_back(p);
        table.row()
            .add(fleet.name)
            .add(churn.name)
            .add(is_inc ? "incremental" : "full")
            .add(m.controller_ticks > 0
                     ? 1e3 * m.controller_seconds /
                           static_cast<double>(m.controller_ticks)
                     : 0.0)
            .add(p.speedup_vs_serial);
      }
    }
  }

  std::cout << "== controller scaling (post-warmup controller wall time) ==\n";
  table.print(std::cout);
  if (!deterministic) return 1;
  std::cout << "(results identical between full and incremental modes)\n";
  std::cout << "steady-state speedup at 10k servers, low churn: "
            << speedup_10k_low << "x\n";
  std::cout << "worst high-churn speedup: " << worst_high_churn << "x\n";

  const std::string path = argc > 1 ? argv[1] : "BENCH_controller_scaling.json";
  if (!write_perf_json(path, "controller_scaling", points)) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  std::cout << "(json written to " << path << ")\n";
  return 0;
}

}  // namespace
}  // namespace willow::bench

int main(int argc, char** argv) { return willow::bench::run(argc, argv); }
