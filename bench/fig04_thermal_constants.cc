// Figure 4 — "Setting up the thermal constants".
//
// For candidate (c1, c2) pairs, the maximum power accommodatable over one
// adjustment window as a function of the component's current temperature, at
// ambient 25 degC and 45 degC.  The paper picks (0.08, 0.05) because the
// cold-start limit lands near the 450 W device rating, and notes that at
// Ta = 45 degC a component already at the 70 degC limit presents almost no
// surplus.
#include <iostream>

#include "common.h"
#include "thermal/calibration.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  const double c1s[] = {0.04, 0.08, 0.16};
  const double c2s[] = {0.025, 0.05, 0.1};
  const util::Seconds window{1.3};  // ~one adjustment window

  util::Table table({"c1", "c2", "Ta_degC", "T_degC", "P_limit_W"});
  std::vector<thermal::ThermalParams> candidates;
  for (double ta : {25.0, 45.0}) {
    for (double c1 : c1s) {
      for (double c2 : c2s) {
        thermal::ThermalParams p;
        p.c1 = c1;
        p.c2 = c2;
        p.ambient = util::Celsius{ta};
        p.limit = 70_degC;
        p.nameplate = util::Watts{1e9};  // show the raw thermal limit
        if (ta == 25.0) {
          auto rated = p;
          rated.nameplate = 450_W;
          candidates.push_back(rated);
        }
        const auto curve = thermal::power_limit_curve(
            p, util::Celsius{ta}, 70_degC, 4, window);
        for (const auto& pt : curve) {
          table.row()
              .add(c1)
              .add(c2)
              .add(ta)
              .add(pt.temperature.value())
              .add(pt.power_limit.value());
        }
      }
    }
  }
  bench::emit(table, argc, argv, "Fig. 4: P_limit vs temperature for candidate (c1, c2)");

  const std::size_t chosen = thermal::select_constants(candidates, window);
  std::cout << "Selected constants (closest cold-start limit to the 450 W "
               "rating): c1 = "
            << candidates[chosen].c1 << ", c2 = " << candidates[chosen].c2
            << " (paper: c1 = 0.08, c2 = 0.05)\n";
  return 0;
}
