// Data-plane scaling baseline: whole-tick throughput vs fleet size.
//
// Unlike perf_controller_scaling.cc (which isolates Controller::tick()),
// this bench measures the full simulation tick — demand refresh, fabric
// accounting, controller, thermal step and recording — via the
// `sim.phase.tick.measured` timer (post-warmup ticks only).  That is the
// number that collapsed superlinearly before the arena redesign: the
// record phase's level_balance walk was O(n^2) per tick and consolidation
// rescanned whole subtrees per candidate.
//
// Two regimes per fleet:
//   servers_Nk        settled: bitwise-constant demand (quantum 0), no
//                     churn — the steady state where throughput is highest
//                     and the committed baseline's best-of-fleet lives.
//   servers_Nk_churn  Poisson demand (quantum 1 W) + 2% workload churn —
//                     the dirty set stays large every tick; guards against
//                     optimizations that only help the settled case.
//
// threads=1 and ticks=100 to match the committed BENCH_dataplane_scaling
// baseline; scripts/check_bench_regression.sh compares best-of-fleet
// ticks-per-second keyed on the `servers` field, so scenario renames do
// not invalidate the baseline.
//
// Writes BENCH_dataplane_scaling.json (or argv[1]).  `--quick` skips the
// 100k fleet for smoke runs.
#include <iostream>
#include <string>
#include <vector>

#include "common.h"

namespace willow::bench {
namespace {

struct Fleet {
  std::string name;
  sim::DatacenterLayout layout;
  /// Settled-regime warmup: the steady state needs the thermal plant at its
  /// bitwise fixed point (~650 ticks at the paper's cooling rate).  The
  /// largest fleet measures the late transient instead to keep wall time
  /// bounded — demand-side settling is already in effect there.
  long settled_warmup = 720;
};

struct Regime {
  std::string suffix;        ///< appended to the fleet name ("" = settled)
  double churn_probability;
  double demand_quantum_w;   ///< 0 = deterministic constant demand
  long warmup;
  long measure;
};

struct Measured {
  double tick_seconds = 0.0;  ///< post-warmup whole-tick wall total
  std::uint64_t ticks = 0;
};

Measured run_once(const Fleet& fleet, const Regime& regime) {
  auto cfg = paper_sim_config(0.5, /*seed=*/4242);
  cfg.datacenter.layout = fleet.layout;
  cfg.warmup_ticks = regime.warmup;
  cfg.measure_ticks = regime.measure;
  cfg.churn_probability = regime.churn_probability;
  cfg.demand_quantum = util::Watts{regime.demand_quantum_w};
  cfg.threads = 1;  // the baseline is a serial tick; see BENCH json
  sim::Simulation simulation(cfg);
  const auto result = simulation.run();
  Measured m;
  for (const auto& t : result.metrics.timers) {
    if (t.name == "sim.phase.tick.measured") {
      m.tick_seconds = t.total_seconds;
      m.ticks = t.count;
    }
  }
  return m;
}

int run(int argc, char** argv) {
  std::vector<Fleet> fleets{
      {"servers_1k", {5, 10, 20}},
      {"servers_10k", {10, 25, 40}},
      {"servers_100k", {20, 50, 100}, /*settled_warmup=*/160},
  };
  const std::vector<Regime> regimes{
      {"", 0.0, 0.0, /*warmup=*/720, /*measure=*/100},
      {"_churn", 0.02, 1.0, /*warmup=*/40, /*measure=*/100},
  };
  const bool quick = argc > 2 && std::string(argv[2]) == "--quick";
  if (quick) fleets.pop_back();  // skip the 100k sweep in smoke runs

  std::vector<PerfPoint> points;
  util::Table table({"scenario", "servers", "ms_per_tick", "ticks_per_sec"});
  table.set_precision(4);
  for (const auto& fleet : fleets) {
    for (const auto& regime : regimes) {
      Regime r = regime;
      if (r.suffix.empty()) r.warmup = fleet.settled_warmup;
      const Measured m = run_once(fleet, r);
      PerfPoint p;
      p.scenario = fleet.name + r.suffix;
      p.servers = fleet.layout.total_servers();
      p.threads = 1;
      p.ticks = static_cast<long>(m.ticks);
      p.wall_seconds = m.tick_seconds;
      p.ticks_per_second =
          m.tick_seconds > 0.0
              ? static_cast<double>(m.ticks) / m.tick_seconds
              : 0.0;
      points.push_back(p);
      table.row()
          .add(p.scenario)
          .add(static_cast<double>(p.servers))
          .add(m.ticks > 0
                   ? 1e3 * m.tick_seconds / static_cast<double>(m.ticks)
                   : 0.0)
          .add(p.ticks_per_second);
      std::cout << "  measured " << p.scenario << ": " << p.ticks_per_second
                << " ticks/s\n";
    }
  }

  std::cout << "== data-plane scaling (post-warmup whole-tick wall time) ==\n";
  table.print(std::cout);

  const std::string path = argc > 1 ? argv[1] : "BENCH_dataplane_scaling.json";
  if (!write_perf_json(path, "dataplane_scaling", points)) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  std::cout << "(json written to " << path << ")\n";
  return 0;
}

}  // namespace
}  // namespace willow::bench

int main(int argc, char** argv) { return willow::bench::run(argc, argv); }
