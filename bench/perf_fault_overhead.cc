// Fault-plane overhead guard: armed-but-silent faults must be free.
//
// Times the tick loop twice on the same 200-server scenario: once with the
// fault subsystem fully disabled (no FaultPlane, no LinkFaultModel, no
// degraded-mode loops), and once "armed" — every fault source configured so
// all hooks are installed (per-link verdict draws, per-server fault sampling,
// stale/fallback sweeps, a scripted crash) but with probabilities of 1e-9 and
// the crash scheduled far past the end of the run, so nothing ever fires.
// The armed run must stay within 2% of the disabled run (plus a small
// absolute allowance for timer noise), and its result checksum must match
// bitwise — proving silent arming does not perturb the control trace.
// Writes BENCH_fault_overhead.json (or argv[1]) via bench::write_perf_json.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

namespace willow::bench {
namespace {

sim::SimConfig base_config(std::size_t threads) {
  auto cfg = paper_sim_config(0.7, /*seed=*/12345);
  cfg.datacenter.layout = {2, 10, 10};  // 200 servers
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 45;
  cfg.churn_probability = 0.08;
  cfg.threads = threads;
  return cfg;
}

void arm_faults(sim::SimConfig& cfg) {
  // Every hook installed, nothing fires: 1e-9 per-draw probabilities are
  // deterministic under the fixed seed (the checksum check below would catch
  // a draw landing under them), and the scripted crash sits past the horizon.
  constexpr double kSilent = 1e-9;
  cfg.faults.link.up_loss = kSilent;
  cfg.faults.link.up_delay = kSilent;
  cfg.faults.link.up_duplicate = kSilent;
  cfg.faults.link.down_loss = kSilent;
  cfg.faults.link.down_duplicate = kSilent;
  cfg.faults.power_sensor.stuck_probability = kSilent;
  cfg.faults.power_sensor.bias_probability = kSilent;
  cfg.faults.power_sensor.dropout_probability = kSilent;
  cfg.faults.temp_sensor.stuck_probability = kSilent;
  cfg.faults.temp_sensor.bias_probability = kSilent;
  cfg.faults.temp_sensor.dropout_probability = kSilent;
  cfg.faults.crash_probability = kSilent;
  cfg.faults.crash_events.push_back({/*tick=*/1'000'000, 0, 0, 10});
  cfg.controller.stale_timeout_ticks = 3;  // arms the degraded-mode sweeps
}

double time_run(bool armed, std::size_t threads, int reps, double* checksum) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto cfg = base_config(threads);
    if (armed) arm_faults(cfg);
    sim::Simulation simulation(std::move(cfg));
    const auto start = std::chrono::steady_clock::now();
    const auto result = simulation.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
    *checksum = result.total_power.stats().sum() + result.max_temperature_c +
                static_cast<double>(result.controller_stats.total_migrations());
  }
  return best;
}

int run(int argc, char** argv) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t threads = std::min<std::size_t>(4, hw);
  const long ticks = base_config(threads).warmup_ticks +
                     base_config(threads).measure_ticks;

  double off_checksum = 0.0;
  double armed_checksum = 0.0;
  const double off_s = time_run(false, threads, /*reps=*/3, &off_checksum);
  const double armed_s = time_run(true, threads, /*reps=*/3, &armed_checksum);
  const double overhead = off_s > 0.0 ? armed_s / off_s - 1.0 : 0.0;

  std::cout << "== fault-plane overhead (200 servers, threads=" << threads
            << ") ==\n"
            << "faults disabled:     " << off_s << " s\n"
            << "armed but silent:    " << armed_s << " s ("
            << overhead * 100.0 << " % vs disabled)\n";

  if (armed_checksum != off_checksum) {
    std::cerr << "ERROR: armed-but-silent run diverged from fault-free run ("
              << armed_checksum << " vs " << off_checksum << ")\n";
    return 1;
  }
  std::cout << "(armed run bit-identical to fault-free run)\n";
  if (armed_s > off_s * 1.02 + 0.05) {
    std::cerr << "ERROR: silent fault-plane overhead exceeds 2%\n";
    return 1;
  }

  std::vector<PerfPoint> points;
  for (const auto& [name, wall] :
       {std::pair<std::string, double>{"fault_off", off_s},
        std::pair<std::string, double>{"fault_armed", armed_s}}) {
    PerfPoint p;
    p.scenario = name;
    p.servers = 200;
    p.threads = threads;
    p.ticks = ticks;
    p.wall_seconds = wall;
    p.ticks_per_second = static_cast<double>(ticks) / wall;
    p.speedup_vs_serial = 1.0;
    points.push_back(p);
  }
  const std::string path = argc > 1 ? argv[1] : "BENCH_fault_overhead.json";
  if (!write_perf_json(path, "fault_overhead", points)) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  std::cout << "(json written to " << path << ")\n";
  return 0;
}

}  // namespace
}  // namespace willow::bench

int main(int argc, char** argv) { return willow::bench::run(argc, argv); }
