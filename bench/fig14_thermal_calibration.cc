// Figure 14 — experimental estimation of the thermal constants.
//
// Reproduces the paper's procedure: run a known power schedule on the
// emulated server, record the (noisy) temperature sensor, least-squares fit
// the RC model, and plot max accommodatable power vs (Ta - T).  The paper's
// fitted values are c1 = 0.2, c2 = 0.008; our calibrator recovers them from
// traces generated with those constants as ground truth (the plant itself
// runs on stabilized constants — see testbed.h for why).
#include <iostream>

#include "common.h"
#include "thermal/calibration.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  const auto truth = testbed::paper_fitted_thermal_params();
  const auto trace = thermal::synthesize_trace(
      truth, {20_W, 50_W, 80_W, 40_W, 65_W}, 8_s, util::Seconds{0.5}, 0.2, 77);
  const auto fit = thermal::fit_thermal_constants(trace, truth.ambient);
  std::cout << "fitted c1 = " << fit.c1 << " (paper: 0.2), c2 = " << fit.c2
            << " (paper: 0.008), rms residual = " << fit.rms_residual
            << " over " << fit.samples << " samples\n";

  // The Fig.-14 line: max power vs (Ta - T) using the fitted constants.
  thermal::ThermalParams fitted = truth;
  fitted.c1 = fit.c1;
  fitted.c2 = fit.c2;
  const auto curve = thermal::power_limit_curve(fitted, 25_degC, 70_degC, 10,
                                                util::Seconds{1.0});
  util::Table table({"Ta_minus_T_degC", "max_power_W"});
  for (const auto& pt : curve) {
    table.row().add(pt.delta_ambient.value()).add(pt.power_limit.value());
  }
  bench::emit(table, argc, argv,
              "Fig. 14: max accommodatable power vs (Ta - T), fitted constants");
  return 0;
}
