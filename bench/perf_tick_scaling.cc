// Perf baseline for the parallel tick engine: servers x threads scaling.
//
// Sweeps datacenter size against tick-engine thread count and times the tick
// loop (Simulation::run(), construction excluded).  Every configuration of a
// scenario produces bit-identical SimResults — the engine's determinism
// guarantee — so only wall time varies; the sanity check below asserts it on
// the measured runs.  Writes the sweep to BENCH_tick_scaling.json (or
// argv[1]) via bench::write_perf_json for CI to record.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "obs/sink.h"

namespace willow::bench {
namespace {

struct Scenario {
  std::string name;
  sim::DatacenterLayout layout;
  long warmup_ticks = 5;
  long measure_ticks = 45;
  int reps = 2;
};

sim::SimConfig scaling_config(const Scenario& sc, std::size_t threads) {
  auto cfg = paper_sim_config(0.7, /*seed=*/12345);
  cfg.datacenter.layout = sc.layout;
  cfg.warmup_ticks = sc.warmup_ticks;
  cfg.measure_ticks = sc.measure_ticks;
  cfg.churn_probability = 0.08;        // exercise the per-server churn streams
  cfg.report_loss_probability = 0.02;  // and the fault streams
  cfg.threads = threads;
  return cfg;
}

/// Wall time of the tick loop, best of `reps` fresh runs (run() is
/// single-shot, so each rep rebuilds the plant outside the timed region).
double time_tick_loop(const Scenario& sc, std::size_t threads, int reps,
                      double* checksum) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    sim::Simulation simulation(scaling_config(sc, threads));
    const auto start = std::chrono::steady_clock::now();
    const auto result = simulation.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
    // Cheap determinism fingerprint: identical across reps and thread counts.
    *checksum = result.total_power.stats().sum() + result.max_temperature_c +
                static_cast<double>(result.churn_departures);
  }
  return best;
}

int run(int argc, char** argv) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // Fixed sweep regardless of the host: the scaling gate keys on the
  // threads=1 vs threads=4 pair, and oversubscribed points are exactly the
  // regime the batch engine must keep harmless (they document the cost of a
  // misconfigured threads knob).
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  // 200/1000 servers mostly measure fan-out overhead (ticks are far shorter
  // than a wake/join round-trip pays for); the 10k fleet is where per-tick
  // work can amortize the fan-out and the gate demands parallel payoff.
  const std::vector<Scenario> scenarios{
      {"servers_200", {2, 10, 10}, 5, 45, 2},
      {"servers_1000", {5, 10, 20}, 5, 45, 2},
      {"servers_10000", {10, 25, 40}, 3, 22, 2},
  };

  std::vector<PerfPoint> points;
  util::Table table(
      {"scenario", "servers", "threads", "wall_s", "ticks_per_s", "speedup"});
  bool deterministic = true;
  for (const auto& sc : scenarios) {
    double serial_s = 0.0;
    double serial_checksum = 0.0;
    for (std::size_t t : thread_counts) {
      const auto cfg = scaling_config(sc, t);
      const long ticks = cfg.warmup_ticks + cfg.measure_ticks;
      double checksum = 0.0;
      const double wall = time_tick_loop(sc, t, sc.reps, &checksum);
      if (t == 1) {
        serial_s = wall;
        serial_checksum = checksum;
      } else if (checksum != serial_checksum) {
        deterministic = false;
      }
      PerfPoint p;
      p.scenario = sc.name;
      p.servers = sc.layout.total_servers();
      p.threads = t;
      p.ticks = ticks;
      p.wall_seconds = wall;
      p.ticks_per_second = static_cast<double>(ticks) / wall;
      p.speedup_vs_serial = serial_s / wall;
      points.push_back(p);
      table.row()
          .add(p.scenario)
          .add(p.servers)
          .add(p.threads)
          .add(p.wall_seconds)
          .add(p.ticks_per_second)
          .add(p.speedup_vs_serial);
    }
  }

  std::cout << "== tick-engine scaling (tick-loop wall time) ==\n";
  table.print(std::cout);
  if (!deterministic) {
    std::cerr << "ERROR: results differ across thread counts\n";
    return 1;
  }
  std::cout << "(results bit-identical across thread counts)\n";

  // Tracing-off overhead guard.  With the event bus wired but no sinks
  // attached (the default), every emission site reduces to a branch; compare
  // against a run with the bus detached outright and require the difference
  // to stay within 2% (plus a small absolute allowance for timer noise).
  // A tracing-on run with a counting sink is timed for information only.
  {
    const auto& sc = scenarios.front();
    const std::size_t threads = std::min<std::size_t>(4, hw);
    auto time_run = [&](bool detach_bus, bool counting_sink) {
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < 3; ++r) {
        auto cfg = scaling_config(sc, threads);
        if (counting_sink) {
          cfg.sinks.push_back(std::make_shared<obs::CountingSink>());
        }
        sim::Simulation simulation(std::move(cfg));
        if (detach_bus) {
          simulation.controller().set_event_bus(nullptr);
          simulation.datacenter().cluster.set_event_bus(nullptr);
        }
        const auto start = std::chrono::steady_clock::now();
        simulation.run();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
      }
      return best;
    };
    const double detached_s = time_run(true, false);
    const double off_s = time_run(false, false);
    const double on_s = time_run(false, true);
    const double overhead = detached_s > 0.0 ? off_s / detached_s - 1.0 : 0.0;
    std::cout << "== observability overhead (" << sc.name << ", threads="
              << threads << ") ==\n"
              << "bus detached:       " << detached_s << " s\n"
              << "tracing off:        " << off_s << " s ("
              << overhead * 100.0 << " % vs detached)\n"
              << "tracing on (count): " << on_s << " s\n";
    if (off_s > detached_s * 1.02 + 0.05) {
      std::cerr << "ERROR: tracing-off overhead exceeds 2%\n";
      return 1;
    }
  }

  const std::string path = argc > 1 ? argv[1] : "BENCH_tick_scaling.json";
  if (!write_perf_json(path, "tick_scaling", points)) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  std::cout << "(json written to " << path << ")\n";
  return 0;
}

}  // namespace
}  // namespace willow::bench

int main(int argc, char** argv) { return willow::bench::run(argc, argv); }
