// Figure 6 — average server temperature vs utilization with the hot zone.
//
// Expected shape: at low utilization the hot-zone servers sit close to their
// 40 degC ambient; the hot/cold gap narrows as utilization grows and every
// server warms toward the (never violated) 70 degC limit.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  util::Table table({"utilization_%", "cold_avg_degC", "hot_avg_degC",
                     "gap_degC", "max_degC"});
  for (double u : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    util::RunningStats cold, hot;
    double max_temp = 0.0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      const auto r =
          sim::run_simulation(bench::hot_zone_sim_config(u, seed));
      for (int i = 0; i < 14; ++i)
        cold.add(r.server_metrics(r.server_nodes[i]).temperature.mean());
      for (int i = 14; i < 18; ++i)
        hot.add(r.server_metrics(r.server_nodes[i]).temperature.mean());
      max_temp = std::max(max_temp, r.max_temperature_c);
    }
    table.row()
        .add(u * 100.0)
        .add(cold.mean())
        .add(hot.mean())
        .add(hot.mean() - cold.mean())
        .add(max_temp);
  }
  bench::emit(table, argc, argv,
              "Fig. 6: average server temperature vs utilization");
  return 0;
}
