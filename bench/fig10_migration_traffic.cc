// Figure 10 — migration traffic in the switches normalized to the maximum
// network traffic, vs utilization (uniform ambient).
//
// Expected shape: traffic rises with utilization, peaks in the middle of the
// range (where demand- and consolidation-driven migrations overlap), then
// shrinks at very high utilization because no server has surplus left to
// accept anyone else's workload.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                   0.7, 0.8, 0.9, 0.95};
  const auto sweep = bench::utilization_sweep(points, /*hot_zone=*/false);
  util::Table table({"utilization_%", "normalized_migration_traffic"});
  table.set_precision(5);
  for (const auto& p : sweep) {
    table.row().add(p.utilization * 100.0).add(p.normalized_migration_traffic);
  }
  bench::emit(table, argc, argv,
              "Fig. 10: migration traffic normalized to max network traffic");
  return 0;
}
