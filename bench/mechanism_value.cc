// Extension bench — what each Willow mechanism is worth.
//
// Runs the same deficient, fluctuating scenario with mechanisms disabled one
// at a time and compares served demand, drops, and fleet power:
//   full Willow            everything on
//   no locality            single global matching at the root
//   no consolidation       idle servers never sleep
//   no migrations          shedding is the only tool (margin set above any
//                          possible surplus)
// Expected: dropping mechanisms monotonically degrades served demand and/or
// energy (consolidation mostly buys power, migrations mostly buy service).
#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  struct Variant {
    const char* name;
    void (*tweak)(sim::SimConfig&);
  };
  const Variant variants[] = {
      {"full Willow", [](sim::SimConfig&) {}},
      {"no locality",
       [](sim::SimConfig& cfg) { cfg.controller.prefer_local = false; }},
      {"no consolidation",
       [](sim::SimConfig& cfg) { cfg.controller.consolidation_threshold = 0.0; }},
      {"no migrations",
       [](sim::SimConfig& cfg) { cfg.controller.margin = util::Watts{1e6}; }},
  };

  util::Table table({"variant", "migrations", "drops", "dropped_W",
                     "revivals", "asleep_servers", "mean_power_W",
                     "mean_imbalance_W"});
  for (const auto& v : variants) {
    double migrations = 0, drops = 0, dropped_w = 0, revivals = 0;
    double asleep = 0, power = 0, imbalance = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::hot_zone_sim_config(0.6, seed);
      // Fluctuating, mildly deficient supply.
      cfg.supply = std::make_shared<power::SinusoidSupply>(
          util::Watts{28.125 * 18.0 * 0.85}, util::Watts{28.125 * 18.0 * 0.15},
          1_s * 20.0);
      v.tweak(cfg);
      const auto r = sim::run_simulation(std::move(cfg));
      migrations += static_cast<double>(r.controller_stats.total_migrations());
      drops += static_cast<double>(r.controller_stats.drops);
      dropped_w += r.controller_stats.dropped_demand.value();
      revivals += static_cast<double>(r.controller_stats.revivals);
      for (const auto& s : r.servers) asleep += s.asleep_fraction;
      power += r.total_power.stats().mean();
      imbalance += r.imbalance.stats().mean();
    }
    table.row()
        .add(v.name)
        .add(migrations / 3.0)
        .add(drops / 3.0)
        .add(dropped_w / 3.0)
        .add(revivals / 3.0)
        .add(asleep / 3.0)
        .add(power / 3.0)
        .add(imbalance / 3.0);
  }
  bench::emit(table, argc, argv, "Extension: value of each Willow mechanism");
  return 0;
}
