file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_migration_latency.dir/ablation_migration_latency.cc.o"
  "CMakeFiles/bench_ablation_migration_latency.dir/ablation_migration_latency.cc.o.d"
  "bench_ablation_migration_latency"
  "bench_ablation_migration_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_migration_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
