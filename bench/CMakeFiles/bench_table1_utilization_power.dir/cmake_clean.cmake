file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_utilization_power.dir/table1_utilization_power.cc.o"
  "CMakeFiles/bench_table1_utilization_power.dir/table1_utilization_power.cc.o.d"
  "bench_table1_utilization_power"
  "bench_table1_utilization_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_utilization_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
