file(REMOVE_RECURSE
  "CMakeFiles/bench_mechanism_value.dir/mechanism_value.cc.o"
  "CMakeFiles/bench_mechanism_value.dir/mechanism_value.cc.o.d"
  "bench_mechanism_value"
  "bench_mechanism_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanism_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
