# Empty dependencies file for bench_mechanism_value.
# This may be replaced when dependencies are built.
