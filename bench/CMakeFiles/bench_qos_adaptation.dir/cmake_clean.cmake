file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_adaptation.dir/qos_adaptation.cc.o"
  "CMakeFiles/bench_qos_adaptation.dir/qos_adaptation.cc.o.d"
  "bench_qos_adaptation"
  "bench_qos_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
