# Empty dependencies file for bench_qos_adaptation.
# This may be replaced when dependencies are built.
