file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_thermal_constants.dir/fig04_thermal_constants.cc.o"
  "CMakeFiles/bench_fig04_thermal_constants.dir/fig04_thermal_constants.cc.o.d"
  "bench_fig04_thermal_constants"
  "bench_fig04_thermal_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_thermal_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
