# Empty compiler generated dependencies file for bench_fig04_thermal_constants.
# This may be replaced when dependencies are built.
