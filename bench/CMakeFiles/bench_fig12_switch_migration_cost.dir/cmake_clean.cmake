file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_switch_migration_cost.dir/fig12_switch_migration_cost.cc.o"
  "CMakeFiles/bench_fig12_switch_migration_cost.dir/fig12_switch_migration_cost.cc.o.d"
  "bench_fig12_switch_migration_cost"
  "bench_fig12_switch_migration_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_switch_migration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
