# Empty compiler generated dependencies file for bench_fig12_switch_migration_cost.
# This may be replaced when dependencies are built.
