file(REMOVE_RECURSE
  "CMakeFiles/willow_bench_common.dir/common.cc.o"
  "CMakeFiles/willow_bench_common.dir/common.cc.o.d"
  "libwillow_bench_common.a"
  "libwillow_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
