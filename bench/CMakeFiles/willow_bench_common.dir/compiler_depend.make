# Empty compiler generated dependencies file for willow_bench_common.
# This may be replaced when dependencies are built.
