file(REMOVE_RECURSE
  "libwillow_bench_common.a"
)
