# Empty dependencies file for bench_perf_tick_scaling.
# This may be replaced when dependencies are built.
