file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_tick_scaling.dir/perf_tick_scaling.cc.o"
  "CMakeFiles/bench_perf_tick_scaling.dir/perf_tick_scaling.cc.o.d"
  "bench_perf_tick_scaling"
  "bench_perf_tick_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_tick_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
