# Empty compiler generated dependencies file for bench_table2_application_profiles.
# This may be replaced when dependencies are built.
