file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_application_profiles.dir/table2_application_profiles.cc.o"
  "CMakeFiles/bench_table2_application_profiles.dir/table2_application_profiles.cc.o.d"
  "bench_table2_application_profiles"
  "bench_table2_application_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_application_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
