# Empty compiler generated dependencies file for bench_fig11_switch_power.
# This may be replaced when dependencies are built.
