file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_switch_power.dir/fig11_switch_power.cc.o"
  "CMakeFiles/bench_fig11_switch_power.dir/fig11_switch_power.cc.o.d"
  "bench_fig11_switch_power"
  "bench_fig11_switch_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_switch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
