file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_power_vs_utilization.dir/fig05_power_vs_utilization.cc.o"
  "CMakeFiles/bench_fig05_power_vs_utilization.dir/fig05_power_vs_utilization.cc.o.d"
  "bench_fig05_power_vs_utilization"
  "bench_fig05_power_vs_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_power_vs_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
