# Empty compiler generated dependencies file for bench_fig05_power_vs_utilization.
# This may be replaced when dependencies are built.
