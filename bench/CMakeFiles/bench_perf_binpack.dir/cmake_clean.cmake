file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_binpack.dir/perf_binpack.cc.o"
  "CMakeFiles/bench_perf_binpack.dir/perf_binpack.cc.o.d"
  "bench_perf_binpack"
  "bench_perf_binpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
