# Empty dependencies file for bench_perf_binpack.
# This may be replaced when dependencies are built.
