file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc_traffic.dir/ipc_traffic.cc.o"
  "CMakeFiles/bench_ipc_traffic.dir/ipc_traffic.cc.o.d"
  "bench_ipc_traffic"
  "bench_ipc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
