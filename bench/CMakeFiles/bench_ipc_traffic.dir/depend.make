# Empty dependencies file for bench_ipc_traffic.
# This may be replaced when dependencies are built.
