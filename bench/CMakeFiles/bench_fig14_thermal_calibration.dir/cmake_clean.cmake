file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_thermal_calibration.dir/fig14_thermal_calibration.cc.o"
  "CMakeFiles/bench_fig14_thermal_calibration.dir/fig14_thermal_calibration.cc.o.d"
  "bench_fig14_thermal_calibration"
  "bench_fig14_thermal_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_thermal_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
