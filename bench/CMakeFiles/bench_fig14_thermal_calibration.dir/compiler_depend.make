# Empty compiler generated dependencies file for bench_fig14_thermal_calibration.
# This may be replaced when dependencies are built.
