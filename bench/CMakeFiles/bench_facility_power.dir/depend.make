# Empty dependencies file for bench_facility_power.
# This may be replaced when dependencies are built.
