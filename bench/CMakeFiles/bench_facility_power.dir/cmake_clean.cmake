file(REMOVE_RECURSE
  "CMakeFiles/bench_facility_power.dir/facility_power.cc.o"
  "CMakeFiles/bench_facility_power.dir/facility_power.cc.o.d"
  "bench_facility_power"
  "bench_facility_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_facility_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
