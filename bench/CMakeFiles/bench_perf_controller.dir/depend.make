# Empty dependencies file for bench_perf_controller.
# This may be replaced when dependencies are built.
