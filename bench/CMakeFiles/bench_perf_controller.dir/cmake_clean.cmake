file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_controller.dir/perf_controller.cc.o"
  "CMakeFiles/bench_perf_controller.dir/perf_controller.cc.o.d"
  "bench_perf_controller"
  "bench_perf_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
