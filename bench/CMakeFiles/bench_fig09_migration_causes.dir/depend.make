# Empty dependencies file for bench_fig09_migration_causes.
# This may be replaced when dependencies are built.
