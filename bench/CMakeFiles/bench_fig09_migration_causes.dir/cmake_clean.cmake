file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_migration_causes.dir/fig09_migration_causes.cc.o"
  "CMakeFiles/bench_fig09_migration_causes.dir/fig09_migration_causes.cc.o.d"
  "bench_fig09_migration_causes"
  "bench_fig09_migration_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_migration_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
