file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shedding.dir/ablation_shedding.cc.o"
  "CMakeFiles/bench_ablation_shedding.dir/ablation_shedding.cc.o.d"
  "bench_ablation_shedding"
  "bench_ablation_shedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
