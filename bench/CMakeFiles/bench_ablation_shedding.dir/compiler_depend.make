# Empty compiler generated dependencies file for bench_ablation_shedding.
# This may be replaced when dependencies are built.
