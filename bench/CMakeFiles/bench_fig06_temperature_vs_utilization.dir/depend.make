# Empty dependencies file for bench_fig06_temperature_vs_utilization.
# This may be replaced when dependencies are built.
