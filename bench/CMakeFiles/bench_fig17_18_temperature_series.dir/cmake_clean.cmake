file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_temperature_series.dir/fig17_18_temperature_series.cc.o"
  "CMakeFiles/bench_fig17_18_temperature_series.dir/fig17_18_temperature_series.cc.o.d"
  "bench_fig17_18_temperature_series"
  "bench_fig17_18_temperature_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_temperature_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
