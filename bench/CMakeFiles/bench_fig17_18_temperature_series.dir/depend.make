# Empty dependencies file for bench_fig17_18_temperature_series.
# This may be replaced when dependencies are built.
