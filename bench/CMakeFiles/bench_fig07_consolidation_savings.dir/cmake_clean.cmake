file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_consolidation_savings.dir/fig07_consolidation_savings.cc.o"
  "CMakeFiles/bench_fig07_consolidation_savings.dir/fig07_consolidation_savings.cc.o.d"
  "bench_fig07_consolidation_savings"
  "bench_fig07_consolidation_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_consolidation_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
