# Empty compiler generated dependencies file for bench_fig07_consolidation_savings.
# This may be replaced when dependencies are built.
