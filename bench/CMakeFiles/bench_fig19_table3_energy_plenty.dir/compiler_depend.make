# Empty compiler generated dependencies file for bench_fig19_table3_energy_plenty.
# This may be replaced when dependencies are built.
