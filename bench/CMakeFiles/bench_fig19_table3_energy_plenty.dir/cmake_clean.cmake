file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_table3_energy_plenty.dir/fig19_table3_energy_plenty.cc.o"
  "CMakeFiles/bench_fig19_table3_energy_plenty.dir/fig19_table3_energy_plenty.cc.o.d"
  "bench_fig19_table3_energy_plenty"
  "bench_fig19_table3_energy_plenty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_table3_energy_plenty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
