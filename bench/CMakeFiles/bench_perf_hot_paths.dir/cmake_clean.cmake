file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_hot_paths.dir/perf_hot_paths.cc.o"
  "CMakeFiles/bench_perf_hot_paths.dir/perf_hot_paths.cc.o.d"
  "bench_perf_hot_paths"
  "bench_perf_hot_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_hot_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
