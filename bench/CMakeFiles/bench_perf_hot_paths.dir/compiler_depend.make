# Empty compiler generated dependencies file for bench_perf_hot_paths.
# This may be replaced when dependencies are built.
