file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_smoothing.dir/ablation_smoothing.cc.o"
  "CMakeFiles/bench_ablation_smoothing.dir/ablation_smoothing.cc.o.d"
  "bench_ablation_smoothing"
  "bench_ablation_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
