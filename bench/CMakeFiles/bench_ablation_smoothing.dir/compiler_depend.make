# Empty compiler generated dependencies file for bench_ablation_smoothing.
# This may be replaced when dependencies are built.
