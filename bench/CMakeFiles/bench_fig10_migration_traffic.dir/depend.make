# Empty dependencies file for bench_fig10_migration_traffic.
# This may be replaced when dependencies are built.
