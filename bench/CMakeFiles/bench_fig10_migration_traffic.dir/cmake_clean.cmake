file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_migration_traffic.dir/fig10_migration_traffic.cc.o"
  "CMakeFiles/bench_fig10_migration_traffic.dir/fig10_migration_traffic.cc.o.d"
  "bench_fig10_migration_traffic"
  "bench_fig10_migration_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_migration_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
