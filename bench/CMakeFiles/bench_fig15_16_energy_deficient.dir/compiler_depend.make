# Empty compiler generated dependencies file for bench_fig15_16_energy_deficient.
# This may be replaced when dependencies are built.
