file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_energy_deficient.dir/fig15_16_energy_deficient.cc.o"
  "CMakeFiles/bench_fig15_16_energy_deficient.dir/fig15_16_energy_deficient.cc.o.d"
  "bench_fig15_16_energy_deficient"
  "bench_fig15_16_energy_deficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_energy_deficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
