file(REMOVE_RECURSE
  "CMakeFiles/bench_heat_wave.dir/heat_wave.cc.o"
  "CMakeFiles/bench_heat_wave.dir/heat_wave.cc.o.d"
  "bench_heat_wave"
  "bench_heat_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heat_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
