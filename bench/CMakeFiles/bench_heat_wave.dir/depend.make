# Empty dependencies file for bench_heat_wave.
# This may be replaced when dependencies are built.
