file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pmin.dir/ablation_pmin.cc.o"
  "CMakeFiles/bench_ablation_pmin.dir/ablation_pmin.cc.o.d"
  "bench_ablation_pmin"
  "bench_ablation_pmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
