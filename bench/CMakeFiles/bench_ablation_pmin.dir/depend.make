# Empty dependencies file for bench_ablation_pmin.
# This may be replaced when dependencies are built.
