// Ablation — the matching algorithm (Sec. IV-F).
//
// The paper picks FFDLR because repacking into the smallest bins runs
// servers at full utilization, freeing others for deactivation.  Compares
// against the other heuristics at a consolidation-friendly utilization:
// expected effect is FFDLR (and the decreasing heuristics) keeping more
// servers asleep than worst-fit, which levels load instead.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  struct Algo {
    binpack::Algorithm algorithm;
    const char* name;
  };
  const Algo algos[] = {
      {binpack::Algorithm::kFfdlr, "FFDLR (paper)"},
      {binpack::Algorithm::kFirstFit, "first-fit"},
      {binpack::Algorithm::kFirstFitDecreasing, "FFD"},
      {binpack::Algorithm::kBestFitDecreasing, "BFD"},
      {binpack::Algorithm::kWorstFitDecreasing, "worst-fit-decr"},
  };
  util::Table table({"algorithm", "asleep_server_ticks", "migrations",
                     "drops", "mean_total_power_W"});
  for (const auto& algo : algos) {
    double asleep = 0, migrations = 0, drops = 0, power = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::paper_sim_config(0.35, seed);
      cfg.controller.packing = algo.algorithm;
      const auto r = sim::run_simulation(std::move(cfg));
      for (const auto& s : r.servers) asleep += s.asleep_fraction;
      migrations += static_cast<double>(r.controller_stats.total_migrations());
      drops += static_cast<double>(r.controller_stats.drops);
      power += r.total_power.stats().mean();
    }
    table.row()
        .add(algo.name)
        .add(asleep / 3.0)
        .add(migrations / 3.0)
        .add(drops / 3.0)
        .add(power / 3.0);
  }
  bench::emit(table, argc, argv, "Ablation: bin-packing algorithm");
  return 0;
}
