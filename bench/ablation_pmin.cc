// Ablation — the migration margin P_min (Sec. IV-E, Property 4).
//
// Sweeps P_min and measures ping-pong re-migrations (an app moved again
// within 3 demand periods), total migrations, and dropped demand, under a
// supply that plunges periodically.  Expected: small margins admit tight
// placements that bounce; generous margins kill ping-pong at the cost of
// fewer accepted migrations (more demand dropped).
#include "common.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  util::Table table({"P_min_W", "migrations", "quick_remigrations", "drops",
                     "dropped_W"});
  for (double margin : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    double migrations = 0, remigrations = 0, drops = 0, dropped_w = 0;
    for (unsigned long long seed : {23ULL, 17ULL, 5ULL}) {
      auto cfg = bench::paper_sim_config(0.6, seed);
      cfg.controller.margin = util::Watts{margin};
      // Plunging supply: dips to 70% of the thermal envelope every 10 ticks.
      std::vector<util::Watts> levels;
      const double envelope = 28.125 * 18.0;
      for (int i = 0; i < 80; ++i) {
        levels.emplace_back(envelope * ((i / 10) % 2 == 0 ? 1.0 : 0.7));
      }
      cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
      const auto r = sim::run_simulation(std::move(cfg));
      migrations += static_cast<double>(r.controller_stats.total_migrations());
      remigrations += static_cast<double>(r.quick_remigrations);
      drops += static_cast<double>(r.controller_stats.drops);
      dropped_w += r.controller_stats.dropped_demand.value();
    }
    table.row()
        .add(margin)
        .add(migrations / 3.0)
        .add(remigrations / 3.0)
        .add(drops / 3.0)
        .add(dropped_w / 3.0);
  }
  bench::emit(table, argc, argv, "Ablation: migration margin P_min");
  return 0;
}
