// Table II — application power profiles: the measured increase in server
// power when each application runs alone (paper: A1 = 8 W, A2 = 10 W,
// A3 = 15 W).
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const auto rows = testbed::profile_applications();
  util::Table table({"application", "power_increase_W"});
  table.set_precision(1);
  for (const auto& [name, w] : rows) {
    table.row().add(name).add(w.value());
  }
  bench::emit(table, argc, argv, "Table II: application power profiles");
  return 0;
}
