// Figure 11 — power demand of the level-1 switches vs server utilization.
//
// Expected shape: switch power grows with utilization and is almost the same
// across the level-1 switches — the preference for local migrations spreads
// traffic evenly (the paper's observation).
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9};
  const auto sweep = bench::utilization_sweep(points, /*hot_zone=*/false);
  util::Table table({"utilization_%", "avg_switch_power_W",
                     "across_switch_stddev_W"});
  for (const auto& p : sweep) {
    table.row()
        .add(p.utilization * 100.0)
        .add(p.level1_switch_power_w)
        .add(p.level1_switch_power_stddev);
  }
  bench::emit(table, argc, argv, "Fig. 11: level-1 switch power demand");
  return 0;
}
