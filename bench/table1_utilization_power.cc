// Table I — testbed utilization vs average power consumed.
//
// The source text's numbers are illegible; the line is calibrated so the
// paper's own worked example holds exactly: three servers at (80, 40, 20)%
// draw ~580 W total and consolidating the third away saves ~27.5%
// (DESIGN.md, substitutions).  Values here come from the emulated 2 Hz
// power-analyzer sampling.
#include "common.h"

using namespace willow;

int main(int argc, char** argv) {
  const std::vector<double> utils{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const auto rows = testbed::table1_measurements(utils);
  util::Table table({"utilization_%", "avg_power_W"});
  table.set_precision(1);
  for (const auto& [u, w] : rows) {
    table.row().add(u * 100.0).add(w.value());
  }
  bench::emit(table, argc, argv, "Table I: utilization vs power consumption");
  return 0;
}
