// Scale: a 216-server datacenter (4 levels) runs the full control loop with
// invariants intact — the "large data centers" scalability claim of
// Section IV-A exercised beyond the paper's 18-server configuration.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

TEST(Scale, TwoHundredServersRunClean) {
  SimConfig cfg;
  cfg.datacenter.layout.zones = 4;
  cfg.datacenter.layout.racks_per_zone = 6;
  cfg.datacenter.layout.servers_per_rack = 9;  // 216 servers
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.55;
  // A plunge partway through keeps the planner busy.
  std::vector<util::Watts> levels;
  const double envelope = 28.125 * 216.0;
  for (int i = 0; i < 60; ++i) {
    levels.emplace_back(envelope * (i < 30 ? 0.95 : 0.75));
  }
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 55;
  cfg.seed = 11;

  Simulation sim(std::move(cfg));
  const auto r = sim.run();

  EXPECT_FALSE(r.thermal_violation);
  EXPECT_EQ(r.servers.size(), 216u);
  EXPECT_GT(r.controller_stats.total_migrations(), 0u);

  // Invariants at the end state.
  auto& cluster = sim.datacenter().cluster;
  const auto& tree = cluster.tree();
  EXPECT_EQ(tree.height(), 4);
  std::size_t hosted = 0;
  for (auto s : cluster.server_ids()) {
    const auto& srv = cluster.server(s);
    hosted += srv.apps().size();
    if (srv.asleep()) EXPECT_TRUE(srv.apps().empty());
  }
  EXPECT_GT(hosted, 0u);
  for (auto id : tree.all_nodes()) {
    const auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    double sum = 0.0;
    for (auto c : n.children()) sum += tree.node(c).budget().value();
    ASSERT_LE(sum, n.budget().value() + 1e-6);
  }
  // Property 3 held at scale: at most one report per ΔD per link (the
  // messaging is event-driven, so a period whose demand estimate did not
  // move sends nothing).
  for (auto id : tree.all_nodes()) {
    if (tree.node(id).is_root()) continue;
    EXPECT_GE(tree.node(id).link().up, 1u);
    EXPECT_LE(tree.node(id).link().up, 60u);
  }
}

TEST(Scale, WideFlatHierarchyAlsoWorks) {
  // One zone, two racks of 40: an unusually flat shape (high branching
  // factor) must not break the planner or the message accounting.
  SimConfig cfg;
  cfg.datacenter.layout.zones = 1;
  cfg.datacenter.layout.racks_per_zone = 2;
  cfg.datacenter.layout.servers_per_rack = 40;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.5;
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 25;
  cfg.seed = 13;
  const auto r = run_simulation(std::move(cfg));
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_EQ(r.servers.size(), 80u);
}

}  // namespace
}  // namespace willow::sim
