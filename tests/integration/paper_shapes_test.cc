// Cross-module integration: the qualitative shapes of the paper's evaluation
// (Sec. V-B) that span multiple utilization points.  These are the slowest
// tests; each runs several full simulations.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig hot_zone_config(double utilization, unsigned long long seed = 23) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.datacenter.ambient_overrides.assign(18, 25_degC);
  for (int i = 14; i < 18; ++i) cfg.datacenter.ambient_overrides[i] = 40_degC;
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 15;
  cfg.measure_ticks = 50;
  cfg.seed = seed;
  return cfg;
}

TEST(PaperShapes, Fig5PowerRisesWithUtilizationAndHotZoneLags) {
  double prev_cold = 0.0;
  for (double u : {0.2, 0.5, 0.8}) {
    auto r = run_simulation(hot_zone_config(u));
    double cold = 0.0, hot = 0.0;
    for (int i = 0; i < 14; ++i) cold += r.servers[i].consumed_power.mean();
    for (int i = 14; i < 18; ++i) hot += r.servers[i].consumed_power.mean();
    cold /= 14.0;
    hot /= 4.0;
    EXPECT_LT(hot, cold) << "u=" << u;
    EXPECT_GT(cold, prev_cold) << "u=" << u;  // power rises with utilization
    prev_cold = cold;
  }
}

TEST(PaperShapes, Fig6HotServersTrackTheirAmbientAtLowUtilization) {
  auto r = run_simulation(hot_zone_config(0.15));
  double hot = 0.0;
  for (int i = 14; i < 18; ++i) hot += r.servers[i].temperature.mean();
  hot /= 4.0;
  // "At low utilization levels the servers in the hot zones are maintained
  // at a temperature close to the ambient temperature of 40 C."
  EXPECT_NEAR(hot, 40.0, 5.0);
}

TEST(PaperShapes, Fig7HotZoneSavesMostFromConsolidation) {
  // At 40% utilization the paper reports "maximum power savings ... in the
  // last four servers" because Willow drains the hot zone first.
  auto r = run_simulation(hot_zone_config(0.4));
  double cold = 0.0, hot = 0.0;
  for (int i = 0; i < 14; ++i) cold += r.servers[i].saved_power_w;
  for (int i = 14; i < 18; ++i) hot += r.servers[i].saved_power_w;
  cold /= 14.0;
  hot /= 4.0;
  EXPECT_GE(hot, cold);
}

/// Uniform-ambient config (Sections V-B4/V-B5 do not use the hot zone).
SimConfig uniform_config(double utilization, unsigned long long seed) {
  auto cfg = hot_zone_config(utilization, seed);
  cfg.datacenter.ambient_overrides.clear();
  return cfg;
}

struct SweepPoint {
  double demand_migrations = 0.0;
  double consolidation_migrations = 0.0;
  double traffic = 0.0;
  double switch_cost = 0.0;
};

/// Average a utilization point over a few seeds (single runs are noisy).
SweepPoint sweep_point(double utilization) {
  SweepPoint p;
  const unsigned long long seeds[] = {23, 17, 5};
  for (auto seed : seeds) {
    auto r = run_simulation(uniform_config(utilization, seed));
    p.demand_migrations += r.measured_demand_migrations();
    p.consolidation_migrations += r.measured_consolidation_migrations();
    p.traffic += r.normalized_migration_traffic.stats().mean();
    for (const auto& s : r.level1_switches) p.switch_cost += s.migration_cost.mean();
  }
  p.demand_migrations /= 3.0;
  p.consolidation_migrations /= 3.0;
  p.traffic /= 3.0;
  p.switch_cost /= 3.0;
  return p;
}

TEST(PaperShapes, Fig9MigrationCausesCrossWithUtilization) {
  const auto low = sweep_point(0.15);
  const auto mid = sweep_point(0.7);
  const auto high = sweep_point(0.9);
  // Low utilization: consolidation-driven migrations dominate.
  EXPECT_GT(low.consolidation_migrations, low.demand_migrations);
  // Demand-driven migrations grow with utilization...
  EXPECT_GT(mid.demand_migrations, low.demand_migrations);
  // ...while consolidation-driven ones fall away at high utilization.
  EXPECT_LT(high.consolidation_migrations, low.consolidation_migrations);
}

TEST(PaperShapes, Fig10MigrationTrafficPeaksMidRangeThenShrinks) {
  // "the migrations are increasing with increase in utilization.  However at
  // high utilization levels the migration traffic is decreasing ... none of
  // the servers has a surplus to accommodate the workload".
  const auto low = sweep_point(0.1);
  const auto peak = sweep_point(0.7);
  const auto extreme = sweep_point(0.95);
  EXPECT_GT(peak.traffic, low.traffic);
  EXPECT_LT(extreme.traffic, peak.traffic + 1e-12);
}

TEST(PaperShapes, Fig11SwitchPowerRoughlyEqualAcrossLevel1) {
  // "the average power demand is almost the same in all the switches"
  // because local migrations spread traffic evenly.
  auto r = run_simulation(hot_zone_config(0.5));
  util::RunningStats per_switch;
  for (const auto& s : r.level1_switches) per_switch.add(s.power.mean());
  EXPECT_GT(per_switch.mean(), 0.0);
  // Coefficient of variation across switches stays moderate.
  EXPECT_LT(per_switch.stddev() / per_switch.mean(), 0.6);
}

TEST(PaperShapes, Fig12SwitchMigrationCostTracksMigrationTraffic) {
  // Fig. 12 "corresponds to the trend in total number of migrations ... in
  // Figure 10": the cost curve follows the traffic curve.
  const auto low = sweep_point(0.1);
  const auto peak = sweep_point(0.7);
  EXPECT_GT(peak.switch_cost, low.switch_cost);
}

TEST(PaperShapes, ImbalanceStaysBoundedUnderControl) {
  auto r = run_simulation(hot_zone_config(0.5));
  // Eq. (9) imbalance at the server level remains bounded (no runaway).
  EXPECT_LT(r.imbalance.stats().mean(), 450.0);
}

}  // namespace
}  // namespace willow::sim
