// Shadow-diff gate for the incremental control plane: every scenario runs
// once with the full per-tick recompute and once change-driven, and the two
// JSONL traces must be byte-identical.  The incremental runs also enable
// shadow mode, where the controller re-derives every value it skipped and
// throws on the first divergence — so a clean exit *is* the equivalence
// proof at every decision point, not just at the trace level.  Registered
// under the `shadow-diff` ctest label so the tsan gate can pick it up.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/sink.h"
#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization, unsigned long long seed) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = seed;
  return cfg;
}

struct TracedRun {
  std::string trace;
  SimResult result;
};

TracedRun traced_run(SimConfig cfg, bool incremental, std::size_t threads) {
  std::ostringstream os;
  cfg.incremental_control = incremental;
  cfg.shadow_diff = incremental;  // audit every skip the walk takes
  cfg.threads = threads;
  cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(os));
  auto result = run_simulation(std::move(cfg));
  return {os.str(), std::move(result)};
}

void expect_modes_equivalent(const SimConfig& cfg) {
  const TracedRun full = traced_run(cfg, /*incremental=*/false, 1);
  const TracedRun inc = traced_run(cfg, /*incremental=*/true, 1);
  const TracedRun inc_mt = traced_run(cfg, /*incremental=*/true, 4);
  ASSERT_FALSE(full.trace.empty());
  EXPECT_EQ(full.trace, inc.trace)
      << "incremental trace diverges from full recompute; first divergence "
         "at byte "
      << std::mismatch(full.trace.begin(), full.trace.end(),
                       inc.trace.begin(), inc.trace.end())
                 .first -
             full.trace.begin();
  EXPECT_EQ(inc.trace, inc_mt.trace)
      << "incremental trace depends on the thread count";

  // Shadow mode actually audited skips (the incremental walk did skip work),
  // and none of the re-derivations disagreed.  Aggregation-sweep skips
  // specifically need a settled subtree, which Poisson demand rarely allows;
  // the churn test asserts those separately.
  const auto& m = inc.result.metrics;
  EXPECT_GT(m.counter_or_zero("control.shadow_checks"), 0u);
  EXPECT_EQ(m.counter_or_zero("control.shadow_mismatches"), 0u);
}

TEST(ShadowDiff, ChurnScenario) {
  auto cfg = base_config(0.6, 7);
  cfg.churn_probability = 0.1;
  cfg.report_loss_probability = 0.05;
  expect_modes_equivalent(cfg);
  const TracedRun inc = traced_run(cfg, /*incremental=*/true, 1);
  EXPECT_GT(inc.result.metrics.counter_or_zero("control.nodes_skipped"), 0u);
}

TEST(ShadowDiff, AmbientEventScenario) {
  auto cfg = base_config(0.5, 99);
  cfg.ambient_events.push_back({12, 0, 8, 45_degC});
  cfg.ambient_events.push_back({30, 0, 8, 25_degC});
  expect_modes_equivalent(cfg);
}

TEST(ShadowDiff, UpsSupplyScenario) {
  auto cfg = base_config(0.5, 5);
  std::vector<util::Watts> levels(50, 480_W);
  levels[25] = 150_W;
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.ups = power::Ups(util::Joules{600.0}, 300_W, 100_W, 1.0);
  expect_modes_equivalent(cfg);
}

TEST(ShadowDiff, FaultScheduleScenario) {
  // The fault plane must not break incremental==full: lost/duplicated
  // messages, sensor episodes, crashes and degraded-mode clamps all re-dirty
  // the incremental walk, and shadow mode audits every skip it still takes.
  auto cfg = base_config(0.6, 13);
  cfg.churn_probability = 0.05;
  cfg.report_loss_probability = 0.05;
  cfg.faults.link.up_loss = 0.05;
  cfg.faults.link.up_delay = 0.05;
  cfg.faults.link.up_duplicate = 0.02;
  cfg.faults.link.down_loss = 0.05;
  cfg.faults.link.down_duplicate = 0.02;
  cfg.faults.power_sensor.dropout_probability = 0.01;
  cfg.faults.power_sensor.bias_probability = 0.01;
  cfg.faults.power_sensor.bias = 4.0;
  cfg.faults.temp_sensor.stuck_probability = 0.01;
  cfg.faults.crash_probability = 0.005;
  cfg.faults.crash_down_ticks = 5;
  cfg.faults.crash_events.push_back({15, 0, 2, 5});
  cfg.controller.stale_timeout_ticks = 3;
  expect_modes_equivalent(cfg);
}

TEST(ShadowDiff, MigrationsPermanentlyInFlightScenario) {
  // The transient-aware consolidation path must hold the equivalence claim
  // *while migrations are mid-flight*, not just on a quiesced fleet: slow
  // multi-tick transfers plus churn keep in-flight/absorbed watts booked on
  // sources and targets at every consolidation pass, so the epoch-stamped
  // verdict caches and the point-updated capacity index are audited against
  // live transients on every tick.
  auto cfg = base_config(0.6, 21);
  cfg.churn_probability = 0.1;
  cfg.controller.migration_periods_per_gib = 6.0;  // transfers span ticks
  expect_modes_equivalent(cfg);
  const TracedRun inc = traced_run(cfg, /*incremental=*/true, 1);
  EXPECT_GT(inc.result.controller_stats.total_migrations(), 0u)
      << "scenario never started a migration; nothing was in flight";
  // Consolidation verdicts were actually served during the transients.
  const auto& m = inc.result.metrics;
  EXPECT_GT(m.counter_or_zero("control.consol_candidates"), 0u);
  EXPECT_GT(m.counter_or_zero("control.index_point_updates"), 0u);
}

TEST(ShadowDiff, SkipCountersReconcileWithTrace) {
  // The metrics the perf gate keys on must agree with the trace: every
  // upward link message in the JSONL is one demand report, and reaggregated
  // plus skipped nodes account for every report_demands visit.
  auto cfg = base_config(0.6, 7);
  cfg.churn_probability = 0.1;
  const TracedRun inc = traced_run(cfg, /*incremental=*/true, 1);
  std::size_t up_lines = 0;
  std::istringstream is(inc.trace);
  for (std::string line; std::getline(is, line);) {
    if (line.find("\"type\":\"link_message\"") != std::string::npos &&
        line.find("\"dir\":\"up\"") != std::string::npos) {
      ++up_lines;
    }
  }
  const auto& m = inc.result.metrics;
  EXPECT_GT(up_lines, 0u);
  EXPECT_EQ(m.counter_or_zero("control.demand_reports"), up_lines);
}

}  // namespace
}  // namespace willow::sim
