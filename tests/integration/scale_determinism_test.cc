// Large-fleet determinism smoke test (ctest label: scale): a 10,000-server
// datacenter under churn must produce byte-identical event traces for 1 and
// 8 tick-engine threads.  The trace covers every control decision (budgets,
// reports, migrations, sleeps), so hash equality here is the scaled-up
// version of the shadow-diff gate's equivalence claim — exercised on fleets
// big enough that the arena spans and the consolidation fast path actually
// carry the load.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "obs/sink.h"
#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

constexpr std::size_t kServers = 10'000;

SimConfig large_fleet_config() {
  SimConfig cfg;
  cfg.datacenter.layout.zones = 10;
  cfg.datacenter.layout.racks_per_zone = 25;
  cfg.datacenter.layout.servers_per_rack = 40;  // 10,000 servers
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.5;
  // Churn plus Poisson variance keeps subtrees dirty, so the run exercises
  // the incremental machinery (dirty-set aggregation, consolidation fast
  // path) rather than the settled all-cached regime.
  cfg.churn_probability = 0.02;
  cfg.demand_quantum = 1_W;
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 25;
  cfg.seed = 4242;
  return cfg;
}

/// FNV-1a over the full trace text: the "golden hash" both runs must share.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct TracedRun {
  std::string trace;
  SimResult result;
};

TracedRun traced_run(std::size_t threads) {
  auto cfg = large_fleet_config();
  cfg.threads = threads;
  std::ostringstream os;
  cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(os));
  auto result = run_simulation(std::move(cfg));
  return {os.str(), std::move(result)};
}

TEST(ScaleDeterminism, TenThousandServersTraceIdenticalAcrossThreads) {
  const TracedRun serial = traced_run(1);
  const TracedRun threaded = traced_run(8);

  ASSERT_FALSE(serial.trace.empty());
  ASSERT_EQ(serial.result.servers.size(), kServers);
  EXPECT_GT(serial.result.controller_stats.total_migrations(), 0u)
      << "scenario too quiet to be a determinism test";

  const std::uint64_t golden = fnv1a(serial.trace);
  const std::uint64_t other = fnv1a(threaded.trace);
  RecordProperty("trace_hash", std::to_string(golden));
  EXPECT_EQ(golden, other) << "trace hash depends on the thread count";
  // Hash equality is the headline; byte comparison localizes a failure.
  ASSERT_EQ(serial.trace.size(), threaded.trace.size());
  if (serial.trace != threaded.trace) {
    const auto mis = std::mismatch(serial.trace.begin(), serial.trace.end(),
                                   threaded.trace.begin());
    FAIL() << "traces diverge at byte " << (mis.first - serial.trace.begin());
  }

  // The keyed result surface agrees between runs too (spot check: the keyed
  // accessor resolves every node and the aggregates match bitwise).
  ASSERT_EQ(serial.result.server_nodes.size(), kServers);
  double a = 0.0;
  double b = 0.0;
  for (const auto node : serial.result.server_nodes) {
    a += serial.result.server_metrics(node).consumed_power.mean();
    b += threaded.result.server_metrics(node).consumed_power.mean();
  }
  EXPECT_EQ(a, b);
}

TEST(ScaleDeterminism, SustainedChurnConsolidationIdenticalAcrossThreads) {
  // Consolidation under sustained churn with migrations held in flight:
  // low utilization keeps the fleet deep in consolidation territory (sleep
  // candidates every pass), churn re-dirties subtrees every tick, and slow
  // multi-tick transfers mean every consolidation pass runs against live
  // transients.  This is the regime the batched packing pass, the
  // point-updated capacity index and the parallel subtree dry runs carry —
  // the parallel phase must leave no fingerprint in the trace.
  auto churn_cfg = [](std::size_t threads) {
    auto cfg = large_fleet_config();
    cfg.target_utilization = 0.4;
    cfg.churn_probability = 0.03;
    cfg.controller.migration_periods_per_gib = 4.0;
    cfg.warmup_ticks = 5;
    cfg.measure_ticks = 30;
    cfg.threads = threads;
    return cfg;
  };
  auto run_traced = [&](std::size_t threads) {
    auto cfg = churn_cfg(threads);
    std::ostringstream os;
    cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(os));
    auto result = run_simulation(std::move(cfg));
    return TracedRun{os.str(), std::move(result)};
  };
  const TracedRun serial = run_traced(1);
  const TracedRun threaded = run_traced(8);

  ASSERT_FALSE(serial.trace.empty());
  const auto& stats = serial.result.controller_stats;
  EXPECT_GT(stats.consolidation_migrations, 0u)
      << "scenario never consolidated; it does not cover the batched pass";
  EXPECT_GT(stats.sleeps, 0u);
  const auto& m = serial.result.metrics;
  EXPECT_GT(m.counter_or_zero("control.consol_candidates"), 0u);
  EXPECT_GT(m.counter_or_zero("control.consol_drained"), 0u);
  EXPECT_GT(m.counter_or_zero("control.index_point_updates"), 0u);

  const std::uint64_t golden = fnv1a(serial.trace);
  const std::uint64_t other = fnv1a(threaded.trace);
  RecordProperty("churn_trace_hash", std::to_string(golden));
  EXPECT_EQ(golden, other) << "churn trace hash depends on the thread count";
  ASSERT_EQ(serial.trace.size(), threaded.trace.size());
  if (serial.trace != threaded.trace) {
    const auto mis = std::mismatch(serial.trace.begin(), serial.trace.end(),
                                   threaded.trace.begin());
    FAIL() << "traces diverge at byte " << (mis.first - serial.trace.begin());
  }
  // The effectiveness counters are part of the deterministic surface too:
  // a parallel run must examine and drain exactly the same candidates.
  const auto& mt = threaded.result.metrics;
  for (const char* name :
       {"control.consol_candidates", "control.consol_drained",
        "control.consol_cache_served", "control.consol_batched",
        "control.index_point_updates"}) {
    EXPECT_EQ(m.counter_or_zero(name), mt.counter_or_zero(name)) << name;
  }
}

}  // namespace
}  // namespace willow::sim
