// Everything-on soak: all extensions active at once for a long run, with the
// full invariant battery checked at the end.  Catches feature interactions
// the focused suites cannot (e.g. shedding vs consolidation vs IPC flows
// under a diurnal intensity and a solar supply).
#include <gtest/gtest.h>

#include <set>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;
using util::Seconds;

SimConfig everything_on(unsigned long long seed) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.datacenter.ambient_overrides.assign(18, 25_degC);
  for (int i = 14; i < 18; ++i) cfg.datacenter.ambient_overrides[i] = 40_degC;

  cfg.target_utilization = 0.55;
  cfg.mix.priority_levels = 3;
  cfg.ipc_chain_fraction = 0.6;
  cfg.controller.shedding = core::SheddingPolicy::kDegradeThenDrop;

  const Seconds day{48.0};
  cfg.supply = std::make_shared<power::SolarSupply>(
      util::Watts{28.125 * 18.0 * 0.55}, util::Watts{28.125 * 18.0 * 0.55},
      day, 0.5, seed);
  cfg.ups = power::Ups(util::Joules{400.0}, util::Watts{150.0},
                       util::Watts{60.0}, 0.9);
  cfg.intensity =
      std::make_shared<workload::DiurnalIntensity>(1.0, 0.3, day, day * 0.25);
  cfg.cooling = power::CoolingModel{};

  cfg.warmup_ticks = 0;
  cfg.measure_ticks = static_cast<long>(3 * day.value());  // three days
  cfg.seed = seed;
  return cfg;
}

class SoakTest : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(SoakTest, ThreeDaysAllFeaturesAllInvariants) {
  Simulation simulation(everything_on(GetParam()));
  // Snapshot every application id before the run.
  std::set<workload::AppId> all_apps;
  auto& cluster = simulation.datacenter().cluster;
  for (auto s : cluster.server_ids()) {
    for (const auto& a : cluster.server(s).apps()) all_apps.insert(a.id());
  }
  ASSERT_FALSE(all_apps.empty());

  const auto r = simulation.run();

  // 1. Thermal safety, always.
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_LE(r.max_temperature_c, 70.5);

  // 2. Application conservation: everything still hosted exactly once.
  std::multiset<workload::AppId> hosted;
  for (auto s : cluster.server_ids()) {
    const auto& srv = cluster.server(s);
    if (srv.asleep()) EXPECT_TRUE(srv.apps().empty());
    for (const auto& a : srv.apps()) {
      hosted.insert(a.id());
      EXPECT_GE(a.service_level(), 0.5 - 1e-9);  // configured floor
    }
  }
  EXPECT_EQ(hosted.size(), all_apps.size());
  for (auto id : all_apps) EXPECT_EQ(hosted.count(id), 1u);

  // 3. Accounting identities.
  const auto& st = r.controller_stats;
  std::size_t dropped_now = 0;
  for (auto s : cluster.server_ids()) {
    for (const auto& a : cluster.server(s).apps()) {
      dropped_now += a.dropped() ? 1 : 0;
    }
  }
  EXPECT_EQ(st.drops - st.revivals, dropped_now);
  EXPECT_GE(st.degrades, st.restores);

  // 4. Budgets nest through the hierarchy at the end state.
  const auto& tree = cluster.tree();
  for (auto id : tree.all_nodes()) {
    const auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    double sum = 0.0;
    for (auto c : n.children()) sum += tree.node(c).budget().value();
    EXPECT_LE(sum, n.budget().value() + 1e-6);
  }

  // 5. The scenario actually exercised the machinery.
  EXPECT_GT(st.total_migrations(), 0u);
  EXPECT_GT(st.sleeps, 0u);
  EXPECT_GT(r.intensity_series.stats().max(),
            r.intensity_series.stats().min());
  EXPECT_GT(r.pue.stats().mean(), 1.0);

  // 6. Solar nights forced shedding; days brought service back.
  EXPECT_GT(st.drops + st.degrades, 0u);
  EXPECT_GT(st.revivals + st.restores, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace willow::sim
