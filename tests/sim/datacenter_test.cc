#include "sim/datacenter.h"

#include <gtest/gtest.h>

namespace willow::sim {
namespace {

TEST(Datacenter, PaperConfigurationMatchesFig3) {
  auto dc = build_paper_datacenter();
  // 4 levels, 18 servers (Sec. V-B1).
  EXPECT_EQ(dc->cluster.tree().height(), 4);
  EXPECT_EQ(dc->servers.size(), 18u);
  EXPECT_EQ(dc->zones.size(), 2u);
  EXPECT_EQ(dc->racks.size(), 6u);
  EXPECT_EQ(dc->cluster.server_ids().size(), 18u);
}

TEST(Datacenter, PaperThermalConstants) {
  auto dc = build_paper_datacenter();
  const auto& p = dc->cluster.server(dc->servers[0]).thermal().params();
  EXPECT_DOUBLE_EQ(p.c1, 0.08);
  EXPECT_DOUBLE_EQ(p.c2, 0.05);
  EXPECT_DOUBLE_EQ(p.ambient.value(), 25.0);
  EXPECT_DOUBLE_EQ(p.limit.value(), 70.0);
  EXPECT_DOUBLE_EQ(p.nameplate.value(), 450.0);
}

TEST(Datacenter, HotZonePutsLastFourServersAtHotAmbient) {
  auto dc = build_paper_datacenter_hot_zone();
  for (std::size_t i = 0; i < 14; ++i) {
    EXPECT_DOUBLE_EQ(
        dc->cluster.server(dc->servers[i]).thermal().params().ambient.value(),
        25.0)
        << "server " << i + 1;
  }
  for (std::size_t i = 14; i < 18; ++i) {
    EXPECT_DOUBLE_EQ(
        dc->cluster.server(dc->servers[i]).thermal().params().ambient.value(),
        40.0)
        << "server " << i + 1;
  }
}

TEST(Datacenter, ServersStartAtTheirAmbient) {
  auto dc = build_paper_datacenter_hot_zone();
  EXPECT_DOUBLE_EQ(
      dc->cluster.server(dc->servers[0]).thermal().temperature().value(), 25.0);
  EXPECT_DOUBLE_EQ(
      dc->cluster.server(dc->servers[17]).thermal().temperature().value(),
      40.0);
}

TEST(Datacenter, CustomLayouts) {
  DatacenterOptions options;
  options.layout.zones = 3;
  options.layout.racks_per_zone = 2;
  options.layout.servers_per_rack = 5;
  auto dc = build_datacenter(options);
  EXPECT_EQ(dc->servers.size(), 30u);
  EXPECT_EQ(dc->racks.size(), 6u);
  EXPECT_EQ(dc->cluster.tree().height(), 4);
}

TEST(Datacenter, ServerNamesUsePaperNumbering) {
  auto dc = build_paper_datacenter();
  EXPECT_EQ(dc->cluster.tree().node(dc->servers[0]).name(), "server1");
  EXPECT_EQ(dc->cluster.tree().node(dc->servers[17]).name(), "server18");
}

}  // namespace
}  // namespace willow::sim
