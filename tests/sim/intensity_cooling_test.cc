// Simulator integration of the demand-intensity and cooling extensions.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 48;
  cfg.seed = 17;
  return cfg;
}

TEST(Intensity, RecordedSeriesMatchesProfile) {
  auto cfg = base_config(0.5);
  cfg.intensity = std::make_shared<workload::DiurnalIntensity>(
      1.0, 0.4, util::Seconds{48.0});
  cfg.warmup_ticks = 0;
  const auto r = run_simulation(std::move(cfg));
  ASSERT_EQ(r.intensity_series.size(), 48u);
  EXPECT_NEAR(r.intensity_series.at(0), 1.0, 1e-12);
  EXPECT_NEAR(r.intensity_series.at(12), 1.4, 1e-12);
  EXPECT_NEAR(r.intensity_series.at(36), 0.6, 1e-12);
}

TEST(Intensity, DemandTracksTheCycle) {
  auto cfg = base_config(0.4);
  cfg.intensity = std::make_shared<workload::DiurnalIntensity>(
      1.0, 0.5, util::Seconds{48.0});
  cfg.warmup_ticks = 0;
  const auto r = run_simulation(std::move(cfg));
  // Consumption around the peak (t ~ 12) beats consumption at the trough
  // (t ~ 36).
  const double peak = r.total_power.mean_between(9.0, 15.0);
  const double trough = r.total_power.mean_between(33.0, 39.0);
  EXPECT_GT(peak, trough * 1.1);
}

TEST(Intensity, DefaultIsStationary) {
  const auto r = run_simulation(base_config(0.4));
  EXPECT_DOUBLE_EQ(r.intensity_series.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(r.intensity_series.stats().max(), 1.0);
}

TEST(Cooling, SeriesEmptyWithoutPlant) {
  const auto r = run_simulation(base_config(0.4));
  EXPECT_TRUE(r.facility_power.empty());
  EXPECT_TRUE(r.pue.empty());
}

TEST(Cooling, FacilityPowerExceedsItPower) {
  auto cfg = base_config(0.5);
  cfg.cooling = power::CoolingModel{};
  const auto r = run_simulation(std::move(cfg));
  ASSERT_EQ(r.facility_power.size(), r.total_power.size());
  for (std::size_t i = 0; i < r.total_power.size(); ++i) {
    EXPECT_GT(r.facility_power.at(i), r.total_power.at(i));
  }
  EXPECT_GT(r.pue.stats().mean(), 1.0);
  EXPECT_LT(r.pue.stats().mean(), 2.0);
}

TEST(Cooling, ConsolidationImprovesFacilityDraw) {
  // At low utilization Willow parks servers; less IT power means less heat
  // and proportionally less cooling.
  auto low = base_config(0.15);
  low.cooling = power::CoolingModel{};
  auto high = base_config(0.8);
  high.cooling = power::CoolingModel{};
  const auto rl = run_simulation(std::move(low));
  const auto rh = run_simulation(std::move(high));
  EXPECT_LT(rl.facility_power.stats().mean(), rh.facility_power.stats().mean());
}

}  // namespace
}  // namespace willow::sim
