#include "sim/result_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimResult small_result() {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.4;
  cfg.warmup_ticks = 2;
  cfg.measure_ticks = 8;
  cfg.seed = 3;
  cfg.sla_inflation = 5.0;
  return run_simulation(std::move(cfg));
}

TEST(ResultIo, ProducesWellFormedJson) {
  const auto r = small_result();
  std::ostringstream os;
  write_result_json(os, r);
  const std::string out = os.str();
  // Structural sanity (a full parser is out of scope; brace balance and the
  // expected top-level keys suffice).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
  for (const char* key :
       {"\"ticks\"", "\"controller\"", "\"servers\"", "\"series\"",
        "\"supply_w\"", "\"total_power_w\"", "\"qos_satisfaction\"",
        "\"level1_switches\"", "\"thermal_violation\""}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(out.back(), '\n');
}

TEST(ResultIo, DisabledSeriesOmitted) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.warmup_ticks = 1;
  cfg.measure_ticks = 4;
  const auto r = run_simulation(std::move(cfg));
  std::ostringstream os;
  write_result_json(os, r);
  EXPECT_EQ(os.str().find("\"pue\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"qos_satisfaction\""), std::string::npos);
}

TEST(ResultIo, TickCountMatches) {
  const auto r = small_result();
  std::ostringstream os;
  write_result_json(os, r);
  EXPECT_NE(os.str().find("\"ticks\":8"), std::string::npos);
}

}  // namespace
}  // namespace willow::sim
