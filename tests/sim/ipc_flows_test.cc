// Integration of IPC flows with the simulator: chains start co-located
// (zero fabric traffic); migrations can separate them, and the flow metrics
// expose the cost.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization, double chain_fraction) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.ipc_chain_fraction = chain_fraction;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = 17;
  return cfg;
}

TEST(IpcFlows, DisabledByDefault) {
  Simulation sim(base_config(0.5, 0.0));
  const auto r = sim.run();
  EXPECT_TRUE(sim.flows().empty());
  EXPECT_DOUBLE_EQ(r.remote_flow_traffic.stats().max(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_flow_hops.stats().max(), 0.0);
}

TEST(IpcFlows, ChainsWiredAtBuild) {
  Simulation sim(base_config(0.5, 1.0));
  EXPECT_FALSE(sim.flows().empty());
  // A chain over a whole server's mix has size >= 1 per multi-app server.
  EXPECT_GE(sim.flows().size(), 10u);
}

TEST(IpcFlows, StartCoLocatedSeparateUnderPressure) {
  auto cfg = base_config(0.5, 1.0);
  cfg.warmup_ticks = 0;
  cfg.measure_ticks = 50;
  Simulation sim(std::move(cfg));
  const auto r = sim.run();
  // Tick 0: every chain is still co-located on its build server.
  EXPECT_DOUBLE_EQ(r.remote_flow_traffic.at(0), 0.0);
  // Consolidation/demand migrations separate some chains over the run.
  EXPECT_GT(r.remote_flow_traffic.stats().max(), 0.0);
}

TEST(IpcFlows, FabricSeesFlowTraffic) {
  auto cfg = base_config(0.4, 1.0);
  Simulation sim(std::move(cfg));
  (void)sim.run();
  double flow_total = 0.0;
  for (const auto g : sim.fabric().groups()) {
    flow_total += sim.fabric().stats(g).total_flow_traffic;
  }
  EXPECT_GT(flow_total, 0.0);
}

}  // namespace
}  // namespace willow::sim
