// Integration tests of the full simulator against the qualitative claims of
// Section V-B.  Exact numbers are seed-dependent; the *shapes* are not.
#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization) {
  SimConfig cfg;
  cfg.datacenter = DatacenterOptions{};
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 15;
  cfg.measure_ticks = 60;
  cfg.seed = 17;
  return cfg;
}

TEST(Simulation, RunsAndRecords) {
  auto result = run_simulation(base_config(0.4));
  EXPECT_EQ(result.ticks, 60);
  EXPECT_EQ(result.servers.size(), 18u);
  EXPECT_EQ(result.level1_switches.size(), 6u);
  EXPECT_EQ(result.migrations_per_tick.size(), 60u);
  EXPECT_GT(result.total_power.stats().mean(), 0.0);
}

TEST(Simulation, RunIsSingleShot) {
  Simulation sim(base_config(0.3));
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, DeterministicForSeed) {
  auto a = run_simulation(base_config(0.4));
  auto b = run_simulation(base_config(0.4));
  EXPECT_DOUBLE_EQ(a.total_power.stats().mean(), b.total_power.stats().mean());
  EXPECT_EQ(a.controller_stats.total_migrations(),
            b.controller_stats.total_migrations());
}

TEST(Simulation, ThermalLimitsNeverViolated) {
  // The paper: "The thermal constraints were never violated in the
  // simulations or experiments in any component."
  for (double u : {0.2, 0.5, 0.8}) {
    auto cfg = base_config(u);
    cfg.datacenter.ambient_overrides.assign(18, 25_degC);
    for (int i = 14; i < 18; ++i) cfg.datacenter.ambient_overrides[i] = 40_degC;
    auto result = run_simulation(cfg);
    EXPECT_FALSE(result.thermal_violation) << "utilization " << u;
    EXPECT_LE(result.max_temperature_c, 70.5) << "utilization " << u;
  }
}

TEST(Simulation, HotZoneServersDrawLessPower) {
  // Fig. 5: servers 15-18 (Ta = 40) consume less than servers 1-14.
  auto cfg = base_config(0.6);
  cfg.datacenter.ambient_overrides.assign(18, 25_degC);
  for (int i = 14; i < 18; ++i) cfg.datacenter.ambient_overrides[i] = 40_degC;
  auto result = run_simulation(cfg);
  double cold = 0.0, hot = 0.0;
  for (int i = 0; i < 14; ++i) cold += result.servers[i].consumed_power.mean();
  for (int i = 14; i < 18; ++i) hot += result.servers[i].consumed_power.mean();
  cold /= 14.0;
  hot /= 4.0;
  EXPECT_LT(hot, cold);
  EXPECT_FALSE(result.thermal_violation);
}

TEST(Simulation, HotZoneTemperatureGapNarrowsWithUtilization) {
  // Fig. 6: at low utilization hot-zone servers sit near their (higher)
  // ambient; as utilization grows, every server warms toward the limit and
  // the gap narrows.
  auto make = [](double u) {
    auto cfg = base_config(u);
    cfg.datacenter.ambient_overrides.assign(18, 25_degC);
    for (int i = 14; i < 18; ++i) cfg.datacenter.ambient_overrides[i] = 40_degC;
    return run_simulation(cfg);
  };
  auto low = make(0.15);
  auto high = make(0.85);
  auto gap = [](const SimResult& r) {
    double cold = 0.0, hot = 0.0;
    for (int i = 0; i < 14; ++i) cold += r.servers[i].temperature.mean();
    for (int i = 14; i < 18; ++i) hot += r.servers[i].temperature.mean();
    return hot / 4.0 - cold / 14.0;
  };
  EXPECT_GT(gap(low), gap(high));
}

TEST(Simulation, ConsolidationSleepsServersAtLowUtilization) {
  auto cfg = base_config(0.15);
  auto result = run_simulation(cfg);
  double total_asleep = 0.0;
  for (const auto& s : result.servers) total_asleep += s.asleep_fraction;
  EXPECT_GT(total_asleep, 0.5);  // at least some consolidation happened
  EXPECT_GT(result.controller_stats.consolidation_migrations, 0u);
}

TEST(Simulation, HighUtilizationLeavesNoRoomToConsolidate) {
  auto cfg = base_config(0.85);
  auto result = run_simulation(cfg);
  double total_asleep = 0.0;
  for (const auto& s : result.servers) total_asleep += s.asleep_fraction;
  EXPECT_LT(total_asleep, 2.0);  // nearly everything stays awake
}

TEST(Simulation, SupplyProfileIsApplied) {
  auto cfg = base_config(0.5);
  cfg.supply = std::make_shared<power::ConstantSupply>(400_W);
  auto result = run_simulation(cfg);
  EXPECT_NEAR(result.supply_series.stats().mean(), 400.0, 1e-9);
  // Consumption respects the cap.
  EXPECT_LE(result.total_power.stats().max(), 400.0 + 1e-6);
}

TEST(Simulation, SwitchTrafficGrowsWithUtilization) {
  auto low = run_simulation(base_config(0.2));
  auto high = run_simulation(base_config(0.8));
  auto mean_traffic = [](const SimResult& r) {
    double t = 0.0;
    for (const auto& s : r.level1_switches) t += s.traffic.mean();
    return t / static_cast<double>(r.level1_switches.size());
  };
  EXPECT_GT(mean_traffic(high), mean_traffic(low));
}

TEST(Simulation, UpsSmoothsSupplyDips) {
  // 18 servers at ~28 W sustainable each: ~500 W envelope; a one-period dip
  // well below the demand floor gets bridged by the UPS battery. The dip must
  // sit clearly under the sampled demand at that tick or the UPS has nothing
  // to bridge and the assertion becomes seed-sensitive.
  auto cfg = base_config(0.5);
  std::vector<util::Watts> levels(40, 480_W);
  levels[20] = 150_W;  // single-period dip
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 35;

  auto without = run_simulation(cfg);

  auto cfg2 = base_config(0.5);
  cfg2.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg2.warmup_ticks = 5;
  cfg2.measure_ticks = 35;
  cfg2.ups = power::Ups(util::Joules{600.0}, 300_W, 100_W, 1.0);
  auto with = run_simulation(cfg2);

  EXPECT_GT(with.supply_series.stats().min(),
            without.supply_series.stats().min());
}

}  // namespace
}  // namespace willow::sim
