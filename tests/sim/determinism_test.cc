// Bit-determinism of the parallel tick engine: a SimResult must be identical
// — every recorded double, bit for bit — whether the per-server phases run
// serially (threads = 1) or sharded across a pool (threads = 4).  This is the
// contract SimConfig::threads documents: randomness comes from counter-based
// per-server streams and shared accumulators are reduced in fixed server
// order, so the thread count is purely a scheduling choice.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization, unsigned long long seed) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = seed;
  return cfg;
}

void expect_series_identical(const util::TimeSeries& a,
                             const util::TimeSeries& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.times()[i], b.times()[i]) << what << " time @" << i;
    EXPECT_EQ(a.values()[i], b.values()[i]) << what << " value @" << i;
  }
}

void expect_stats_identical(const util::RunningStats& a,
                            const util::RunningStats& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  if (a.count() > 0 && b.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

void expect_results_identical(const SimResult& a, const SimResult& b) {
  // Every time series the simulator records, exact.
  expect_series_identical(a.migrations_per_tick, b.migrations_per_tick,
                          "migrations_per_tick");
  expect_series_identical(a.demand_migrations_per_tick,
                          b.demand_migrations_per_tick, "demand_migrations");
  expect_series_identical(a.consolidation_migrations_per_tick,
                          b.consolidation_migrations_per_tick,
                          "consolidation_migrations");
  expect_series_identical(a.normalized_migration_traffic,
                          b.normalized_migration_traffic,
                          "normalized_migration_traffic");
  expect_series_identical(a.imbalance, b.imbalance, "imbalance");
  expect_series_identical(a.total_power, b.total_power, "total_power");
  expect_series_identical(a.supply_series, b.supply_series, "supply_series");
  expect_series_identical(a.intensity_series, b.intensity_series,
                          "intensity_series");
  expect_series_identical(a.facility_power, b.facility_power,
                          "facility_power");
  expect_series_identical(a.pue, b.pue, "pue");
  expect_series_identical(a.qos_satisfaction, b.qos_satisfaction,
                          "qos_satisfaction");

  // Per-server metrics (recorded inside the sharded phase).
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    expect_stats_identical(a.servers[i].consumed_power,
                           b.servers[i].consumed_power, "consumed_power");
    expect_stats_identical(a.servers[i].temperature, b.servers[i].temperature,
                           "temperature");
    expect_stats_identical(a.servers[i].utilization, b.servers[i].utilization,
                           "utilization");
    EXPECT_EQ(a.servers[i].asleep_fraction, b.servers[i].asleep_fraction);
    EXPECT_EQ(a.servers[i].saved_power_w, b.servers[i].saved_power_w);
  }

  // Switch metrics (fed by the serially-deposited traffic accumulators).
  ASSERT_EQ(a.level1_switches.size(), b.level1_switches.size());
  for (std::size_t i = 0; i < a.level1_switches.size(); ++i) {
    EXPECT_EQ(a.level1_switches[i].group, b.level1_switches[i].group);
    expect_stats_identical(a.level1_switches[i].power,
                           b.level1_switches[i].power, "switch power");
    expect_stats_identical(a.level1_switches[i].traffic,
                           b.level1_switches[i].traffic, "switch traffic");
    expect_stats_identical(a.level1_switches[i].migration_cost,
                           b.level1_switches[i].migration_cost,
                           "switch migration_cost");
  }

  // Controller decisions (all serial, but driven by the sharded state).
  EXPECT_EQ(a.controller_stats.demand_migrations,
            b.controller_stats.demand_migrations);
  EXPECT_EQ(a.controller_stats.consolidation_migrations,
            b.controller_stats.consolidation_migrations);
  EXPECT_EQ(a.controller_stats.local_migrations,
            b.controller_stats.local_migrations);
  EXPECT_EQ(a.controller_stats.nonlocal_migrations,
            b.controller_stats.nonlocal_migrations);
  EXPECT_EQ(a.controller_stats.drops, b.controller_stats.drops);
  EXPECT_EQ(a.controller_stats.degrades, b.controller_stats.degrades);
  EXPECT_EQ(a.controller_stats.sleeps, b.controller_stats.sleeps);
  EXPECT_EQ(a.controller_stats.wakes, b.controller_stats.wakes);
  EXPECT_EQ(a.controller_stats.dropped_demand.value(),
            b.controller_stats.dropped_demand.value());
  EXPECT_EQ(a.controller_stats.degraded_demand.value(),
            b.controller_stats.degraded_demand.value());

  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.max_temperature_c, b.max_temperature_c);
  EXPECT_EQ(a.thermal_violation, b.thermal_violation);
  EXPECT_EQ(a.quick_remigrations, b.quick_remigrations);
  EXPECT_EQ(a.churn_departures, b.churn_departures);
  EXPECT_EQ(a.churn_arrivals, b.churn_arrivals);
}

void expect_threads_equivalent(SimConfig cfg) {
  auto serial = cfg;
  serial.threads = 1;
  auto sharded = cfg;
  sharded.threads = 4;
  const auto a = run_simulation(std::move(serial));
  const auto b = run_simulation(std::move(sharded));
  expect_results_identical(a, b);
}

TEST(Determinism, ChurnScenario) {
  for (unsigned long long seed : {7ULL, 1234ULL}) {
    auto cfg = base_config(0.6, seed);
    cfg.churn_probability = 0.1;
    cfg.report_loss_probability = 0.05;
    expect_threads_equivalent(std::move(cfg));
  }
}

TEST(Determinism, AmbientEventScenario) {
  auto cfg = base_config(0.5, 99);
  // A mid-run heat wave over one zone, later repaired: thermal stepping and
  // the controller's response must not depend on sharding.
  cfg.ambient_events.push_back({12, 0, 8, 45_degC});
  cfg.ambient_events.push_back({30, 0, 8, 25_degC});
  expect_threads_equivalent(std::move(cfg));
}

TEST(Determinism, UpsSupplyScenario) {
  auto cfg = base_config(0.5, 5);
  std::vector<util::Watts> levels(50, 480_W);
  levels[25] = 150_W;
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.ups = power::Ups(util::Joules{600.0}, 300_W, 100_W, 1.0);
  expect_threads_equivalent(std::move(cfg));
}

TEST(Determinism, OversubscribedThreadCountsAgree) {
  // threads = 2 and threads = 16 (more workers than servers per chunk) give
  // the same bits too: the partition is a pure function of (n, pool size).
  auto cfg = base_config(0.7, 21);
  cfg.churn_probability = 0.05;
  auto two = cfg;
  two.threads = 2;
  auto many = cfg;
  many.threads = 16;
  const auto a = run_simulation(std::move(two));
  const auto b = run_simulation(std::move(many));
  expect_results_identical(a, b);
}

}  // namespace
}  // namespace willow::sim
