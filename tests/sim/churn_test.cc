// Workload churn: applications arrive and depart while the controller runs —
// "variations in workload intensity and characteristics" (Sec. I).
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;
using util::Seconds;
using util::Watts;

SimConfig base_config(double churn) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.5;
  cfg.churn_probability = churn;
  cfg.warmup_ticks = 5;
  cfg.measure_ticks = 60;
  cfg.seed = 17;
  return cfg;
}

TEST(Churn, DisabledByDefault) {
  const auto r = run_simulation(base_config(0.0));
  EXPECT_EQ(r.churn_departures, 0u);
  EXPECT_EQ(r.churn_arrivals, 0u);
}

TEST(Churn, ArrivalsAndDeparturesHappen) {
  const auto r = run_simulation(base_config(0.1));
  EXPECT_GT(r.churn_departures, 20u);
  EXPECT_GT(r.churn_arrivals, 20u);
  // Roughly balanced by construction (one out, one in).
  EXPECT_NEAR(static_cast<double>(r.churn_arrivals),
              static_cast<double>(r.churn_departures),
              static_cast<double>(r.churn_arrivals) * 0.5);
}

TEST(Churn, InvariantsHoldUnderChurn) {
  auto cfg = base_config(0.15);
  Simulation sim(std::move(cfg));
  const auto r = sim.run();
  EXPECT_FALSE(r.thermal_violation);
  auto& cluster = sim.datacenter().cluster;
  const auto& tree = cluster.tree();
  // Every hosted app is registered exactly once and sleeping servers are
  // empty.
  std::size_t hosted = 0;
  for (auto s : cluster.server_ids()) {
    const auto& srv = cluster.server(s);
    if (srv.asleep()) EXPECT_TRUE(srv.apps().empty());
    for (const auto& a : srv.apps()) {
      EXPECT_EQ(cluster.host_of(a.id()), s);
      ++hosted;
    }
  }
  EXPECT_GT(hosted, 0u);
  for (auto id : tree.all_nodes()) {
    const auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    double sum = 0.0;
    for (auto c : n.children()) sum += tree.node(c).budget().value();
    EXPECT_LE(sum, n.budget().value() + 1e-6);
  }
}

TEST(Churn, SurvivesWithMigrationLatency) {
  // Churn + in-flight transfers: departures must never yank an app out from
  // under a transfer (guarded via app_in_flight) and stale transfers of
  // departed apps resolve gracefully.
  auto cfg = base_config(0.2);
  cfg.controller.migration_periods_per_gib = 2.0;
  cfg.supply = std::make_shared<power::SinusoidSupply>(
      Watts{28.125 * 18.0 * 0.85}, Watts{28.125 * 18.0 * 0.15},
      Seconds{16.0});
  Simulation sim(std::move(cfg));
  const auto r = sim.run();
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_GT(r.churn_departures, 0u);
}

TEST(ClusterRemoveApp, Validation) {
  core::Cluster cluster(1.0);
  const auto root = cluster.add_root("dc");
  const auto rack = cluster.add_group(root, "rack");
  core::ServerConfig sc;
  sc.power_model = power::ServerPowerModel(10_W, 450_W);
  const auto s = cluster.add_server(rack, "s", sc);
  workload::AppIdAllocator ids;
  const auto id = ids.next();
  cluster.place(workload::Application(id, 0, 50_W, 512_MB), s);
  const auto removed = cluster.remove_app(id);
  EXPECT_EQ(removed.id(), id);
  EXPECT_TRUE(cluster.server(s).apps().empty());
  EXPECT_EQ(cluster.host_of(id), hier::kNoNode);
  EXPECT_THROW(cluster.remove_app(id), std::logic_error);
}

TEST(MixWeights, BiasedSelection) {
  workload::MixConfig cfg;
  cfg.unit_power = 1_W;
  cfg.target_mean_per_server = 40_W;
  cfg.class_weights = {0.0, 0.0, 1.0, 3.0};  // only classes 5 and 9
  workload::AppIdAllocator ids;
  util::Rng rng(7);
  std::size_t heavy = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    for (const auto& a : workload::build_mix(cfg, ids, rng)) {
      EXPECT_GE(a.class_index(), 2u);
      heavy += a.class_index() == 3 ? 1 : 0;
      ++total;
    }
  }
  // Weighted 3:1 toward the largest class.
  EXPECT_GT(static_cast<double>(heavy) / static_cast<double>(total), 0.5);
}

TEST(MixWeights, Validation) {
  workload::MixConfig cfg;
  cfg.unit_power = 1_W;
  workload::AppIdAllocator ids;
  util::Rng rng(7);
  cfg.class_weights = {1.0};  // wrong size
  EXPECT_THROW(workload::build_mix(cfg, ids, rng), std::invalid_argument);
  cfg.class_weights = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(workload::build_mix(cfg, ids, rng), std::invalid_argument);
  cfg.class_weights = {1.0, 1.0, -1.0, 1.0};
  EXPECT_THROW(workload::build_mix(cfg, ids, rng), std::invalid_argument);
}

}  // namespace
}  // namespace willow::sim
