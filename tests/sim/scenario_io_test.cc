#include "sim/scenario_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace willow::sim {
namespace {

SimConfig parse(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is);
}

TEST(ScenarioIo, EmptyInputYieldsDefaults) {
  const auto cfg = parse("");
  EXPECT_DOUBLE_EQ(cfg.target_utilization, 0.5);
  EXPECT_EQ(cfg.datacenter.layout.total_servers(), 18u);
  EXPECT_DOUBLE_EQ(cfg.datacenter.server.thermal.c1, 0.08);
}

TEST(ScenarioIo, CommentsAndBlanksIgnored) {
  const auto cfg = parse(R"(
# a comment
utilization = 0.7   # trailing comment

seed = 99
)");
  EXPECT_DOUBLE_EQ(cfg.target_utilization, 0.7);
  EXPECT_EQ(cfg.seed, 99ull);
}

TEST(ScenarioIo, LayoutKeys) {
  const auto cfg = parse(
      "zones = 3\nracks_per_zone = 2\nservers_per_rack = 4\n");
  EXPECT_EQ(cfg.datacenter.layout.zones, 3u);
  EXPECT_EQ(cfg.datacenter.layout.racks_per_zone, 2u);
  EXPECT_EQ(cfg.datacenter.layout.servers_per_rack, 4u);
  EXPECT_EQ(cfg.datacenter.layout.total_servers(), 24u);
}

TEST(ScenarioIo, ControllerKeys) {
  const auto cfg = parse(R"(
margin_w = 2.5
migration_cost_w = 0.75
eta1 = 3
eta2 = 9
consolidation_threshold = 0.3
packing = bfd
allocation = capacity
prefer_local = false
enforce_unidirectional = no
shedding = degrade
degraded_service_level = 0.6
)");
  EXPECT_DOUBLE_EQ(cfg.controller.margin.value(), 2.5);
  EXPECT_DOUBLE_EQ(cfg.controller.migration_cost.value(), 0.75);
  EXPECT_EQ(cfg.controller.eta1, 3);
  EXPECT_EQ(cfg.controller.eta2, 9);
  EXPECT_EQ(cfg.controller.packing, binpack::Algorithm::kBestFitDecreasing);
  EXPECT_EQ(cfg.controller.allocation,
            core::AllocationPolicy::kProportionalToCapacity);
  EXPECT_FALSE(cfg.controller.prefer_local);
  EXPECT_FALSE(cfg.controller.enforce_unidirectional);
  EXPECT_EQ(cfg.controller.shedding, core::SheddingPolicy::kDegradeThenDrop);
  EXPECT_DOUBLE_EQ(cfg.controller.degraded_service_level, 0.6);
}

TEST(ScenarioIo, HotZoneOverrides) {
  const auto cfg = parse(
      "servers_per_rack = 3\nhot_zone_servers = 4\nhot_ambient_c = 40\n");
  ASSERT_EQ(cfg.datacenter.ambient_overrides.size(), 18u);
  EXPECT_DOUBLE_EQ(cfg.datacenter.ambient_overrides[13].value(), 25.0);
  EXPECT_DOUBLE_EQ(cfg.datacenter.ambient_overrides[14].value(), 40.0);
  EXPECT_DOUBLE_EQ(cfg.datacenter.ambient_overrides[17].value(), 40.0);
}

TEST(ScenarioIo, HotZoneLargerThanFleetFails) {
  EXPECT_THROW(parse("hot_zone_servers = 100\n"), std::runtime_error);
}

TEST(ScenarioIo, SupplyVariants) {
  auto cfg = parse("supply = constant 500\n");
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{3.0}).value(), 500.0);

  cfg = parse("supply = steps 100 200 300\n");
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{1.5}).value(), 200.0);

  cfg = parse("supply = sine 100 50 4\n");
  EXPECT_NEAR(cfg.supply->at(util::Seconds{1.0}).value(), 150.0, 1e-9);

  cfg = parse("supply = solar 220 350 48 0.4 11\n");
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{0.0}).value(), 220.0);

  cfg = parse("supply = fig15\n");
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{7.0}).value(), 610.0);

  cfg = parse("supply = fig19\n");
  EXPECT_NEAR(cfg.supply->at(util::Seconds{0.0}).value(), 760.0, 1e-9);
}

TEST(ScenarioIo, SupplyFromCsvFile) {
  const std::string path = ::testing::TempDir() + "/willow_supply_trace.csv";
  {
    std::ofstream f(path);
    f << "t,watts\n0,111\n1,222\n";
  }
  const auto cfg = parse("supply = csv " + path + "\n");
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{0.0}).value(), 111.0);
  EXPECT_DOUBLE_EQ(cfg.supply->at(util::Seconds{1.5}).value(), 222.0);
  std::remove(path.c_str());
  EXPECT_THROW(parse("supply = csv /no/such/file.csv\n"), std::runtime_error);
}

TEST(ScenarioIo, IntensityVariants) {
  auto cfg = parse("intensity = constant 0.8\n");
  ASSERT_TRUE(cfg.intensity);
  EXPECT_DOUBLE_EQ(cfg.intensity->at(util::Seconds{5.0}), 0.8);

  cfg = parse("intensity = diurnal 1 0.4 48\n");
  EXPECT_NEAR(cfg.intensity->at(util::Seconds{12.0}), 1.4, 1e-12);

  cfg = parse("intensity = diurnal 1 0.4 48 12\n");
  EXPECT_NEAR(cfg.intensity->at(util::Seconds{24.0}), 1.4, 1e-12);

  cfg = parse("intensity = trace 0.5 1.0 1.5\n");
  EXPECT_DOUBLE_EQ(cfg.intensity->at(util::Seconds{1.0}), 1.0);

  EXPECT_THROW(parse("intensity = waves 1 2\n"), std::runtime_error);
  EXPECT_THROW(parse("intensity = diurnal 1\n"), std::runtime_error);
}

TEST(ScenarioIo, ExtensionKeys) {
  const auto cfg = parse(
      "sla_inflation = 5\nreport_loss_probability = 0.1\n"
      "migration_periods_per_gib = 2\nrack_circuit_w = 120\n");
  EXPECT_DOUBLE_EQ(cfg.sla_inflation, 5.0);
  EXPECT_DOUBLE_EQ(cfg.report_loss_probability, 0.1);
  EXPECT_DOUBLE_EQ(cfg.controller.migration_periods_per_gib, 2.0);
  ASSERT_TRUE(cfg.rack_circuit_limit.has_value());
  EXPECT_DOUBLE_EQ(cfg.rack_circuit_limit->value(), 120.0);
  EXPECT_THROW(parse("report_loss_probability = 1.5\n"), std::runtime_error);
}

TEST(ScenarioIo, CoolingKey) {
  auto cfg = parse("cooling_cop = 4.0\n");
  ASSERT_TRUE(cfg.cooling.has_value());
  EXPECT_DOUBLE_EQ(cfg.cooling->cop(util::Celsius{25.0}), 4.0);
  EXPECT_FALSE(parse("").cooling.has_value());
}

TEST(ScenarioIo, IpcAndWorkloadKeys) {
  const auto cfg = parse(
      "ipc_chain_fraction = 0.5\nipc_flow_units = 0.1\n"
      "priority_levels = 3\ndemand_quantum_w = 0.5\n");
  EXPECT_DOUBLE_EQ(cfg.ipc_chain_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cfg.ipc_flow_units, 0.1);
  EXPECT_EQ(cfg.mix.priority_levels, 3);
  EXPECT_DOUBLE_EQ(cfg.demand_quantum.value(), 0.5);
}

TEST(ScenarioIo, ErrorsCarryLineNumbers) {
  try {
    parse("utilization = 0.5\nbogus_key = 3\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(ScenarioIo, MalformedInputsFail) {
  EXPECT_THROW(parse("utilization 0.5\n"), std::runtime_error);      // no '='
  EXPECT_THROW(parse("utilization = abc\n"), std::runtime_error);    // NaN
  EXPECT_THROW(parse("utilization = 99\n"), std::runtime_error);     // range
  EXPECT_THROW(parse("eta1 = 2.5\n"), std::runtime_error);           // non-int
  EXPECT_THROW(parse("prefer_local = maybe\n"), std::runtime_error); // bool
  EXPECT_THROW(parse("supply = warp 9\n"), std::runtime_error);      // kind
  EXPECT_THROW(parse("supply = sine 1\n"), std::runtime_error);      // arity
  EXPECT_THROW(parse("packing = quantum\n"), std::runtime_error);
  EXPECT_THROW(parse("= 5\n"), std::runtime_error);
  // Cross-field validation still applies (eta2 must exceed eta1).
  EXPECT_THROW(parse("eta1 = 7\neta2 = 7\n"), std::runtime_error);
}

TEST(ScenarioIo, LoadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/willow_scenario_test.txt";
  {
    std::ofstream f(path);
    f << "utilization = 0.25\nseed = 7\nsupply = constant 400\n";
  }
  const auto cfg = load_scenario_file(path);
  EXPECT_DOUBLE_EQ(cfg.target_utilization, 0.25);
  EXPECT_EQ(cfg.seed, 7ull);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file("/no/such/file"), std::runtime_error);
}

TEST(ScenarioIo, FuzzedInputNeverCrashes) {
  // Random line soup: the parser must always either succeed or throw
  // runtime_error with a line number — never crash or throw anything else.
  util::Rng rng(99);
  const std::vector<std::string> keys{
      "utilization", "seed",  "zones",   "margin_w", "supply",
      "packing",     "bogus", "eta1",    "shedding", "intensity",
      "sla_inflation", "",    "  # c",   "alpha"};
  const std::vector<std::string> values{
      "0.5", "abc",      "-3",       "1e9", "constant 100", "ffdlr",
      "",    "= = =",    "true",     "nan", "diurnal 1",    "0.7",
      "steps", "csv /no/file", "1.5.2"};
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const int lines = rng.uniform_int(0, 6);
    for (int l = 0; l < lines; ++l) {
      text += keys[rng.index(keys.size())];
      if (rng.chance(0.8)) text += " = ";
      text += values[rng.index(values.size())];
      text += "\n";
    }
    try {
      std::istringstream is(text);
      (void)parse_scenario(is);
    } catch (const std::runtime_error&) {
      // expected for malformed soup
    }
  }
  SUCCEED();
}

TEST(ScenarioIo, ParsedConfigActuallyRuns) {
  auto cfg = parse(
      "utilization = 0.3\nwarmup_ticks = 5\nmeasure_ticks = 10\nseed = 1\n");
  const auto r = run_simulation(std::move(cfg));
  EXPECT_EQ(r.ticks, 10);
}

TEST(ScenarioIo, FaultKeys) {
  const auto cfg = parse(R"(
supply = sine 420 120 48
link_up_loss_probability = 0.05
link_up_delay_probability = 0.04
link_up_duplicate_probability = 0.03
link_down_loss_probability = 0.02
link_down_duplicate_probability = 0.01
power_sensor_stuck_probability = 0.011
power_sensor_bias_probability = 0.012
power_sensor_dropout_probability = 0.013
power_sensor_bias_w = 4.5
temp_sensor_stuck_probability = 0.021
temp_sensor_bias_probability = 0.022
temp_sensor_dropout_probability = 0.023
temp_sensor_bias_c = -2.5
sensor_fault_mean_ticks = 7
crash_probability = 0.002
crash_down_ticks = 12
crash_event = 40 0 1 8
crash_event = 55 3 3
ups = 90000 220 160 0.8
ups_failure = 60 80
stale_timeout_ticks = 3
stale_decay = 0.85
directive_retry_limit = 5
)");
  EXPECT_DOUBLE_EQ(cfg.faults.link.up_loss, 0.05);
  EXPECT_DOUBLE_EQ(cfg.faults.link.up_delay, 0.04);
  EXPECT_DOUBLE_EQ(cfg.faults.link.up_duplicate, 0.03);
  EXPECT_DOUBLE_EQ(cfg.faults.link.down_loss, 0.02);
  EXPECT_DOUBLE_EQ(cfg.faults.link.down_duplicate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.faults.power_sensor.stuck_probability, 0.011);
  EXPECT_DOUBLE_EQ(cfg.faults.power_sensor.bias, 4.5);
  EXPECT_DOUBLE_EQ(cfg.faults.temp_sensor.dropout_probability, 0.023);
  EXPECT_DOUBLE_EQ(cfg.faults.temp_sensor.bias, -2.5);
  EXPECT_DOUBLE_EQ(cfg.faults.sensor_fault_mean_ticks, 7.0);
  EXPECT_DOUBLE_EQ(cfg.faults.crash_probability, 0.002);
  EXPECT_EQ(cfg.faults.crash_down_ticks, 12);
  ASSERT_EQ(cfg.faults.crash_events.size(), 2u);
  EXPECT_EQ(cfg.faults.crash_events[0].tick, 40);
  EXPECT_EQ(cfg.faults.crash_events[0].first_server, 0u);
  EXPECT_EQ(cfg.faults.crash_events[0].last_server, 1u);
  EXPECT_EQ(cfg.faults.crash_events[0].down_ticks, 8);
  EXPECT_EQ(cfg.faults.crash_events[1].down_ticks, 10);  // default
  ASSERT_TRUE(cfg.ups.has_value());
  EXPECT_DOUBLE_EQ(cfg.ups->capacity().value(), 90000.0);
  EXPECT_DOUBLE_EQ(cfg.ups->state_of_charge(), 0.8);
  ASSERT_EQ(cfg.faults.ups_failures.size(), 1u);
  EXPECT_EQ(cfg.faults.ups_failures[0].first_tick, 60);
  EXPECT_EQ(cfg.faults.ups_failures[0].last_tick, 80);
  EXPECT_EQ(cfg.controller.stale_timeout_ticks, 3);
  EXPECT_DOUBLE_EQ(cfg.controller.stale_decay, 0.85);
  EXPECT_EQ(cfg.controller.directive_retry_limit, 5);
  EXPECT_TRUE(cfg.faults.enabled());
}

TEST(ScenarioIo, FaultKeysOutOfRangeFail) {
  EXPECT_THROW(parse("link_up_loss_probability = 1.5\n"), std::runtime_error);
  EXPECT_THROW(parse("crash_probability = -0.1\n"), std::runtime_error);
  EXPECT_THROW(parse("crash_event = 5 3 1\n"), std::runtime_error);
  EXPECT_THROW(parse("crash_event = 5\n"), std::runtime_error);
  EXPECT_THROW(parse("ups_failure = 80 60\n"), std::runtime_error);
  EXPECT_THROW(parse("ups = 100 -5 10\n"), std::runtime_error);
  EXPECT_THROW(parse("stale_decay = 1.5\n"), std::runtime_error);
  EXPECT_THROW(parse("directive_retry_limit = -1\n"), std::runtime_error);
}

TEST(ScenarioIo, ScenarioKeysRoundtrip) {
  // The registry is the machine-readable contract for `willow_cli --keys`
  // and the docs-drift checker: every key parses, and the samples are
  // mutually consistent — the concatenation of all of them is one valid
  // scenario.
  const auto& keys = scenario_keys();
  ASSERT_GE(keys.size(), 60u);
  std::string text;
  for (const auto& k : keys) {
    EXPECT_FALSE(k.key.empty());
    EXPECT_FALSE(k.sample.empty());
    text += k.key + " = " + k.sample + "\n";
  }
  const auto cfg = parse(text);
  EXPECT_TRUE(cfg.faults.enabled());
  EXPECT_TRUE(cfg.ups.has_value());
  EXPECT_TRUE(cfg.validate().empty());
}

}  // namespace
}  // namespace willow::sim
