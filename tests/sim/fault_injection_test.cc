// End-to-end fault injection: trace determinism across thread counts with
// every fault source armed, crash/recovery event flow, UPS failure windows,
// and the degraded-mode counters feeding the metrics registry.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>

#include "obs/sink.h"
#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig faulty_config(unsigned long long seed) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.6;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = seed;
  cfg.churn_probability = 0.05;
  cfg.report_loss_probability = 0.05;
  cfg.faults.link.up_loss = 0.05;
  cfg.faults.link.up_delay = 0.05;
  cfg.faults.link.up_duplicate = 0.02;
  cfg.faults.link.down_loss = 0.05;
  cfg.faults.link.down_duplicate = 0.02;
  cfg.faults.power_sensor.stuck_probability = 0.01;
  cfg.faults.power_sensor.bias_probability = 0.01;
  cfg.faults.power_sensor.dropout_probability = 0.01;
  cfg.faults.power_sensor.bias = 4.0;
  cfg.faults.temp_sensor.stuck_probability = 0.01;
  cfg.faults.temp_sensor.bias_probability = 0.01;
  cfg.faults.temp_sensor.dropout_probability = 0.01;
  cfg.faults.temp_sensor.bias = 3.0;
  cfg.faults.crash_probability = 0.005;
  cfg.faults.crash_down_ticks = 6;
  cfg.faults.crash_events.push_back({15, 0, 2, 5});
  cfg.controller.stale_timeout_ticks = 3;
  cfg.controller.stale_decay = 0.9;
  cfg.controller.directive_retry_limit = 3;
  return cfg;
}

struct TracedRun {
  std::string trace;
  SimResult result;
};

TracedRun traced_run(SimConfig cfg, std::size_t threads) {
  std::ostringstream os;
  cfg.threads = threads;
  cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(os));
  auto result = run_simulation(std::move(cfg));
  return {os.str(), std::move(result)};
}

TEST(FaultInjection, TraceBytesIdenticalForAnyThreadCount) {
  const TracedRun serial = traced_run(faulty_config(11), 1);
  ASSERT_FALSE(serial.trace.empty());
  for (const std::size_t threads : {4u, 8u}) {
    const TracedRun mt = traced_run(faulty_config(11), threads);
    EXPECT_EQ(serial.trace, mt.trace) << "threads=" << threads;
    EXPECT_EQ(serial.result.total_power.stats().sum(),
              mt.result.total_power.stats().sum());
    EXPECT_EQ(serial.result.controller_stats.total_migrations(),
              mt.result.controller_stats.total_migrations());
  }
}

TEST(FaultInjection, ScheduledCrashGoesDownAndComesBack) {
  auto cfg = faulty_config(3);
  // Only the scripted outage: servers 0..2 down at tick 15 for 5 ticks.
  cfg.faults.crash_probability = 0.0;
  cfg.faults.power_sensor = {};
  cfg.faults.temp_sensor = {};
  cfg.faults.link = {};
  cfg.report_loss_probability = 0.0;
  cfg.churn_probability = 0.0;
  // No consolidation: a server asleep at tick 15 would (correctly) dodge the
  // scripted outage, and this test wants all three hit.
  cfg.controller.eta2 = 1000;
  auto counting = std::make_shared<obs::CountingSink>();
  cfg.sinks.push_back(counting);
  Simulation simulation(std::move(cfg));
  const auto result = simulation.run();

  EXPECT_EQ(counting->count(obs::EventType::kNodeDown), 3u);
  EXPECT_EQ(counting->count(obs::EventType::kNodeUp), 3u);
  EXPECT_EQ(counting->count(obs::EventType::kResyncComplete), 3u);
  EXPECT_EQ(result.metrics.counter_or_zero("fault.crashes"), 3u);
  EXPECT_EQ(result.metrics.counter_or_zero("fault.restarts"), 3u);
  // Everyone is back up by end of run.
  auto& cluster = simulation.datacenter().cluster;
  for (std::size_t i = 0; i < cluster.server_count(); ++i) {
    EXPECT_FALSE(cluster.server_at(i).crashed()) << "server " << i;
  }
}

TEST(FaultInjection, FaultCountersAndEventsAccumulate) {
  auto counting = std::make_shared<obs::CountingSink>();
  auto cfg = faulty_config(11);
  cfg.sinks.push_back(counting);
  const auto result = run_simulation(std::move(cfg));
  const auto& m = result.metrics;
  EXPECT_GT(m.counter_or_zero("fault.link_drops_up"), 0u);
  EXPECT_GT(m.counter_or_zero("fault.sensor_faults"), 0u);
  EXPECT_GT(m.counter_or_zero("fault.crashes"), 0u);
  EXPECT_GT(counting->count(obs::EventType::kLinkDrop), 0u);
  EXPECT_GT(counting->count(obs::EventType::kSensorFault), 0u);
  EXPECT_GT(counting->count(obs::EventType::kNodeDown), 0u);
  // Stale timeouts fire somewhere in a run with lost reports and dropouts.
  EXPECT_GT(m.counter_or_zero("fault.stale_timeouts"), 0u);
}

TEST(FaultInjection, UpsFailureWindowEmitsTransitions) {
  auto cfg = faulty_config(5);
  cfg.faults = {};
  cfg.report_loss_probability = 0.0;
  cfg.churn_probability = 0.0;
  std::vector<util::Watts> levels(60, 480_W);
  for (std::size_t i = 25; i < 35; ++i) levels[i] = 150_W;
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.ups = power::Ups(util::Joules{90000.0}, 220_W, 160_W, 0.8);
  cfg.faults.ups_failures.push_back({20, 40});
  auto counting = std::make_shared<obs::CountingSink>();
  cfg.sinks.push_back(counting);
  const auto result = run_simulation(std::move(cfg));
  EXPECT_EQ(counting->count(obs::EventType::kUpsFail), 1u);
  EXPECT_EQ(counting->count(obs::EventType::kUpsRestore), 1u);
  ASSERT_EQ(result.ticks, 40);
}

TEST(FaultInjection, CrashedServersAreDeniedForQos) {
  auto base = faulty_config(9);
  base.faults = {};
  base.report_loss_probability = 0.0;
  base.churn_probability = 0.0;
  base.sla_inflation = 5.0;

  auto crashed = base;
  // Take a third of the fleet down across the whole measurement window.
  crashed.faults.crash_events.push_back({12, 0, 5, 40});

  const auto healthy_run = run_simulation(std::move(base));
  const auto crashed_run = run_simulation(std::move(crashed));
  ASSERT_FALSE(crashed_run.qos_satisfaction.empty());
  EXPECT_LT(crashed_run.qos_satisfaction.stats().mean(),
            healthy_run.qos_satisfaction.stats().mean());
}

TEST(FaultInjection, DisabledFaultConfigAddsNothing) {
  // A config with the fault struct present but all-zero must produce the
  // same bytes as one that never mentions it (they are the same object; the
  // assertion is that arming logic keys off enabled(), not presence).
  auto cfg = faulty_config(11);
  cfg.faults = {};
  cfg.controller.stale_timeout_ticks = 0;
  EXPECT_FALSE(cfg.faults.enabled());
  const TracedRun a = traced_run(cfg, 1);
  const TracedRun b = traced_run(cfg, 4);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.result.metrics.counter_or_zero("fault.crashes"), 0u);
  // Lazy instruments: no fault counters appear in the snapshot at all.
  for (const auto& c : a.result.metrics.counters) {
    EXPECT_NE(c.name.rfind("fault.", 0), 0u) << c.name;
  }
}

}  // namespace
}  // namespace willow::sim
