// SimConfig::validate(): structured error reporting — every problem named,
// all at once — and its enforcement by the Simulation constructor and the
// scenario parser (including the schema_version gate).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "power/supply.h"
#include "sim/scenario_io.h"
#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

bool mentions(const std::vector<std::string>& errors, const std::string& what) {
  for (const auto& e : errors) {
    if (e.find(what) != std::string::npos) return true;
  }
  return false;
}

TEST(SimConfigValidate, DefaultConfigIsValid) {
  EXPECT_TRUE(SimConfig{}.validate().empty());
}

TEST(SimConfigValidate, ZeroServerLayoutIsNamed) {
  SimConfig cfg;
  cfg.datacenter.layout.servers_per_rack = 0;
  EXPECT_TRUE(mentions(cfg.validate(), "datacenter.layout"));
}

TEST(SimConfigValidate, NegativeWattagesAreNamed) {
  SimConfig cfg;
  cfg.demand_quantum = util::Watts{-1.0};
  cfg.rack_circuit_limit = util::Watts{-5.0};
  const auto errors = cfg.validate();
  EXPECT_TRUE(mentions(errors, "demand_quantum"));
  EXPECT_TRUE(mentions(errors, "rack_circuit_limit"));
}

TEST(SimConfigValidate, UpsWithoutSupplyIsNamed) {
  SimConfig cfg;
  cfg.ups = power::Ups(util::Joules{100.0}, 50_W, 20_W, 1.0);
  EXPECT_TRUE(mentions(cfg.validate(), "ups"));
  cfg.supply = std::make_shared<power::ConstantSupply>(500_W);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(SimConfigValidate, ProbabilityAndTickRangesAreNamed) {
  SimConfig cfg;
  cfg.churn_probability = 1.5;
  cfg.report_loss_probability = -0.1;
  cfg.warmup_ticks = -1;
  const auto errors = cfg.validate();
  EXPECT_TRUE(mentions(errors, "churn_probability"));
  EXPECT_TRUE(mentions(errors, "report_loss_probability"));
  EXPECT_TRUE(mentions(errors, "warmup_ticks"));
}

TEST(SimConfigValidate, CollectsEveryProblemNotJustTheFirst) {
  SimConfig cfg;
  cfg.datacenter.layout.zones = 0;
  cfg.demand_quantum = util::Watts{-1.0};
  cfg.churn_probability = 2.0;
  EXPECT_GE(cfg.validate().size(), 3u);
}

TEST(SimConfigValidate, BadAmbientEventIsNamedWithIndex) {
  SimConfig cfg;
  cfg.ambient_events.push_back({-3, 5, 2, 40_degC});
  const auto errors = cfg.validate();
  EXPECT_TRUE(mentions(errors, "ambient_events[0]"));
  EXPECT_GE(errors.size(), 2u);  // negative tick AND first > last
}

TEST(SimulationCtor, ThrowsAggregatedMessageOnInvalidConfig) {
  SimConfig cfg;
  cfg.datacenter.layout.zones = 0;
  cfg.demand_quantum = util::Watts{-2.0};
  try {
    Simulation sim(std::move(cfg));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("datacenter.layout"), std::string::npos);
    EXPECT_NE(what.find("demand_quantum"), std::string::npos);
  }
}

TEST(ScenarioSchemaVersion, CurrentAndV1Accepted) {
  std::istringstream v2("schema_version = 2\nutilization = 0.5\n");
  EXPECT_EQ(parse_scenario(v2).target_utilization, 0.5);
  std::istringstream v1("schema_version = 1\nutilization = 0.4\n");
  EXPECT_EQ(parse_scenario(v1).target_utilization, 0.4);
}

TEST(ScenarioSchemaVersion, NewerVersionRejectedWithLineNumber) {
  std::istringstream in("utilization = 0.5\nschema_version = 99\n");
  try {
    parse_scenario(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_NE(what.find("schema_version"), std::string::npos);
  }
}

TEST(ScenarioValidation, StructuralErrorsSurfaceThroughParser) {
  std::istringstream in("servers_per_rack = 0\n");
  try {
    parse_scenario(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("datacenter.layout"),
              std::string::npos);
  }
}

TEST(ScenarioValidation, UnknownKeyStillNamed) {
  std::istringstream in("not_a_key = 1\n");
  try {
    parse_scenario(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not_a_key"), std::string::npos);
  }
}

}  // namespace
}  // namespace willow::sim
