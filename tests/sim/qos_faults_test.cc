// Simulator integration of the QoS tracker and report-fault injection.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = 17;
  return cfg;
}

TEST(Qos, DisabledByDefault) {
  const auto r = run_simulation(base_config(0.5));
  EXPECT_TRUE(r.qos_satisfaction.empty());
  EXPECT_TRUE(r.qos_mean_inflation.empty());
}

TEST(Qos, PlentifulSupplyWithoutConsolidationMeetsTheSla) {
  auto cfg = base_config(0.4);
  cfg.sla_inflation = 5.0;
  cfg.controller.consolidation_threshold = 0.0;  // leave servers spread out
  const auto r = run_simulation(std::move(cfg));
  ASSERT_FALSE(r.qos_satisfaction.empty());
  EXPECT_GT(r.qos_satisfaction.stats().mean(), 0.9);
  EXPECT_GE(r.qos_mean_inflation.stats().min(), 1.0);
}

TEST(Qos, ConsolidationTradesQosForPower) {
  // FFDLR's intent is "run every server at full utilization" — which is
  // precisely where M/M/1 queueing explodes.  Packed hosts save power but
  // blow the 5x SLA; this is the Sec.-I latency-power tradeoff.
  auto packed = base_config(0.4);
  packed.sla_inflation = 5.0;
  auto spread = base_config(0.4);
  spread.sla_inflation = 5.0;
  spread.controller.consolidation_threshold = 0.0;
  const auto rp = run_simulation(std::move(packed));
  const auto rs = run_simulation(std::move(spread));
  EXPECT_LT(rp.qos_satisfaction.stats().mean(),
            rs.qos_satisfaction.stats().mean());
  EXPECT_LT(rp.total_power.stats().mean(), rs.total_power.stats().mean());
}

TEST(Qos, TargetFillFractionRecoversTheSla) {
  // Derating targets to 75% of their envelope keeps consolidated hosts
  // inside the 5x SLA (80% utilization limit) at a modest power premium.
  // Low demand variance isolates the knob (Poisson swings would carry even
  // a 0.75-filled host above the 80% SLA line half the time).
  auto full = base_config(0.4);
  full.sla_inflation = 5.0;
  full.demand_quantum = util::Watts{0.25};
  auto derated = base_config(0.4);
  derated.sla_inflation = 5.0;
  derated.demand_quantum = util::Watts{0.25};
  derated.controller.target_fill_fraction = 0.75;
  const auto rf = run_simulation(std::move(full));
  const auto rd = run_simulation(std::move(derated));
  EXPECT_GT(rd.qos_satisfaction.stats().mean(),
            rf.qos_satisfaction.stats().mean());
  EXPECT_GT(rd.qos_satisfaction.stats().mean(), 0.8);
}

TEST(Qos, FillFractionValidation) {
  core::ControllerConfig cfg;
  cfg.target_fill_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.target_fill_fraction = 1.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.target_fill_fraction = 0.8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Qos, DeficiencyDegradesSatisfaction) {
  auto plenty = base_config(0.5);
  plenty.sla_inflation = 5.0;
  auto starved = base_config(0.5);
  starved.sla_inflation = 5.0;
  starved.supply =
      std::make_shared<power::ConstantSupply>(Watts{28.125 * 18.0 * 0.5});
  const auto rp = run_simulation(std::move(plenty));
  const auto rs = run_simulation(std::move(starved));
  EXPECT_LT(rs.qos_satisfaction.stats().mean(),
            rp.qos_satisfaction.stats().mean());
  EXPECT_GT(rs.qos_mean_inflation.stats().mean(),
            rp.qos_mean_inflation.stats().mean());
}

TEST(Faults, ReportLossKeepsLeafStale) {
  core::Cluster cluster(1.0);
  const auto root = cluster.add_root("dc");
  const auto rack = cluster.add_group(root, "rack");
  core::ServerConfig sc;
  sc.power_model = power::ServerPowerModel(10_W, 450_W);
  const auto s = cluster.add_server(rack, "s", sc);
  workload::AppIdAllocator ids;
  cluster.place(workload::Application(ids.next(), 0, 50_W, 512_MB), s);

  cluster.observe_leaf_demands();
  EXPECT_DOUBLE_EQ(cluster.tree().node(s).smoothed_demand().value(), 60.0);
  // The demand changes but the report is lost: the leaf stays at 60.
  cluster.find_app(1)->set_demand(100_W);
  cluster.server(s).set_report_fault(true);
  cluster.observe_leaf_demands();
  EXPECT_DOUBLE_EQ(cluster.tree().node(s).smoothed_demand().value(), 60.0);
  // Report restored: the leaf catches up.
  cluster.server(s).set_report_fault(false);
  cluster.observe_leaf_demands();
  EXPECT_DOUBLE_EQ(cluster.tree().node(s).smoothed_demand().value(), 110.0);
}

TEST(Faults, SimulatorSurvivesHeavyReportLoss) {
  auto cfg = base_config(0.5);
  cfg.report_loss_probability = 0.3;
  cfg.sla_inflation = 5.0;
  cfg.controller.consolidation_threshold = 0.0;  // isolate the fault effect
  const auto r = run_simulation(std::move(cfg));
  // The control loop stays safe and keeps serving despite 30% lost reports.
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_GT(r.total_power.stats().mean(), 0.0);
  EXPECT_GT(r.qos_satisfaction.stats().mean(), 0.8);
}

TEST(Faults, TotalReportLossStillSafe) {
  // Even if every report is lost (the controller acts on build-time state
  // forever), nothing crashes and thermal safety holds: budgets remain
  // conservative against the thermal hard limits, which are sensed locally.
  auto cfg = base_config(0.5);
  cfg.report_loss_probability = 1.0;
  const auto r = run_simulation(std::move(cfg));
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_GT(r.total_power.stats().mean(), 0.0);
}

}  // namespace
}  // namespace willow::sim
