// Scheduled ambient changes: heat waves arrive, Willow adapts, nothing
// exceeds the thermal limit, and service recovers afterwards.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config() {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.6;
  cfg.warmup_ticks = 0;
  cfg.measure_ticks = 80;
  cfg.seed = 17;
  return cfg;
}

TEST(AmbientEvents, AppliedAtTheScheduledTick) {
  auto cfg = base_config();
  cfg.ambient_events = {{10, 0, 2, 45_degC}};
  Simulation sim(std::move(cfg));
  const auto r = sim.run();
  (void)r;
  auto& cluster = sim.datacenter().cluster;
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cluster.server(sim.datacenter().servers[i])
                         .thermal()
                         .params()
                         .ambient.value(),
                     45.0);
  }
  EXPECT_DOUBLE_EQ(cluster.server(sim.datacenter().servers[3])
                       .thermal()
                       .params()
                       .ambient.value(),
                   25.0);
}

TEST(AmbientEvents, HeatWaveNeverViolatesTheLimit) {
  auto cfg = base_config();
  cfg.ambient_events = {{15, 0, 17, 38_degC}, {40, 0, 17, 45_degC}};
  const auto r = run_simulation(std::move(cfg));
  EXPECT_FALSE(r.thermal_violation);
  EXPECT_LE(r.max_temperature_c, 70.5);
}

TEST(AmbientEvents, HeatWaveReducesServedPowerThenRecovers) {
  // The thermal time constant is 1/c2 = 20 periods, so both the squeeze and
  // the recovery take a few tens of ticks to express.
  auto cfg = base_config();
  cfg.measure_ticks = 110;
  cfg.ambient_events = {{15, 0, 17, 45_degC}, {70, 0, 17, 25_degC}};
  const auto r = run_simulation(std::move(cfg));
  const double before = r.total_power.mean_between(5.0, 14.0);
  const double during = r.total_power.mean_between(50.0, 69.0);
  const double after = r.total_power.mean_between(95.0, 109.0);
  // At 45 degC ambient the sustainable envelope shrinks from ~28 to ~16 W
  // per server: the fleet must serve substantially less.
  EXPECT_LT(during, before * 0.8);
  // And recovery restores service (revival of shed demand as hosts cool).
  EXPECT_GT(after, during * 1.05);
}

TEST(AmbientEvents, OutOfRangeIndicesClampSafely) {
  auto cfg = base_config();
  cfg.measure_ticks = 10;
  cfg.ambient_events = {{2, 10, 99, 40_degC}};  // last_server beyond fleet
  EXPECT_NO_THROW(run_simulation(std::move(cfg)));
}

}  // namespace
}  // namespace willow::sim
