file(REMOVE_RECURSE
  "CMakeFiles/fabric_test.dir/net/fabric_test.cc.o"
  "CMakeFiles/fabric_test.dir/net/fabric_test.cc.o.d"
  "fabric_test"
  "fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
