# Empty dependencies file for ipc_flows_test.
# This may be replaced when dependencies are built.
