file(REMOVE_RECURSE
  "CMakeFiles/ipc_flows_test.dir/sim/ipc_flows_test.cc.o"
  "CMakeFiles/ipc_flows_test.dir/sim/ipc_flows_test.cc.o.d"
  "ipc_flows_test"
  "ipc_flows_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_flows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
