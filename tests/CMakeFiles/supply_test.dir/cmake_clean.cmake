file(REMOVE_RECURSE
  "CMakeFiles/supply_test.dir/power/supply_test.cc.o"
  "CMakeFiles/supply_test.dir/power/supply_test.cc.o.d"
  "supply_test"
  "supply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
