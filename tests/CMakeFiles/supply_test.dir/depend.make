# Empty dependencies file for supply_test.
# This may be replaced when dependencies are built.
