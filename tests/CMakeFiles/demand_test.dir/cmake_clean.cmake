file(REMOVE_RECURSE
  "CMakeFiles/demand_test.dir/workload/demand_test.cc.o"
  "CMakeFiles/demand_test.dir/workload/demand_test.cc.o.d"
  "demand_test"
  "demand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
