file(REMOVE_RECURSE
  "CMakeFiles/convergence_test.dir/hier/convergence_test.cc.o"
  "CMakeFiles/convergence_test.dir/hier/convergence_test.cc.o.d"
  "convergence_test"
  "convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
