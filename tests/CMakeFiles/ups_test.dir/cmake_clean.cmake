file(REMOVE_RECURSE
  "CMakeFiles/ups_test.dir/power/ups_test.cc.o"
  "CMakeFiles/ups_test.dir/power/ups_test.cc.o.d"
  "ups_test"
  "ups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
