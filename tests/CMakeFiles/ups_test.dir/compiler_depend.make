# Empty compiler generated dependencies file for ups_test.
# This may be replaced when dependencies are built.
