file(REMOVE_RECURSE
  "CMakeFiles/churn_test.dir/sim/churn_test.cc.o"
  "CMakeFiles/churn_test.dir/sim/churn_test.cc.o.d"
  "churn_test"
  "churn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
