file(REMOVE_RECURSE
  "CMakeFiles/circuit_limits_test.dir/core/circuit_limits_test.cc.o"
  "CMakeFiles/circuit_limits_test.dir/core/circuit_limits_test.cc.o.d"
  "circuit_limits_test"
  "circuit_limits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
