# Empty compiler generated dependencies file for circuit_limits_test.
# This may be replaced when dependencies are built.
