# Empty dependencies file for trace_determinism_test.
# This may be replaced when dependencies are built.
