file(REMOVE_RECURSE
  "CMakeFiles/trace_determinism_test.dir/obs/trace_determinism_test.cc.o"
  "CMakeFiles/trace_determinism_test.dir/obs/trace_determinism_test.cc.o.d"
  "trace_determinism_test"
  "trace_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
