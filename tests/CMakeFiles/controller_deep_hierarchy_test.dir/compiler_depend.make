# Empty compiler generated dependencies file for controller_deep_hierarchy_test.
# This may be replaced when dependencies are built.
