file(REMOVE_RECURSE
  "CMakeFiles/controller_deep_hierarchy_test.dir/core/controller_deep_hierarchy_test.cc.o"
  "CMakeFiles/controller_deep_hierarchy_test.dir/core/controller_deep_hierarchy_test.cc.o.d"
  "controller_deep_hierarchy_test"
  "controller_deep_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_deep_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
