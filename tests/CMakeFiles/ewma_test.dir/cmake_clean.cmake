file(REMOVE_RECURSE
  "CMakeFiles/ewma_test.dir/util/ewma_test.cc.o"
  "CMakeFiles/ewma_test.dir/util/ewma_test.cc.o.d"
  "ewma_test"
  "ewma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
