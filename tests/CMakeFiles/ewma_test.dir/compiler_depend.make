# Empty compiler generated dependencies file for ewma_test.
# This may be replaced when dependencies are built.
