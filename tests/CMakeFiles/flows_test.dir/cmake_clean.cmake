file(REMOVE_RECURSE
  "CMakeFiles/flows_test.dir/workload/flows_test.cc.o"
  "CMakeFiles/flows_test.dir/workload/flows_test.cc.o.d"
  "flows_test"
  "flows_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
