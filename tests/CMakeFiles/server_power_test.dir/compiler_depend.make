# Empty compiler generated dependencies file for server_power_test.
# This may be replaced when dependencies are built.
