file(REMOVE_RECURSE
  "CMakeFiles/server_power_test.dir/power/server_power_test.cc.o"
  "CMakeFiles/server_power_test.dir/power/server_power_test.cc.o.d"
  "server_power_test"
  "server_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
