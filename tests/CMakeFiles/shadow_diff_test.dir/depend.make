# Empty dependencies file for shadow_diff_test.
# This may be replaced when dependencies are built.
