file(REMOVE_RECURSE
  "CMakeFiles/shadow_diff_test.dir/integration/shadow_diff_test.cc.o"
  "CMakeFiles/shadow_diff_test.dir/integration/shadow_diff_test.cc.o.d"
  "shadow_diff_test"
  "shadow_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
