file(REMOVE_RECURSE
  "CMakeFiles/mix_test.dir/workload/mix_test.cc.o"
  "CMakeFiles/mix_test.dir/workload/mix_test.cc.o.d"
  "mix_test"
  "mix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
