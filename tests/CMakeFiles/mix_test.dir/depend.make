# Empty dependencies file for mix_test.
# This may be replaced when dependencies are built.
