
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hier/dump_test.cc" "tests/CMakeFiles/dump_test.dir/hier/dump_test.cc.o" "gcc" "tests/CMakeFiles/dump_test.dir/hier/dump_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  "/root/repo/src/thermal/CMakeFiles/willow_thermal.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/willow_power.dir/DependInfo.cmake"
  "/root/repo/src/workload/CMakeFiles/willow_workload.dir/DependInfo.cmake"
  "/root/repo/src/binpack/CMakeFiles/willow_binpack.dir/DependInfo.cmake"
  "/root/repo/src/hier/CMakeFiles/willow_hier.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/willow_net.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/willow_core.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/willow_sim.dir/DependInfo.cmake"
  "/root/repo/src/testbed/CMakeFiles/willow_testbed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
