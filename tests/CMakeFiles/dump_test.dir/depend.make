# Empty dependencies file for dump_test.
# This may be replaced when dependencies are built.
