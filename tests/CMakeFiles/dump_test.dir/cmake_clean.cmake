file(REMOVE_RECURSE
  "CMakeFiles/dump_test.dir/hier/dump_test.cc.o"
  "CMakeFiles/dump_test.dir/hier/dump_test.cc.o.d"
  "dump_test"
  "dump_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
