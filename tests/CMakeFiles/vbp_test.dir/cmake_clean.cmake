file(REMOVE_RECURSE
  "CMakeFiles/vbp_test.dir/binpack/vbp_test.cc.o"
  "CMakeFiles/vbp_test.dir/binpack/vbp_test.cc.o.d"
  "vbp_test"
  "vbp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
