# Empty compiler generated dependencies file for vbp_test.
# This may be replaced when dependencies are built.
