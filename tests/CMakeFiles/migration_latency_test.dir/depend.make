# Empty dependencies file for migration_latency_test.
# This may be replaced when dependencies are built.
