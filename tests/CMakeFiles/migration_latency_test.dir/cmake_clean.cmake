file(REMOVE_RECURSE
  "CMakeFiles/migration_latency_test.dir/core/migration_latency_test.cc.o"
  "CMakeFiles/migration_latency_test.dir/core/migration_latency_test.cc.o.d"
  "migration_latency_test"
  "migration_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
