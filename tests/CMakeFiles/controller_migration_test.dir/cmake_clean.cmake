file(REMOVE_RECURSE
  "CMakeFiles/controller_migration_test.dir/core/controller_migration_test.cc.o"
  "CMakeFiles/controller_migration_test.dir/core/controller_migration_test.cc.o.d"
  "controller_migration_test"
  "controller_migration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
