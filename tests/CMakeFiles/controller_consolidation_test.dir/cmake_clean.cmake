file(REMOVE_RECURSE
  "CMakeFiles/controller_consolidation_test.dir/core/controller_consolidation_test.cc.o"
  "CMakeFiles/controller_consolidation_test.dir/core/controller_consolidation_test.cc.o.d"
  "controller_consolidation_test"
  "controller_consolidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_consolidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
