# Empty dependencies file for controller_consolidation_test.
# This may be replaced when dependencies are built.
