file(REMOVE_RECURSE
  "CMakeFiles/controller_misc_test.dir/core/controller_misc_test.cc.o"
  "CMakeFiles/controller_misc_test.dir/core/controller_misc_test.cc.o.d"
  "controller_misc_test"
  "controller_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
