# Empty dependencies file for controller_misc_test.
# This may be replaced when dependencies are built.
