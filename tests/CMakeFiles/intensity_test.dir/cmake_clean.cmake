file(REMOVE_RECURSE
  "CMakeFiles/intensity_test.dir/workload/intensity_test.cc.o"
  "CMakeFiles/intensity_test.dir/workload/intensity_test.cc.o.d"
  "intensity_test"
  "intensity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intensity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
