# Empty dependencies file for intensity_test.
# This may be replaced when dependencies are built.
