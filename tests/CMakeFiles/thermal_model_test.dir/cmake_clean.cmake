file(REMOVE_RECURSE
  "CMakeFiles/thermal_model_test.dir/thermal/thermal_model_test.cc.o"
  "CMakeFiles/thermal_model_test.dir/thermal/thermal_model_test.cc.o.d"
  "thermal_model_test"
  "thermal_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
