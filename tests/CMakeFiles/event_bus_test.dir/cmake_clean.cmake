file(REMOVE_RECURSE
  "CMakeFiles/event_bus_test.dir/obs/event_bus_test.cc.o"
  "CMakeFiles/event_bus_test.dir/obs/event_bus_test.cc.o.d"
  "event_bus_test"
  "event_bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
