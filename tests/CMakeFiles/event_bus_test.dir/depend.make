# Empty dependencies file for event_bus_test.
# This may be replaced when dependencies are built.
