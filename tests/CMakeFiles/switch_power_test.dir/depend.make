# Empty dependencies file for switch_power_test.
# This may be replaced when dependencies are built.
