file(REMOVE_RECURSE
  "CMakeFiles/switch_power_test.dir/power/switch_power_test.cc.o"
  "CMakeFiles/switch_power_test.dir/power/switch_power_test.cc.o.d"
  "switch_power_test"
  "switch_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
