file(REMOVE_RECURSE
  "CMakeFiles/intensity_cooling_test.dir/sim/intensity_cooling_test.cc.o"
  "CMakeFiles/intensity_cooling_test.dir/sim/intensity_cooling_test.cc.o.d"
  "intensity_cooling_test"
  "intensity_cooling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intensity_cooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
