# Empty compiler generated dependencies file for intensity_cooling_test.
# This may be replaced when dependencies are built.
