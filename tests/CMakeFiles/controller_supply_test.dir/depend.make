# Empty dependencies file for controller_supply_test.
# This may be replaced when dependencies are built.
