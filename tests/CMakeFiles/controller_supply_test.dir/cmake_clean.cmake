file(REMOVE_RECURSE
  "CMakeFiles/controller_supply_test.dir/core/controller_supply_test.cc.o"
  "CMakeFiles/controller_supply_test.dir/core/controller_supply_test.cc.o.d"
  "controller_supply_test"
  "controller_supply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
