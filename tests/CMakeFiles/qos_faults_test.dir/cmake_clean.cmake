file(REMOVE_RECURSE
  "CMakeFiles/qos_faults_test.dir/sim/qos_faults_test.cc.o"
  "CMakeFiles/qos_faults_test.dir/sim/qos_faults_test.cc.o.d"
  "qos_faults_test"
  "qos_faults_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
