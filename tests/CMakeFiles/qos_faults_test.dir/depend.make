# Empty dependencies file for qos_faults_test.
# This may be replaced when dependencies are built.
