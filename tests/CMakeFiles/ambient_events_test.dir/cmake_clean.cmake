file(REMOVE_RECURSE
  "CMakeFiles/ambient_events_test.dir/sim/ambient_events_test.cc.o"
  "CMakeFiles/ambient_events_test.dir/sim/ambient_events_test.cc.o.d"
  "ambient_events_test"
  "ambient_events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambient_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
