# Empty dependencies file for ambient_events_test.
# This may be replaced when dependencies are built.
