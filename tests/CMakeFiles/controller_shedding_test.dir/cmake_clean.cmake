file(REMOVE_RECURSE
  "CMakeFiles/controller_shedding_test.dir/core/controller_shedding_test.cc.o"
  "CMakeFiles/controller_shedding_test.dir/core/controller_shedding_test.cc.o.d"
  "controller_shedding_test"
  "controller_shedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_shedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
