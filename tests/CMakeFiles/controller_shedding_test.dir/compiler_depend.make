# Empty compiler generated dependencies file for controller_shedding_test.
# This may be replaced when dependencies are built.
