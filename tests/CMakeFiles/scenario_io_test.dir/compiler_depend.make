# Empty compiler generated dependencies file for scenario_io_test.
# This may be replaced when dependencies are built.
