file(REMOVE_RECURSE
  "CMakeFiles/scenario_io_test.dir/sim/scenario_io_test.cc.o"
  "CMakeFiles/scenario_io_test.dir/sim/scenario_io_test.cc.o.d"
  "scenario_io_test"
  "scenario_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
