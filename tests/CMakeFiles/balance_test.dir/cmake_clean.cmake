file(REMOVE_RECURSE
  "CMakeFiles/balance_test.dir/core/balance_test.cc.o"
  "CMakeFiles/balance_test.dir/core/balance_test.cc.o.d"
  "balance_test"
  "balance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
