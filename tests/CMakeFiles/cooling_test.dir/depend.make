# Empty dependencies file for cooling_test.
# This may be replaced when dependencies are built.
