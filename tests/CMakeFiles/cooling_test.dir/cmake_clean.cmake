file(REMOVE_RECURSE
  "CMakeFiles/cooling_test.dir/power/cooling_test.cc.o"
  "CMakeFiles/cooling_test.dir/power/cooling_test.cc.o.d"
  "cooling_test"
  "cooling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
