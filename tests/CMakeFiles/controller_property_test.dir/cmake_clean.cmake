file(REMOVE_RECURSE
  "CMakeFiles/controller_property_test.dir/core/controller_property_test.cc.o"
  "CMakeFiles/controller_property_test.dir/core/controller_property_test.cc.o.d"
  "controller_property_test"
  "controller_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
