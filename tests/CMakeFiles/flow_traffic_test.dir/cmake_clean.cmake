file(REMOVE_RECURSE
  "CMakeFiles/flow_traffic_test.dir/net/flow_traffic_test.cc.o"
  "CMakeFiles/flow_traffic_test.dir/net/flow_traffic_test.cc.o.d"
  "flow_traffic_test"
  "flow_traffic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
