// Consolidation (Sec. IV-C/IV-E/V-C5): draining low-utilization servers into
// siblings, sleeping them, all-or-nothing placement, and waking on demand.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, s00, s01;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    s00 = cluster.add_server(rack0, "s00", lax_server());
    s01 = cluster.add_server(rack0, "s01", lax_server());
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.consolidation_threshold = 0.2;  // the testbed's 20%
    return cfg;
  }
};

TEST(Consolidation, LowUtilizationServerDrainedAndSlept) {
  Fixture f;
  f.host(f.s00, 170.0);  // ~39% of the 440 W dynamic range
  f.host(f.s01, 20.0);   // ~4.5%: candidate
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 7; ++t) ctl.tick(880_W);  // ΔA fires at tick 7
  EXPECT_TRUE(f.cluster.server(f.s01).asleep());
  EXPECT_EQ(ctl.stats().sleeps, 1u);
  EXPECT_GT(ctl.stats().consolidation_migrations, 0u);
  // The drained app now lives on s00.
  EXPECT_EQ(f.cluster.server(f.s00).apps().size(), 2u);
  EXPECT_DOUBLE_EQ(f.cluster.tree().node(f.s01).budget().value(), 0.0);
  // Migration records carry the consolidation cause.
  bool saw_consolidation = false;
  for (const auto& r : ctl.migrations_this_tick()) {
    if (r.cause == MigrationCause::kConsolidation) saw_consolidation = true;
  }
  EXPECT_TRUE(saw_consolidation);
}

TEST(Consolidation, DoesNotFireBeforeDeltaA) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 20.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 6; ++t) ctl.tick(880_W);
  EXPECT_FALSE(f.cluster.server(f.s01).asleep());
  EXPECT_EQ(ctl.stats().consolidation_migrations, 0u);
}

TEST(Consolidation, BusyServersAreNotCandidates) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 160.0);  // 36%: above the 20% threshold
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 14; ++t) ctl.tick(880_W);
  EXPECT_FALSE(f.cluster.server(f.s00).asleep());
  EXPECT_FALSE(f.cluster.server(f.s01).asleep());
  EXPECT_EQ(ctl.stats().sleeps, 0u);
}

TEST(Consolidation, AllOrNothingPlacement) {
  Fixture f;
  // s01 idles at 18% with three 27 W apps; s00 has surplus for barely one.
  f.host(f.s00, 400.0);  // 91%: surplus under an ample budget is small
  f.host(f.s01, 27.0);
  f.host(f.s01, 27.0);
  f.host(f.s01, 27.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 14; ++t) ctl.tick(600_W);
  // Everything-or-nothing: s01 must still host all three apps.
  EXPECT_FALSE(f.cluster.server(f.s01).asleep());
  EXPECT_EQ(f.cluster.server(f.s01).apps().size(), 3u);
  EXPECT_EQ(ctl.stats().consolidation_migrations, 0u);
}

TEST(Consolidation, EmptyServerSleepsDirectly) {
  Fixture f;
  f.host(f.s00, 170.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 7; ++t) ctl.tick(880_W);
  EXPECT_TRUE(f.cluster.server(f.s01).asleep());
  EXPECT_EQ(ctl.stats().consolidation_migrations, 0u);  // nothing to move
  EXPECT_EQ(ctl.stats().sleeps, 1u);
}

TEST(Consolidation, StarvedServerIsNotMistakenForIdle) {
  // A server whose *budget* is tiny but whose demand is high must not be
  // consolidated away (utilization is measured against demand, not budget).
  Fixture f;
  f.host(f.s00, 200.0);
  f.host(f.s01, 200.0);
  ControllerConfig cfg = f.config();
  cfg.allow_drop = false;  // keep the demand standing instead of degrading
  Controller ctl(f.cluster, cfg);
  for (int t = 1; t <= 14; ++t) ctl.tick(100_W);  // heavy starvation
  EXPECT_EQ(ctl.stats().sleeps, 0u);
}

TEST(Consolidation, WakeOnUnplaceableDemand) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 20.0);
  ControllerConfig cfg = f.config();
  Controller ctl(f.cluster, cfg);
  for (int t = 1; t <= 7; ++t) ctl.tick(880_W);
  ASSERT_TRUE(f.cluster.server(f.s01).asleep());
  // New heavy workload arrives on s00: its budget cannot stretch (capacity
  // cap of the single awake server), so the controller wakes s01.
  f.host(f.s00, 400.0);
  for (int t = 8; t <= 16; ++t) ctl.tick(880_W);
  EXPECT_GT(ctl.stats().wakes, 0u);
  EXPECT_FALSE(f.cluster.server(f.s01).asleep());
  // And the woken server actually received workload.
  EXPECT_FALSE(f.cluster.server(f.s01).apps().empty());
}

TEST(Consolidation, DisabledWakeLeavesServerAsleep) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 20.0);
  ControllerConfig cfg = f.config();
  cfg.allow_wake = false;
  Controller ctl(f.cluster, cfg);
  for (int t = 1; t <= 7; ++t) ctl.tick(880_W);
  ASSERT_TRUE(f.cluster.server(f.s01).asleep());
  f.host(f.s00, 400.0);
  for (int t = 8; t <= 16; ++t) ctl.tick(880_W);
  EXPECT_EQ(ctl.stats().wakes, 0u);
  EXPECT_TRUE(f.cluster.server(f.s01).asleep());
  EXPECT_GT(ctl.stats().drops, 0u);  // demand had to degrade instead
}

TEST(Consolidation, IdleServersMergeIntoBusyOneNeverIntoSleepers) {
  // Three servers: the two low-utilization ones drain into the busy one.
  // Migration targets must end the tick awake (no migrating onto a server
  // that then sleeps — the intra-tick ping-pong guard).
  Fixture f;
  const NodeId s02 = f.cluster.add_server(f.rack0, "s02", lax_server());
  f.host(f.s00, 30.0);
  f.host(f.s01, 25.0);
  f.host(s02, 170.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 1; t <= 7; ++t) ctl.tick(Watts{1320.0});
  EXPECT_FALSE(f.cluster.server(s02).asleep());
  for (const auto& r : ctl.migrations_this_tick()) {
    EXPECT_FALSE(f.cluster.server(r.to).asleep())
        << "migrated onto a server that then slept";
  }
  // All three applications survive, hosted on awake servers.
  std::size_t hosted = 0;
  for (NodeId s : f.cluster.server_ids()) {
    if (!f.cluster.server(s).asleep()) {
      hosted += f.cluster.server(s).apps().size();
    }
  }
  EXPECT_EQ(hosted, 3u);
}

}  // namespace
}  // namespace willow::core
