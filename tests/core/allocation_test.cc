#include "core/allocation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;

std::vector<Watts> watts_of(std::initializer_list<double> xs) {
  std::vector<Watts> v;
  for (double x : xs) v.emplace_back(x);
  return v;
}

double sum(const std::vector<Watts>& v) {
  double s = 0.0;
  for (const auto& w : v) s += w.value();
  return s;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Allocation, ValidatesInputs) {
  EXPECT_THROW(
      allocate_proportional(100_W, watts_of({1.0}), watts_of({1.0, 2.0})),
      std::invalid_argument);
  EXPECT_THROW(
      allocate_proportional(Watts{-1.0}, watts_of({1.0}), watts_of({1.0})),
      std::invalid_argument);
}

TEST(Allocation, EmptyChildrenReturnsAllUnallocated) {
  const auto r = allocate_proportional(100_W, {}, {});
  EXPECT_TRUE(r.budgets.empty());
  EXPECT_DOUBLE_EQ(r.unallocated.value(), 100.0);
}

TEST(Allocation, DeficitRegimeIsProportionalToDemand) {
  // Total 60 against demands (30, 60, 90): shares 10/20/30.
  const auto r = allocate_proportional(
      60_W, watts_of({30, 60, 90}), watts_of({kInf, kInf, kInf}));
  EXPECT_NEAR(r.budgets[0].value(), 10.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 20.0, 1e-9);
  EXPECT_NEAR(r.budgets[2].value(), 30.0, 1e-9);
  EXPECT_NEAR(r.unallocated.value(), 0.0, 1e-9);
}

TEST(Allocation, ExactDemandMet) {
  const auto r = allocate_proportional(
      100_W, watts_of({40, 60}), watts_of({kInf, kInf}));
  EXPECT_NEAR(r.budgets[0].value(), 40.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 60.0, 1e-9);
}

TEST(Allocation, SurplusSpreadsProportionalToDemand) {
  // 50 spare over demands (40, 60): +20 and +30.
  const auto r = allocate_proportional(
      150_W, watts_of({40, 60}), watts_of({kInf, kInf}));
  EXPECT_NEAR(r.budgets[0].value(), 60.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 90.0, 1e-9);
  EXPECT_NEAR(r.unallocated.value(), 0.0, 1e-9);
}

TEST(Allocation, HardCapsRedirectToUncappedSiblings) {
  // Child 0 capped at 15 although its share would be 30: the excess flows
  // to child 1 (uncapped), not back up.
  const auto r = allocate_proportional(
      60_W, watts_of({30, 30}), watts_of({15, kInf}));
  EXPECT_NEAR(r.budgets[0].value(), 15.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 45.0, 1e-9);
}

TEST(Allocation, UnallocatableWhenAllCapped) {
  const auto r = allocate_proportional(
      100_W, watts_of({50, 50}), watts_of({20, 30}));
  EXPECT_NEAR(r.budgets[0].value(), 20.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 30.0, 1e-9);
  EXPECT_NEAR(r.unallocated.value(), 50.0, 1e-9);
}

TEST(Allocation, ZeroDemandChildrenShareByCapHeadroom) {
  // Nothing demands anything; the surplus still banks downstream in
  // proportion to caps (phase 2b).
  const auto r = allocate_proportional(
      90_W, watts_of({0, 0}), watts_of({100, 200}));
  EXPECT_NEAR(r.budgets[0].value(), 30.0, 1e-9);
  EXPECT_NEAR(r.budgets[1].value(), 60.0, 1e-9);
}

TEST(Allocation, MixedZeroAndNonZeroDemands) {
  // Demanders get satisfied first; true leftover then goes by headroom.
  const auto r = allocate_proportional(
      100_W, watts_of({40, 0}), watts_of({50, 60}));
  EXPECT_NEAR(r.budgets[0].value(), 50.0, 1e-9);  // 40 demand + spare to cap
  EXPECT_NEAR(r.budgets[1].value(), 50.0, 1e-9);
  EXPECT_NEAR(r.unallocated.value(), 0.0, 1e-9);
}

TEST(Allocation, ZeroTotal) {
  const auto r = allocate_proportional(
      Watts{0.0}, watts_of({10, 20}), watts_of({kInf, kInf}));
  EXPECT_DOUBLE_EQ(r.budgets[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(r.budgets[1].value(), 0.0);
}

TEST(Allocation, NegativeDemandsTreatedAsZero) {
  const auto r = allocate_proportional(
      10_W, watts_of({-5, 10}), watts_of({kInf, kInf}));
  EXPECT_DOUBLE_EQ(r.budgets[0].value(), 0.0);
  EXPECT_NEAR(r.budgets[1].value(), 10.0, 1e-9);
}

TEST(Allocation, SingleChildTakesEverythingUpToCap) {
  auto r = allocate_proportional(100_W, watts_of({30}), watts_of({kInf}));
  EXPECT_DOUBLE_EQ(r.budgets[0].value(), 100.0);
  r = allocate_proportional(100_W, watts_of({30}), watts_of({60}));
  EXPECT_DOUBLE_EQ(r.budgets[0].value(), 60.0);
  EXPECT_DOUBLE_EQ(r.unallocated.value(), 40.0);
}

TEST(Allocation, AllZeroCapsReturnEverything) {
  const auto r =
      allocate_proportional(100_W, watts_of({10, 20}), watts_of({0, 0}));
  EXPECT_DOUBLE_EQ(r.budgets[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(r.budgets[1].value(), 0.0);
  EXPECT_DOUBLE_EQ(r.unallocated.value(), 100.0);
}

TEST(Allocation, HugeTotalWithInfiniteCapsFullyAllocated) {
  const auto r = allocate_proportional(Watts{1e9}, watts_of({1, 3}),
                                       watts_of({kInf, kInf}));
  EXPECT_NEAR(r.unallocated.value(), 0.0, 1.0);
  // Surplus spread proportional to demand: 1:3.
  EXPECT_NEAR(r.budgets[1].value() / r.budgets[0].value(), 3.0, 1e-6);
}

TEST(Allocation, TinyTotalSplitsProportionally) {
  const auto r = allocate_proportional(Watts{1e-6}, watts_of({10, 30}),
                                       watts_of({kInf, kInf}));
  EXPECT_NEAR(r.budgets[0].value(), 0.25e-6, 1e-12);
  EXPECT_NEAR(r.budgets[1].value(), 0.75e-6, 1e-12);
}

class AllocationRandom : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(AllocationRandom, ConservationAndCapsAlwaysHold) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const int n = rng.uniform_int(1, 12);
    std::vector<Watts> demands, caps;
    for (int i = 0; i < n; ++i) {
      demands.emplace_back(rng.uniform(0.0, 100.0));
      caps.emplace_back(rng.chance(0.2) ? kInf : rng.uniform(0.0, 150.0));
    }
    const Watts total{rng.uniform(0.0, 600.0)};
    const auto r = allocate_proportional(total, demands, caps);
    ASSERT_EQ(r.budgets.size(), static_cast<std::size_t>(n));
    double s = sum(r.budgets);
    // Conservation: nothing created or lost.
    EXPECT_NEAR(s + r.unallocated.value(), total.value(), 1e-6);
    for (int i = 0; i < n; ++i) {
      EXPECT_GE(r.budgets[i].value(), -1e-9);
      EXPECT_LE(r.budgets[i].value(), caps[i].value() + 1e-6);
    }
    // No watt idles while an unsatisfied demand remains below its cap.
    if (r.unallocated.value() > 1e-6) {
      for (int i = 0; i < n; ++i) {
        EXPECT_GE(r.budgets[i].value() + 1e-6, caps[i].value())
            << "unallocated " << r.unallocated.value() << " but child " << i
            << " below cap";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace willow::core
