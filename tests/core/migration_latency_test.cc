// Migration latency (extension): transfers take time proportional to the VM
// image; the application keeps running at the source meanwhile and the
// target holds a capacity reservation.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack, s00, s01;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack = cluster.add_group(root, "rack");
    s00 = cluster.add_server(rack, "s00", lax_server());
    s01 = cluster.add_server(rack, "s01", lax_server());
  }

  workload::AppId host(NodeId server, double watts, double image_mb = 2048.0) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, util::Megabytes{image_mb}),
                  server);
    return id;
  }

  ControllerConfig config(double periods_per_gib) {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    cfg.migration_periods_per_gib = periods_per_gib;
    cfg.allow_drop = false;
    return cfg;
  }
};

TEST(MigrationLatency, ZeroLatencyMovesWithinTheTick) {
  Fixture f;
  const auto app = f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config(0.0));
  ctl.tick(200_W);  // 100 each; s00 deficit
  EXPECT_EQ(f.cluster.host_of(app), f.s01);  // moved immediately
  EXPECT_EQ(ctl.migrations_in_flight(), 0u);
}

TEST(MigrationLatency, TransferTakesImageProportionalTime) {
  Fixture f;
  // 2 GiB image at 2 periods/GiB -> 4 periods in transit.
  const auto heavy = f.host(f.s00, 50.0, 2048.0);
  const auto other = f.host(f.s00, 50.0, 2048.0);
  Controller ctl(f.cluster, f.config(2.0));
  ctl.tick(200_W);
  ASSERT_EQ(ctl.migrations_this_tick().size(), 1u);
  const auto moving = ctl.migrations_this_tick()[0].app;
  EXPECT_TRUE(moving == heavy || moving == other);
  EXPECT_EQ(ctl.migrations_in_flight(), 1u);
  // The app is still hosted (and drawing) at the source while in transit.
  EXPECT_EQ(f.cluster.host_of(moving), f.s00);
  for (int t = 0; t < 3; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(200_W);
    EXPECT_EQ(f.cluster.host_of(moving), f.s00) << "tick " << ctl.tick_count();
  }
  // Initiated at tick 1, 4 periods: lands when tick 5 begins.
  f.cluster.refresh_demands_constant();
  ctl.tick(200_W);
  EXPECT_EQ(f.cluster.host_of(moving), f.s01);
  EXPECT_EQ(ctl.migrations_in_flight(), 0u);
}

TEST(MigrationLatency, NoReplanningWhileInFlight) {
  Fixture f;
  f.host(f.s00, 50.0, 2048.0);
  f.host(f.s00, 50.0, 2048.0);
  Controller ctl(f.cluster, f.config(2.0));
  ctl.tick(200_W);
  ASSERT_EQ(ctl.stats().total_migrations(), 1u);
  // The deficit persists at the source while the transfer runs, but the
  // controller must not pile on more migrations for the same load.
  for (int t = 0; t < 3; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(200_W);
  }
  EXPECT_EQ(ctl.stats().total_migrations(), 1u);
}

TEST(MigrationLatency, ReservationBlocksDoubleBooking) {
  Fixture f;
  const NodeId s02 = f.cluster.add_server(f.rack, "s02", lax_server());
  // Two overloaded servers target the single idle berth; its capacity must
  // not be promised twice across the in-flight window.
  f.host(f.s00, 90.0, 2048.0);
  f.host(f.s00, 90.0, 2048.0);
  f.host(f.s01, 90.0, 2048.0);
  f.host(f.s01, 90.0, 2048.0);
  Controller ctl(f.cluster, f.config(2.0));
  // 150 W per server: each loaded server has a 40 W deficit; s02's usable
  // capacity (140 - margin) fits one 92 W item plus change, not two 92s.
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{450.0});
  }
  // Never over-committed: s02's hosted + reserved demand stays within its
  // budget at every point; at the end its hosted apps fit its budget.
  double hosted = 10.0;  // idle floor
  for (const auto& a : f.cluster.server(s02).apps()) {
    hosted += a.demand().value();
  }
  EXPECT_LE(hosted, 150.0 + 1e-6);
}

TEST(MigrationLatency, StatsCountInitiationsOnce) {
  Fixture f;
  f.host(f.s00, 50.0, 1024.0);
  f.host(f.s00, 50.0, 1024.0);
  Controller ctl(f.cluster, f.config(1.0));
  for (int t = 0; t < 6; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(200_W);
  }
  EXPECT_EQ(ctl.stats().total_migrations(), 1u);
  EXPECT_EQ(ctl.migrations_in_flight(), 0u);
}

}  // namespace
}  // namespace willow::core
