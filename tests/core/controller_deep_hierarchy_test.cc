// Escalation through a 4-level hierarchy (datacenter -> zones -> racks ->
// servers): locality is preferred level by level, and the unidirectional
// rule gates zone boundaries, not just racks.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

/// datacenter -> 2 zones -> 2 racks each -> 2 servers each (8 servers).
struct DeepFixture {
  Cluster cluster{1.0};
  NodeId root;
  NodeId zone[2];
  NodeId rack[2][2];
  NodeId server[2][2][2];
  workload::AppIdAllocator ids;

  DeepFixture() {
    root = cluster.add_root("dc");
    for (int z = 0; z < 2; ++z) {
      zone[z] = cluster.add_group(root, "zone" + std::to_string(z),
                                  hier::NodeKind::kGeneric);
      for (int r = 0; r < 2; ++r) {
        rack[z][r] = cluster.add_group(zone[z], "rack");
        for (int s = 0; s < 2; ++s) {
          server[z][r][s] = cluster.add_server(rack[z][r], "srv", lax_server());
        }
      }
    }
  }

  void host(NodeId where, double watts) {
    cluster.place(Application(ids.next(), 0, Watts{watts}, 512_MB), where);
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 2_W;
    cfg.migration_cost = 1_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    return cfg;
  }

  [[nodiscard]] bool in_zone(NodeId node, int z) const {
    return cluster.tree().is_ancestor(zone[z], node);
  }
};

TEST(DeepHierarchy, FourLevelsAndPaperNumbering) {
  DeepFixture f;
  EXPECT_EQ(f.cluster.tree().height(), 4);
  EXPECT_EQ(f.cluster.server_ids().size(), 8u);
  EXPECT_EQ(f.cluster.tree().level_of(f.server[0][0][0]), 0);
  EXPECT_EQ(f.cluster.tree().level_of(f.rack[0][0]), 1);
  EXPECT_EQ(f.cluster.tree().level_of(f.zone[0]), 2);
  EXPECT_EQ(f.cluster.tree().level_of(f.root), 3);
}

TEST(DeepHierarchy, EscalationPrefersSameZone) {
  DeepFixture f;
  f.host(f.server[0][0][0], 80.0);
  f.host(f.server[0][0][0], 80.0);  // s000: 170 W, deficit at 100 W budget
  f.host(f.server[0][0][1], 80.0);  // local sibling full
  f.host(f.server[0][1][1], 80.0);  // other zone-0 rack: one full server...
  // ...but server[0][1][0] idles: the zone-0 berth that must win over zone 1.
  Controller ctl(f.cluster, f.config());
  ctl.tick(800_W);  // 100 W per server
  ASSERT_FALSE(ctl.migrations_this_tick().empty());
  for (const auto& rec : ctl.migrations_this_tick()) {
    EXPECT_EQ(rec.to, f.server[0][1][0]) << "expected the same-zone berth";
    EXPECT_TRUE(f.in_zone(rec.to, 0));
    EXPECT_FALSE(rec.local);  // crosses racks within the zone
  }
  EXPECT_EQ(ctl.stats().drops, 0u);
}

TEST(DeepHierarchy, RootEscalationWhenOwnZoneFull) {
  DeepFixture f;
  f.host(f.server[0][0][0], 80.0);
  f.host(f.server[0][0][0], 80.0);  // deficit source
  f.host(f.server[0][0][1], 80.0);
  f.host(f.server[0][1][0], 80.0);
  f.host(f.server[0][1][1], 80.0);  // zone 0 entirely without surplus
  Controller ctl(f.cluster, f.config());
  ctl.tick(800_W);
  ASSERT_FALSE(ctl.migrations_this_tick().empty());
  for (const auto& rec : ctl.migrations_this_tick()) {
    EXPECT_TRUE(f.in_zone(rec.to, 1)) << "only zone 1 had surplus";
  }
}

TEST(DeepHierarchy, PlungeBlocksCrossZoneIntoDeficitZone) {
  DeepFixture f;
  // Zone 0: one overloaded server, three loaded ones (zone-wide deficit
  // after the plunge, no internal surplus).
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);  // 170 W
  f.host(f.server[0][0][1], 80.0);
  f.host(f.server[0][1][0], 80.0);
  f.host(f.server[0][1][1], 80.0);
  // Zone 1: one overloaded rack, one idle rack (individual surpluses that
  // the rule must fence off because zone 1 is reduced AND deficient).
  f.host(f.server[1][0][0], 80.0);
  f.host(f.server[1][0][0], 80.0);  // 170 W
  f.host(f.server[1][0][1], 80.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{1600.0});  // comfortable: 200 W per server
  ctl.tick(Watts{1600.0});
  ctl.tick(Watts{1600.0});
  ctl.tick(Watts{480.0});  // ΔS plunge: 60 W per server
  EXPECT_TRUE(ctl.budget_reduced(f.zone[0]));
  EXPECT_TRUE(ctl.budget_reduced(f.zone[1]));
  for (const auto& rec : ctl.migrations_this_tick()) {
    // Nothing may cross from zone 0 into zone 1 or vice versa.
    EXPECT_EQ(f.in_zone(rec.from, 0), f.in_zone(rec.to, 0))
        << "migration crossed a reduced, deficient zone boundary";
  }
  EXPECT_GT(ctl.stats().drops, 0u);
}

TEST(DeepHierarchy, DisabledRuleAllowsCrossZone) {
  DeepFixture f;
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][0], 40.0);
  f.host(f.server[0][0][1], 80.0);
  f.host(f.server[0][1][0], 80.0);
  f.host(f.server[0][1][1], 80.0);
  f.host(f.server[1][0][0], 80.0);
  f.host(f.server[1][0][0], 80.0);
  f.host(f.server[1][0][1], 80.0);
  ControllerConfig cfg = f.config();
  cfg.enforce_unidirectional = false;
  Controller ctl(f.cluster, cfg);
  ctl.tick(Watts{1600.0});
  ctl.tick(Watts{1600.0});
  ctl.tick(Watts{1600.0});
  ctl.tick(Watts{480.0});
  bool crossed_zone = false;
  for (const auto& rec : ctl.migrations_this_tick()) {
    if (f.in_zone(rec.from, 0) != f.in_zone(rec.to, 0)) crossed_zone = true;
  }
  EXPECT_TRUE(crossed_zone) << "zone 1's idle rack should absorb overflow";
}

TEST(DeepHierarchy, Property3HoldsAcrossFourLevels) {
  DeepFixture f;
  f.host(f.server[0][0][0], 50.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 12; ++t) ctl.tick(Watts{1600.0});
  const auto& tree = f.cluster.tree();
  for (NodeId id : tree.all_nodes()) {
    if (tree.node(id).is_root()) continue;
    const auto& link = tree.node(id).link();
    // Event-driven messaging: unchanged state crosses no link, so with a
    // pinned workload most of the 12 periods are silent.  Property 3 bounds
    // the busiest case at one report up + one directive down per ΔD.
    EXPECT_GE(link.up, 1u);
    EXPECT_LE(link.up, 12u);
    EXPECT_GE(link.down, 1u);
    EXPECT_LE(link.up + link.down, 24u);
  }
}

TEST(DeepHierarchy, BudgetsNestThroughEveryLevel) {
  DeepFixture f;
  for (int z = 0; z < 2; ++z) {
    for (int r = 0; r < 2; ++r) {
      for (int s = 0; s < 2; ++s) f.host(f.server[z][r][s], 30.0 + 10 * z);
    }
  }
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 10; ++t) {
    ctl.tick(Watts{300.0 + 50.0 * t});
    const auto& tree = f.cluster.tree();
    for (NodeId id : tree.all_nodes()) {
      const auto& n = tree.node(id);
      if (n.is_leaf()) continue;
      double sum = 0.0;
      for (NodeId c : n.children()) sum += tree.node(c).budget().value();
      ASSERT_LE(sum, n.budget().value() + 1e-6) << "node " << id;
    }
  }
}

}  // namespace
}  // namespace willow::core
