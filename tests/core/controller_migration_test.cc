// Demand-side adaptation (Sec. IV-E): deficit-driven migrations, locality
// preference, margins, the unidirectional rule, dropping and revival.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", lax_server());
    s01 = cluster.add_server(rack0, "s01", lax_server());
    s10 = cluster.add_server(rack1, "s10", lax_server());
    s11 = cluster.add_server(rack1, "s11", lax_server());
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }

  /// Capacity-proportional config: identical servers get equal budgets, so a
  /// demand skew directly creates one deficit and one surplus.
  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    return cfg;
  }
};

TEST(DemandAdaptation, DeficitTriggersLocalMigration) {
  Fixture f;
  // Equal budgets of 75 per server under supply 300.  s00 wants 110:
  // deficit 35; one 50 W app moves to the idle sibling.
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(300_W);
  const auto& recs = ctl.migrations_this_tick();
  ASSERT_FALSE(recs.empty());
  for (const auto& r : recs) {
    EXPECT_EQ(r.from, f.s00);
    EXPECT_EQ(r.to, f.s01);
    EXPECT_TRUE(r.local);
    EXPECT_EQ(r.cause, MigrationCause::kDemand);
  }
  EXPECT_GT(ctl.stats().local_migrations, 0u);
  EXPECT_EQ(ctl.stats().nonlocal_migrations, 0u);
  // Apps actually moved.
  EXPECT_LT(f.cluster.server(f.s00).apps().size(), 2u);
}

TEST(DemandAdaptation, NoMigrationWithoutDeficit) {
  // Loads above the consolidation threshold and budgets above demand:
  // nothing to do, for either adaptation path.
  Fixture f;
  f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  f.host(f.s10, 100.0);
  f.host(f.s11, 100.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 10; ++t) ctl.tick(500_W);
  EXPECT_EQ(ctl.stats().total_migrations(), 0u);
  EXPECT_EQ(ctl.stats().drops, 0u);
}

TEST(DemandAdaptation, EscalatesToNonLocalWhenSiblingsFull) {
  Fixture f;
  // rack0: s00 overloaded, s01 also loaded (no local surplus).
  for (int i = 0; i < 4; ++i) f.host(f.s00, 50.0);
  f.host(f.s01, 100.0);
  // rack1 idle: plenty of surplus there.
  Controller ctl(f.cluster, f.config());
  ctl.tick(500_W);  // 125 W per server
  const auto& recs = ctl.migrations_this_tick();
  ASSERT_FALSE(recs.empty());
  bool crossed = false;
  for (const auto& r : recs) {
    if (r.to == f.s10 || r.to == f.s11) crossed = true;
  }
  EXPECT_TRUE(crossed);
  EXPECT_GT(ctl.stats().nonlocal_migrations, 0u);
}

TEST(DemandAdaptation, LocalPreferredWhenBothPossible) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);  // wants 110
  // Both s01 and rack1 have surplus; locality must win.
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);  // 100 per server: s00 deficit 10, one app moves
  ASSERT_FALSE(ctl.migrations_this_tick().empty());
  for (const auto& r : ctl.migrations_this_tick()) {
    EXPECT_EQ(r.to, f.s01) << "expected local target";
    EXPECT_TRUE(r.local);
  }
  EXPECT_GT(ctl.stats().local_migrations, 0u);
}

TEST(DemandAdaptation, MarginBlocksTightFits) {
  Fixture f;
  ControllerConfig cfg = f.config();
  cfg.margin = 40_W;
  cfg.migration_cost = 2_W;
  // s00 deficit; s01 surplus is 75-10=65 < app(50)+cost(2)+margin(40): no go.
  for (int i = 0; i < 4; ++i) f.host(f.s00, 50.0);
  cfg.allow_drop = false;
  Controller ctl(f.cluster, cfg);
  ctl.tick(300_W);  // 75 per server
  for (const auto& r : ctl.migrations_this_tick()) {
    EXPECT_NE(r.to, f.s01);
  }
}

TEST(DemandAdaptation, MigrationCostChargedToBothEndpoints) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  ControllerConfig cfg = f.config();
  cfg.migration_cost = 7_W;
  cfg.migration_cost_periods = 2;
  Controller ctl(f.cluster, cfg);
  ctl.tick(300_W);
  ASSERT_FALSE(ctl.migrations_this_tick().empty());
  // tick() ages once at the end: one period of life left.
  EXPECT_GT(f.cluster.server(f.s00).temporary_demand().value(), 0.0);
  EXPECT_GT(f.cluster.server(f.s01).temporary_demand().value(), 0.0);
}

/// Shared plunge scenario for the unidirectional-rule tests: after the cut,
/// rack1 is in deficit (s10 overloads it) yet holds idle servers s11/s12
/// with individual surplus — tempting targets the rule must forbid.
struct PlungeScenario {
  Fixture f;
  NodeId s12;

  PlungeScenario() : s12(f.cluster.add_server(f.rack1, "s12", lax_server())) {
    f.host(f.s00, 50.0);
    f.host(f.s00, 50.0);  // s00: 110 W demand
    f.host(f.s01, 60.0);  // s01: 70 W, no spare after the plunge
    f.host(f.s10, 95.0);
    f.host(f.s10, 95.0);
    f.host(f.s10, 30.0);  // s10: 230 W — pushes rack1 into aggregate deficit
    // s11 and s12 idle: 10 W each, individually in surplus after the cut.
  }

  void run(Controller& ctl) {
    ctl.tick(Watts{1000.0});  // comfortable: 200 W per server
    ctl.tick(Watts{1000.0});
    ctl.tick(Watts{1000.0});
    ctl.tick(Watts{375.0});  // ΔS plunge: 75 W per server
  }
};

TEST(DemandAdaptation, PlungeBlocksMigrationIntoDeficitSubtrees) {
  // rack1's budget both shrank and fell below its demand: nothing may
  // migrate into it.  rack0 is likewise deficient, so s10's overflow cannot
  // cross either; everything unplaceable degrades instead.
  PlungeScenario sc;
  Controller ctl(sc.f.cluster, sc.f.config());
  sc.run(ctl);
  EXPECT_TRUE(ctl.budget_reduced(sc.f.rack0));
  EXPECT_TRUE(ctl.budget_reduced(sc.f.rack1));
  for (const auto& r : ctl.migrations_this_tick()) {
    EXPECT_TRUE(r.local) << "migration crossed into a reduced, deficient rack";
  }
  EXPECT_GT(ctl.stats().drops, 0u);
  // s00's overflow app (110 > 75) could not go to idle s11/s12 across the
  // boundary: it was dropped, not moved.
  bool s00_crossed = false;
  for (const auto& r : ctl.migrations_this_tick()) {
    if (r.from == sc.f.s00 && !r.local) s00_crossed = true;
  }
  EXPECT_FALSE(s00_crossed);
}

TEST(DemandAdaptation, DisablingUnidirectionalAllowsCrossRackOnPlunge) {
  PlungeScenario sc;
  ControllerConfig cfg = sc.f.config();
  cfg.enforce_unidirectional = false;
  Controller ctl(sc.f.cluster, cfg);
  sc.run(ctl);
  bool crossed = false;
  for (const auto& r : ctl.migrations_this_tick()) {
    if (!r.local) crossed = true;
  }
  EXPECT_TRUE(crossed) << "without the rule, idle s11/s12 absorb overflow";
}

TEST(DemandAdaptation, DropsWhenNowhereToGo) {
  Fixture f;
  for (int i = 0; i < 4; ++i) f.host(f.s00, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s01, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s10, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s11, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);  // 100 per server against 210 demand each: no surplus
  EXPECT_EQ(ctl.stats().total_migrations(), 0u);
  EXPECT_GT(ctl.stats().drops, 0u);
  EXPECT_GT(ctl.stats().dropped_demand.value(), 0.0);
  std::size_t dropped = 0;
  for (NodeId s : f.cluster.server_ids()) {
    for (const auto& a : f.cluster.server(s).apps()) {
      dropped += a.dropped() ? 1 : 0;
    }
  }
  EXPECT_GT(dropped, 0u);
}

TEST(DemandAdaptation, DropDisabledLeavesAppsRunning) {
  Fixture f;
  for (int i = 0; i < 4; ++i) f.host(f.s00, 50.0);
  ControllerConfig cfg = f.config();
  cfg.allow_drop = false;
  Controller ctl(f.cluster, cfg);
  ctl.tick(100_W);
  EXPECT_EQ(ctl.stats().drops, 0u);
  for (const auto& a : f.cluster.server(f.s00).apps()) {
    EXPECT_FALSE(a.dropped());
  }
}

TEST(DemandAdaptation, RevivalAfterSupplyReturns) {
  Fixture f;
  for (int i = 0; i < 4; ++i) f.host(f.s00, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s01, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s10, 50.0);
  for (int i = 0; i < 4; ++i) f.host(f.s11, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);  // starvation: drops happen
  ASSERT_GT(ctl.stats().drops, 0u);
  // Supply returns; dropped apps revive (budget increase, no reduced path).
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{1200.0});
  }
  EXPECT_GT(ctl.stats().revivals, 0u);
  std::size_t still_dropped = 0;
  for (NodeId s : f.cluster.server_ids()) {
    for (const auto& a : f.cluster.server(s).apps()) {
      still_dropped += a.dropped() ? 1 : 0;
    }
  }
  EXPECT_EQ(still_dropped, 0u);
}

TEST(DemandAdaptation, AppsNeverSplitAcrossServers) {
  Fixture f;
  const auto id1 = f.host(f.s00, 120.0);
  const auto id2 = f.host(f.s00, 80.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 6; ++t) ctl.tick(260_W);
  // Each app is hosted on exactly one server, wherever it landed.
  int found1 = 0, found2 = 0;
  for (NodeId s : f.cluster.server_ids()) {
    for (const auto& a : f.cluster.server(s).apps()) {
      if (a.id() == id1) ++found1;
      if (a.id() == id2) ++found2;
    }
  }
  EXPECT_EQ(found1, 1);
  EXPECT_EQ(found2, 1);
}

TEST(DemandAdaptation, MigrationSinkObservesEveryRecord) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  std::size_t seen = 0;
  ctl.set_migration_sink([&](const MigrationRecord&) { ++seen; });
  ctl.tick(300_W);
  EXPECT_EQ(seen, ctl.migrations_this_tick().size());
  EXPECT_GT(seen, 0u);
}

}  // namespace
}  // namespace willow::core
