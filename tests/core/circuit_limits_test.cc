// Under-designed rack/zone power circuits (Sec. I lean-design scenario):
// an internal node's feed rating caps its subtree's budget and pushes
// workload out of the rack when it binds.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", lax_server());
    s01 = cluster.add_server(rack0, "s01", lax_server());
    s10 = cluster.add_server(rack1, "s10", lax_server());
    s11 = cluster.add_server(rack1, "s11", lax_server());
  }

  void host(NodeId server, double watts) {
    cluster.place(Application(ids.next(), 0, Watts{watts}, 512_MB), server);
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    return cfg;
  }
};

TEST(GroupCircuitLimit, Validation) {
  Fixture f;
  EXPECT_THROW(f.cluster.set_group_circuit_limit(f.s00, 100_W),
               std::invalid_argument);
  EXPECT_THROW(f.cluster.set_group_circuit_limit(f.rack0, Watts{-1.0}),
               std::invalid_argument);
  EXPECT_FALSE(f.cluster.group_circuit_limit(f.rack0).has_value());
  f.cluster.set_group_circuit_limit(f.rack0, 150_W);
  ASSERT_TRUE(f.cluster.group_circuit_limit(f.rack0).has_value());
  EXPECT_DOUBLE_EQ(f.cluster.group_circuit_limit(f.rack0)->value(), 150.0);
}

TEST(GroupCircuitLimit, CapsRackBudget) {
  Fixture f;
  f.host(f.s00, 200.0);
  f.host(f.s01, 200.0);
  f.cluster.set_group_circuit_limit(f.rack0, 150_W);
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{2000.0});
  const auto& tree = f.cluster.tree();
  EXPECT_LE(tree.node(f.rack0).budget().value(), 150.0 + 1e-6);
  EXPECT_LE(tree.node(f.s00).budget().value() +
                tree.node(f.s01).budget().value(),
            150.0 + 1e-6);
  // The unconstrained rack is unaffected.
  EXPECT_GT(tree.node(f.rack1).budget().value(), 150.0);
}

TEST(GroupCircuitLimit, PushesWorkloadOutOfTheRack) {
  Fixture f;
  f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  f.cluster.set_group_circuit_limit(f.rack0, 150_W);  // < 220 W of demand
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 8; ++t) ctl.tick(Watts{2000.0});
  // Something crossed into rack1, and nothing was dropped: the feed binds
  // but the fleet has room.
  bool crossed = false;
  for (NodeId s : {f.s10, f.s11}) {
    crossed |= !f.cluster.server(s).apps().empty();
  }
  EXPECT_TRUE(crossed);
  EXPECT_EQ(ctl.stats().drops, 0u);
  // Post-migration, the rack lives within its rating.
  const auto& tree = f.cluster.tree();
  const double rack0_demand = tree.node(f.rack0).smoothed_demand().value();
  EXPECT_LE(rack0_demand, 150.0 + 1e-6);
}

TEST(GroupCircuitLimit, RootRatingCapsEverything) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s10, 50.0);
  f.cluster.set_group_circuit_limit(f.root, 100_W);
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{5000.0});
  EXPECT_LE(f.cluster.tree().node(f.root).budget().value(), 100.0 + 1e-6);
}

TEST(GroupCircuitLimit, GenerousRatingNeverBinds) {
  Fixture f;
  f.host(f.s00, 100.0);
  f.cluster.set_group_circuit_limit(f.rack0, Watts{5000.0});
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{2000.0});
  // Hard limit is still the sum of the children (2 x 450).
  EXPECT_NEAR(f.cluster.tree().node(f.rack0).hard_limit().value(), 900.0, 1.0);
}

}  // namespace
}  // namespace willow::core
