// Degraded-mode control: stale-report timeouts with decayed synthetic
// demand, fail-safe fallback budgets for dark servers, bounded-backoff
// directive retries under down-link loss, and crash/restore re-integration.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/controller.h"
#include "fault/link_faults.h"
#include "obs/sink.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig paper_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 0.08;
  cfg.thermal.c2 = 0.05;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel::paper_simulation();
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;
  obs::EventBus bus;
  std::shared_ptr<obs::CountingSink> sink = std::make_shared<obs::CountingSink>();

  Fixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", paper_server());
    s01 = cluster.add_server(rack0, "s01", paper_server());
    s10 = cluster.add_server(rack1, "s10", paper_server());
    s11 = cluster.add_server(rack1, "s11", paper_server());
    bus.add_sink(sink);
    cluster.set_event_bus(&bus);
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }
};

TEST(StaleReports, TimeoutSynthesizesDecayedDemand) {
  Fixture f;
  f.host(f.s00, 20.0);
  ControllerConfig cfg;
  cfg.eta2 = 1000;  // keep consolidation out of the picture
  cfg.stale_timeout_ticks = 2;
  cfg.stale_decay = 0.5;
  Controller ctl(f.cluster, cfg);
  ctl.set_event_bus(&f.bus);

  ctl.tick(Watts{2000.0});  // fresh observation seeds last-known-good
  auto& srv = f.cluster.server(f.s00);
  ASSERT_TRUE(srv.has_last_good_demand());
  const Watts last_good = srv.last_good_demand();
  const Watts idle = srv.idle_floor();
  ASSERT_GT(last_good.value(), idle.value());

  srv.set_report_fault(true);
  const auto& leaf = f.cluster.tree().node(f.s00);

  ctl.tick(Watts{2000.0});  // stale = 1 < timeout: leaf keeps old raw demand
  EXPECT_EQ(srv.stale_ticks(), 1);
  EXPECT_EQ(f.sink->count(obs::EventType::kStaleTimeout), 0u);
  EXPECT_DOUBLE_EQ(leaf.raw_demand().value(), last_good.value());

  ctl.tick(Watts{2000.0});  // stale = 2 == timeout: synthetic at full value
  EXPECT_EQ(f.sink->count(obs::EventType::kStaleTimeout), 1u);
  EXPECT_DOUBLE_EQ(leaf.raw_demand().value(), last_good.value());

  ctl.tick(Watts{2000.0});  // one decay step
  const double dynamic = (last_good - idle).value();
  EXPECT_DOUBLE_EQ(leaf.raw_demand().value(), idle.value() + dynamic * 0.5);

  ctl.tick(Watts{2000.0});  // two decay steps
  EXPECT_DOUBLE_EQ(leaf.raw_demand().value(), idle.value() + dynamic * 0.25);
  // The timeout event fires once per outage, not per tick.
  EXPECT_EQ(f.sink->count(obs::EventType::kStaleTimeout), 1u);

  srv.set_report_fault(false);
  ctl.tick(Watts{2000.0});  // recovery: fresh observation resets staleness
  EXPECT_EQ(srv.stale_ticks(), 0);
  EXPECT_DOUBLE_EQ(leaf.raw_demand().value(), srv.power_demand().value());
}

TEST(StaleReports, FallbackBudgetClampsDarkServer) {
  Fixture f;
  f.host(f.s00, 100.0);
  ControllerConfig cfg;
  cfg.eta2 = 1000;
  cfg.stale_timeout_ticks = 1;
  Controller ctl(f.cluster, cfg);
  ctl.set_event_bus(&f.bus);

  ctl.tick(Watts{2000.0});
  const auto& leaf = f.cluster.tree().node(f.s00);
  const auto& srv = f.cluster.server(f.s00);
  // Safe envelope: holdable at steady state from any starting temperature.
  const Watts steady = srv.thermal().steady_state_power_limit();
  ASSERT_GT(leaf.budget().value(), steady.value());

  f.cluster.server(f.s00).set_report_fault(true);
  ctl.tick(Watts{2000.0});  // stale hits the timeout: clamp fail-safe
  EXPECT_GE(f.sink->count(obs::EventType::kFallbackBudget), 1u);
  EXPECT_LE(leaf.budget().value(), steady.value() + 1e-9);
  EXPECT_TRUE(ctl.budget_reduced(f.s00));

  // The clamp only ever tightens: the dark server's budget never rises
  // above the safe envelope while it stays silent.
  for (int t = 0; t < 10; ++t) {
    ctl.tick(Watts{2000.0});
    EXPECT_LE(leaf.budget().value(), steady.value() + 1e-9);
  }
}

TEST(DirectiveRetry, AllLossesAbandonAfterBoundedAttempts) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s10, 30.0);
  ControllerConfig cfg;
  // One supply event, then silence: a fresh division would re-queue the
  // pending directive (resetting its attempt count), so the bounded-backoff
  // abandonment path needs the retry chain to play out undisturbed.
  cfg.eta1 = 20;
  cfg.eta2 = 1000;
  cfg.directive_retry_limit = 2;
  fault::LinkFaultConfig link;
  link.down_loss = 1.0;
  fault::LinkFaultModel faults(link, 7);
  Controller ctl(f.cluster, cfg);
  ctl.set_event_bus(&f.bus);
  ctl.set_link_faults(&faults);

  for (long t = 1; t <= 30; ++t) {
    faults.set_tick(t);
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{300.0 + 10.0 * static_cast<double>(t)});
  }
  const auto m = f.bus.metrics().snapshot();
  EXPECT_GT(m.counter_or_zero("fault.directive_losses"), 0u);
  EXPECT_GT(m.counter_or_zero("fault.directives_abandoned"), 0u);
  EXPECT_EQ(m.counter_or_zero("fault.directive_retries"), 0u);
  EXPECT_GT(f.sink->count(obs::EventType::kLinkDrop), 0u);
}

TEST(DirectiveRetry, LossyLinkEventuallyDelivers) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s10, 30.0);
  ControllerConfig cfg;
  cfg.eta2 = 1000;
  cfg.directive_retry_limit = 4;
  fault::LinkFaultConfig link;
  link.down_loss = 0.5;
  fault::LinkFaultModel faults(link, 21);
  Controller ctl(f.cluster, cfg);
  ctl.set_event_bus(&f.bus);
  ctl.set_link_faults(&faults);

  for (long t = 1; t <= 40; ++t) {
    faults.set_tick(t);
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{300.0 + 10.0 * static_cast<double>(t)});
  }
  const auto m = f.bus.metrics().snapshot();
  EXPECT_GT(m.counter_or_zero("fault.directive_losses"), 0u);
  EXPECT_GT(m.counter_or_zero("fault.directive_retries"), 0u);
  // A retried delivery is a real directive: budgets did land eventually.
  EXPECT_GT(f.cluster.tree().node(f.s00).budget().value(), 0.0);
}

TEST(CrashRecovery, ApplicationsSurviveAndBudgetsReturn) {
  Fixture f;
  const auto app = f.host(f.s00, 40.0);
  f.host(f.s01, 40.0);
  ControllerConfig crash_cfg;
  crash_cfg.eta2 = 1000;
  Controller ctl(f.cluster, crash_cfg);
  ctl.set_event_bus(&f.bus);

  ctl.tick(Watts{2000.0});
  ASSERT_GT(f.cluster.tree().node(f.s00).budget().value(), 0.0);

  f.cluster.crash_server(f.s00);
  ctl.note_availability_change(f.s00);
  const auto& srv = f.cluster.server(f.s00);
  EXPECT_TRUE(srv.crashed());
  EXPECT_FALSE(f.cluster.tree().node(f.s00).active());
  // Unlike sleep, the crash keeps hosted applications placed (denied).
  EXPECT_EQ(f.cluster.host_of(app), f.s00);
  EXPECT_DOUBLE_EQ(srv.power_demand().value(), 0.0);

  for (long t = 0; t < 4; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{2000.0});
  }

  f.cluster.restore_server(f.s00);
  ctl.note_availability_change(f.s00);
  EXPECT_FALSE(srv.crashed());
  EXPECT_TRUE(f.cluster.tree().node(f.s00).active());
  EXPECT_EQ(f.cluster.host_of(app), f.s00);
  for (long t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{2000.0});
  }
  // The restored server reports demand again and regains a budget.
  EXPECT_GT(f.cluster.tree().node(f.s00).raw_demand().value(), 0.0);
  EXPECT_GT(f.cluster.tree().node(f.s00).budget().value(), 0.0);
}

TEST(DegradedMode, DisabledByDefault) {
  ControllerConfig cfg;
  EXPECT_EQ(cfg.stale_timeout_ticks, 0);
  EXPECT_DOUBLE_EQ(cfg.stale_decay, 0.9);
  EXPECT_EQ(cfg.directive_retry_limit, 3);
  EXPECT_NO_THROW(cfg.validate());
  cfg.stale_timeout_ticks = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.stale_timeout_ticks = 0;
  cfg.stale_decay = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.stale_decay = 1.0;
  cfg.directive_retry_limit = -2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace willow::core
