#include "core/balance.h"

#include <gtest/gtest.h>

namespace willow::core {
namespace {

using namespace willow::util::literals;

struct Fixture {
  Tree tree{1.0};  // alpha 1: smoothed == raw, easier arithmetic
  NodeId root, s0, s1, s2;

  Fixture() {
    root = tree.add_root("dc");
    s0 = tree.add_child(root, "s0", hier::NodeKind::kServer);
    s1 = tree.add_child(root, "s1", hier::NodeKind::kServer);
    s2 = tree.add_child(root, "s2", hier::NodeKind::kServer);
  }

  void set(NodeId id, double demand, double budget) {
    tree.node(id).observe_demand(Watts{demand});
    tree.node(id).set_budget(Watts{budget});
  }
};

TEST(Balance, NodeDeficitEquation5) {
  Fixture f;
  f.set(f.s0, 100.0, 80.0);
  EXPECT_DOUBLE_EQ(node_deficit(f.tree.node(f.s0)).value(), 20.0);
  f.set(f.s1, 50.0, 80.0);
  EXPECT_DOUBLE_EQ(node_deficit(f.tree.node(f.s1)).value(), 0.0);
}

TEST(Balance, NodeSurplusEquation6) {
  Fixture f;
  f.set(f.s0, 100.0, 80.0);
  EXPECT_DOUBLE_EQ(node_surplus(f.tree.node(f.s0)).value(), 0.0);
  f.set(f.s1, 50.0, 80.0);
  EXPECT_DOUBLE_EQ(node_surplus(f.tree.node(f.s1)).value(), 30.0);
}

TEST(Balance, LevelAggregatesAreMaxima) {
  // Eq. (7)/(8): level deficit/surplus are maxima over nodes.
  Fixture f;
  f.set(f.s0, 100.0, 80.0);  // deficit 20
  f.set(f.s1, 100.0, 90.0);  // deficit 10
  f.set(f.s2, 40.0, 90.0);   // surplus 50
  const auto b = level_balance(f.tree, 0);
  EXPECT_DOUBLE_EQ(b.max_deficit.value(), 20.0);
  EXPECT_DOUBLE_EQ(b.max_surplus.value(), 50.0);
  EXPECT_DOUBLE_EQ(b.total_deficit.value(), 30.0);
  EXPECT_DOUBLE_EQ(b.total_surplus.value(), 50.0);
}

TEST(Balance, ImbalanceEquation9AsPrinted) {
  // P_imb = P_def + min(P_def, P_sur).
  Fixture f;
  f.set(f.s0, 100.0, 80.0);  // deficit 20
  f.set(f.s1, 40.0, 90.0);   // surplus 50
  f.set(f.s2, 50.0, 50.0);
  const auto b = level_balance(f.tree, 0);
  EXPECT_DOUBLE_EQ(b.imbalance.value(), 20.0 + std::min(20.0, 50.0));
}

TEST(Balance, ImbalanceCappedBySurplusWhenSurplusSmall) {
  Fixture f;
  f.set(f.s0, 100.0, 70.0);  // deficit 30
  f.set(f.s1, 40.0, 50.0);   // surplus 10
  f.set(f.s2, 50.0, 50.0);
  const auto b = level_balance(f.tree, 0);
  EXPECT_DOUBLE_EQ(b.imbalance.value(), 30.0 + 10.0);
}

TEST(Balance, ResidualDeficitMatchesNarrative) {
  Fixture f;
  f.set(f.s0, 100.0, 70.0);  // deficit 30
  f.set(f.s1, 40.0, 50.0);   // surplus 10
  f.set(f.s2, 50.0, 50.0);
  EXPECT_DOUBLE_EQ(level_balance(f.tree, 0).residual_deficit.value(), 20.0);
  f.set(f.s1, 40.0, 90.0);  // surplus 50 covers everything
  EXPECT_DOUBLE_EQ(level_balance(f.tree, 0).residual_deficit.value(), 0.0);
}

TEST(Balance, PerfectBalanceIsZeroEverything) {
  Fixture f;
  f.set(f.s0, 50.0, 50.0);
  f.set(f.s1, 60.0, 60.0);
  f.set(f.s2, 70.0, 70.0);
  const auto b = level_balance(f.tree, 0);
  EXPECT_DOUBLE_EQ(b.max_deficit.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.max_surplus.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.imbalance.value(), 0.0);
}

TEST(Balance, InactiveNodesExcluded) {
  Fixture f;
  f.set(f.s0, 100.0, 50.0);  // deficit 50
  f.set(f.s1, 50.0, 50.0);
  f.set(f.s2, 50.0, 50.0);
  f.tree.node(f.s0).set_active(false);
  const auto b = level_balance(f.tree, 0);
  EXPECT_DOUBLE_EQ(b.max_deficit.value(), 0.0);
}

TEST(Balance, OtherLevelsComputeIndependently) {
  Fixture f;
  f.set(f.root, 100.0, 120.0);
  const auto b = level_balance(f.tree, 1);  // root level in this 2-level tree
  EXPECT_DOUBLE_EQ(b.max_surplus.value(), 20.0);
  EXPECT_DOUBLE_EQ(b.max_deficit.value(), 0.0);
}

}  // namespace
}  // namespace willow::core
