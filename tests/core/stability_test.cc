#include "core/stability.h"

#include <gtest/gtest.h>

#include "util/ewma.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;

TEST(EwmaStepResponse, ClosedFormMatchesIteration) {
  const double alpha = 0.3;
  util::Ewma<double> filter(alpha);
  filter.update(0.0);
  for (int k = 1; k <= 20; ++k) {
    filter.update(1.0);
    EXPECT_NEAR(filter.value(), ewma_step_response(alpha, k), 1e-12)
        << "period " << k;
  }
}

TEST(EwmaStepResponse, Validation) {
  EXPECT_THROW((void)ewma_step_response(0.0, 3), std::invalid_argument);
  EXPECT_THROW((void)ewma_step_response(1.5, 3), std::invalid_argument);
  EXPECT_THROW((void)ewma_step_response(0.5, -1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ewma_step_response(0.5, 0), 0.0);
  EXPECT_DOUBLE_EQ(ewma_step_response(1.0, 1), 1.0);
}

TEST(EwmaSettling, KnownValues) {
  // (1 - 0.5)^k <= 0.05 => k >= log(0.05)/log(0.5) ~ 4.32 => 5.
  EXPECT_EQ(ewma_settling_periods(0.5, 0.05), 5);
  // alpha = 0.7: (0.3)^k <= 0.05 => k >= 2.49 => 3.
  EXPECT_EQ(ewma_settling_periods(0.7, 0.05), 3);
  EXPECT_EQ(ewma_settling_periods(1.0, 0.05), 1);
}

TEST(EwmaSettling, SettledValueActuallyWithinTolerance) {
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const int k = ewma_settling_periods(alpha, 0.05);
    EXPECT_GE(ewma_step_response(alpha, k), 0.95) << "alpha " << alpha;
    EXPECT_LT(ewma_step_response(alpha, k - 1), 0.95) << "alpha " << alpha;
  }
}

TEST(EwmaSettling, Validation) {
  EXPECT_THROW((void)ewma_settling_periods(0.0, 0.05), std::invalid_argument);
  EXPECT_THROW((void)ewma_settling_periods(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ewma_settling_periods(0.5, 1.0), std::invalid_argument);
}

TEST(StepError, ShrinksWithAlphaAndEta) {
  const auto e1 = ewma_step_error_after_supply_period(0.5, 4, 100_W);
  EXPECT_NEAR(e1.value(), 100.0 * std::pow(0.5, 4), 1e-9);
  const auto e2 = ewma_step_error_after_supply_period(0.7, 4, 100_W);
  EXPECT_LT(e2, e1);
  const auto e3 = ewma_step_error_after_supply_period(0.5, 8, 100_W);
  EXPECT_LT(e3, e1);
  EXPECT_THROW((void)ewma_step_error_after_supply_period(0.5, 0, 100_W),
               std::invalid_argument);
}

hier::Tree four_level_tree() {
  hier::Tree t(0.7);
  const auto root = t.add_root("dc");
  for (int z = 0; z < 2; ++z) {
    const auto zone = t.add_child(root, "zone");
    for (int r = 0; r < 3; ++r) {
      const auto rack = t.add_child(zone, "rack");
      for (int s = 0; s < 3; ++s) t.add_child(rack, "server");
    }
  }
  return t;
}

TEST(AssessStability, PaperParametersAreStable) {
  // The paper's Sec. V-A1 numbers: per-level update ~10 ms, Delta_D 500 ms,
  // eta1 = 4, alpha = 0.7, margin 10 W against ~3 W fluctuation.
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{0.5};
  cfg.eta1 = 4;
  cfg.margin = 10_W;
  const auto a =
      assess_stability(tree, cfg, Seconds{0.010}, Watts{3.0}, 0.7);
  EXPECT_TRUE(a.convergence_ok);
  EXPECT_TRUE(a.estimator_ok);
  EXPECT_TRUE(a.margin_ok);
  EXPECT_TRUE(a.stable());
  EXPECT_NEAR(a.delta.value(), 0.040, 1e-12);
  EXPECT_EQ(a.estimator_settling_periods, 3);
  EXPECT_NEAR(a.margin_headroom.value(), 7.0, 1e-12);
}

TEST(AssessStability, FlagsTooShortPeriod) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{0.05};  // 50 ms < 10 * 40 ms
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{1.0}, 0.7);
  EXPECT_FALSE(a.convergence_ok);
  EXPECT_FALSE(a.stable());
}

TEST(AssessStability, FlagsSluggishEstimator) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{1.0};
  cfg.eta1 = 4;
  // alpha = 0.1 needs ~29 periods to settle to 5%: far beyond eta1.
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{1.0}, 0.1);
  EXPECT_FALSE(a.estimator_ok);
}

TEST(AssessStability, FlagsInsufficientMargin) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{1.0};
  cfg.margin = 2_W;
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{5.0}, 0.7);
  EXPECT_FALSE(a.margin_ok);
  EXPECT_LT(a.margin_headroom.value(), 0.0);
}

}  // namespace
}  // namespace willow::core
