#include "core/stability.h"

#include <gtest/gtest.h>

#include "util/ewma.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;

TEST(EwmaStepResponse, ClosedFormMatchesIteration) {
  const double alpha = 0.3;
  util::Ewma<double> filter(alpha);
  filter.update(0.0);
  for (int k = 1; k <= 20; ++k) {
    filter.update(1.0);
    EXPECT_NEAR(filter.value(), ewma_step_response(alpha, k), 1e-12)
        << "period " << k;
  }
}

TEST(EwmaStepResponse, Validation) {
  EXPECT_THROW((void)ewma_step_response(0.0, 3), std::invalid_argument);
  EXPECT_THROW((void)ewma_step_response(1.5, 3), std::invalid_argument);
  EXPECT_THROW((void)ewma_step_response(0.5, -1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ewma_step_response(0.5, 0), 0.0);
  EXPECT_DOUBLE_EQ(ewma_step_response(1.0, 1), 1.0);
}

TEST(EwmaSettling, KnownValues) {
  // (1 - 0.5)^k <= 0.05 => k >= log(0.05)/log(0.5) ~ 4.32 => 5.
  EXPECT_EQ(ewma_settling_periods(0.5, 0.05), 5);
  // alpha = 0.7: (0.3)^k <= 0.05 => k >= 2.49 => 3.
  EXPECT_EQ(ewma_settling_periods(0.7, 0.05), 3);
  EXPECT_EQ(ewma_settling_periods(1.0, 0.05), 1);
}

TEST(EwmaSettling, SettledValueActuallyWithinTolerance) {
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const int k = ewma_settling_periods(alpha, 0.05);
    EXPECT_GE(ewma_step_response(alpha, k), 0.95) << "alpha " << alpha;
    EXPECT_LT(ewma_step_response(alpha, k - 1), 0.95) << "alpha " << alpha;
  }
}

TEST(EwmaSettling, Validation) {
  EXPECT_THROW((void)ewma_settling_periods(0.0, 0.05), std::invalid_argument);
  EXPECT_THROW((void)ewma_settling_periods(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ewma_settling_periods(0.5, 1.0), std::invalid_argument);
}

TEST(StepError, ShrinksWithAlphaAndEta) {
  const auto e1 = ewma_step_error_after_supply_period(0.5, 4, 100_W);
  EXPECT_NEAR(e1.value(), 100.0 * std::pow(0.5, 4), 1e-9);
  const auto e2 = ewma_step_error_after_supply_period(0.7, 4, 100_W);
  EXPECT_LT(e2, e1);
  const auto e3 = ewma_step_error_after_supply_period(0.5, 8, 100_W);
  EXPECT_LT(e3, e1);
  EXPECT_THROW((void)ewma_step_error_after_supply_period(0.5, 0, 100_W),
               std::invalid_argument);
}

hier::Tree four_level_tree() {
  hier::Tree t(0.7);
  const auto root = t.add_root("dc");
  for (int z = 0; z < 2; ++z) {
    const auto zone = t.add_child(root, "zone");
    for (int r = 0; r < 3; ++r) {
      const auto rack = t.add_child(zone, "rack");
      for (int s = 0; s < 3; ++s) t.add_child(rack, "server");
    }
  }
  return t;
}

TEST(AssessStability, PaperParametersAreStable) {
  // The paper's Sec. V-A1 numbers: per-level update ~10 ms, Delta_D 500 ms,
  // eta1 = 4, alpha = 0.7, margin 10 W against ~3 W fluctuation.
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{0.5};
  cfg.eta1 = 4;
  cfg.margin = 10_W;
  const auto a =
      assess_stability(tree, cfg, Seconds{0.010}, Watts{3.0}, 0.7);
  EXPECT_TRUE(a.convergence_ok);
  EXPECT_TRUE(a.estimator_ok);
  EXPECT_TRUE(a.margin_ok);
  EXPECT_TRUE(a.stable());
  EXPECT_NEAR(a.delta.value(), 0.040, 1e-12);
  EXPECT_EQ(a.estimator_settling_periods, 3);
  EXPECT_NEAR(a.margin_headroom.value(), 7.0, 1e-12);
}

TEST(AssessStability, FlagsTooShortPeriod) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{0.05};  // 50 ms < 10 * 40 ms
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{1.0}, 0.7);
  EXPECT_FALSE(a.convergence_ok);
  EXPECT_FALSE(a.stable());
}

TEST(AssessStability, FlagsSluggishEstimator) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{1.0};
  cfg.eta1 = 4;
  // alpha = 0.1 needs ~29 periods to settle to 5%: far beyond eta1.
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{1.0}, 0.1);
  EXPECT_FALSE(a.estimator_ok);
}

TEST(AssessStability, FlagsInsufficientMargin) {
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{1.0};
  cfg.margin = 2_W;
  const auto a = assess_stability(tree, cfg, Seconds{0.010}, Watts{5.0}, 0.7);
  EXPECT_FALSE(a.margin_ok);
  EXPECT_LT(a.margin_headroom.value(), 0.0);
}

TEST(AssessStability, DeadbandMustStayBelowMargin) {
  // A report dead-band absorbs demand movement without re-reporting; that is
  // only safe while the absorbed movement could never warrant a migration,
  // i.e. deadband < P_min.  At or above the margin the Property 4 argument
  // breaks: actionable deficits could hide below the reporting threshold.
  const auto tree = four_level_tree();
  ControllerConfig cfg;
  cfg.demand_period = Seconds{0.5};
  cfg.eta1 = 4;
  cfg.margin = 10_W;
  const auto at = [&](double deadband) {
    cfg.report_deadband = Watts{deadband};
    return assess_stability(tree, cfg, Seconds{0.010}, Watts{3.0}, 0.7);
  };
  EXPECT_TRUE(at(0.0).deadband_ok);  // trivially safe (report every change)
  EXPECT_TRUE(at(0.0).stable());
  EXPECT_TRUE(at(5.0).deadband_ok);  // below the margin
  EXPECT_FALSE(at(10.0).deadband_ok);  // equal: jitter can hide a deficit
  EXPECT_FALSE(at(10.0).stable());
  EXPECT_FALSE(at(15.0).deadband_ok);  // above
}

// ---------------------------------------------------------------------------
// Property 4, behaviorally: the closed-form margin check above corresponds
// to what the controller actually does under demand jitter.

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct JitterFixture {
  Cluster cluster{1.0};  // alpha = 1: estimates track raw demand instantly
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;

  JitterFixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", lax_server());
    s01 = cluster.add_server(rack0, "s01", lax_server());
    s10 = cluster.add_server(rack1, "s10", lax_server());
    s11 = cluster.add_server(rack1, "s11", lax_server());
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(workload::Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }

  /// Capacity-proportional budgets: supply 300 W gives every server 75 W, so
  /// a demand level maps directly to a deficit against a fixed budget.
  /// Consolidation is off — Property 4 is about the deficit-driven path, and
  /// consolidation would otherwise repack the half-idle fixture on its own
  /// eta2 cadence.
  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    cfg.consolidation_threshold = 0.0;
    return cfg;
  }
};

TEST(Property4, SubMarginJitterAfterPlacementNeverFlipFlops) {
  // A real deficit forces one corrective migration; the plan moves the
  // deficit *plus* the P_min margin, so the post-move placement holds at
  // least margin watts of slack on both ends.  Demand jitter smaller than
  // that slack can never re-create a deficit — the migration count must
  // freeze after the corrective move.
  JitterFixture f;
  f.host(f.s00, 40.0);
  // With 10 W idle power the server wants 79 W against its 75 W budget.
  const auto jitter_app = f.host(f.s00, 29.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(300_W);
  EXPECT_GT(ctl.stats().total_migrations(), 0u) << "deficit of 4 W ignored";
  const auto corrective = ctl.stats().total_migrations();

  for (int t = 0; t < 30; ++t) {
    f.cluster.find_app(jitter_app)->set_demand(t % 2 == 0 ? 29_W : 27_W);
    ctl.tick(300_W);
    EXPECT_TRUE(ctl.migrations_this_tick().empty()) << "tick " << t;
  }
  EXPECT_EQ(ctl.stats().total_migrations(), corrective)
      << "sub-margin jitter after the corrective move caused flip-flop";
}

TEST(Property4, CrossingIntoDeficitActsThenSettles) {
  // Below the budget nothing moves; a step that crosses into deficit makes
  // the controller act in that very period; the surviving sub-margin jitter
  // afterwards leaves the new placement alone.
  JitterFixture f;
  f.host(f.s00, 40.0);
  const auto jitter_app = f.host(f.s00, 20.0);  // 70 W of 75 W budget
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 4; ++t) {
    f.cluster.find_app(jitter_app)->set_demand(t % 2 == 0 ? 20_W : 18_W);
    ctl.tick(300_W);
    EXPECT_TRUE(ctl.migrations_this_tick().empty()) << "tick " << t;
  }

  f.cluster.find_app(jitter_app)->set_demand(34_W);  // 84 W: deficit 9
  ctl.tick(300_W);
  EXPECT_GT(ctl.stats().total_migrations(), 0u) << "deficit crossing ignored";
  const auto corrective = ctl.stats().total_migrations();

  for (int t = 0; t < 30; ++t) {
    f.cluster.find_app(jitter_app)->set_demand(t % 2 == 0 ? 34_W : 32_W);
    ctl.tick(300_W);
  }
  EXPECT_EQ(ctl.stats().total_migrations(), corrective)
      << "sub-margin jitter after the corrective move caused flip-flop";
}

}  // namespace
}  // namespace willow::core
