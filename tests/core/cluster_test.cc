#include "core/cluster.h"

#include <gtest/gtest.h>

#include "workload/mix.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig small_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 0.08;
  cfg.thermal.c2 = 0.05;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(30_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack, sa, sb;

  Fixture() {
    root = cluster.add_root("dc");
    rack = cluster.add_group(root, "rack");
    sa = cluster.add_server(rack, "a", small_server());
    sb = cluster.add_server(rack, "b", small_server());
  }

  Application app(workload::AppId id, double watts) {
    return Application(id, 0, Watts{watts}, 512_MB);
  }
};

TEST(Cluster, ServerRegistry) {
  Fixture f;
  EXPECT_EQ(f.cluster.server_ids().size(), 2u);
  EXPECT_TRUE(f.cluster.is_server(f.sa));
  EXPECT_FALSE(f.cluster.is_server(f.rack));
  EXPECT_EQ(f.cluster.server(f.sa).node(), f.sa);
}

TEST(Cluster, CircuitLimitDefaultsToNameplate) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.cluster.server(f.sa).circuit_limit().value(), 450.0);
  ServerConfig cfg = small_server();
  cfg.circuit_limit = 300_W;
  const NodeId sc = f.cluster.add_server(f.rack, "c", cfg);
  EXPECT_DOUBLE_EQ(f.cluster.server(sc).circuit_limit().value(), 300.0);
}

TEST(Cluster, PlaceAndFind) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  EXPECT_EQ(f.cluster.host_of(1), f.sa);
  ASSERT_NE(f.cluster.find_app(1), nullptr);
  EXPECT_DOUBLE_EQ(f.cluster.find_app(1)->mean_power().value(), 50.0);
  EXPECT_EQ(f.cluster.host_of(99), hier::kNoNode);
  EXPECT_EQ(f.cluster.find_app(99), nullptr);
}

TEST(Cluster, DoublePlacementThrows) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  EXPECT_THROW(f.cluster.place(f.app(1, 50.0), f.sb), std::logic_error);
}

TEST(Cluster, MoveApp) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  f.cluster.move_app(1, f.sa, f.sb);
  EXPECT_EQ(f.cluster.host_of(1), f.sb);
  EXPECT_TRUE(f.cluster.server(f.sa).apps().empty());
  EXPECT_EQ(f.cluster.server(f.sb).apps().size(), 1u);
  EXPECT_THROW(f.cluster.move_app(1, f.sa, f.sb), std::logic_error);
}

TEST(ManagedServer, PowerDemandIncludesIdleAppsAndTemp) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  auto& srv = f.cluster.server(f.sa);
  EXPECT_DOUBLE_EQ(srv.power_demand().value(), 30.0 + 50.0);
  srv.add_temporary_demand(5_W, 2);
  EXPECT_DOUBLE_EQ(srv.power_demand().value(), 85.0);
}

TEST(ManagedServer, TemporaryDemandExpires) {
  Fixture f;
  auto& srv = f.cluster.server(f.sa);
  srv.add_temporary_demand(5_W, 2);
  srv.add_temporary_demand(3_W, 1);
  EXPECT_DOUBLE_EQ(srv.temporary_demand().value(), 8.0);
  srv.age_temporary_demand();
  EXPECT_DOUBLE_EQ(srv.temporary_demand().value(), 5.0);
  srv.age_temporary_demand();
  EXPECT_DOUBLE_EQ(srv.temporary_demand().value(), 0.0);
}

TEST(ManagedServer, TemporaryDemandValidates) {
  Fixture f;
  auto& srv = f.cluster.server(f.sa);
  EXPECT_THROW(srv.add_temporary_demand(Watts{-1.0}, 1), std::invalid_argument);
  EXPECT_THROW(srv.add_temporary_demand(1_W, 0), std::invalid_argument);
}

TEST(ManagedServer, ConsumptionThrottledByBudget) {
  Fixture f;
  f.cluster.place(f.app(1, 200.0), f.sa);
  const auto& srv = f.cluster.server(f.sa);
  EXPECT_DOUBLE_EQ(srv.consumed_power(500_W).value(), 230.0);  // demand-bound
  EXPECT_DOUBLE_EQ(srv.consumed_power(100_W).value(), 100.0);  // budget-bound
  // Idle floor is drawn even under a sub-idle budget while active.
  EXPECT_DOUBLE_EQ(srv.consumed_power(10_W).value(), 30.0);
}

TEST(ManagedServer, UtilizationFromServedDynamicPower) {
  Fixture f;
  f.cluster.place(f.app(1, 210.0), f.sa);  // dynamic range is 420
  const auto& srv = f.cluster.server(f.sa);
  EXPECT_NEAR(srv.utilization(500_W), 0.5, 1e-12);
  EXPECT_NEAR(srv.utilization(Watts{30.0 + 105.0}), 0.25, 1e-12);
}

TEST(ManagedServer, AsleepDrawsAndReportsNothing) {
  Fixture f;
  const NodeId sa = f.sa;
  f.cluster.sleep_server(sa);
  const auto& srv = f.cluster.server(sa);
  EXPECT_DOUBLE_EQ(srv.power_demand().value(), 0.0);
  EXPECT_DOUBLE_EQ(srv.consumed_power(500_W).value(), 0.0);
  EXPECT_DOUBLE_EQ(srv.utilization(500_W), 0.0);
  EXPECT_FALSE(f.cluster.tree().node(sa).active());
}

TEST(Cluster, SleepRequiresEmptyServer) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  EXPECT_THROW(f.cluster.sleep_server(f.sa), std::logic_error);
}

TEST(Cluster, WakeRestoresActivity) {
  Fixture f;
  f.cluster.sleep_server(f.sa);
  f.cluster.wake_server(f.sa);
  EXPECT_FALSE(f.cluster.server(f.sa).asleep());
  EXPECT_TRUE(f.cluster.tree().node(f.sa).active());
}

TEST(Cluster, ObserveLeafDemandsPushesToTree) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  f.cluster.observe_leaf_demands();
  EXPECT_DOUBLE_EQ(f.cluster.tree().node(f.sa).smoothed_demand().value(), 80.0);
  EXPECT_DOUBLE_EQ(f.cluster.tree().node(f.sb).smoothed_demand().value(), 30.0);
}

TEST(Cluster, StepThermalHeatsLoadedServersMore) {
  Fixture f;
  f.cluster.place(f.app(1, 300.0), f.sa);
  f.cluster.tree().node(f.sa).set_budget(450_W);
  f.cluster.tree().node(f.sb).set_budget(450_W);
  for (int i = 0; i < 20; ++i) f.cluster.step_thermal(1_s);
  EXPECT_GT(f.cluster.server(f.sa).thermal().temperature(),
            f.cluster.server(f.sb).thermal().temperature());
}

TEST(Cluster, TotalConsumedAndActiveCount) {
  Fixture f;
  f.cluster.place(f.app(1, 100.0), f.sa);
  f.cluster.tree().node(f.sa).set_budget(450_W);
  f.cluster.tree().node(f.sb).set_budget(450_W);
  EXPECT_DOUBLE_EQ(f.cluster.total_consumed().value(), 130.0 + 30.0);
  EXPECT_EQ(f.cluster.active_server_count(), 2u);
  f.cluster.sleep_server(f.sb);
  EXPECT_DOUBLE_EQ(f.cluster.total_consumed().value(), 130.0);
  EXPECT_EQ(f.cluster.active_server_count(), 1u);
}

TEST(Cluster, RefreshDemandsConstantRestoresMeans) {
  Fixture f;
  f.cluster.place(f.app(1, 50.0), f.sa);
  f.cluster.find_app(1)->set_demand(10_W);
  f.cluster.refresh_demands_constant();
  EXPECT_DOUBLE_EQ(f.cluster.find_app(1)->demand().value(), 50.0);
}

}  // namespace
}  // namespace willow::core
