// Supply-side adaptation (Sec. IV-D): proportional division, hard
// constraints, budget-reduction marking, and message accounting.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  // Thermal never binds: tiny heating coefficient, fast cooling.
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;

  explicit Fixture(const ServerConfig& cfg = lax_server()) {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", cfg);
    s01 = cluster.add_server(rack0, "s01", cfg);
    s10 = cluster.add_server(rack1, "s10", cfg);
    s11 = cluster.add_server(rack1, "s11", cfg);
  }

  void host(NodeId server, double watts) {
    cluster.place(Application(ids.next(), 0, Watts{watts}, 512_MB), server);
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allow_drop = false;  // keep supply tests free of drop side-effects
    return cfg;
  }

  double budget(NodeId id) { return cluster.tree().node(id).budget().value(); }
};

TEST(ControllerConfig, Validation) {
  ControllerConfig cfg;
  cfg.eta1 = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ControllerConfig{};
  cfg.eta2 = cfg.eta1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ControllerConfig{};
  cfg.margin = Watts{-1.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ControllerConfig{};
  cfg.consolidation_threshold = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ControllerConfig{};
  cfg.demand_period = Seconds{0.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ControllerConfig{};
  cfg.migration_cost_periods = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ControllerConfig{}.validate());
}

TEST(SupplyAdaptation, DeficitDividedProportionalToDemand) {
  Fixture f;
  f.host(f.s00, 90.0);   // reports 100 with idle floor
  f.host(f.s01, 30.0);   // 40
  f.host(f.s10, 40.0);   // 50
  /* s11 idle */         // 10
  Controller ctl(f.cluster, f.config());
  ctl.tick(100_W);  // total demand 200, supply 100
  EXPECT_NEAR(f.budget(f.root), 100.0, 1e-6);
  EXPECT_NEAR(f.budget(f.rack0), 70.0, 1e-6);  // demand 140 of 200
  EXPECT_NEAR(f.budget(f.rack1), 30.0, 1e-6);
  EXPECT_NEAR(f.budget(f.s00), 50.0, 1e-6);
  EXPECT_NEAR(f.budget(f.s01), 20.0, 1e-6);
  EXPECT_NEAR(f.budget(f.s10), 25.0, 1e-6);
  EXPECT_NEAR(f.budget(f.s11), 5.0, 1e-6);
}

TEST(SupplyAdaptation, SurplusRegimeSatisfiesAllDemands) {
  Fixture f;
  f.host(f.s00, 90.0);
  f.host(f.s01, 30.0);
  f.host(f.s10, 40.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);
  EXPECT_GE(f.budget(f.s00), 100.0 - 1e-6);
  EXPECT_GE(f.budget(f.s01), 40.0 - 1e-6);
  EXPECT_GE(f.budget(f.s10), 50.0 - 1e-6);
  const double sum = f.budget(f.s00) + f.budget(f.s01) + f.budget(f.s10) +
                     f.budget(f.s11);
  EXPECT_LE(sum, 400.0 + 1e-6);
}

TEST(SupplyAdaptation, RootBudgetCappedByAggregateHardLimit) {
  Fixture f;
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{99999.0});
  // 4 servers x 450 W nameplate/circuit.
  EXPECT_NEAR(f.budget(f.root), 4 * 450.0, 1.0);
}

TEST(SupplyAdaptation, CircuitLimitCapsAndRedirects) {
  ServerConfig capped = lax_server();
  capped.circuit_limit = 60_W;
  Fixture f;
  // Replace s00's config by adding a capped server to rack0 instead.
  const NodeId capped_server = f.cluster.add_server(f.rack0, "capped", capped);
  f.host(capped_server, 200.0);  // wants 210
  f.host(f.s00, 100.0);          // wants 110
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{2000.0});
  EXPECT_LE(f.budget(capped_server), 60.0 + 1e-6);
  // The excess flows to siblings rather than evaporating.
  EXPECT_GE(f.budget(f.s00), 110.0 - 1e-6);
}

TEST(SupplyAdaptation, CapacityProportionalPolicyGivesEqualSharesToTwins) {
  Fixture f;
  f.host(f.s00, 200.0);
  f.host(f.s01, 20.0);
  auto cfg = f.config();
  cfg.allocation = AllocationPolicy::kProportionalToCapacity;
  Controller ctl(f.cluster, cfg);
  ctl.tick(400_W);
  // Identical capacities => equal division regardless of demand.
  EXPECT_NEAR(f.budget(f.s00), f.budget(f.s01), 1e-6);
  EXPECT_NEAR(f.budget(f.rack0), f.budget(f.rack1), 1e-6);
}

TEST(SupplyAdaptation, BudgetReducedFlagsMarkTightening) {
  Fixture f;
  f.host(f.s00, 90.0);
  f.host(f.s10, 90.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);
  EXPECT_FALSE(ctl.budget_reduced(f.root));
  ctl.force_supply_adaptation(150_W);
  EXPECT_TRUE(ctl.budget_reduced(f.root));
  EXPECT_TRUE(ctl.budget_reduced(f.rack0));
  EXPECT_TRUE(ctl.budget_reduced(f.s00));
}

TEST(SupplyAdaptation, IncreaseClearsReducedFlags) {
  Fixture f;
  f.host(f.s00, 90.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(100_W);
  ctl.force_supply_adaptation(50_W);
  EXPECT_TRUE(ctl.budget_reduced(f.s00));
  ctl.force_supply_adaptation(300_W);
  EXPECT_FALSE(ctl.budget_reduced(f.s00));
  EXPECT_FALSE(ctl.budget_reduced(f.root));
}

TEST(SupplyAdaptation, SleepingServersGetNoBudget) {
  Fixture f;
  f.host(f.s00, 90.0);
  f.cluster.sleep_server(f.s11);
  Controller ctl(f.cluster, f.config());
  ctl.tick(400_W);
  EXPECT_DOUBLE_EQ(f.budget(f.s11), 0.0);
}

TEST(SupplyAdaptation, BudgetsNestWithinParents) {
  Fixture f;
  f.host(f.s00, 120.0);
  f.host(f.s01, 60.0);
  f.host(f.s10, 30.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 10; ++t) {
    ctl.tick(Watts{180.0 + 20.0 * t});
    const auto& tree = f.cluster.tree();
    for (NodeId id : tree.all_nodes()) {
      const auto& n = tree.node(id);
      if (n.is_leaf()) continue;
      double child_sum = 0.0;
      for (NodeId c : n.children()) child_sum += tree.node(c).budget().value();
      EXPECT_LE(child_sum, n.budget().value() + 1e-6);
    }
  }
}

TEST(SupplyAdaptation, ThermalClampReducesHotServerBudget) {
  // A server already at its thermal limit gets its budget clamped to the
  // (small) holdable power even mid-supply-period.
  ServerConfig hot = lax_server();
  hot.thermal.c1 = 0.08;
  hot.thermal.c2 = 0.05;
  Fixture f(hot);
  f.host(f.s00, 200.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(Watts{2000.0});  // cold start: generous budget
  EXPECT_GT(f.budget(f.s00), 100.0);
  // The server heats to its ceiling between supply periods; the next demand
  // period clamps the budget locally without waiting for ΔS.
  f.cluster.server(f.s00).thermal().set_temperature(70_degC);
  ctl.tick(Watts{2000.0});  // tick 2: not a supply period
  // Holdable power at the limit ~ steady-state level (c2/c1 * 45 = 28 W).
  EXPECT_LE(f.budget(f.s00), 30.0);
  EXPECT_TRUE(ctl.budget_reduced(f.s00));
}

TEST(SupplyAdaptation, MessageCountsObeyProperty3) {
  Fixture f;
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  for (int t = 0; t < 8; ++t) ctl.tick(300_W);
  const auto& tree = f.cluster.tree();
  for (NodeId id : tree.all_nodes()) {
    if (tree.node(id).is_root()) continue;
    const auto& link = tree.node(id).link();
    // Event-driven messaging: a report crosses a link only when the node's
    // demand estimate moved, a directive only when its budget changed.  With
    // constant demand and constant supply most periods are silent; Property 3
    // caps the worst case at one report + one directive per ΔD.
    EXPECT_GE(link.up, 1u);                  // every node introduced itself
    EXPECT_LE(link.up, 8u);                  // at most one report per ΔD
    EXPECT_GE(link.down, 1u);                // every node got a first budget
    EXPECT_LE(link.up + link.down, 2u * 8u); // Property 3
  }
  // The fixed point is silent: with demand and supply pinned, further ticks
  // move no message in either direction on any link.
  std::vector<std::uint64_t> up_before, down_before;
  for (NodeId id : tree.all_nodes()) {
    up_before.push_back(tree.node(id).link().up);
    down_before.push_back(tree.node(id).link().down);
  }
  for (int t = 0; t < 8; ++t) ctl.tick(300_W);
  for (NodeId id : tree.all_nodes()) {
    EXPECT_EQ(tree.node(id).link().up, up_before[id]) << "node " << id;
    EXPECT_EQ(tree.node(id).link().down, down_before[id]) << "node " << id;
  }
}

}  // namespace
}  // namespace willow::core
