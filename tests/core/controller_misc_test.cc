// Remaining controller branches: supply cadence with non-default eta,
// consolidation without locality preference, revival blocked under reduced
// ancestors, and capacity-policy interplay with circuit limits.
#include <gtest/gtest.h>

#include <map>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack0, rack1, s00, s01, s10, s11;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack0 = cluster.add_group(root, "rack0");
    rack1 = cluster.add_group(root, "rack1");
    s00 = cluster.add_server(rack0, "s00", lax_server());
    s01 = cluster.add_server(rack0, "s01", lax_server());
    s10 = cluster.add_server(rack1, "s10", lax_server());
    s11 = cluster.add_server(rack1, "s11", lax_server());
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }
};

TEST(SupplyCadence, CustomEtaOneControlsDownMessages) {
  // Directives are event-driven, so a *changing* supply is what exposes the
  // ΔS cadence: each supply event re-divides the budget and only then can a
  // new directive cross a link.  eta1 = 2 divides at ticks 1, 2, 4, 6, 8 —
  // five chances; eta1 = 4 divides at ticks 1, 4, 8 — three chances.
  std::map<int, std::uint64_t> busiest;
  for (const int eta1 : {2, 4}) {
    Fixture f;
    f.host(f.s00, 50.0);
    ControllerConfig cfg;
    cfg.eta1 = eta1;
    cfg.eta2 = 5;
    Controller ctl(f.cluster, cfg);
    for (int t = 0; t < 9; ++t) ctl.tick(Watts{400.0 + 25.0 * t});
    const std::uint64_t supply_events = eta1 == 2 ? 5u : 3u;
    for (NodeId id : f.cluster.tree().all_nodes()) {
      if (f.cluster.tree().node(id).is_root()) continue;
      const auto down = f.cluster.tree().node(id).link().down;
      EXPECT_LE(down, supply_events) << "eta1=" << eta1 << " node " << id;
      busiest[eta1] = std::max(busiest[eta1], down);
    }
    EXPECT_GE(busiest[eta1], 1u) << "eta1=" << eta1;
  }
  // Twice as many divisions of the moving supply -> strictly more directives
  // on the loaded path (exact counts depend on which divisions happen to
  // repeat a budget bitwise, which is not this test's concern).
  EXPECT_GT(busiest[2], busiest[4]);
}

TEST(Consolidation, GlobalScopeWhenLocalityDisabled) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s10, 20.0);  // candidate in the *other* rack
  ControllerConfig cfg;
  cfg.margin = 5_W;
  cfg.migration_cost = 2_W;
  cfg.prefer_local = false;
  Controller ctl(f.cluster, cfg);
  for (int t = 1; t <= 7; ++t) ctl.tick(Watts{1760.0});
  EXPECT_TRUE(f.cluster.server(f.s10).asleep());
  // With no locality preference the drained app may land anywhere; it must
  // land exactly once.
  std::size_t hosted = 0;
  for (NodeId s : f.cluster.server_ids()) {
    hosted += f.cluster.server(s).apps().size();
  }
  EXPECT_EQ(hosted, 2u);
}

TEST(Revival, BlockedWhileAncestorReduced) {
  Fixture f;
  const auto victim = f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  f.host(f.s10, 100.0);
  f.host(f.s11, 100.0);
  ControllerConfig cfg;
  cfg.margin = 5_W;
  cfg.allocation = AllocationPolicy::kProportionalToCapacity;
  Controller ctl(f.cluster, cfg);
  ctl.tick(Watts{200.0});  // starve: drops everywhere
  ASSERT_TRUE(f.cluster.find_app(victim)->dropped());
  // Tick 2-3: budgets unchanged (not a supply period), but the reduced
  // flags from tick 1... tick 1 set budgets from 0 -> not reduced.  Force a
  // reducing event and verify revival stays blocked while flags stand even
  // though headroom exists.
  f.cluster.refresh_demands_constant();
  ctl.tick(Watts{195.0});  // tick 2: no ΔS; flags as before
  ctl.force_supply_adaptation(Watts{190.0});  // everything reduced
  ASSERT_TRUE(ctl.budget_reduced(f.root));
  const auto revivals_before = ctl.stats().revivals;
  f.cluster.refresh_demands_constant();
  ctl.tick(Watts{190.0});  // tick 3: no ΔS; reduced flags persist
  EXPECT_EQ(ctl.stats().revivals, revivals_before);
}

TEST(Revival, ProceedsOnceFlagsClear) {
  Fixture f;
  const auto victim = f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  ControllerConfig cfg;
  cfg.margin = 5_W;
  cfg.allocation = AllocationPolicy::kProportionalToCapacity;
  Controller ctl(f.cluster, cfg);
  ctl.tick(Watts{100.0});
  ASSERT_TRUE(f.cluster.find_app(victim)->dropped());
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{500.0});
  }
  EXPECT_FALSE(f.cluster.find_app(victim)->dropped());
}

TEST(CapacityPolicy, CircuitCapsShiftEqualShares) {
  // Capacity-proportional shares follow hard limits: a server with a small
  // circuit rating gets proportionally less even with identical demand.
  ServerConfig small = lax_server();
  small.circuit_limit = 100_W;
  Fixture f;
  const NodeId capped = f.cluster.add_server(f.rack0, "capped", small);
  f.host(capped, 50.0);
  f.host(f.s00, 50.0);
  ControllerConfig cfg;
  cfg.allocation = AllocationPolicy::kProportionalToCapacity;
  Controller ctl(f.cluster, cfg);
  ctl.tick(Watts{5000.0});
  const auto& tree = f.cluster.tree();
  EXPECT_LE(tree.node(capped).budget().value(), 100.0 + 1e-6);
  EXPECT_GT(tree.node(f.s00).budget().value(),
            tree.node(capped).budget().value());
}

TEST(Wake, SkippedWhenNoHeadroom) {
  // A sleeping server exists but the supply is fully consumed by the awake
  // ones: waking would help nobody, so the controller must not thrash.
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 20.0);
  ControllerConfig cfg;
  cfg.margin = 5_W;
  Controller ctl(f.cluster, cfg);
  for (int t = 1; t <= 7; ++t) ctl.tick(Watts{1760.0});
  // Consolidation put some servers to sleep under plenty.
  ASSERT_GT(ctl.stats().sleeps, 0u);
  // Now cut the supply to exactly what the two loaded apps need: deficits
  // appear but waking adds no supply.
  const auto wakes_before = ctl.stats().wakes;
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(Watts{120.0});
  }
  EXPECT_EQ(ctl.stats().wakes, wakes_before);
}

}  // namespace
}  // namespace willow::core
