// The controller's per-tick decision log: every action appears, in order,
// with a readable rendering.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack, s00, s01;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack = cluster.add_group(root, "rack");
    s00 = cluster.add_server(rack, "s00", lax_server());
    s01 = cluster.add_server(rack, "s01", lax_server());
  }

  workload::AppId host(NodeId server, double watts) {
    const auto id = ids.next();
    cluster.place(Application(id, 0, Watts{watts}, 512_MB), server);
    return id;
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    return cfg;
  }
};

std::size_t count(const std::vector<ControlEvent>& events, EventKind kind) {
  std::size_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(EventLog, MigrationInitiatedRecorded) {
  Fixture f;
  const auto app = f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(200_W);
  const auto& events = ctl.events_this_tick();
  ASSERT_EQ(count(events, EventKind::kMigrationInitiated), 1u);
  const auto& e = events.front();
  EXPECT_EQ(e.kind, EventKind::kMigrationInitiated);
  EXPECT_EQ(e.node, f.s00);
  EXPECT_EQ(e.node2, f.s01);
  EXPECT_EQ(e.tick, 1);
  EXPECT_TRUE(e.app == app || e.app != 0);
  EXPECT_DOUBLE_EQ(e.amount.value(), 50.0);
}

TEST(EventLog, DropAndReviveRecorded) {
  Fixture f;
  f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(100_W);  // starve: drops
  EXPECT_GT(count(ctl.events_this_tick(), EventKind::kDrop), 0u);
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(400_W);
    if (count(ctl.events_this_tick(), EventKind::kRevive) > 0) break;
  }
  EXPECT_GT(ctl.stats().revivals, 0u);
}

TEST(EventLog, DegradeAndRestoreRecorded) {
  Fixture f;
  f.host(f.s00, 100.0);
  f.host(f.s01, 100.0);
  ControllerConfig cfg = f.config();
  cfg.shedding = SheddingPolicy::kDegradeThenDrop;
  Controller ctl(f.cluster, cfg);
  ctl.tick(140_W);
  EXPECT_GT(count(ctl.events_this_tick(), EventKind::kDegrade), 0u);
  std::size_t restores = 0;
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(400_W);
    restores += count(ctl.events_this_tick(), EventKind::kRestore);
  }
  EXPECT_GT(restores, 0u);
}

TEST(EventLog, SleepRecordedAtConsolidation) {
  Fixture f;
  f.host(f.s00, 170.0);
  f.host(f.s01, 20.0);
  Controller ctl(f.cluster, f.config());
  std::size_t sleeps = 0;
  for (int t = 1; t <= 7; ++t) {
    ctl.tick(880_W);
    sleeps += count(ctl.events_this_tick(), EventKind::kSleep);
  }
  EXPECT_EQ(sleeps, 1u);
}

TEST(EventLog, CompletedEventInLatencyMode) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  ControllerConfig cfg = f.config();
  cfg.migration_periods_per_gib = 2.0;  // 512 MB image -> 1 period
  Controller ctl(f.cluster, cfg);
  ctl.tick(200_W);
  ASSERT_EQ(count(ctl.events_this_tick(), EventKind::kMigrationInitiated), 1u);
  std::size_t completed = 0;
  for (int t = 0; t < 3; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(200_W);
    completed += count(ctl.events_this_tick(), EventKind::kMigrationCompleted);
  }
  EXPECT_EQ(completed, 1u);
}

TEST(EventLog, ClearedEachTick) {
  Fixture f;
  f.host(f.s00, 50.0);
  f.host(f.s00, 50.0);
  Controller ctl(f.cluster, f.config());
  ctl.tick(200_W);
  ASSERT_FALSE(ctl.events_this_tick().empty());
  f.cluster.refresh_demands_constant();
  ctl.tick(200_W);  // steady state: nothing to do
  EXPECT_TRUE(ctl.events_this_tick().empty());
}

TEST(EventLog, ToStringRendersEveryKind) {
  ControlEvent e;
  e.tick = 3;
  e.app = 7;
  e.node = 2;
  e.node2 = 5;
  e.amount = 12_W;
  for (auto kind : {EventKind::kMigrationInitiated,
                    EventKind::kMigrationCompleted, EventKind::kDrop,
                    EventKind::kDegrade, EventKind::kRevive,
                    EventKind::kRestore, EventKind::kSleep, EventKind::kWake}) {
    e.kind = kind;
    const std::string text = to_string(e);
    EXPECT_NE(text.find("t=3"), std::string::npos);
    EXPECT_FALSE(text.empty());
  }
  e.kind = EventKind::kDrop;
  EXPECT_NE(to_string(e).find("drop app 7"), std::string::npos);
}

}  // namespace
}  // namespace willow::core
