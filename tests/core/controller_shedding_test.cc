// Shedding policies: priority-ordered drops, degraded operational modes
// (Sec. I: shutting down low-priority tasks / altering the computation), and
// the priority-ordered restoration path.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "workload/mix.h"

#include <set>

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

ServerConfig lax_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 1e-4;
  cfg.thermal.c2 = 1.0;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct Fixture {
  Cluster cluster{1.0};
  NodeId root, rack, s00, s01;
  workload::AppIdAllocator ids;

  Fixture() {
    root = cluster.add_root("dc");
    rack = cluster.add_group(root, "rack");
    s00 = cluster.add_server(rack, "s00", lax_server());
    s01 = cluster.add_server(rack, "s01", lax_server());
  }

  workload::AppId host(NodeId server, double watts, int priority) {
    const auto id = ids.next();
    Application app(id, 0, Watts{watts}, 512_MB);
    app.set_priority(priority);
    cluster.place(std::move(app), server);
    return id;
  }

  ControllerConfig config() {
    ControllerConfig cfg;
    cfg.margin = 5_W;
    cfg.migration_cost = 2_W;
    cfg.allocation = AllocationPolicy::kProportionalToCapacity;
    return cfg;
  }
};

TEST(ApplicationServiceLevel, Validation) {
  Application a(1, 0, 100_W, 512_MB);
  EXPECT_THROW(a.set_service_level(-0.1), std::invalid_argument);
  EXPECT_THROW(a.set_service_level(1.1), std::invalid_argument);
  a.set_service_level(0.5);
  EXPECT_TRUE(a.degraded());
  EXPECT_DOUBLE_EQ(a.effective_mean_power().value(), 50.0);
  a.set_service_level(1.0);
  EXPECT_FALSE(a.degraded());
}

TEST(ApplicationServiceLevel, DemandGeneratorsUseEffectiveMean) {
  Application a(1, 0, 100_W, 512_MB);
  a.set_service_level(0.25);
  workload::ConstantDemand::refresh(a);
  EXPECT_DOUBLE_EQ(a.demand().value(), 25.0);
}

TEST(ConfigValidation, DegradedServiceLevelRange) {
  ControllerConfig cfg;
  cfg.degraded_service_level = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.degraded_service_level = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.degraded_service_level = 0.5;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Shedding, LowPriorityDroppedFirst) {
  // Both servers saturated so nothing migrates; the deficit forces shedding.
  Fixture f;
  const auto critical = f.host(f.s00, 60.0, /*priority=*/0);
  const auto best_effort = f.host(f.s00, 60.0, /*priority=*/2);
  f.host(f.s01, 120.0, 1);
  Controller ctl(f.cluster, f.config());
  // 80 W each against ~130 W demand: deficit ~50 on s00; one 60 W app
  // covers it — the priority-2 one must be the casualty.
  ctl.tick(160_W);
  const Application* crit = f.cluster.find_app(critical);
  const Application* best = f.cluster.find_app(best_effort);
  ASSERT_NE(crit, nullptr);
  ASSERT_NE(best, nullptr);
  EXPECT_FALSE(crit->dropped());
  EXPECT_TRUE(best->dropped());
}

TEST(Shedding, DegradeThenDropPrefersServiceReduction) {
  Fixture f;
  const auto a1 = f.host(f.s00, 60.0, 1);
  const auto a2 = f.host(f.s00, 60.0, 1);
  f.host(f.s01, 120.0, 1);
  ControllerConfig cfg = f.config();
  cfg.shedding = SheddingPolicy::kDegradeThenDrop;
  cfg.degraded_service_level = 0.5;
  Controller ctl(f.cluster, cfg);
  // s00 deficit ~50 W; degrading both 60 W apps to 50% releases 60 W: enough.
  ctl.tick(160_W);
  const Application* p1 = f.cluster.find_app(a1);
  const Application* p2 = f.cluster.find_app(a2);
  EXPECT_FALSE(p1->dropped());
  EXPECT_FALSE(p2->dropped());
  EXPECT_TRUE(p1->degraded() || p2->degraded());
  EXPECT_GT(ctl.stats().degrades, 0u);
  EXPECT_EQ(ctl.stats().drops, 0u);
  EXPECT_GT(ctl.stats().degraded_demand.value(), 0.0);
}

TEST(Shedding, DegradationInsufficientFallsBackToDrop) {
  Fixture f;
  f.host(f.s00, 100.0, 1);
  f.host(f.s01, 100.0, 1);
  ControllerConfig cfg = f.config();
  cfg.shedding = SheddingPolicy::kDegradeThenDrop;
  cfg.degraded_service_level = 0.9;  // releases only 10 W per app
  Controller ctl(f.cluster, cfg);
  ctl.tick(100_W);  // 50 W each against 110 W demand: deficit 60 W
  EXPECT_GT(ctl.stats().degrades, 0u);
  EXPECT_GT(ctl.stats().drops, 0u);
}

TEST(Shedding, DegradedDemandShrinksImmediately) {
  Fixture f;
  const auto id = f.host(f.s00, 100.0, 1);
  f.host(f.s01, 100.0, 1);
  ControllerConfig cfg = f.config();
  cfg.shedding = SheddingPolicy::kDegradeThenDrop;
  cfg.degraded_service_level = 0.5;
  Controller ctl(f.cluster, cfg);
  ctl.tick(140_W);  // deficit 40 on each server; degrade releases 50
  const Application* app = f.cluster.find_app(id);
  ASSERT_TRUE(app->degraded());
  EXPECT_DOUBLE_EQ(app->demand().value(), 50.0);
}

TEST(Restoration, ServiceLevelsRestoredUnderSurplus) {
  Fixture f;
  const auto id = f.host(f.s00, 100.0, 1);
  f.host(f.s01, 100.0, 1);
  ControllerConfig cfg = f.config();
  cfg.shedding = SheddingPolicy::kDegradeThenDrop;
  cfg.degraded_service_level = 0.5;
  Controller ctl(f.cluster, cfg);
  ctl.tick(140_W);
  ASSERT_TRUE(f.cluster.find_app(id)->degraded());
  // Supply returns; service restored at the next supply periods.
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(400_W);
  }
  EXPECT_FALSE(f.cluster.find_app(id)->degraded());
  EXPECT_GT(ctl.stats().restores, 0u);
}

TEST(Restoration, HighPriorityRevivedFirst) {
  Fixture f;
  const auto critical = f.host(f.s00, 60.0, 0);
  const auto best_effort = f.host(f.s00, 60.0, 2);
  f.host(f.s01, 120.0, 1);
  ControllerConfig cfg = f.config();
  // Keep both servers up so the partial-supply arithmetic stays exact
  // (consolidation would free an idle floor and fund the second revival).
  cfg.consolidation_threshold = 0.0;
  Controller ctl(f.cluster, cfg);
  ctl.tick(60_W);  // starve hard: both s00 apps dropped
  ASSERT_TRUE(f.cluster.find_app(critical)->dropped());
  ASSERT_TRUE(f.cluster.find_app(best_effort)->dropped());
  // Give back enough for one 60 W app on s00 (100 W budget - 10 idle -
  // 5 margin = 85 W headroom), not two.
  for (int t = 0; t < 8; ++t) {
    f.cluster.refresh_demands_constant();
    ctl.tick(200_W);
  }
  EXPECT_FALSE(f.cluster.find_app(critical)->dropped());
  EXPECT_TRUE(f.cluster.find_app(best_effort)->dropped());
}

TEST(Shedding, MixAssignsPriorities) {
  workload::MixConfig cfg;
  cfg.unit_power = 10_W;
  cfg.target_mean_per_server = 200_W;
  cfg.priority_levels = 3;
  workload::AppIdAllocator ids;
  util::Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 20; ++i) {
    for (const auto& a : workload::build_mix(cfg, ids, rng)) {
      EXPECT_GE(a.priority(), 0);
      EXPECT_LT(a.priority(), 3);
      seen.insert(a.priority());
    }
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace willow::core
