// ServerArena unit coverage: dense slot mapping, generation-checked handles,
// and subtree spans — both the contiguous fast case (depth-first fleets) and
// the materialized fallback for interleaved creation orders.
#include "core/arena.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hier/tree.h"

namespace willow::core {
namespace {

using hier::NodeId;

/// root -> two racks -> `per_rack` servers each, built depth-first.
struct DepthFirstFleet {
  hier::Tree tree;
  ServerArena arena;
  std::vector<NodeId> servers;

  explicit DepthFirstFleet(int per_rack) {
    const NodeId root = tree.add_root("dc");
    for (int r = 0; r < 2; ++r) {
      const NodeId rack = tree.add_child(root, "rack");
      for (int i = 0; i < per_rack; ++i) {
        const NodeId leaf = tree.add_child(rack, "srv");
        arena.add(leaf);
        servers.push_back(leaf);
      }
    }
    arena.build_subtree_index(tree);
  }
};

TEST(ServerArena, SlotMappingIsDenseAndBidirectional) {
  DepthFirstFleet f(3);
  ASSERT_EQ(f.arena.size(), 6u);
  for (std::uint32_t slot = 0; slot < 6; ++slot) {
    const NodeId leaf = f.arena.node_of(slot);
    EXPECT_EQ(leaf, f.servers[slot]) << "slots follow creation order";
    EXPECT_EQ(f.arena.slot_of(leaf), slot);
    EXPECT_EQ(f.arena.checked_slot_of(leaf), slot);
  }
  EXPECT_EQ(f.arena.nodes(), f.servers);
  // Internal nodes and out-of-range ids are not servers.
  EXPECT_EQ(f.arena.slot_of(f.tree.root()), ServerArena::kNoSlot);
  EXPECT_EQ(f.arena.slot_of(NodeId{10'000}), ServerArena::kNoSlot);
  EXPECT_THROW((void)f.arena.checked_slot_of(f.tree.root()),
               std::out_of_range);
}

TEST(ServerArena, HandlesCarryGenerationsAndGoStaleOnInvalidate) {
  DepthFirstFleet f(2);
  const NodeId leaf = f.servers[1];
  const ServerHandle h = f.arena.find(leaf);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(f.arena.checked_slot(h), 1u);
  EXPECT_EQ(f.arena.handle_at(1), h);

  f.arena.invalidate_handles(1);
  EXPECT_THROW((void)f.arena.checked_slot(h), std::out_of_range)
      << "pre-invalidation handles must fail loudly";
  const ServerHandle fresh = f.arena.find(leaf);
  EXPECT_NE(fresh, h);
  EXPECT_EQ(f.arena.checked_slot(fresh), 1u);

  const ServerHandle none = f.arena.find(f.tree.root());
  EXPECT_FALSE(none.valid());
  EXPECT_THROW((void)f.arena.checked_slot(none), std::out_of_range);
}

TEST(ServerArena, DepthFirstFleetsYieldContiguousSpans) {
  DepthFirstFleet f(4);
  EXPECT_EQ(f.arena.fragmented_nodes(), 0u);

  const SubtreeSpan all = f.arena.subtree(f.tree.root());
  ASSERT_EQ(all.size(), 8u);
  EXPECT_TRUE(all.contiguous());
  for (std::uint32_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i) << "root span enumerates slots in creation order";
  }

  // Rack spans cover their own four servers, creation-ordered.
  const NodeId rack0 = f.tree.node(f.servers[0]).parent();
  const NodeId rack1 = f.tree.node(f.servers[4]).parent();
  const SubtreeSpan s0 = f.arena.subtree(rack0);
  const SubtreeSpan s1 = f.arena.subtree(rack1);
  ASSERT_EQ(s0.size(), 4u);
  ASSERT_EQ(s1.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s0[i], i);
    EXPECT_EQ(s1[i], i + 4);
  }

  // A leaf's span is the leaf itself (inclusive semantics).
  const SubtreeSpan leaf = f.arena.subtree(f.servers[5]);
  ASSERT_EQ(leaf.size(), 1u);
  EXPECT_EQ(leaf[0], 5u);
}

TEST(ServerArena, InterleavedCreationFallsBackToMaterializedLists) {
  // Servers added rack0, rack1, rack0, rack1: neither rack's slots are
  // contiguous, so both must come back through the overflow lists — still in
  // creation order, because downstream iteration order is load-bearing.
  hier::Tree tree;
  ServerArena arena;
  const NodeId root = tree.add_root("dc");
  const NodeId rack0 = tree.add_child(root, "rack");
  const NodeId rack1 = tree.add_child(root, "rack");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i) {
    const NodeId leaf = tree.add_child(i % 2 == 0 ? rack0 : rack1, "srv");
    arena.add(leaf);
    leaves.push_back(leaf);
  }
  arena.build_subtree_index(tree);
  EXPECT_EQ(arena.fragmented_nodes(), 2u);

  const SubtreeSpan s0 = arena.subtree(rack0);
  const SubtreeSpan s1 = arena.subtree(rack1);
  ASSERT_EQ(s0.size(), 2u);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_FALSE(s0.contiguous());
  EXPECT_FALSE(s1.contiguous());
  EXPECT_EQ(s0[0], 0u);
  EXPECT_EQ(s0[1], 2u);
  EXPECT_EQ(s1[0], 1u);
  EXPECT_EQ(s1[1], 3u);

  // The root still sees every server, contiguously.
  const SubtreeSpan all = arena.subtree(root);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(all.contiguous());

  // Adding a server invalidates the span index until the next rebuild.
  arena.add(tree.add_child(rack0, "late"));
  EXPECT_FALSE(arena.subtree_index_built_for(tree));
  EXPECT_THROW((void)arena.subtree(root), std::logic_error);
  arena.build_subtree_index(tree);
  EXPECT_EQ(arena.subtree(root).size(), 5u);
  EXPECT_EQ(arena.subtree(rack0).size(), 3u);
}

TEST(ServerArena, DoubleRegistrationThrows) {
  hier::Tree tree;
  ServerArena arena;
  const NodeId root = tree.add_root("dc");
  const NodeId leaf = tree.add_child(root, "rack");
  arena.add(leaf);
  EXPECT_THROW((void)arena.add(leaf), std::logic_error);
}

}  // namespace
}  // namespace willow::core
