// Randomized whole-controller invariants: budget conservation, thermal
// safety, app conservation, and decision stability (Property 4).
//
// Scale note: with the paper's thermal constants the sustainable steady
// power is c2/c1 * 45 = 28.125 W per server (idle floor 10 W), so workloads
// and supplies here live on that envelope — the same scale the simulator
// uses (see sim::SimConfig).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/controller.h"
#include "util/rng.h"
#include "workload/demand.h"
#include "workload/mix.h"

namespace willow::core {
namespace {

using namespace willow::util::literals;
using workload::Application;

constexpr double kSustainableW = 28.125;      // c2/c1 * (70 - 25)
constexpr double kSustainableDynamicW = 18.125;  // minus the 10 W idle floor

ServerConfig paper_server() {
  ServerConfig cfg;
  cfg.thermal.c1 = 0.08;
  cfg.thermal.c2 = 0.05;
  cfg.thermal.ambient = 25_degC;
  cfg.thermal.limit = 70_degC;
  cfg.thermal.nameplate = 450_W;
  cfg.power_model = power::ServerPowerModel(10_W, 450_W);
  return cfg;
}

struct RandomPlant {
  Cluster cluster{0.7};
  std::vector<NodeId> servers;
  workload::AppIdAllocator ids;
  std::set<workload::AppId> all_apps;

  /// Each server gets a random offered load in [util_lo, util_hi] of the
  /// sustainable dynamic envelope.
  RandomPlant(util::Rng& rng, double util_lo, double util_hi) {
    const NodeId root = cluster.add_root("dc");
    const int racks = rng.uniform_int(2, 4);
    for (int r = 0; r < racks; ++r) {
      const NodeId rack = cluster.add_group(root, "rack");
      const int n = rng.uniform_int(2, 4);
      for (int s = 0; s < n; ++s) {
        servers.push_back(cluster.add_server(rack, "srv", paper_server()));
      }
    }
    workload::MixConfig mix;
    mix.unit_power = 1_W;
    for (NodeId s : servers) {
      mix.target_mean_per_server =
          Watts{kSustainableDynamicW * rng.uniform(util_lo, util_hi)};
      for (auto& app : workload::build_mix(mix, ids, rng)) {
        all_apps.insert(app.id());
        cluster.place(std::move(app), s);
      }
    }
  }

  [[nodiscard]] double capacity() const {
    return kSustainableW * static_cast<double>(servers.size());
  }
};

void check_invariants(const Cluster& cluster,
                      const std::set<workload::AppId>& all_apps) {
  const auto& tree = cluster.tree();
  // Budgets nest.
  for (NodeId id : tree.all_nodes()) {
    const auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    double child_sum = 0.0;
    for (NodeId c : n.children()) child_sum += tree.node(c).budget().value();
    ASSERT_LE(child_sum, n.budget().value() + 1e-6);
  }
  // Every app hosted exactly once; thermal ceilings respected.
  std::multiset<workload::AppId> hosted;
  for (NodeId s : cluster.server_ids()) {
    const auto& srv = cluster.server(s);
    for (const auto& a : srv.apps()) hosted.insert(a.id());
    ASSERT_LE(srv.thermal().temperature().value(),
              srv.thermal().params().limit.value() + 0.5)
        << "thermal violation on server " << s;
    if (srv.asleep()) {
      ASSERT_TRUE(srv.apps().empty());
      ASSERT_FALSE(tree.node(s).active());
    }
  }
  ASSERT_EQ(hosted.size(), all_apps.size());
  for (workload::AppId id : all_apps) ASSERT_EQ(hosted.count(id), 1u);
}

class ControllerRandom : public ::testing::TestWithParam<unsigned long long> {
};

TEST_P(ControllerRandom, InvariantsHoldUnderPoissonLoadAndSupplyWalk) {
  util::Rng rng(GetParam());
  RandomPlant plant(rng, 0.2, 0.8);
  ControllerConfig cfg;
  cfg.margin = 1.5_W;
  cfg.migration_cost = 0.5_W;
  cfg.utilization_reference = UtilizationReference::kThermalSustainable;
  Controller ctl(plant.cluster, cfg);
  workload::PoissonDemand demand(Watts{0.25});

  double supply = plant.capacity() * 0.9;
  for (int t = 0; t < 120; ++t) {
    // Random walk on supply with occasional plunges/recoveries.
    if (rng.chance(0.1)) supply = plant.capacity() * rng.uniform(0.4, 1.1);
    plant.cluster.refresh_demands(demand, rng);
    ctl.tick(Watts{supply});
    plant.cluster.step_thermal(1_s);
    check_invariants(plant.cluster, plant.all_apps);
  }
}

TEST_P(ControllerRandom, Property4NoPingPongUnderBoundedFluctuation) {
  // Margins absorb fluctuations smaller than P_min: once migrated, a demand
  // stays put for at least delta_f periods (Sec. V-A3, Property 4).
  util::Rng rng(GetParam() + 500);
  RandomPlant plant(rng, 0.15, 0.85);  // heterogeneous loads
  ControllerConfig cfg;
  cfg.margin = 3_W;  // generous P_min vs ~0.5 W aggregate fluctuation
  cfg.migration_cost = 0.5_W;
  cfg.allocation = AllocationPolicy::kProportionalToCapacity;
  cfg.utilization_reference = UtilizationReference::kThermalSustainable;
  Controller ctl(plant.cluster, cfg);
  workload::PoissonDemand demand(Watts{0.1});  // tiny quanta: low variance

  std::map<workload::AppId, long> last_move;
  const long delta_f = 3;
  long violations = 0;
  for (int t = 0; t < 100; ++t) {
    plant.cluster.refresh_demands(demand, rng);
    // Constant supply after a plunge at t=10 (one tightening event).
    const double frac = t < 10 ? 1.0 : 0.75;
    ctl.tick(Watts{plant.capacity() * frac});
    plant.cluster.step_thermal(1_s);
    for (const auto& rec : ctl.migrations_this_tick()) {
      auto it = last_move.find(rec.app);
      if (it != last_move.end() && ctl.tick_count() - it->second < delta_f) {
        ++violations;
      }
      last_move[rec.app] = ctl.tick_count();
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST_P(ControllerRandom, DroppedDemandAccountingIsConsistent) {
  util::Rng rng(GetParam() + 900);
  RandomPlant plant(rng, 0.4, 0.8);
  ControllerConfig cfg;
  cfg.margin = 1_W;
  cfg.migration_cost = 0.5_W;
  cfg.utilization_reference = UtilizationReference::kThermalSustainable;
  Controller ctl(plant.cluster, cfg);
  for (int t = 0; t < 40; ++t) {
    plant.cluster.refresh_demands_constant();
    // Persistent deep deficiency: barely above the idle floors.
    ctl.tick(Watts{11.0 * static_cast<double>(plant.servers.size())});
    plant.cluster.step_thermal(1_s);
  }
  const auto& st = ctl.stats();
  // Deep deficiency must have degraded something, and the accounting of
  // drops vs revivals must cover every currently-dropped app.
  EXPECT_GT(st.drops, 0u);
  std::size_t dropped_now = 0;
  for (NodeId s : plant.cluster.server_ids()) {
    for (const auto& a : plant.cluster.server(s).apps()) {
      dropped_now += a.dropped() ? 1 : 0;
    }
  }
  EXPECT_LE(dropped_now, st.drops);
  EXPECT_GE(st.drops, st.revivals);
  EXPECT_EQ(st.drops - st.revivals, dropped_now);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerRandom,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace willow::core
