#include "thermal/calibration.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace willow::thermal {
namespace {

using namespace willow::util::literals;

ThermalParams sim_truth() {
  ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  p.ambient = 25_degC;
  p.limit = 70_degC;
  p.nameplate = 450_W;
  return p;
}

ThermalParams testbed_truth() {
  ThermalParams p;
  p.c1 = 0.2;
  p.c2 = 0.008;
  p.ambient = 25_degC;
  p.limit = 70_degC;
  p.nameplate = 250_W;
  return p;
}

std::vector<Watts> step_schedule() {
  return {Watts{0}, Watts{80}, Watts{160}, Watts{240}, Watts{60}, Watts{200}};
}

TEST(Calibration, FitRejectsTinyTraces) {
  EXPECT_THROW(fit_thermal_constants({}, 25_degC), std::invalid_argument);
  std::vector<TraceSample> two = {{0_W, 0_s, 25_degC}, {10_W, 1_s, 26_degC}};
  EXPECT_THROW(fit_thermal_constants(two, 25_degC), std::invalid_argument);
}

TEST(Calibration, FitRejectsNonPositiveDt) {
  std::vector<TraceSample> t = {{0_W, 0_s, 25_degC},
                                {10_W, Seconds{0.0}, 26_degC},
                                {10_W, 1_s, 27_degC}};
  EXPECT_THROW(fit_thermal_constants(t, 25_degC), std::invalid_argument);
}

TEST(Calibration, FitRejectsUnexcitingTrace) {
  // Constant temperature at ambient with zero power: singular system.
  std::vector<TraceSample> t(10, {0_W, 1_s, 25_degC});
  t.front().dt = 0_s;
  EXPECT_THROW(fit_thermal_constants(t, 25_degC), std::runtime_error);
}

TEST(Calibration, RecoversTruthFromCleanTrace) {
  const auto truth = sim_truth();
  const auto trace = synthesize_trace(truth, step_schedule(), Seconds{10.0},
                                      Seconds{0.25}, 0.0, 1);
  const FitResult fit = fit_thermal_constants(trace, truth.ambient);
  // Finite differencing of the exact solution carries O(dt) bias.
  EXPECT_NEAR(fit.c1, truth.c1, truth.c1 * 0.02);
  EXPECT_NEAR(fit.c2, truth.c2, truth.c2 * 0.02);
  EXPECT_LT(fit.rms_residual, 0.05);
}

TEST(Calibration, RecoversTestbedConstantsWithNoise) {
  // Section V-C2: the experiment fitted c1 = 0.2, c2 = 0.008 from noisy
  // sensor data.
  const auto truth = testbed_truth();
  const auto trace = synthesize_trace(truth, step_schedule(), Seconds{60.0},
                                      Seconds{0.5}, 0.15, 99);
  const FitResult fit = fit_thermal_constants(trace, truth.ambient);
  EXPECT_NEAR(fit.c1, 0.2, 0.03);
  EXPECT_NEAR(fit.c2, 0.008, 0.004);
}

class CalibrationNoise : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(CalibrationNoise, FitStaysNearTruthAcrossSeeds) {
  const auto truth = sim_truth();
  const auto trace = synthesize_trace(truth, step_schedule(), Seconds{20.0},
                                      Seconds{0.25}, 0.2, GetParam());
  const FitResult fit = fit_thermal_constants(trace, truth.ambient);
  EXPECT_NEAR(fit.c1, truth.c1, truth.c1 * 0.25);
  EXPECT_NEAR(fit.c2, truth.c2, truth.c2 * 0.35);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationNoise,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Calibration, SynthesizeTraceValidatesArguments) {
  EXPECT_THROW(synthesize_trace(sim_truth(), step_schedule(), Seconds{1.0},
                                Seconds{0.0}, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(synthesize_trace(sim_truth(), step_schedule(), Seconds{0.5},
                                Seconds{1.0}, 0.0, 1),
               std::invalid_argument);
}

TEST(Calibration, SynthesizedTraceLengthAndDeterminism) {
  const auto a = synthesize_trace(sim_truth(), step_schedule(), Seconds{5.0},
                                  Seconds{1.0}, 0.1, 7);
  const auto b = synthesize_trace(sim_truth(), step_schedule(), Seconds{5.0},
                                  Seconds{1.0}, 0.1, 7);
  ASSERT_EQ(a.size(), 1 + step_schedule().size() * 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].temperature.value(), b[i].temperature.value());
  }
}

TEST(Calibration, PowerLimitCurveShapeMonotone) {
  const auto curve =
      power_limit_curve(sim_truth(), 25_degC, 70_degC, 20, Seconds{1.0});
  ASSERT_EQ(curve.size(), 20u);
  // Hotter component => lower accommodated power (Fig. 14's falling line).
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].power_limit.value(),
              curve[i - 1].power_limit.value() + 1e-9);
  }
  // delta_ambient axis is Ta - T0 (negative when hotter than ambient).
  EXPECT_DOUBLE_EQ(curve.front().delta_ambient.value(), 0.0);
  EXPECT_DOUBLE_EQ(curve.back().delta_ambient.value(), -45.0);
}

TEST(Calibration, PowerLimitCurveNeedsTwoSteps) {
  EXPECT_THROW(power_limit_curve(sim_truth(), 25_degC, 70_degC, 1, 1_s),
               std::invalid_argument);
}

TEST(Calibration, SelectConstantsPrefersNameplateMatch) {
  // Candidates around the paper's Fig.-4 choice; the (0.08, 0.05) pair gives
  // ~450 W at cold start for a ~1.3-unit window and should win.
  std::vector<ThermalParams> candidates;
  for (double c1 : {0.04, 0.08, 0.16}) {
    for (double c2 : {0.025, 0.05, 0.1}) {
      ThermalParams p = sim_truth();
      p.c1 = c1;
      p.c2 = c2;
      p.nameplate = Watts{1e9};  // unclamped; selection compares against 450
      candidates.push_back(p);
    }
  }
  for (auto& p : candidates) p.nameplate = 450_W;
  const std::size_t idx = select_constants(candidates, Seconds{1.3});
  EXPECT_DOUBLE_EQ(candidates[idx].c1, 0.08);
  EXPECT_DOUBLE_EQ(candidates[idx].c2, 0.05);
}

TEST(Calibration, SelectConstantsRejectsEmpty) {
  EXPECT_THROW(select_constants({}, 1_s), std::invalid_argument);
}

}  // namespace
}  // namespace willow::thermal
