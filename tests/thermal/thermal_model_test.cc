#include "thermal/thermal_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace willow::thermal {
namespace {

using namespace willow::util::literals;

ThermalParams paper_sim_params() {
  ThermalParams p;
  p.c1 = 0.08;
  p.c2 = 0.05;
  p.ambient = 25_degC;
  p.limit = 70_degC;
  p.nameplate = 450_W;
  return p;
}

TEST(ThermalParams, ValidateRejectsBadConstants) {
  ThermalParams p = paper_sim_params();
  p.c1 = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paper_sim_params();
  p.c2 = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paper_sim_params();
  p.nameplate = Watts{-1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(paper_sim_params().validate());
}

TEST(ThermalModel, StartsAtAmbientByDefault) {
  ThermalModel m(paper_sim_params());
  EXPECT_DOUBLE_EQ(m.temperature().value(), 25.0);
}

TEST(ThermalModel, ZeroPowerDecaysTowardAmbient) {
  ThermalModel m(paper_sim_params(), 60_degC);
  for (int i = 0; i < 10; ++i) m.step(0_W, 1_s);
  EXPECT_LT(m.temperature().value(), 60.0);
  EXPECT_GT(m.temperature().value(), 25.0);
  for (int i = 0; i < 500; ++i) m.step(0_W, 1_s);
  EXPECT_NEAR(m.temperature().value(), 25.0, 1e-6);
}

TEST(ThermalModel, ConstantPowerHeatsToSteadyState) {
  const auto p = paper_sim_params();
  ThermalModel m(p);
  const Watts power{100.0};
  for (int i = 0; i < 2000; ++i) m.step(power, 1_s);
  // Steady state: Ta + c1 P / c2.
  const double expected = 25.0 + 0.08 * 100.0 / 0.05;
  EXPECT_NEAR(m.temperature().value(), expected, 1e-6);
  EXPECT_NEAR(m.steady_state(power).value(), expected, 1e-12);
}

TEST(ThermalModel, MatchesClosedFormEquation3) {
  // T(D) = Ta + P c1/c2 (1 - e^{-c2 D}) + (T0 - Ta) e^{-c2 D}.
  const auto p = paper_sim_params();
  ThermalModel m(p, 40_degC);
  const double P = 200.0, D = 3.0;
  m.step(Watts{P}, Seconds{D});
  const double decay = std::exp(-p.c2 * D);
  const double expected =
      25.0 + P * p.c1 / p.c2 * (1.0 - decay) + (40.0 - 25.0) * decay;
  EXPECT_NEAR(m.temperature().value(), expected, 1e-12);
}

TEST(ThermalModel, PredictDoesNotMutate) {
  ThermalModel m(paper_sim_params(), 30_degC);
  const Celsius before = m.temperature();
  const Celsius predicted = m.predict(300_W, 5_s);
  EXPECT_EQ(m.temperature(), before);
  EXPECT_GT(predicted, before);
}

TEST(ThermalModel, StepEqualsPredict) {
  ThermalModel m(paper_sim_params(), 33_degC);
  const Celsius predicted = m.predict(120_W, 2_s);
  m.step(120_W, 2_s);
  EXPECT_DOUBLE_EQ(m.temperature().value(), predicted.value());
}

TEST(ThermalModel, NegativeDtThrows) {
  ThermalModel m(paper_sim_params());
  EXPECT_THROW(m.step(10_W, Seconds{-1.0}), std::invalid_argument);
}

TEST(ThermalModel, PowerLimitKeepsTemperatureUnderLimit) {
  ThermalModel m(paper_sim_params(), 50_degC);
  const Seconds window{4.0};
  const Watts limit = m.power_limit(window);
  const Celsius end = m.predict(limit, window);
  EXPECT_LE(end.value(), 70.0 + 1e-9);
  // Slightly more power must overshoot (unless clamped by nameplate).
  if (limit.value() < 450.0 - 1e-9) {
    EXPECT_GT(m.predict(limit + 10_W, window).value(), 70.0);
  }
}

TEST(ThermalModel, PowerLimitClampedByNameplate) {
  auto p = paper_sim_params();
  p.nameplate = 100_W;
  ThermalModel m(p);  // cold start, huge thermal headroom for small windows
  EXPECT_DOUBLE_EQ(m.power_limit(Seconds{0.1}).value(), 100.0);
}

TEST(ThermalModel, PowerLimitZeroWhenOverLimit) {
  ThermalModel m(paper_sim_params(), 80_degC);  // already above 70
  EXPECT_DOUBLE_EQ(m.power_limit(1_s).value(), 0.0);
  EXPECT_TRUE(m.over_limit());
}

TEST(ThermalModel, PowerLimitAtLimitAllowsSteadyHold) {
  // Exactly at T_limit, the window limit should approximately equal the
  // steady-state holding power.
  ThermalModel m(paper_sim_params(), 70_degC);
  const Watts hold = m.power_limit(1_s);
  const Watts steady = m.steady_state_power_limit();
  EXPECT_NEAR(hold.value(), steady.value(), steady.value() * 0.05);
}

TEST(ThermalModel, SteadyStatePowerLimitFormula) {
  ThermalModel m(paper_sim_params());
  EXPECT_NEAR(m.steady_state_power_limit().value(), 0.05 * 45.0 / 0.08, 1e-12);
}

TEST(ThermalModel, HotterAmbientLowersPowerLimit) {
  auto hot = paper_sim_params();
  hot.ambient = 45_degC;
  ThermalModel cold_m(paper_sim_params(), 25_degC);
  ThermalModel hot_m(hot, 45_degC);
  EXPECT_GT(cold_m.power_limit(2_s), hot_m.power_limit(2_s));
}

TEST(ThermalModel, AmbientChangeShiftsEquilibrium) {
  ThermalModel m(paper_sim_params());
  m.set_ambient(40_degC);
  for (int i = 0; i < 1000; ++i) m.step(0_W, 1_s);
  EXPECT_NEAR(m.temperature().value(), 40.0, 1e-6);
}

TEST(ThermalModelStateless, MatchesMemberFunction) {
  const auto p = paper_sim_params();
  ThermalModel m(p, 42_degC);
  EXPECT_DOUBLE_EQ(m.power_limit(3_s).value(),
                   power_limit_from(p, 42_degC, 3_s).value());
}

TEST(ThermalModelStateless, ZeroWindowThrows) {
  EXPECT_THROW(power_limit_from(paper_sim_params(), 30_degC, Seconds{0.0}),
               std::invalid_argument);
}

// Semigroup property: one exact step over t equals any subdivision of t.
class ThermalSubdivision
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ThermalSubdivision, OneStepEqualsManySubsteps) {
  const auto [power, pieces] = GetParam();
  const auto p = paper_sim_params();
  ThermalModel whole(p, 37_degC);
  ThermalModel split(p, 37_degC);
  const double total = 6.0;
  whole.step(Watts{power}, Seconds{total});
  for (int i = 0; i < pieces; ++i) {
    split.step(Watts{power}, Seconds{total / pieces});
  }
  EXPECT_NEAR(whole.temperature().value(), split.temperature().value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PowerAndPieces, ThermalSubdivision,
    ::testing::Combine(::testing::Values(0.0, 50.0, 200.0, 450.0),
                       ::testing::Values(2, 7, 60)));

TEST(ThermalModel, PowerLimitDecreasesWithLongerWindows) {
  // Holding power for longer leaves less headroom: P_limit is monotone
  // decreasing in the window and approaches the steady-state limit.
  const auto p = paper_sim_params();
  ThermalModel m(p);  // cold start
  double prev = 1e18;
  for (double w : {0.5, 1.0, 2.0, 5.0, 20.0, 100.0, 1000.0}) {
    auto raw = p;
    raw.nameplate = Watts{1e18};
    const double limit = power_limit_from(raw, 25_degC, Seconds{w}).value();
    EXPECT_LT(limit, prev) << "window " << w;
    prev = limit;
  }
  EXPECT_NEAR(prev, m.steady_state_power_limit().value(), 0.01);
}

TEST(ThermalModel, VaryingScheduleMatchesPiecewiseAnalytic) {
  const auto p = paper_sim_params();
  ThermalModel stepped(p, 30_degC);
  const double powers[] = {50.0, 300.0, 0.0, 120.0};
  for (double pw : powers) stepped.step(Watts{pw}, Seconds{2.5});

  // Manual piecewise closed form.
  double temp = 30.0;
  for (double pw : powers) {
    const double decay = std::exp(-p.c2 * 2.5);
    temp = 25.0 + pw * p.c1 / p.c2 * (1.0 - decay) + (temp - 25.0) * decay;
  }
  EXPECT_NEAR(stepped.temperature().value(), temp, 1e-9);
}

TEST(ThermalModel, ZeroDtIsIdentity) {
  ThermalModel m(paper_sim_params(), 42_degC);
  m.step(300_W, Seconds{0.0});
  EXPECT_DOUBLE_EQ(m.temperature().value(), 42.0);
}

TEST(ThermalModel, SetTemperatureOverridesState) {
  ThermalModel m(paper_sim_params());
  m.set_temperature(55_degC);
  EXPECT_DOUBLE_EQ(m.temperature().value(), 55.0);
  EXPECT_FALSE(m.over_limit());
  m.set_temperature(70_degC);
  EXPECT_TRUE(m.over_limit());
}

// The Fig.-4 selection argument: with c1=0.08, c2=0.05 the cold-start power
// limit over roughly one adjustment window lands near the 450 W nameplate.
TEST(ThermalModel, PaperConstantsMatchNameplateAtColdStart) {
  auto p = paper_sim_params();
  p.nameplate = Watts{1e9};  // unclamp to observe the raw thermal limit
  const Watts limit = power_limit_from(p, 25_degC, Seconds{1.3});
  EXPECT_NEAR(limit.value(), 450.0, 30.0);
}

// And at Ta = 45 with the component already at its 70-degree limit, the
// presented surplus approaches the steady holding level (paper: "almost
// zero" relative to the 450 W rating).
TEST(ThermalModel, HotZoneAtLimitPresentsAlmostNoSurplus) {
  auto p = paper_sim_params();
  p.ambient = 45_degC;
  ThermalModel m(p, 70_degC);
  EXPECT_LT(m.power_limit(1_s).value(), 0.1 * 450.0);
}

}  // namespace
}  // namespace willow::thermal
