// Property-based checks of the packing heuristics against the exact solver —
// the ground truth behind the paper's Properties 1 and 2 (FFDLR's quality
// bound survives Willow's constraints) and the (3/2) OPT + 1 guarantee.
#include <gtest/gtest.h>

#include "binpack/exact.h"
#include "binpack/pack.h"
#include "util/rng.h"

namespace willow::binpack {
namespace {

struct Instance {
  std::vector<Item> items;
  std::vector<Bin> bins;
};

Instance random_instance(util::Rng& rng, std::size_t max_items,
                         std::size_t max_bins) {
  Instance inst;
  const auto n_items = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<int>(max_items)));
  const auto n_bins = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<int>(max_bins)));
  for (std::size_t i = 0; i < n_items; ++i) {
    inst.items.push_back({i + 1, rng.uniform(0.1, 9.0), 0});
  }
  for (std::size_t b = 0; b < n_bins; ++b) {
    inst.bins.push_back({100 + b, rng.uniform(1.0, 12.0), 0});
  }
  return inst;
}

const Algorithm kAll[] = {
    Algorithm::kFfdlr, Algorithm::kFirstFit, Algorithm::kFirstFitDecreasing,
    Algorithm::kBestFitDecreasing, Algorithm::kWorstFitDecreasing};

class PackRandom : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(PackRandom, AllAlgorithmsProduceValidResults) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const Instance inst = random_instance(rng, 20, 8);
    for (auto algo : kAll) {
      const auto r = pack(inst.items, inst.bins, algo);
      ASSERT_TRUE(validate(r, inst.items, inst.bins))
          << "algo " << static_cast<int>(algo) << " round " << round;
    }
  }
}

TEST_P(PackRandom, FfdlrPlacesAtLeastAsMuchAsExactAllows) {
  util::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 12; ++round) {
    const Instance inst = random_instance(rng, 10, 5);
    const auto heur = pack(inst.items, inst.bins, Algorithm::kFfdlr);
    const auto opt = exact_pack(inst.items, inst.bins);
    EXPECT_LE(heur.placed_size, opt.max_placed + 1e-9);
    // The (3/2)OPT+1-flavored quality floor we hold FFDLR to on the finite
    // variant: at least 2/3 of the optimal placeable demand.
    EXPECT_GE(heur.placed_size, opt.max_placed * (2.0 / 3.0) - 1e-9)
        << "round " << round;
  }
}

TEST_P(PackRandom, FfdlrBinCountWithinFriesenLangstonBound) {
  // When FFDLR places everything, its bin usage obeys (3/2) OPT + 1 with
  // OPT measured by the exact minimal bin count.
  util::Rng rng(GetParam() + 2000);
  int checked = 0;
  for (int round = 0; round < 30 && checked < 8; ++round) {
    const Instance inst = random_instance(rng, 9, 5);
    const auto heur = pack(inst.items, inst.bins, Algorithm::kFfdlr);
    if (!heur.all_placed()) continue;
    const auto opt = exact_pack(inst.items, inst.bins);
    // Exact places everything too (it maximizes placed size).
    ASSERT_NEAR(opt.max_placed, heur.placed_size, 1e-9);
    EXPECT_LE(static_cast<double>(heur.bins_touched),
              1.5 * static_cast<double>(opt.min_bins) + 1.0 + 1e-9);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(PackRandom, DecreasingHeuristicsNeverWorseThanTwoThirdsOfExact) {
  util::Rng rng(GetParam() + 3000);
  for (int round = 0; round < 10; ++round) {
    const Instance inst = random_instance(rng, 10, 4);
    const auto opt = exact_pack(inst.items, inst.bins);
    for (auto algo : {Algorithm::kFirstFitDecreasing,
                      Algorithm::kBestFitDecreasing}) {
      const auto r = pack(inst.items, inst.bins, algo);
      EXPECT_GE(r.placed_size, opt.max_placed * (2.0 / 3.0) - 1e-9);
    }
  }
}

TEST_P(PackRandom, DeterministicAcrossRepeatedCalls) {
  util::Rng rng(GetParam() + 4000);
  const Instance inst = random_instance(rng, 20, 8);
  for (auto algo : kAll) {
    const auto a = pack(inst.items, inst.bins, algo);
    const auto b = pack(inst.items, inst.bins, algo);
    ASSERT_EQ(a.assignments.size(), b.assignments.size());
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
      EXPECT_EQ(a.assignments[i].item, b.assignments[i].item);
      EXPECT_EQ(a.assignments[i].bin, b.assignments[i].bin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// FFDLR's classical stress case: items that plain FFD wastes space on.
TEST(PackQuality, FfdlrHandlesHalfPlusEpsilonItems) {
  // Six items of size 0.51 against bins of size 1: one per bin.
  std::vector<Item> items;
  for (std::uint64_t i = 0; i < 6; ++i) items.push_back({i + 1, 0.51, 0});
  std::vector<Bin> bins;
  for (std::uint64_t b = 0; b < 6; ++b) bins.push_back({100 + b, 1.0, 0});
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  EXPECT_TRUE(r.all_placed());
  EXPECT_EQ(r.bins_touched, 6u);
}

TEST(PackQuality, FfdlrConsolidatesSmallItemsIntoFewBins) {
  std::vector<Item> items;
  for (std::uint64_t i = 0; i < 10; ++i) items.push_back({i + 1, 0.1, 0});
  std::vector<Bin> bins;
  for (std::uint64_t b = 0; b < 10; ++b) bins.push_back({100 + b, 1.0, 0});
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  EXPECT_TRUE(r.all_placed());
  EXPECT_EQ(r.bins_touched, 1u);  // paper: run every server at full utilization
}

}  // namespace
}  // namespace willow::binpack
