#include "binpack/pack.h"

#include <gtest/gtest.h>

namespace willow::binpack {
namespace {

std::vector<Item> items_of(std::initializer_list<double> sizes) {
  std::vector<Item> items;
  std::uint64_t key = 1;
  for (double s : sizes) items.push_back({key++, s, 0});
  return items;
}

std::vector<Bin> bins_of(std::initializer_list<double> caps) {
  std::vector<Bin> bins;
  std::uint64_t key = 100;
  for (double c : caps) bins.push_back({key++, c, 0});
  return bins;
}

const Algorithm kAll[] = {
    Algorithm::kFfdlr, Algorithm::kFirstFit, Algorithm::kFirstFitDecreasing,
    Algorithm::kBestFitDecreasing, Algorithm::kWorstFitDecreasing};

TEST(Pack, RejectsNegativeSizes) {
  EXPECT_THROW(pack(items_of({-1.0}), bins_of({5.0}), Algorithm::kFfdlr),
               std::invalid_argument);
  EXPECT_THROW(pack(items_of({1.0}), {{1, -5.0, 0}}, Algorithm::kFfdlr),
               std::invalid_argument);
}

TEST(Pack, EmptyItemsYieldsEmptyResult) {
  for (auto algo : kAll) {
    const auto r = pack({}, bins_of({5.0, 3.0}), algo);
    EXPECT_TRUE(r.assignments.empty());
    EXPECT_TRUE(r.unplaced.empty());
    EXPECT_DOUBLE_EQ(r.placed_size, 0.0);
    EXPECT_EQ(r.bins_touched, 0u);
  }
}

TEST(Pack, NoBinsMeansAllUnplaced) {
  for (auto algo : kAll) {
    const auto r = pack(items_of({1.0, 2.0}), {}, algo);
    EXPECT_EQ(r.unplaced.size(), 2u);
    EXPECT_TRUE(validate(r, items_of({1.0, 2.0}), {}));
  }
}

TEST(Pack, ZeroCapacityBinsUnusable) {
  for (auto algo : kAll) {
    const auto items = items_of({1.0});
    const auto bins = bins_of({0.0, 0.0});
    const auto r = pack(items, bins, algo);
    EXPECT_EQ(r.unplaced.size(), 1u);
    EXPECT_TRUE(validate(r, items, bins));
  }
}

TEST(Pack, SingleItemSingleBin) {
  for (auto algo : kAll) {
    const auto items = items_of({3.0});
    const auto bins = bins_of({5.0});
    const auto r = pack(items, bins, algo);
    ASSERT_EQ(r.assignments.size(), 1u);
    EXPECT_EQ(r.assignments[0].item, 0u);
    EXPECT_EQ(r.assignments[0].bin, 0u);
    EXPECT_DOUBLE_EQ(r.placed_size, 3.0);
    EXPECT_EQ(r.bins_touched, 1u);
  }
}

TEST(Pack, OversizedItemUnplaced) {
  for (auto algo : kAll) {
    const auto items = items_of({10.0, 2.0});
    const auto bins = bins_of({5.0});
    const auto r = pack(items, bins, algo);
    ASSERT_EQ(r.unplaced.size(), 1u);
    EXPECT_EQ(r.unplaced[0], 0u);
    EXPECT_DOUBLE_EQ(r.placed_size, 2.0);
    EXPECT_TRUE(validate(r, items, bins));
  }
}

TEST(Pack, NeverOverfillsBins) {
  const auto items = items_of({4.0, 3.0, 3.0, 2.0, 2.0, 1.0});
  const auto bins = bins_of({5.0, 5.0, 4.0});
  for (auto algo : kAll) {
    const auto r = pack(items, bins, algo);
    EXPECT_TRUE(validate(r, items, bins)) << static_cast<int>(algo);
  }
}

TEST(Pack, ExactFitFillsCompletely) {
  // Items sum exactly to total capacity and a perfect packing exists.
  const auto items = items_of({4.0, 3.0, 3.0, 2.0});
  const auto bins = bins_of({7.0, 5.0});
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  EXPECT_TRUE(r.all_placed());
  EXPECT_DOUBLE_EQ(r.placed_size, 12.0);
}

TEST(Pack, FfdlrPrefersFewBins) {
  // Everything fits into the single large bin; FFDLR's virtual-bin phase
  // groups items and the repack chooses one real bin.
  const auto items = items_of({3.0, 2.0, 2.0, 1.0});
  const auto bins = bins_of({8.0, 8.0, 8.0});
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  EXPECT_TRUE(r.all_placed());
  EXPECT_EQ(r.bins_touched, 1u);
}

TEST(Pack, FfdlrRepacksIntoSmallestFeasibleBin) {
  // Group content = 4; smallest feasible bin is the 4.5, not the 10.
  const auto items = items_of({4.0});
  const auto bins = bins_of({10.0, 4.5});
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(bins[r.assignments[0].bin].capacity, 4.5);
}

TEST(Pack, WorstFitSpreadsLoad) {
  const auto items = items_of({2.0, 2.0});
  const auto bins = bins_of({5.0, 5.0});
  const auto r = pack(items, bins, Algorithm::kWorstFitDecreasing);
  EXPECT_EQ(r.bins_touched, 2u);
}

TEST(Pack, BestFitPicksTightestBin) {
  const auto items = items_of({3.0});
  const auto bins = bins_of({10.0, 3.5, 5.0});
  const auto r = pack(items, bins, Algorithm::kBestFitDecreasing);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[r.assignments[0].bin].capacity, 3.5);
}

TEST(Pack, FirstFitRespectsInputOrder) {
  // kFirstFit does not sort: the 1.0 lands first and blocks the 4.0 only if
  // capacities force it.
  const auto items = items_of({1.0, 4.0});
  const auto bins = bins_of({4.5});
  const auto r = pack(items, bins, Algorithm::kFirstFit);
  ASSERT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.assignments[0].item, 0u);  // the 1.0 got there first
  EXPECT_EQ(r.unplaced.size(), 1u);
}

TEST(Pack, FfdDecreasingBeatsPlainFirstFitHere) {
  const auto items = items_of({1.0, 4.0});
  const auto bins = bins_of({4.5});
  const auto ffd = pack(items, bins, Algorithm::kFirstFitDecreasing);
  ASSERT_EQ(ffd.assignments.size(), 1u);
  EXPECT_EQ(ffd.assignments[0].item, 1u);  // the 4.0 placed, better value
  EXPECT_GT(ffd.placed_size,
            pack(items, bins, Algorithm::kFirstFit).placed_size);
}

TEST(Pack, ZeroSizeItemsAlwaysPlaceable) {
  const auto items = items_of({0.0, 0.0});
  const auto bins = bins_of({1.0});
  for (auto algo : kAll) {
    const auto r = pack(items, bins, algo);
    EXPECT_TRUE(r.all_placed()) << static_cast<int>(algo);
  }
}

TEST(Validate, DetectsCorruptResults) {
  const auto items = items_of({2.0, 3.0});
  const auto bins = bins_of({4.0});
  PackResult r;
  // Missing items entirely.
  EXPECT_FALSE(validate(r, items, bins));
  // Overfilled bin.
  r.assignments = {{0, 0}, {1, 0}};
  r.placed_size = 5.0;
  r.bins_touched = 1;
  EXPECT_FALSE(validate(r, items, bins));
  // Double-assigned item.
  r.assignments = {{0, 0}, {0, 0}};
  EXPECT_FALSE(validate(r, items, bins));
  // Consistent result passes.
  r.assignments = {{1, 0}};
  r.unplaced = {0};
  r.placed_size = 3.0;
  r.bins_touched = 1;
  EXPECT_TRUE(validate(r, items, bins));
}

TEST(Pack, KeysArePreservedNotInterpreted) {
  // The packer must key results by *index*; caller keys are opaque payload.
  std::vector<Item> items{{999, 2.0, 0}, {999, 3.0, 0}};  // duplicate keys
  std::vector<Bin> bins{{7, 6.0, 0}};
  const auto r = pack(items, bins, Algorithm::kFfdlr);
  EXPECT_TRUE(r.all_placed());
  EXPECT_TRUE(validate(r, items, bins));
}

TEST(Pack, ClassicFfdAdversary) {
  // The textbook FFD stressor: items {6,5,5,4,4,4,...} sized so greedy
  // grouping wastes space; all algorithms must stay valid and FFDLR must
  // still place at least as much as plain first-fit.
  const auto items = items_of({6.0, 5.0, 5.0, 4.0, 4.0, 4.0, 3.0, 3.0});
  const auto bins = bins_of({10.0, 10.0, 10.0});
  const auto ffdlr = pack(items, bins, Algorithm::kFfdlr);
  const auto ff = pack(items, bins, Algorithm::kFirstFit);
  EXPECT_TRUE(validate(ffdlr, items, bins));
  EXPECT_TRUE(validate(ff, items, bins));
  EXPECT_GE(ffdlr.placed_size, ff.placed_size);
}

TEST(Pack, ManyTinyItemsIntoManyTinyBins) {
  std::vector<Item> items;
  for (std::uint64_t i = 0; i < 100; ++i) items.push_back({i + 1, 0.01, 0});
  std::vector<Bin> bins;
  for (std::uint64_t b = 0; b < 4; ++b) bins.push_back({200 + b, 0.3, 0});
  for (auto algo : kAll) {
    const auto r = pack(items, bins, algo);
    EXPECT_TRUE(validate(r, items, bins)) << static_cast<int>(algo);
    // 4 x 0.3 holds 120 items of 0.01: everything fits.
    EXPECT_TRUE(r.all_placed()) << static_cast<int>(algo);
  }
}

TEST(Pack, MixedZeroCapacityBinsIgnoredNotFatal) {
  const auto items = items_of({1.0, 1.0});
  const auto bins = bins_of({0.0, 2.5, 0.0});
  for (auto algo : kAll) {
    const auto r = pack(items, bins, algo);
    EXPECT_TRUE(r.all_placed()) << static_cast<int>(algo);
    for (const auto& a : r.assignments) EXPECT_EQ(a.bin, 1u);
  }
}

TEST(LowerBound, CeilOfTotalOverLargest) {
  EXPECT_EQ(capacity_lower_bound(items_of({3.0, 3.0, 3.0}), bins_of({4.0})),
            3u);
  EXPECT_EQ(capacity_lower_bound(items_of({2.0, 2.0}), bins_of({4.0})), 1u);
  EXPECT_EQ(capacity_lower_bound({}, bins_of({4.0})), 0u);
}

}  // namespace
}  // namespace willow::binpack
