#include "binpack/vbp.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace willow::binpack {
namespace {

TEST(Vbp, Validation) {
  EXPECT_THROW(vbp_ffdlr({1.0}, {}), std::invalid_argument);
  EXPECT_THROW(vbp_ffdlr({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(vbp_ffdlr({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(vbp_ffdlr({2.0}, {1.0}), std::invalid_argument);
}

TEST(Vbp, EmptyItemsUseNoBins) {
  const auto r = vbp_ffdlr({}, {1.0, 2.0});
  EXPECT_EQ(r.bin_count(), 0u);
  EXPECT_DOUBLE_EQ(r.total_capacity, 0.0);
  EXPECT_TRUE(vbp_validate(r, {}, {1.0, 2.0}));
}

TEST(Vbp, SingleItemGetsSmallestFeasibleSize) {
  const auto r = vbp_ffdlr({0.4}, {0.5, 1.0, 2.0});
  ASSERT_EQ(r.bin_count(), 1u);
  EXPECT_DOUBLE_EQ(r.bins[0].size, 0.5);
  EXPECT_DOUBLE_EQ(r.total_capacity, 0.5);
}

TEST(Vbp, GroupsRepackedIntoSmallestSizes) {
  // FFD into unit bins: {0.6, 0.3} and {0.5, 0.2}; repack: 0.9 -> size 1.0,
  // 0.7 -> size 0.75.
  const auto r = vbp_ffdlr({0.6, 0.5, 0.3, 0.2}, {0.25, 0.75, 1.0});
  ASSERT_EQ(r.bin_count(), 2u);
  EXPECT_TRUE(vbp_validate(r, {0.6, 0.5, 0.3, 0.2}, {0.25, 0.75, 1.0}));
  EXPECT_NEAR(r.total_capacity, 1.75, 1e-9);
}

TEST(Vbp, AllItemsAlwaysPacked) {
  util::Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> items;
    const int n = rng.uniform_int(1, 40);
    for (int i = 0; i < n; ++i) items.push_back(rng.uniform(0.05, 1.0));
    const std::vector<double> sizes{0.25, 0.5, 1.0};
    const auto r = vbp_ffdlr(items, sizes);
    ASSERT_TRUE(vbp_validate(r, items, sizes)) << "round " << round;
  }
}

TEST(Vbp, CapacityWithinFriesenLangstonBound) {
  // total capacity <= (3/2) * OPT + largest; OPT >= sum of item sizes.
  util::Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> items;
    const int n = rng.uniform_int(2, 60);
    for (int i = 0; i < n; ++i) items.push_back(rng.uniform(0.05, 1.0));
    const std::vector<double> sizes{0.25, 0.5, 0.75, 1.0};
    const auto r = vbp_ffdlr(items, sizes);
    const double lb = vbp_lower_bound(items);
    // Using the lower bound in place of OPT makes the check conservative in
    // the right direction (OPT >= lb).
    EXPECT_LE(r.total_capacity, 1.5 * std::max(lb, 1.0) + 1.0 + 1e-9)
        << "round " << round;
  }
}

TEST(Vbp, PerfectFitUsesExactCapacity) {
  const auto r = vbp_ffdlr({0.5, 0.5, 0.5, 0.5}, {1.0});
  EXPECT_EQ(r.bin_count(), 2u);
  EXPECT_DOUBLE_EQ(r.total_capacity, 2.0);
}

TEST(Vbp, ValidateDetectsCorruption) {
  const std::vector<double> items{0.4, 0.3};
  const std::vector<double> sizes{0.5, 1.0};
  auto r = vbp_ffdlr(items, sizes);
  ASSERT_TRUE(vbp_validate(r, items, sizes));
  auto broken = r;
  broken.total_capacity += 1.0;
  EXPECT_FALSE(vbp_validate(broken, items, sizes));
  broken = r;
  broken.bins[0].size = 0.33;  // not an offered size
  EXPECT_FALSE(vbp_validate(broken, items, sizes));
  broken = r;
  broken.bins[0].items.clear();  // item lost
  broken.bins[0].content = 0.0;
  EXPECT_FALSE(vbp_validate(broken, items, sizes));
}

}  // namespace
}  // namespace willow::binpack
