#include "binpack/exact.h"

#include <gtest/gtest.h>

namespace willow::binpack {
namespace {

std::vector<Item> items_of(std::initializer_list<double> sizes) {
  std::vector<Item> items;
  std::uint64_t key = 1;
  for (double s : sizes) items.push_back({key++, s, 0});
  return items;
}

std::vector<Bin> bins_of(std::initializer_list<double> caps) {
  std::vector<Bin> bins;
  std::uint64_t key = 100;
  for (double c : caps) bins.push_back({key++, c, 0});
  return bins;
}

TEST(Exact, GuardsInstanceSize) {
  std::vector<Item> big(20, {1, 1.0, 0});
  EXPECT_THROW(exact_pack(big, bins_of({5.0})), std::invalid_argument);
  EXPECT_NO_THROW(exact_pack(big, bins_of({5.0}), 32));
}

TEST(Exact, RejectsNegativeSizes) {
  EXPECT_THROW(exact_pack(items_of({-1.0}), bins_of({5.0})),
               std::invalid_argument);
}

TEST(Exact, EmptyInstances) {
  auto r = exact_pack({}, bins_of({5.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 0.0);
  EXPECT_EQ(r.min_bins, 0u);
  r = exact_pack(items_of({3.0}), {});
  EXPECT_DOUBLE_EQ(r.max_placed, 0.0);
}

TEST(Exact, TrivialFullPlacement) {
  const auto r = exact_pack(items_of({2.0, 3.0}), bins_of({5.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 5.0);
  EXPECT_EQ(r.min_bins, 1u);
  EXPECT_EQ(r.assignments.size(), 2u);
}

TEST(Exact, PicksValueMaximizingSubset) {
  // Bin 5: best subset of {4, 3, 2} is {3, 2}.
  const auto r = exact_pack(items_of({4.0, 3.0, 2.0}), bins_of({5.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 5.0);
  EXPECT_EQ(r.min_bins, 1u);
}

TEST(Exact, MinimizesBinsAmongOptimalPlacements) {
  // Everything fits into one 10-bin even though three bins are offered.
  const auto r =
      exact_pack(items_of({4.0, 3.0, 2.0}), bins_of({10.0, 10.0, 10.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 9.0);
  EXPECT_EQ(r.min_bins, 1u);
}

TEST(Exact, NeedsTwoBinsWhenOneCannotHoldAll) {
  const auto r = exact_pack(items_of({4.0, 4.0}), bins_of({5.0, 5.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 8.0);
  EXPECT_EQ(r.min_bins, 2u);
}

TEST(Exact, WitnessAssignmentIsConsistent) {
  const auto items = items_of({4.0, 3.0, 3.0, 2.0, 1.0});
  const auto bins = bins_of({6.0, 5.0, 2.0});
  const auto r = exact_pack(items, bins);
  PackResult as_pack;
  as_pack.assignments = r.assignments;
  double placed = 0.0;
  std::vector<bool> used(items.size(), false);
  for (const auto& a : r.assignments) {
    placed += items[a.item].size;
    used[a.item] = true;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!used[i]) as_pack.unplaced.push_back(i);
  }
  as_pack.placed_size = placed;
  std::vector<bool> touched(bins.size(), false);
  for (const auto& a : r.assignments) touched[a.bin] = true;
  for (bool t : touched) as_pack.bins_touched += t ? 1 : 0;
  EXPECT_TRUE(validate(as_pack, items, bins));
  EXPECT_DOUBLE_EQ(placed, r.max_placed);
}

TEST(Exact, SymmetryPruningStillOptimal) {
  // Many identical bins: pruning must not change the optimum.
  const auto r = exact_pack(items_of({3.0, 3.0, 3.0, 3.0}),
                            bins_of({4.0, 4.0, 4.0, 4.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 12.0);
  EXPECT_EQ(r.min_bins, 4u);
  EXPECT_GT(r.nodes, 0u);
}

TEST(Exact, ZeroSizeItemsDoNotInflateBins) {
  const auto r = exact_pack(items_of({0.0, 0.0, 2.0}), bins_of({2.0, 2.0}));
  EXPECT_DOUBLE_EQ(r.max_placed, 2.0);
  EXPECT_EQ(r.min_bins, 1u);
}

}  // namespace
}  // namespace willow::binpack
