#include "hier/tree.h"

#include <gtest/gtest.h>

namespace willow::hier {
namespace {

using namespace willow::util::literals;

/// Fig.-1-shaped fixture: datacenter -> 2 racks -> 2 servers each.
struct SmallTree {
  Tree tree{0.5};
  NodeId root, rack0, rack1, s00, s01, s10, s11;

  SmallTree() {
    root = tree.add_root("dc");
    rack0 = tree.add_child(root, "rack0", NodeKind::kRack);
    rack1 = tree.add_child(root, "rack1", NodeKind::kRack);
    s00 = tree.add_child(rack0, "s00", NodeKind::kServer);
    s01 = tree.add_child(rack0, "s01", NodeKind::kServer);
    s10 = tree.add_child(rack1, "s10", NodeKind::kServer);
    s11 = tree.add_child(rack1, "s11", NodeKind::kServer);
  }
};

TEST(Tree, RejectsBadSmoothingAlpha) {
  EXPECT_THROW(Tree(0.0), std::invalid_argument);
  EXPECT_THROW(Tree(1.5), std::invalid_argument);
}

TEST(Tree, SingleRootOnly) {
  Tree t(0.5);
  t.add_root("dc");
  EXPECT_THROW(t.add_root("again"), std::logic_error);
}

TEST(Tree, AddChildValidatesParent) {
  Tree t(0.5);
  t.add_root("dc");
  EXPECT_THROW(t.add_child(99, "x"), std::out_of_range);
}

TEST(Tree, StructureQueries) {
  SmallTree f;
  EXPECT_EQ(f.tree.size(), 7u);
  EXPECT_EQ(f.tree.height(), 3);
  EXPECT_TRUE(f.tree.node(f.root).is_root());
  EXPECT_TRUE(f.tree.node(f.s00).is_leaf());
  EXPECT_FALSE(f.tree.node(f.rack0).is_leaf());
  EXPECT_EQ(f.tree.node(f.s00).parent(), f.rack0);
  EXPECT_EQ(f.tree.node(f.rack0).children().size(), 2u);
  EXPECT_EQ(f.tree.leaves().size(), 4u);
  EXPECT_EQ(f.tree.leaves_of_kind(NodeKind::kServer).size(), 4u);
  EXPECT_EQ(f.tree.leaves_of_kind(NodeKind::kSwitch).size(), 0u);
}

TEST(Tree, PaperLevelNumbering) {
  // Leaves at level 0, root at height-1 (Sec. IV-A: "All the leaf nodes are
  // in level 0").
  SmallTree f;
  EXPECT_EQ(f.tree.level_of(f.s00), 0);
  EXPECT_EQ(f.tree.level_of(f.rack0), 1);
  EXPECT_EQ(f.tree.level_of(f.root), 2);
  EXPECT_EQ(f.tree.nodes_at_level(0).size(), 4u);
  EXPECT_EQ(f.tree.nodes_at_level(1).size(), 2u);
  EXPECT_EQ(f.tree.nodes_at_level(2).size(), 1u);
}

TEST(Tree, MaxBranchingAtLevel) {
  SmallTree f;
  EXPECT_EQ(f.tree.max_branching_at_level(0), 2u);  // racks fan out to servers
  EXPECT_EQ(f.tree.max_branching_at_level(1), 2u);  // root fans out to racks
}

TEST(Tree, BottomUpVisitsChildrenBeforeParents) {
  SmallTree f;
  const auto order = f.tree.bottom_up();
  std::vector<std::size_t> pos(f.tree.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id : f.tree.all_nodes()) {
    const auto& n = f.tree.node(id);
    if (!n.is_root()) EXPECT_LT(pos[id], pos[n.parent()]);
  }
}

TEST(Tree, TopDownVisitsParentsBeforeChildren) {
  SmallTree f;
  const auto order = f.tree.top_down();
  std::vector<std::size_t> pos(f.tree.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id : f.tree.all_nodes()) {
    const auto& n = f.tree.node(id);
    if (!n.is_root()) EXPECT_GT(pos[id], pos[n.parent()]);
  }
}

TEST(Tree, Siblings) {
  SmallTree f;
  const auto sibs = f.tree.siblings(f.s00);
  ASSERT_EQ(sibs.size(), 1u);
  EXPECT_EQ(sibs[0], f.s01);
  EXPECT_TRUE(f.tree.siblings(f.root).empty());
}

TEST(Tree, IsAncestor) {
  SmallTree f;
  EXPECT_TRUE(f.tree.is_ancestor(f.root, f.s00));
  EXPECT_TRUE(f.tree.is_ancestor(f.rack0, f.s01));
  EXPECT_TRUE(f.tree.is_ancestor(f.s00, f.s00));
  EXPECT_FALSE(f.tree.is_ancestor(f.rack1, f.s00));
  EXPECT_FALSE(f.tree.is_ancestor(f.s00, f.rack0));
}

TEST(Node, BudgetTracksPrevious) {
  SmallTree f;
  auto& n = f.tree.node(f.s00);
  n.set_budget(100_W);
  n.set_budget(80_W);
  EXPECT_DOUBLE_EQ(n.budget().value(), 80.0);
  EXPECT_DOUBLE_EQ(n.previous_budget().value(), 100.0);
}

TEST(Node, DemandSmoothingFollowsEq4) {
  SmallTree f;
  auto& n = f.tree.node(f.s00);
  n.observe_demand(100_W);
  EXPECT_DOUBLE_EQ(n.smoothed_demand().value(), 100.0);
  n.observe_demand(200_W);
  EXPECT_DOUBLE_EQ(n.smoothed_demand().value(), 0.5 * 200 + 0.5 * 100);
  EXPECT_DOUBLE_EQ(n.raw_demand().value(), 200.0);
  n.reset_demand();
  n.observe_demand(40_W);
  EXPECT_DOUBLE_EQ(n.smoothed_demand().value(), 40.0);
}

TEST(Tree, ReportDemandsAggregatesUpward) {
  SmallTree f;
  f.tree.node(f.s00).observe_demand(10_W);
  f.tree.node(f.s01).observe_demand(20_W);
  f.tree.node(f.s10).observe_demand(30_W);
  f.tree.node(f.s11).observe_demand(40_W);
  f.tree.report_demands();
  EXPECT_DOUBLE_EQ(f.tree.node(f.rack0).smoothed_demand().value(), 30.0);
  EXPECT_DOUBLE_EQ(f.tree.node(f.rack1).smoothed_demand().value(), 70.0);
  EXPECT_DOUBLE_EQ(f.tree.node(f.root).smoothed_demand().value(), 100.0);
}

TEST(Tree, InactiveNodesReportZero) {
  SmallTree f;
  f.tree.node(f.s00).observe_demand(10_W);
  f.tree.node(f.s01).observe_demand(20_W);
  f.tree.node(f.s01).set_active(false);
  f.tree.report_demands();
  EXPECT_DOUBLE_EQ(f.tree.node(f.rack0).smoothed_demand().value(), 10.0);
}

// Property 3: at most 2 control messages per link per demand period —
// one report up, one directive down.  Demand moves every period here, so
// every node re-reports every sweep (the most message-heavy case).
TEST(Tree, Property3AtMostTwoMessagesPerLinkPerPeriod) {
  SmallTree f;
  for (int period = 1; period <= 5; ++period) {
    for (NodeId leaf : f.tree.leaves()) {
      f.tree.node(leaf).observe_demand(Watts{10.0 * period});
    }
    f.tree.report_demands();
    // The budget distributor announces one directive per node and period.
    for (NodeId id : f.tree.all_nodes()) {
      if (!f.tree.node(id).is_root()) f.tree.record_budget_directive(id);
    }
    for (NodeId id : f.tree.all_nodes()) {
      if (f.tree.node(id).is_root()) continue;
      const auto& link = f.tree.node(id).link();
      EXPECT_EQ(link.up, static_cast<std::uint64_t>(period));
      EXPECT_EQ(link.down, static_cast<std::uint64_t>(period));
      EXPECT_LE(link.up + link.down, static_cast<std::uint64_t>(2 * period));
    }
  }
}

// Event-driven reporting: once demand stops moving, no further report
// crosses any link — in either walk mode.
TEST(Tree, UnchangedDemandSendsNoFurtherReports) {
  for (const bool incremental : {false, true}) {
    SmallTree f;
    f.tree.set_incremental(incremental);
    for (int period = 1; period <= 4; ++period) {
      for (NodeId leaf : f.tree.leaves()) {
        f.tree.node(leaf).observe_demand(10_W);
      }
      f.tree.report_demands();
    }
    for (NodeId id : f.tree.all_nodes()) {
      if (f.tree.node(id).is_root()) continue;
      // alpha = 0.5: the EWMA keeps moving toward 10 W each sweep, but the
      // *first* sweep already reported; later sweeps report only while the
      // smoothed value still changes bitwise.  The leaves' EWMA halves the
      // gap each period, so every sweep here still moves — what must hold
      // is the Property 3 bound, and exactly one report per moving sweep.
      EXPECT_LE(f.tree.node(id).link().up, 4u);
      EXPECT_GE(f.tree.node(id).link().up, 1u);
    }
    // Drive the EWMA to its fixed point, then verify silence.
    for (int i = 0; i < 200; ++i) {
      for (NodeId leaf : f.tree.leaves()) {
        f.tree.node(leaf).observe_demand(10_W);
      }
      f.tree.report_demands();
    }
    std::vector<std::uint64_t> ups;
    for (NodeId id : f.tree.all_nodes()) {
      ups.push_back(f.tree.node(id).link().up);
    }
    for (NodeId leaf : f.tree.leaves()) {
      f.tree.node(leaf).observe_demand(10_W);
    }
    f.tree.report_demands();
    for (std::size_t i = 0; i < ups.size(); ++i) {
      EXPECT_EQ(f.tree.node(static_cast<NodeId>(i)).link().up, ups[i])
          << "node " << i << " re-reported an unchanged demand";
    }
  }
}

TEST(Tree, ResetLinkCounters) {
  SmallTree f;
  f.tree.report_demands();
  for (NodeId id : f.tree.all_nodes()) {
    if (!f.tree.node(id).is_root()) f.tree.record_budget_directive(id);
  }
  f.tree.reset_link_counters();
  for (NodeId id : f.tree.all_nodes()) {
    EXPECT_EQ(f.tree.node(id).link().up, 0u);
    EXPECT_EQ(f.tree.node(id).link().down, 0u);
  }
}

}  // namespace
}  // namespace willow::hier
