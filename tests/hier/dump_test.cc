#include "hier/dump.h"

#include <gtest/gtest.h>

namespace willow::hier {
namespace {

using namespace willow::util::literals;

Tree small_tree() {
  Tree t(1.0);
  const auto root = t.add_root("dc");
  const auto rack0 = t.add_child(root, "rack0", NodeKind::kRack);
  t.add_child(root, "rack1", NodeKind::kRack);
  t.add_child(rack0, "s00", NodeKind::kServer);
  t.add_child(rack0, "s01", NodeKind::kServer);
  return t;
}

TEST(Dump, EmptyTree) {
  Tree t(0.5);
  EXPECT_EQ(tree_to_string(t), "(empty tree)\n");
}

TEST(Dump, StructureOnly) {
  auto t = small_tree();
  DumpOptions opts;
  opts.include_state = false;
  const std::string out = tree_to_string(t, opts);
  EXPECT_NE(out.find("dc\n"), std::string::npos);
  EXPECT_NE(out.find("+- rack0"), std::string::npos);
  EXPECT_NE(out.find("+- s00"), std::string::npos);
  EXPECT_NE(out.find("+- rack1"), std::string::npos);
  EXPECT_EQ(out.find("["), std::string::npos);  // no state columns
  // Children indented under their parent.
  EXPECT_LT(out.find("rack0"), out.find("s00"));
  EXPECT_LT(out.find("s01"), out.find("rack1"));
}

TEST(Dump, StateColumns) {
  auto t = small_tree();
  t.node(0).set_budget(375_W);
  t.node(0).observe_demand(400_W);
  t.node(0).set_hard_limit(2250_W);
  const std::string out = tree_to_string(t);
  EXPECT_NE(out.find("TP 375.0"), std::string::npos);
  EXPECT_NE(out.find("CP 400.0"), std::string::npos);
  EXPECT_NE(out.find("cap 2250.0"), std::string::npos);
}

TEST(Dump, InfiniteCapOmitted) {
  auto t = small_tree();
  const std::string out = tree_to_string(t);  // fresh nodes: cap = inf
  EXPECT_EQ(out.find("cap"), std::string::npos);
}

TEST(Dump, AsleepMark) {
  auto t = small_tree();
  t.node(3).set_active(false);  // s00
  const std::string out = tree_to_string(t);
  EXPECT_NE(out.find("s00  (asleep)"), std::string::npos);
  DumpOptions opts;
  opts.mark_inactive = false;
  EXPECT_EQ(tree_to_string(t, opts).find("asleep"), std::string::npos);
}

TEST(Dump, PrecisionControl) {
  auto t = small_tree();
  t.node(0).set_budget(util::Watts{123.456});
  DumpOptions opts;
  opts.precision = 3;
  EXPECT_NE(tree_to_string(t, opts).find("123.456"), std::string::npos);
}

TEST(Dump, LastChildUsesBlankContinuation) {
  auto t = small_tree();
  DumpOptions opts;
  opts.include_state = false;
  const std::string out = tree_to_string(t, opts);
  // rack1 is the last child of the root: its subtree lines (none here) and
  // the rack0 subtree must use "|" continuation while rack0 is not last.
  EXPECT_NE(out.find("|  +- s0"), std::string::npos);
}

}  // namespace
}  // namespace willow::hier
