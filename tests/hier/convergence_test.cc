#include "hier/convergence.h"

#include <gtest/gtest.h>

namespace willow::hier {
namespace {

using namespace willow::util::literals;

Tree four_levels() {
  // Fig. 3's shape: root -> 2 zones -> 3 racks -> 3 servers (height 4).
  Tree t(0.5);
  const NodeId root = t.add_root("dc");
  for (int z = 0; z < 2; ++z) {
    const NodeId zone = t.add_child(root, "zone");
    for (int r = 0; r < 3; ++r) {
      const NodeId rack = t.add_child(zone, "rack");
      for (int s = 0; s < 3; ++s) t.add_child(rack, "server");
    }
  }
  return t;
}

TEST(Convergence, ValidatesParameters) {
  const Tree t = four_levels();
  EXPECT_THROW(analyze_convergence(t, Seconds{-1.0}), std::invalid_argument);
  EXPECT_THROW(analyze_convergence(t, 1_s, 0.5), std::invalid_argument);
}

TEST(Convergence, DeltaIsLevelsTimesAlpha) {
  const Tree t = four_levels();
  const auto r = analyze_convergence(t, Seconds{0.010});
  EXPECT_EQ(r.levels, 4);
  EXPECT_NEAR(r.delta.value(), 0.040, 1e-12);
  EXPECT_NEAR(r.recommended_period.value(), 0.400, 1e-12);
}

TEST(Convergence, PaperNumbersAreSafe) {
  // Sec. V-A1: h <= 5, per-level update ~10 ms => delta <= 50 ms and
  // Delta_D >= 500 ms is safe.
  const Tree t = four_levels();
  const auto r = analyze_convergence(t, Seconds{0.010});
  EXPECT_TRUE(period_is_safe(r, Seconds{0.500}));
  EXPECT_FALSE(period_is_safe(r, Seconds{0.050}));
}

TEST(Convergence, PropagationFromRootReachesLeavesInDepthSteps) {
  const Tree t = four_levels();
  const auto times = propagation_times(t, t.root(), Seconds{1.0});
  for (NodeId id : t.all_nodes()) {
    EXPECT_NEAR(times[id].value(), t.node(id).depth(), 1e-12);
  }
}

TEST(Convergence, PropagationFromLeafCoversTree) {
  const Tree t = four_levels();
  const NodeId leaf = t.leaves().front();
  const auto times = propagation_times(t, leaf, Seconds{1.0});
  // Origin perceives immediately.
  EXPECT_DOUBLE_EQ(times[leaf].value(), 0.0);
  // Every node perceives eventually.
  double max_time = 0.0;
  for (NodeId id : t.all_nodes()) {
    EXPECT_GE(times[id].value(), 0.0);
    max_time = std::max(max_time, times[id].value());
  }
  // Measured delta for up-then-down <= 2 h alpha.
  EXPECT_LE(max_time, 2.0 * 4 * 1.0 + 1e-12);
  // A sibling leaf hears via the shared rack: 1 up + 1 down = 2.
  const NodeId sibling = t.node(t.node(leaf).parent()).children()[1];
  EXPECT_NEAR(times[sibling].value(), 2.0, 1e-12);
}

TEST(Convergence, DeeperTreesNeedLongerPeriods) {
  Tree shallow(0.5);
  shallow.add_root("dc");
  shallow.add_child(0, "s");
  const auto a = analyze_convergence(shallow, Seconds{0.010});
  const auto b = analyze_convergence(four_levels(), Seconds{0.010});
  EXPECT_LT(a.recommended_period, b.recommended_period);
}

}  // namespace
}  // namespace willow::hier
