// The Section V-C experiments, end to end on the emulated testbed.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "thermal/calibration.h"

namespace willow::testbed {
namespace {

using namespace willow::util::literals;

TEST(TestbedSetup, ThreeServersTwoSwitches) {
  Testbed tb;
  EXPECT_EQ(tb.cluster().server_ids().size(), 3u);
  EXPECT_EQ(tb.cluster().tree().height(), 3);
  // A and B share switch1, C hangs off switch2 (Fig. 13 shape).
  const auto& tree = tb.cluster().tree();
  EXPECT_EQ(tree.node(tb.server(0)).parent(), tree.node(tb.server(1)).parent());
  EXPECT_NE(tree.node(tb.server(0)).parent(), tree.node(tb.server(2)).parent());
}

TEST(TestbedSetup, PlantThermalIsStable) {
  const auto p = testbed_thermal_params();
  // Steady state at full load stays under the 70 degC limit.
  thermal::ThermalModel m(p);
  const double steady = m.steady_state(232_W).value();
  EXPECT_LT(steady, 70.0);
  EXPECT_GT(steady, 50.0);  // but the server does run warm
}

TEST(Table1, PowerIncreasesLinearlyWithUtilization) {
  const std::vector<double> utils{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const auto rows = table1_measurements(utils);
  ASSERT_EQ(rows.size(), 6u);
  // Continuously increasing (Sec. V-C2), ~159.5 W static, ~232 W at 100%.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].second.value(), rows[i - 1].second.value());
  }
  EXPECT_NEAR(rows.front().second.value(), 159.5, 3.0);
  EXPECT_NEAR(rows.back().second.value(), 232.0, 3.0);
}

TEST(Table2, ApplicationProfilesMatchPaper) {
  const auto rows = profile_applications();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "A1");
  EXPECT_NEAR(rows[0].second.value(), 8.0, 2.0);
  EXPECT_NEAR(rows[1].second.value(), 10.0, 2.0);
  EXPECT_NEAR(rows[2].second.value(), 15.0, 2.0);
}

TEST(Fig14, CalibrationRecoversPaperConstants) {
  // The paper's estimation procedure: run a power schedule, record the
  // sensor, fit the RC model; the fitted values are c1 = 0.2, c2 = 0.008.
  const auto truth = paper_fitted_thermal_params();
  const auto trace = thermal::synthesize_trace(
      truth, {20_W, 50_W, 80_W, 40_W, 65_W}, 8_s, 0.5_s, 0.2, 77);
  const auto fit = thermal::fit_thermal_constants(trace, truth.ambient);
  EXPECT_NEAR(fit.c1, 0.2, 0.04);
  EXPECT_NEAR(fit.c2, 0.008, 0.01);
}

TEST(LoadUtilizations, ComposesAppsNearTargets) {
  Testbed tb;
  tb.load_utilizations(0.8, 0.4, 0.2);
  const auto util_of = [&](std::size_t i) {
    double w = 0.0;
    for (const auto& a : tb.cluster().server(tb.server(i)).apps()) {
      w += a.mean_power().value();
    }
    return w / 72.5;
  };
  EXPECT_NEAR(util_of(0), 0.8, 0.11);
  EXPECT_NEAR(util_of(1), 0.4, 0.11);
  EXPECT_NEAR(util_of(2), 0.2, 0.11);
}

TEST(EnergyDeficientRun, MigrationsSpikeAtPlungesAndStayQuietBetween) {
  // Fig. 15 + Fig. 16: plunge at t=7 triggers migrations; none between t=8
  // and t=10 although the plunge persists (decision stability).
  Testbed tb;
  tb.load_utilizations(0.8, 0.6, 0.3);  // 60% average
  const auto supply = power::paper_fig15_trace();
  const auto result = tb.run(*supply, 30);

  double during_plunge = 0.0;
  for (std::size_t t = 7; t <= 7; ++t) during_plunge += result.migrations.at(t);
  EXPECT_GT(during_plunge, 0.0) << "plunge at t=7 must trigger migrations";

  double after_plunge = 0.0;
  for (std::size_t t = 8; t <= 10; ++t) after_plunge += result.migrations.at(t);
  EXPECT_DOUBLE_EQ(after_plunge, 0.0)
      << "margins must keep decisions stable through the plunge";

  EXPECT_FALSE(result.ping_pong);
}

TEST(EnergyDeficientRun, NoMigrationsOnRecovery) {
  // "the migrations in Willow are always initiated by the tightening of
  // power constraints and not by their loosening" (constraint-driven only;
  // consolidation may still act at low utilization, absent here at 60%).
  Testbed tb;
  tb.load_utilizations(0.8, 0.6, 0.3);
  const auto supply = power::paper_fig15_trace();
  const auto result = tb.run(*supply, 30);
  // Recovery tick t=11 (supply rises from 490 to 620): no demand-driven
  // migration burst is expected right at the rise.
  EXPECT_LE(result.migrations.at(11), result.migrations.at(7));
}

TEST(EnergyDeficientRun, TemperaturesStayUnderLimit) {
  Testbed tb;
  tb.load_utilizations(0.8, 0.6, 0.3);
  const auto supply = power::paper_fig15_trace();
  const auto result = tb.run(*supply, 30);
  EXPECT_LT(result.temperature_a.stats().max(), 70.5);
  EXPECT_LT(result.avg_temperature.stats().max(), 70.5);
  // And the loaded server does run visibly above ambient.
  EXPECT_GT(result.temperature_a.stats().mean(), 26.0);
}

TEST(EnergyPlentyRun, ConsolidationShutsDownServerC) {
  // Sec. V-C5 / Table III: at (80, 40, 20)% with plenty of supply, server C
  // is drained and shut down; A and B absorb its load; C never wakes.
  TestbedConfig cfg;
  Testbed tb(cfg);
  tb.load_utilizations(0.8, 0.4, 0.2);
  const auto supply = power::paper_fig19_trace();
  const auto result = tb.run(*supply, 30);
  EXPECT_TRUE(result.asleep[2]) << "server C must be shut down";
  EXPECT_NEAR(result.final_utilization[2], 0.0, 1e-9);
  EXPECT_FALSE(result.asleep[0]);
  EXPECT_FALSE(result.asleep[1]);
  // A and B together carry the ~1.4 total utilization.
  EXPECT_GT(result.final_utilization[0] + result.final_utilization[1], 1.2);
  EXPECT_GT(result.stats.consolidation_migrations, 0u);
  EXPECT_EQ(result.stats.wakes, 0u);
}

TEST(EnergyPlentyRun, PowerSavingsAroundPaperNumber) {
  // The paper's arithmetic: ~580 W without consolidation, ~27.5% saved by
  // shutting server C down (standby ~0 W).
  TestbedConfig cfg;
  Testbed tb(cfg);
  tb.load_utilizations(0.8, 0.4, 0.2);
  const auto supply = power::paper_fig19_trace();
  const auto result = tb.run(*supply, 30);
  ASSERT_TRUE(result.asleep[2]);
  const double before = 580.0;
  double after = 0.0;
  for (int i = 0; i < 3; ++i) {
    after += result.consumed[i].mean_between(20.0, 30.0);
  }
  const double saving = (before - after) / before;
  EXPECT_NEAR(saving, 0.275, 0.06);
}

TEST(Run, SupplySeriesEchoesTrace) {
  Testbed tb;
  tb.load_utilizations(0.5, 0.5, 0.5);
  const auto supply = power::paper_fig15_trace();
  const auto result = tb.run(*supply, 30);
  ASSERT_EQ(result.supply.size(), 30u);
  EXPECT_DOUBLE_EQ(result.supply.at(7), 610.0);
  EXPECT_DOUBLE_EQ(result.supply.at(0), 680.0);
}

}  // namespace
}  // namespace willow::testbed
