#include "power/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace willow::power {
namespace {

using util::Seconds;

std::unique_ptr<SteppedSupply> parse(const std::string& text,
                                     Seconds step = Seconds{1.0}) {
  std::istringstream is(text);
  return read_supply_csv(is, step);
}

TEST(TraceIo, OneColumnWithDefaultStep) {
  const auto trace = parse("100\n200\n300\n", Seconds{2.0});
  EXPECT_DOUBLE_EQ(trace->at(Seconds{0.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(trace->at(Seconds{2.0}).value(), 200.0);
  EXPECT_DOUBLE_EQ(trace->at(Seconds{5.0}).value(), 300.0);
  EXPECT_DOUBLE_EQ(trace->step().value(), 2.0);
}

TEST(TraceIo, TwoColumnsInferStep) {
  const auto trace = parse("0,100\n0.5,150\n1.0,200\n");
  EXPECT_DOUBLE_EQ(trace->step().value(), 0.5);
  EXPECT_DOUBLE_EQ(trace->at(Seconds{0.6}).value(), 150.0);
}

TEST(TraceIo, HeaderCommentsAndBlanksSkipped) {
  const auto trace = parse(R"(t,watts
# recorded at the pdu
0,100

1,200  # midday
)");
  EXPECT_DOUBLE_EQ(trace->at(Seconds{1.0}).value(), 200.0);
  EXPECT_EQ(trace->levels().size(), 2u);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);                  // empty
  EXPECT_THROW(parse("# only comments\n"), std::runtime_error);
  EXPECT_THROW(parse("0,100\nbogus,200\n"), std::runtime_error);
  EXPECT_THROW(parse("100\n-5\n"), std::runtime_error);         // negative
  EXPECT_THROW(parse("0,100\n1\n"), std::runtime_error);        // col change
  EXPECT_THROW(parse("100,1,2\n"), std::runtime_error);         // 3 columns
  EXPECT_THROW(parse("0,100\n0,200\n"), std::runtime_error);    // dt = 0
  EXPECT_THROW(parse("0,100\n1,200\n3,300\n"), std::runtime_error);  // jitter
}

TEST(TraceIo, SingleSampleTwoColumnUsesDefaultStep) {
  const auto trace = parse("0,440\n", Seconds{3.0});
  EXPECT_DOUBLE_EQ(trace->step().value(), 3.0);
  EXPECT_DOUBLE_EQ(trace->at(Seconds{100.0}).value(), 440.0);
}

TEST(TraceIo, WriteThenReadRoundTrips) {
  SteppedSupply original({util::Watts{10.0}, util::Watts{20.0},
                          util::Watts{30.0}},
                         Seconds{1.0});
  std::ostringstream out;
  write_supply_csv(out, original, Seconds{1.0}, 3);
  const auto reloaded = parse(out.str());
  for (double t : {0.0, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(reloaded->at(Seconds{t}).value(),
                     original.at(Seconds{t}).value());
  }
}

TEST(TraceIo, WriteValidatesStep) {
  SteppedSupply s({util::Watts{1.0}}, Seconds{1.0});
  std::ostringstream out;
  EXPECT_THROW(write_supply_csv(out, s, Seconds{0.0}, 3),
               std::invalid_argument);
}

TEST(TraceIo, LoadFileErrors) {
  EXPECT_THROW(load_supply_csv("/no/such/trace.csv"), std::runtime_error);
}

TEST(TraceIo, PaperTraceRoundTripsThroughCsv) {
  const auto fig15 = paper_fig15_trace();
  std::ostringstream out;
  write_supply_csv(out, *fig15, Seconds{1.0}, 30);
  const auto reloaded = parse(out.str());
  for (int t = 0; t < 30; ++t) {
    EXPECT_DOUBLE_EQ(
        reloaded->at(Seconds{static_cast<double>(t)}).value(),
        fig15->at(Seconds{static_cast<double>(t)}).value());
  }
}

}  // namespace
}  // namespace willow::power
