#include "power/switch_power.h"

#include <gtest/gtest.h>

namespace willow::power {
namespace {

using namespace willow::util::literals;

TEST(SwitchPowerModel, RejectsNegativeParameters) {
  EXPECT_THROW(SwitchPowerModel(Watts{-1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(SwitchPowerModel(1_W, -1.0), std::invalid_argument);
}

TEST(SwitchPowerModel, StaticPlusDynamic) {
  SwitchPowerModel m(5_W, 10.0);
  EXPECT_DOUBLE_EQ(m.power(0.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(m.power(2.0).value(), 25.0);
}

TEST(SwitchPowerModel, NegativeTrafficThrows) {
  SwitchPowerModel m(5_W, 10.0);
  EXPECT_THROW(m.power(-0.1), std::invalid_argument);
}

TEST(SwitchPowerModel, CapacityUnderBudgetInvertsPower) {
  SwitchPowerModel m(5_W, 10.0);
  EXPECT_DOUBLE_EQ(m.capacity_under_budget(25_W), 2.0);
  EXPECT_DOUBLE_EQ(m.capacity_under_budget(5_W), 0.0);
  EXPECT_DOUBLE_EQ(m.capacity_under_budget(2_W), 0.0);  // below static
}

TEST(SwitchPowerModel, CapacityWithZeroSlopeIsZero) {
  SwitchPowerModel m(5_W, 0.0);
  EXPECT_DOUBLE_EQ(m.capacity_under_budget(100_W), 0.0);
}

TEST(SwitchPowerModel, PaperSimulationHasSmallStaticPart) {
  // Sec. V-B5: "The static part is fixed and is very small."
  const auto m = SwitchPowerModel::paper_simulation();
  EXPECT_LT(m.static_power().value(), 0.1 * m.power(3.0).value());
}

TEST(SwitchPowerModel, DynamicProportionalToTraffic) {
  const auto m = SwitchPowerModel::paper_simulation();
  const double d1 = (m.power(1.0) - m.static_power()).value();
  const double d3 = (m.power(3.0) - m.static_power()).value();
  EXPECT_NEAR(d3, 3.0 * d1, 1e-9);
}

}  // namespace
}  // namespace willow::power
