#include "power/supply.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace willow::power {
namespace {

using namespace willow::util::literals;

TEST(ConstantSupply, AlwaysSameLevel) {
  ConstantSupply s(500_W);
  EXPECT_DOUBLE_EQ(s.at(0_s).value(), 500.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{1e6}).value(), 500.0);
}

TEST(SteppedSupply, RejectsBadInputs) {
  EXPECT_THROW(SteppedSupply({}, 1_s), std::invalid_argument);
  EXPECT_THROW(SteppedSupply({100_W}, Seconds{0.0}), std::invalid_argument);
}

TEST(SteppedSupply, StepsAtBoundaries) {
  SteppedSupply s({100_W, 200_W, 300_W}, 1_s);
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.99}).value(), 100.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{1.0}).value(), 200.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{2.5}).value(), 300.0);
}

TEST(SteppedSupply, LastValuePersistsPastEnd) {
  SteppedSupply s({100_W, 200_W}, 1_s);
  EXPECT_DOUBLE_EQ(s.at(Seconds{100.0}).value(), 200.0);
}

TEST(SteppedSupply, NegativeTimeUsesFirstValue) {
  SteppedSupply s({100_W, 200_W}, 1_s);
  EXPECT_DOUBLE_EQ(s.at(Seconds{-5.0}).value(), 100.0);
}

TEST(SinusoidSupply, RejectsNonPositivePeriod) {
  EXPECT_THROW(SinusoidSupply(100_W, 10_W, Seconds{0.0}),
               std::invalid_argument);
}

TEST(SinusoidSupply, OscillatesAroundBase) {
  SinusoidSupply s(100_W, 20_W, Seconds{4.0});
  EXPECT_NEAR(s.at(Seconds{0.0}).value(), 100.0, 1e-9);
  EXPECT_NEAR(s.at(Seconds{1.0}).value(), 120.0, 1e-9);  // quarter period
  EXPECT_NEAR(s.at(Seconds{3.0}).value(), 80.0, 1e-9);   // three quarters
}

TEST(SinusoidSupply, ClampsAtZero) {
  SinusoidSupply s(10_W, 100_W, Seconds{4.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{3.0}).value(), 0.0);
}

TEST(SolarSupply, ValidatesArguments) {
  EXPECT_THROW(SolarSupply(10_W, 100_W, Seconds{0.0}, 0.5, 1),
               std::invalid_argument);
  EXPECT_THROW(SolarSupply(10_W, 100_W, Seconds{24.0}, 1.5, 1),
               std::invalid_argument);
}

TEST(SolarSupply, NightHasOnlyGridFloor) {
  SolarSupply s(50_W, 400_W, Seconds{24.0}, 0.3, 7);
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.0}).value(), 50.0);   // midnight
  EXPECT_DOUBLE_EQ(s.at(Seconds{23.0}).value(), 50.0);  // late night
}

TEST(SolarSupply, NoonPeaksNearClearSky) {
  SolarSupply clear(50_W, 400_W, Seconds{24.0}, 0.0, 7);
  EXPECT_NEAR(clear.at(Seconds{12.0}).value(), 450.0, 1.0);
}

TEST(SolarSupply, CloudinessOnlyReduces) {
  SolarSupply clear(50_W, 400_W, Seconds{24.0}, 0.0, 7);
  SolarSupply cloudy(50_W, 400_W, Seconds{24.0}, 0.8, 7);
  for (double t = 6.5; t < 18.0; t += 0.5) {
    EXPECT_LE(cloudy.at(Seconds{t}).value(), clear.at(Seconds{t}).value() + 1e-9);
    EXPECT_GE(cloudy.at(Seconds{t}).value(), 50.0 - 1e-9);
  }
}

TEST(SolarSupply, DeterministicInSeedAndTime) {
  SolarSupply a(50_W, 400_W, Seconds{24.0}, 0.5, 7);
  SolarSupply b(50_W, 400_W, Seconds{24.0}, 0.5, 7);
  for (double t = 0.0; t < 48.0; t += 1.7) {
    EXPECT_DOUBLE_EQ(a.at(Seconds{t}).value(), b.at(Seconds{t}).value());
  }
}

TEST(PaperFig15Trace, HasNarratedFeatures) {
  auto trace = paper_fig15_trace();
  ASSERT_EQ(trace->levels().size(), 30u);
  // Deep plunge at t=7 persisting through t=10.
  for (int t = 7; t <= 10; ++t) {
    EXPECT_LT(trace->at(Seconds{static_cast<double>(t)}).value(), 615.0);
  }
  // Comfortable before the plunge.
  for (int t = 0; t <= 6; ++t) {
    EXPECT_GT(trace->at(Seconds{static_cast<double>(t)}).value(), 650.0);
  }
  // Two later dips, each deep enough to tighten budgets.
  EXPECT_LT(trace->at(Seconds{15.0}).value(),
            trace->at(Seconds{14.0}).value() - 50.0);
  EXPECT_LT(trace->at(Seconds{23.0}).value(),
            trace->at(Seconds{22.0}).value() - 50.0);
  // Every level keeps the three idle floors (~478 W) powered.
  for (const auto& w : trace->levels()) EXPECT_GT(w.value(), 480.0);
}

TEST(PaperFig15Trace, MeanSupportsSixtyPercentUtilization) {
  // Three testbed servers at 60% draw ~609 W; the trace's mean must sit
  // above that so 60% is sustainable outside the plunges.
  auto trace = paper_fig15_trace();
  util::RunningStats s;
  for (const auto& w : trace->levels()) s.add(w.value());
  EXPECT_GT(s.mean(), 609.0);
  EXPECT_LT(s.mean(), 690.0);
}

TEST(PaperFig19Trace, MeanNearFullUtilizationSupply) {
  // Sec. V-C5: mean close to the ~750 W needed for three servers at 100%.
  auto trace = paper_fig19_trace();
  ASSERT_EQ(trace->levels().size(), 30u);
  util::RunningStats s;
  for (const auto& w : trace->levels()) s.add(w.value());
  EXPECT_NEAR(s.mean(), 750.0, 15.0);
  // Energy-plenty: no deficiency episodes.
  EXPECT_GT(s.min(), 700.0);
}

}  // namespace
}  // namespace willow::power
