#include "power/cooling.h"

#include <gtest/gtest.h>

#include <cmath>

namespace willow::power {
namespace {

using namespace willow::util::literals;

TEST(CoolingModel, Validation) {
  CoolingConfig bad;
  bad.cop_at_reference = 0.0;
  EXPECT_THROW(CoolingModel{bad}, std::invalid_argument);
  bad = CoolingConfig{};
  bad.min_cop = 0.0;
  EXPECT_THROW(CoolingModel{bad}, std::invalid_argument);
  bad = CoolingConfig{};
  bad.fan_floor = Watts{-1.0};
  EXPECT_THROW(CoolingModel{bad}, std::invalid_argument);
}

TEST(CoolingModel, CopFallsWithOutsideTemperature) {
  CoolingModel m;
  EXPECT_DOUBLE_EQ(m.cop(25_degC), 3.5);
  EXPECT_NEAR(m.cop(35_degC), 3.5 - 0.8, 1e-12);
  EXPECT_GT(m.cop(15_degC), m.cop(25_degC));
}

TEST(CoolingModel, CopFloors) {
  CoolingModel m;
  EXPECT_DOUBLE_EQ(m.cop(util::Celsius{500.0}), 1.0);
}

TEST(CoolingModel, CoolingPowerArithmetic) {
  CoolingConfig cfg;
  cfg.cop_at_reference = 3.5;
  cfg.fan_floor = 20_W;
  CoolingModel m(cfg);
  EXPECT_NEAR(m.cooling_power(350_W, 25_degC).value(), 20.0 + 100.0, 1e-9);
  EXPECT_THROW(m.cooling_power(Watts{-1.0}, 25_degC), std::invalid_argument);
}

TEST(CoolingModel, FacilityPowerAndPue) {
  CoolingConfig cfg;
  cfg.cop_at_reference = 2.0;
  cfg.fan_floor = 0_W;
  CoolingModel m(cfg);
  EXPECT_NEAR(m.facility_power(100_W, 25_degC).value(), 150.0, 1e-9);
  EXPECT_NEAR(m.pue(100_W, 25_degC), 1.5, 1e-12);
  EXPECT_TRUE(std::isinf(m.pue(Watts{0.0}, 25_degC)));
}

TEST(CoolingModel, HotterDaysCostMorePerServedWatt) {
  CoolingModel m;
  EXPECT_GT(m.pue(300_W, 40_degC), m.pue(300_W, 25_degC));
}

TEST(CoolingModel, PueAlwaysAboveOne) {
  CoolingModel m;
  for (double it : {10.0, 100.0, 500.0}) {
    for (double ta : {15.0, 25.0, 40.0}) {
      EXPECT_GT(m.pue(Watts{it}, util::Celsius{ta}), 1.0);
    }
  }
}

}  // namespace
}  // namespace willow::power
