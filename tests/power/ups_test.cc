#include "power/ups.h"

#include <gtest/gtest.h>

namespace willow::power {
namespace {

using namespace willow::util::literals;

TEST(Ups, ValidatesArguments) {
  EXPECT_THROW(Ups(Joules{-1.0}, 10_W, 10_W), std::invalid_argument);
  EXPECT_THROW(Ups(100_J, Watts{-1.0}, 10_W), std::invalid_argument);
  EXPECT_THROW(Ups(100_J, 10_W, Watts{-1.0}), std::invalid_argument);
  EXPECT_THROW(Ups(100_J, 10_W, 10_W, 1.5), std::invalid_argument);
}

TEST(Ups, StartsAtConfiguredCharge) {
  Ups full(100_J, 10_W, 10_W, 1.0);
  EXPECT_DOUBLE_EQ(full.state_of_charge(), 1.0);
  Ups half(100_J, 10_W, 10_W, 0.5);
  EXPECT_DOUBLE_EQ(half.stored().value(), 50.0);
}

TEST(Ups, SurplusPassesThroughAndRecharges) {
  Ups ups(100_J, 10_W, 5_W, 0.0);
  const Watts delivered = ups.step(100_W, 60_W, 2_s);
  EXPECT_DOUBLE_EQ(delivered.value(), 60.0);
  // Recharge limited by max_charge (5 W for 2 s = 10 J).
  EXPECT_DOUBLE_EQ(ups.stored().value(), 10.0);
}

TEST(Ups, RechargeCapsAtCapacity) {
  Ups ups(8_J, 10_W, 100_W, 0.0);
  ups.step(200_W, 0_W, 1_s);
  EXPECT_DOUBLE_EQ(ups.stored().value(), 8.0);
}

TEST(Ups, DeficitBridgedByDischarge) {
  Ups ups(1000_J, 50_W, 50_W, 1.0);
  const Watts delivered = ups.step(100_W, 130_W, 2_s);
  EXPECT_DOUBLE_EQ(delivered.value(), 130.0);
  EXPECT_DOUBLE_EQ(ups.stored().value(), 1000.0 - 30.0 * 2.0);
}

TEST(Ups, DischargeLimitedByRate) {
  Ups ups(1000_J, 20_W, 20_W, 1.0);
  const Watts delivered = ups.step(100_W, 200_W, 1_s);
  EXPECT_DOUBLE_EQ(delivered.value(), 120.0);  // supply + max 20 W discharge
}

TEST(Ups, DischargeLimitedByStoredEnergy) {
  Ups ups(10_J, 100_W, 100_W, 1.0);
  const Watts delivered = ups.step(100_W, 200_W, 1_s);
  EXPECT_DOUBLE_EQ(delivered.value(), 110.0);  // only 10 J available over 1 s
  EXPECT_DOUBLE_EQ(ups.stored().value(), 0.0);
}

TEST(Ups, EmptyBatteryPassesSupplyOnly) {
  Ups ups(100_J, 100_W, 100_W, 0.0);
  EXPECT_DOUBLE_EQ(ups.step(80_W, 200_W, 1_s).value(), 80.0);
}

TEST(Ups, DeliverableIsPureQuery) {
  Ups ups(100_J, 50_W, 50_W, 1.0);
  const double stored_before = ups.stored().value();
  (void)ups.deliverable(10_W, 100_W, 1_s);
  EXPECT_DOUBLE_EQ(ups.stored().value(), stored_before);
}

TEST(Ups, StepRejectsNonPositiveDt) {
  Ups ups(100_J, 10_W, 10_W);
  EXPECT_THROW(ups.step(10_W, 10_W, Seconds{0.0}), std::invalid_argument);
}

TEST(Ups, SmoothsShortDipButNotLongPlunge) {
  // The Sec. IV-C argument: UPS integrates out *temporary* deficits, which
  // is why supply periods can be coarser than demand periods.
  Ups ups(200_J, 150_W, 50_W, 1.0);
  // Short 1-period dip of 150 W below demand: fully bridged.
  EXPECT_DOUBLE_EQ(ups.step(450_W, 600_W, 1_s).value(), 600.0);
  // Long plunge drains the battery; deliverable decays to raw supply.
  Watts last{0.0};
  for (int i = 0; i < 10; ++i) last = ups.step(450_W, 600_W, 1_s);
  EXPECT_DOUBLE_EQ(last.value(), 450.0);
  EXPECT_DOUBLE_EQ(ups.state_of_charge(), 0.0);
}

}  // namespace
}  // namespace willow::power
