#include "power/server_power.h"

#include <gtest/gtest.h>

namespace willow::power {
namespace {

using namespace willow::util::literals;

TEST(ServerPowerModel, RejectsBadParameters) {
  EXPECT_THROW(ServerPowerModel(Watts{-1.0}, 100_W), std::invalid_argument);
  EXPECT_THROW(ServerPowerModel(100_W, 50_W), std::invalid_argument);
  EXPECT_NO_THROW(ServerPowerModel(100_W, 100_W));
}

TEST(ServerPowerModel, LinearInterpolation) {
  ServerPowerModel m(100_W, 200_W);
  EXPECT_DOUBLE_EQ(m.power(0.0).value(), 100.0);
  EXPECT_DOUBLE_EQ(m.power(0.5).value(), 150.0);
  EXPECT_DOUBLE_EQ(m.power(1.0).value(), 200.0);
}

TEST(ServerPowerModel, ClampsUtilization) {
  ServerPowerModel m(100_W, 200_W);
  EXPECT_DOUBLE_EQ(m.power(-0.5).value(), 100.0);
  EXPECT_DOUBLE_EQ(m.power(1.5).value(), 200.0);
}

TEST(ServerPowerModel, InverseRoundTrips) {
  ServerPowerModel m(100_W, 200_W);
  for (double u : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(m.utilization(m.power(u)), u, 1e-12);
  }
}

TEST(ServerPowerModel, InverseClampsOutOfRange) {
  ServerPowerModel m(100_W, 200_W);
  EXPECT_DOUBLE_EQ(m.utilization(50_W), 0.0);
  EXPECT_DOUBLE_EQ(m.utilization(500_W), 1.0);
}

TEST(ServerPowerModel, DegenerateFlatModel) {
  ServerPowerModel m(100_W, 100_W);
  EXPECT_DOUBLE_EQ(m.power(0.7).value(), 100.0);
  EXPECT_DOUBLE_EQ(m.utilization(100_W), 1.0);
  EXPECT_DOUBLE_EQ(m.utilization(99_W), 0.0);
}

TEST(ServerPowerModel, MonotonicInUtilization) {
  ServerPowerModel m = ServerPowerModel::paper_simulation();
  double prev = -1.0;
  for (int i = 0; i <= 10; ++i) {
    const double p = m.power(i / 10.0).value();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

// The testbed calibration must reproduce the paper's own worked example:
// three servers at (80, 40, 20)% draw ~580 W, and consolidating the third
// away (its load re-hosted, its idle power eliminated) saves ~27.5%.
TEST(ServerPowerModel, PaperTestbedConsolidationArithmetic) {
  const auto m = ServerPowerModel::paper_testbed();
  const double before =
      (m.power(0.8) + m.power(0.4) + m.power(0.2)).value();
  EXPECT_NEAR(before, 580.0, 1.0);
  // After consolidation the same 1.4 total utilization runs on two servers.
  const double after = (m.power(1.0) + m.power(0.4)).value();
  const double saving = (before - after) / before;
  EXPECT_NEAR(saving, 0.275, 0.005);
}

TEST(ServerPowerModel, PaperTestbedTableIValues) {
  const auto m = ServerPowerModel::paper_testbed();
  EXPECT_NEAR(m.power(0.0).value(), 159.5, 1e-9);
  EXPECT_NEAR(m.power(1.0).value(), 232.0, 1e-9);
  EXPECT_NEAR(m.power(0.6).value(), 203.0, 1e-9);
}

TEST(ServerPowerModel, UtilizationUnderBudgetAliasesInverse) {
  const auto m = ServerPowerModel::paper_testbed();
  EXPECT_DOUBLE_EQ(m.utilization_under_budget(200_W), m.utilization(200_W));
}

}  // namespace
}  // namespace willow::power
