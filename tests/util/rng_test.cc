#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace willow::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 9.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    saw_lo |= x == 2;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PoissonMeanApproximatesLambda) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.poisson(6.5));
  EXPECT_NEAR(s.mean(), 6.5, 0.15);
}

TEST(Rng, PoissonVarianceApproximatesLambda) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.poisson(4.0));
  EXPECT_NEAR(s.variance(), 4.0, 0.3);
}

TEST(Rng, PoissonZeroAndNegativeMeanIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-3.0), 0);
}

TEST(Rng, GaussianZeroStddevIsZero) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.gaussian(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.gaussian(-1.0), 0.0);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(2.0));
  EXPECT_NEAR(s.mean(), 0.0, 0.06);
  EXPECT_NEAR(s.stddev(), 2.0, 0.08);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.12);
}

TEST(Rng, ChanceProbabilityApproximatesP) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(29);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.index(5)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The fork consumed state: parent continues, child is distinct.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == child.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace willow::util
