#include "util/ewma.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace willow::util {
namespace {

using namespace willow::util::literals;

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma<double>(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma<double>(-0.5), std::invalid_argument);
  EXPECT_THROW(Ewma<double>(1.5), std::invalid_argument);
  EXPECT_NO_THROW(Ewma<double>(1.0));
  EXPECT_NO_THROW(Ewma<double>(0.001));
}

TEST(Ewma, FirstSampleSeedsWithoutBias) {
  Ewma<double> s(0.3);
  EXPECT_FALSE(s.seeded());
  EXPECT_DOUBLE_EQ(s.update(100.0), 100.0);
  EXPECT_TRUE(s.seeded());
}

TEST(Ewma, MatchesEquation4) {
  // CP = alpha * CP_now + (1 - alpha) * CP_old (Eq. 4 of the paper).
  Ewma<double> s(0.25);
  s.update(100.0);
  EXPECT_DOUBLE_EQ(s.update(200.0), 0.25 * 200.0 + 0.75 * 100.0);
  const double prev = s.value();
  EXPECT_DOUBLE_EQ(s.update(80.0), 0.25 * 80.0 + 0.75 * prev);
}

TEST(Ewma, AlphaOneIsPassThrough) {
  Ewma<double> s(1.0);
  s.update(10.0);
  EXPECT_DOUBLE_EQ(s.update(55.0), 55.0);
  EXPECT_DOUBLE_EQ(s.update(-3.0), -3.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma<double> s(0.3);
  for (int i = 0; i < 200; ++i) s.update(42.0);
  EXPECT_NEAR(s.value(), 42.0, 1e-9);
}

TEST(Ewma, ConvergesFromDifferentSeed) {
  Ewma<double> s(0.5);
  s.update(0.0);
  for (int i = 0; i < 60; ++i) s.update(100.0);
  EXPECT_NEAR(s.value(), 100.0, 1e-9);
}

TEST(Ewma, ResetForgetsHistory) {
  Ewma<double> s(0.5);
  s.update(100.0);
  s.reset();
  EXPECT_FALSE(s.seeded());
  EXPECT_DOUBLE_EQ(s.update(7.0), 7.0);
}

TEST(Ewma, WorksWithUnitTypes) {
  Ewma<Watts> s(0.5);
  s.update(100_W);
  EXPECT_DOUBLE_EQ(s.update(200_W).value(), 150.0);
}

TEST(Ewma, SmallerAlphaRespondsSlower) {
  Ewma<double> slow(0.1);
  Ewma<double> fast(0.9);
  slow.update(0.0);
  fast.update(0.0);
  slow.update(100.0);
  fast.update(100.0);
  EXPECT_LT(slow.value(), fast.value());
}

class EwmaConvergence : public ::testing::TestWithParam<double> {};

TEST_P(EwmaConvergence, StepResponseConvergesForAllAlphas) {
  Ewma<double> s(GetParam());
  s.update(0.0);
  for (int i = 0; i < 2000; ++i) s.update(1.0);
  EXPECT_NEAR(s.value(), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwmaConvergence,
                         ::testing::Values(0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

}  // namespace
}  // namespace willow::util
