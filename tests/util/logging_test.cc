#include "util/logging.h"

#include <gtest/gtest.h>

namespace willow::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, DefaultLevelIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kOff, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kTrace);
}

TEST_F(LoggingTest, SuppressedMacroDoesNotEvaluateStream) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  WILLOW_INFO() << expensive();
  EXPECT_EQ(evaluations, 0) << "stream expression ran while suppressed";
  set_log_level(LogLevel::kInfo);
  WILLOW_INFO() << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EmitsToStderrAtOrBelowThreshold) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WILLOW_ERROR() << "boom";
  WILLOW_INFO() << "hello";
  WILLOW_DEBUG() << "hidden";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

}  // namespace
}  // namespace willow::util
