#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace willow::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kOff);
  }
};

/// Test sink capturing every line it is handed.
class CaptureSink final : public LogSink {
 public:
  explicit CaptureSink(LogLevel level) : level_(level) {}
  [[nodiscard]] LogLevel level() const override { return level_; }
  void write(LogLevel level, const std::string& text) override {
    lines.emplace_back(level, text);
  }
  LogLevel level_;
  std::vector<std::pair<LogLevel, std::string>> lines;
};

TEST_F(LoggingTest, DefaultLevelIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kOff, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kTrace);
}

TEST_F(LoggingTest, SuppressedMacroDoesNotEvaluateStream) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  WILLOW_INFO() << expensive();
  EXPECT_EQ(evaluations, 0) << "stream expression ran while suppressed";
  set_log_level(LogLevel::kInfo);
  WILLOW_INFO() << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, DefaultSinkIsInstalledAndNeverNull) {
  ASSERT_NE(log_sink(), nullptr);
  EXPECT_EQ(log_sink(), &default_log_sink());
}

TEST_F(LoggingTest, InjectedSinkReceivesFilteredLines) {
  CaptureSink sink(LogLevel::kWarn);
  LogSink* previous = set_log_sink(&sink);
  EXPECT_EQ(previous, &default_log_sink());
  WILLOW_ERROR() << "e";
  WILLOW_WARN() << "w";
  WILLOW_INFO() << "i";  // above the sink's threshold: filtered
  ASSERT_EQ(sink.lines.size(), 2u);
  EXPECT_EQ(sink.lines[0], (std::pair{LogLevel::kError, std::string("e")}));
  EXPECT_EQ(sink.lines[1], (std::pair{LogLevel::kWarn, std::string("w")}));
}

TEST_F(LoggingTest, NullptrRestoresDefaultSink) {
  CaptureSink sink(LogLevel::kInfo);
  set_log_sink(&sink);
  EXPECT_EQ(set_log_sink(nullptr), &sink);
  EXPECT_EQ(log_sink(), &default_log_sink());
}

TEST_F(LoggingTest, LegacyShimTargetsDefaultSinkNotInjectedOne) {
  CaptureSink sink(LogLevel::kTrace);
  set_log_sink(&sink);
  set_log_level(LogLevel::kDebug);  // adjusts the built-in sink
  EXPECT_EQ(sink.level(), LogLevel::kTrace);
  set_log_sink(nullptr);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressionFollowsInjectedSinkLevel) {
  CaptureSink sink(LogLevel::kOff);
  set_log_sink(&sink);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  WILLOW_ERROR() << expensive();
  EXPECT_EQ(evaluations, 0);
  sink.level_ = LogLevel::kError;
  WILLOW_ERROR() << expensive();
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(sink.lines.size(), 1u);
}

TEST_F(LoggingTest, EmitsToStderrAtOrBelowThreshold) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WILLOW_ERROR() << "boom";
  WILLOW_INFO() << "hello";
  WILLOW_DEBUG() << "hidden";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

}  // namespace
}  // namespace willow::util
