#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace willow::util {
namespace {

std::string render(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os);
  body(w);
  w.finish();
  return os.str();
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(render([](JsonWriter& w) { w.begin_object().end_object(); }), "{}");
  EXPECT_EQ(render([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(Json, ObjectWithMixedValues) {
  const auto out = render([](JsonWriter& w) {
    w.begin_object();
    w.key("s").value("hi");
    w.key("i").value(42);
    w.key("d").value(1.5);
    w.key("b").value(true);
    w.key("n").null();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"s":"hi","i":42,"d":1.5,"b":true,"n":null})");
}

TEST(Json, NestedArraysAndObjects) {
  const auto out = render([](JsonWriter& w) {
    w.begin_object();
    w.key("xs").begin_array();
    w.value(1).value(2);
    w.begin_object().key("k").value("v").end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"xs":[1,2,{"k":"v"}]})");
}

TEST(Json, StringEscaping) {
  const auto out = render([](JsonWriter& w) {
    w.begin_array();
    w.value("a\"b\\c\nd\te");
    w.value(std::string("ctrl\x01"));
    w.end_array();
  });
  EXPECT_EQ(out, "[\"a\\\"b\\\\c\\nd\\te\",\"ctrl\\u0001\"]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  const auto out = render([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::nan(""));
    w.value(3.0);
    w.end_array();
  });
  EXPECT_EQ(out, "[null,null,3]");
}

TEST(Json, DoublesRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(0.1234567890123456789);
  EXPECT_DOUBLE_EQ(std::stod(os.str()), 0.1234567890123456789);
}

TEST(Json, NumberArrayHelper) {
  const auto out = render([](JsonWriter& w) {
    w.begin_object();
    w.number_array("xs", {1.0, 2.5});
    w.end_object();
  });
  EXPECT_EQ(out, R"({"xs":[1,2.5]})");
}

TEST(Json, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w(os);
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);  // two keys
  }
  {
    JsonWriter w(os);
    EXPECT_THROW(w.end_object(), std::logic_error);
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.finish(), std::logic_error);  // unterminated
  }
}

}  // namespace
}  // namespace willow::util
