#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace willow::util {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintsAlignedHeaderAndRows) {
  Table t({"name", "watts"});
  t.row().add("serverA").add(123.456);
  t.row().add("b").add(1.0);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("watts"), std::string::npos);
  EXPECT_NE(out.find("serverA"), std::string::npos);
  EXPECT_NE(out.find("123.456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"x"});
  t.set_precision(1);
  t.row().add(2.71828);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("2.7"), std::string::npos);
  EXPECT_EQ(os.str().find("2.71"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.row().add("x").add(2LL);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"a"});
  t.row().add("hello, \"world\"");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, ImplicitRowOnFirstAdd) {
  Table t({"a"});
  t.add("v");  // no explicit row()
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, IntegerOverloads) {
  Table t({"a", "b", "c"});
  t.row().add(1).add(std::size_t{2}).add(3LL);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, WriteCsvFileRoundTrip) {
  Table t({"k", "v"});
  t.row().add("key").add(9.5);
  const std::string path = ::testing::TempDir() + "/willow_table_test.csv";
  ASSERT_TRUE(t.write_csv_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "key,9.500");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFileFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv_file("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace willow::util
