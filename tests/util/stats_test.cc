#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace willow::util {
namespace {

TEST(RunningStats, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 25 ? a : b).add(x);
    all.add(x);
  }
  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a += empty;
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats c;
  c += a;
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(TimeSeries, RecordAndQuery) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.record(0.0, 1.0);
  ts.record(1.0, 3.0);
  ts.record(2.0, 5.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(1), 3.0);
  EXPECT_DOUBLE_EQ(ts.last(), 5.0);
  EXPECT_DOUBLE_EQ(ts.stats().mean(), 3.0);
}

TEST(TimeSeries, LastThrowsOnEmpty) {
  TimeSeries ts;
  EXPECT_THROW(ts.last(), std::out_of_range);
}

TEST(TimeSeries, MeanBetweenWindow) {
  TimeSeries ts;
  for (int t = 0; t < 10; ++t) ts.record(t, t * 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(2.0, 4.0), 30.0);  // 20,30,40
  EXPECT_DOUBLE_EQ(ts.mean_between(100.0, 200.0), 0.0);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.9);    // bucket 4
  h.add(-5.0);   // clamps to 0
  h.add(50.0);   // clamps to 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
}

}  // namespace
}  // namespace willow::util
