#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace willow::util {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, ComputesDeterministicResult) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ThreadPool, ManySmallBatchesDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelForRanges, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  parallel_for_ranges(&pool, hits.size(),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) ++hits[i];
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRanges, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for_ranges(&pool, 0, [](std::size_t, std::size_t) { FAIL(); });
  parallel_for_ranges(nullptr, 0, [](std::size_t, std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForRanges, NullPoolRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  parallel_for_ranges(nullptr, 57, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 57u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForRanges, ReductionMatchesSerialBitExactly) {
  // The pattern the tick engine relies on: fill per-index slots in parallel,
  // reduce serially in index order.  Any pool size must give the serial
  // result bit for bit.
  const std::size_t n = 10000;
  auto f = [](std::size_t i) {
    return 1.0 / static_cast<double>(i + 1) +
           0.25 * static_cast<double>(i % 7);
  };
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = f(i);
  const double serial_sum =
      std::accumulate(serial.begin(), serial.end(), 0.0);

  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(workers);
    std::vector<double> out(n, 0.0);
    parallel_for_ranges(&pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = f(i);
    });
    EXPECT_EQ(out, serial) << workers << " workers";
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0.0), serial_sum)
        << workers << " workers";
  }
}

TEST(ParallelForRanges, StressManyRoundsOfReductions) {
  // Hammer one pool with tick-loop-shaped work: many consecutive sharded
  // rounds, each a fill + fixed-order reduce, interleaved with a shared
  // atomic.  Exercises queue/wait_idle transitions under contention (the
  // TSan preset runs this).
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<double> out(n);
  std::atomic<std::uint64_t> touched{0};
  for (int round = 1; round <= 100; ++round) {
    parallel_for_ranges(&pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * round;
      }
      touched.fetch_add(end - begin, std::memory_order_relaxed);
    });
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += out[i];
    const double expected =
        static_cast<double>(n - 1) * static_cast<double>(n) / 2.0 * round;
    ASSERT_DOUBLE_EQ(sum, expected) << "round " << round;
  }
  EXPECT_EQ(touched.load(), 100u * n);
}

}  // namespace
}  // namespace willow::util
