#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

namespace willow::util {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, ComputesDeterministicResult) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ThreadPool, ManySmallBatchesDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelForRanges, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  parallel_for_ranges(&pool, hits.size(),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) ++hits[i];
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRanges, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for_ranges(&pool, 0, [](std::size_t, std::size_t) { FAIL(); });
  parallel_for_ranges(nullptr, 0, [](std::size_t, std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForRanges, NullPoolRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  parallel_for_ranges(nullptr, 57, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 57u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForRanges, ReductionMatchesSerialBitExactly) {
  // The pattern the tick engine relies on: fill per-index slots in parallel,
  // reduce serially in index order.  Any pool size must give the serial
  // result bit for bit.
  const std::size_t n = 10000;
  auto f = [](std::size_t i) {
    return 1.0 / static_cast<double>(i + 1) +
           0.25 * static_cast<double>(i % 7);
  };
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = f(i);
  const double serial_sum =
      std::accumulate(serial.begin(), serial.end(), 0.0);

  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(workers);
    std::vector<double> out(n, 0.0);
    parallel_for_ranges(&pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = f(i);
    });
    EXPECT_EQ(out, serial) << workers << " workers";
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0.0), serial_sum)
        << workers << " workers";
  }
}

TEST(ChunkPartition, IsAPureFunctionOfSizeAndPoolSize) {
  // The determinism contract: the chunking never depends on runtime state
  // (load, who claims what, thread count actually running), only on
  // (n, pool_size).  Same inputs, same partition — every call, every pool.
  for (std::size_t pool_size : {0u, 1u, 2u, 4u, 7u, 16u}) {
    for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u, 4096u, 99991u}) {
      const std::size_t chunks = ThreadPool::chunk_count(n, pool_size);
      EXPECT_EQ(chunks, ThreadPool::chunk_count(n, pool_size));
      if (n == 0) continue;
      ASSERT_GE(chunks, 1u);
      ASSERT_LE(chunks, n);
      // Chunks tile [0, n) contiguously without gaps or overlap.
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = ThreadPool::chunk_bounds(n, chunks, c);
        EXPECT_EQ(begin, expect_begin) << "n=" << n << " c=" << c;
        EXPECT_GT(end, begin);
        expect_begin = end;
        // Pure: a second call gives the same bounds.
        EXPECT_EQ(ThreadPool::chunk_bounds(n, chunks, c),
                  std::make_pair(begin, end));
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ChunkPartition, SamePartitionAcrossDistinctPoolsOfEqualSize) {
  // Two pools of the same size must hand the same (begin, end) ranges to
  // the body for the same n, independent of which threads execute them.
  auto record = [](ThreadPool& pool, std::size_t n) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    parallel_for_ranges(&pool, n, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace_back(begin, end);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  ThreadPool a(3), b(3);
  a.set_force_worker_dispatch(true);  // concurrent path even on 1-core hosts
  for (std::size_t n : {1u, 12u, 500u, 4097u}) {
    EXPECT_EQ(record(a, n), record(b, n)) << "n=" << n;
  }
}

TEST(ThreadPool, BatchDescriptorReuseAcrossManyRounds) {
  // run_batch reuses one descriptor slot + generation counter; hammer it
  // with back-to-back batches of varying size and verify exactly-once
  // coverage each round (a stale worker claiming into the wrong generation
  // would double-run or skip indices).
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  std::vector<std::atomic<int>> hits(5000);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + (round * 131) % hits.size();
    for (std::size_t i = 0; i < n; ++i) {
      hits[i].store(0, std::memory_order_relaxed);
    }
    pool.run_batch(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPool, WaitIdleWithInterleavedSubmitsAndBatches) {
  // The queue path (submit/wait_idle) and the batch path (run_batch) share
  // workers; interleaving them must neither drop tasks nor deadlock.
  ThreadPool pool(3);
  pool.set_force_worker_dispatch(true);
  std::atomic<int> queued{0};
  std::atomic<int> batched{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) {
      pool.submit([&] { queued.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run_batch(64, [&](std::size_t begin, std::size_t end) {
      batched.fetch_add(static_cast<int>(end - begin),
                        std::memory_order_relaxed);
    });
    for (int i = 0; i < 5; ++i) {
      pool.submit([&] { queued.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    ASSERT_EQ(queued.load(), (round + 1) * 10);
    ASSERT_EQ(batched.load(), (round + 1) * 64);
  }
}

TEST(ThreadPool, SingleWorkerPoolRunsBatchInlineOnCaller) {
  // size() <= 1 pools never dispatch to workers: the caller runs every
  // chunk itself, so nested use from a worker cannot deadlock.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::size_t covered = 0;
  pool.run_batch(100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += end - begin;
  });
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, ForcedDispatchStillCoversEveryIndexOnce) {
  // set_force_worker_dispatch(true) takes the concurrent claim path even
  // where hardware_concurrency() == 1 would normally choose inline; the
  // result must be indistinguishable.
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  std::vector<std::atomic<int>> hits(2477);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRanges, StressManyRoundsOfReductions) {
  // Hammer one pool with tick-loop-shaped work: many consecutive sharded
  // rounds, each a fill + fixed-order reduce, interleaved with a shared
  // atomic.  Exercises queue/wait_idle transitions under contention (the
  // TSan preset runs this).
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<double> out(n);
  std::atomic<std::uint64_t> touched{0};
  for (int round = 1; round <= 100; ++round) {
    parallel_for_ranges(&pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * round;
      }
      touched.fetch_add(end - begin, std::memory_order_relaxed);
    });
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += out[i];
    const double expected =
        static_cast<double>(n - 1) * static_cast<double>(n) / 2.0 * round;
    ASSERT_DOUBLE_EQ(sum, expected) << "round " << round;
  }
  EXPECT_EQ(touched.load(), 100u * n);
}

}  // namespace
}  // namespace willow::util
