#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace willow::util {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, ComputesDeterministicResult) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ThreadPool, ManySmallBatchesDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace willow::util
