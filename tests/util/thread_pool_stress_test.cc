// ThreadSanitizer stress for the batch-descriptor engine (ctest -L tsan).
//
// Hammers the races the design has to be proof against: descriptor reuse
// across generations (a slow worker must never claim into the next batch),
// the producer tearing down a batch's body while workers finish, and the
// queue path interleaved with batches.  Runs with forced worker dispatch so
// the concurrent claim path is exercised even on single-core CI hosts,
// where run_batch would otherwise fall back to inline execution.
//
// Functional coverage lives in thread_pool_test.cc; this file exists to
// give TSan long, contended schedules, so iteration counts are high and
// assertions are cheap.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace willow::util {
namespace {

TEST(ThreadPoolStress, RapidBatchTurnoverAcrossGenerations) {
  // Many short batches back to back: the window where a worker holds a
  // stale descriptor snapshot is widest when batches retire quickly.
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  std::atomic<std::uint64_t> total{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t n = 1 + round % 97;
    expected += n;
    pool.run_batch(n, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolStress, BodyLifetimeEndsWithTheBatch) {
  // Each round's body captures round-local state by reference and goes out
  // of scope right after run_batch returns; any post-return execution of
  // the body is a use-after-free TSan/ASan will flag.
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  for (int round = 0; round < 1000; ++round) {
    std::vector<int> local(256, 0);
    pool.run_batch(local.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) local[i] = round;
    });
    ASSERT_EQ(local.front(), round);
    ASSERT_EQ(local.back(), round);
  }
}

TEST(ThreadPoolStress, QueueAndBatchPathsContend) {
  // submit() traffic running concurrently with run_batch() generations:
  // the paths share the condvar and workers but must not share fate.
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  std::atomic<std::uint64_t> queued{0};
  std::atomic<std::uint64_t> batched{0};
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] { queued.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run_batch(333, [&](std::size_t begin, std::size_t end) {
      batched.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(queued.load(), 500u * 8u);
  EXPECT_EQ(batched.load(), 500u * 333u);
}

TEST(ThreadPoolStress, TickShapedFanOutsOverSharedState) {
  // The simulation's shape: consecutive fused fan-outs writing disjoint
  // per-index slots of shared vectors, serial reduction between rounds.
  ThreadPool pool(4);
  pool.set_force_worker_dispatch(true);
  const std::size_t n = 8192;
  std::vector<double> a(n), b(n);
  double checksum = 0.0;
  for (int round = 1; round <= 300; ++round) {
    pool.run_batch(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        a[i] = static_cast<double>(i % 13) * round;
      }
    });
    pool.run_batch(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) b[i] = a[i] * 0.5;
    });
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += b[i];
    checksum = sum;
  }
  EXPECT_GT(checksum, 0.0);
}

}  // namespace
}  // namespace willow::util
