#include "util/units.h"

#include <gtest/gtest.h>

#include <sstream>

namespace willow::util {
namespace {

using namespace willow::util::literals;

TEST(Units, DefaultConstructsToZero) {
  Watts w;
  EXPECT_EQ(w.value(), 0.0);
}

TEST(Units, LiteralsProduceExpectedValues) {
  EXPECT_DOUBLE_EQ((450_W).value(), 450.0);
  EXPECT_DOUBLE_EQ((25.5_degC).value(), 25.5);
  EXPECT_DOUBLE_EQ((2_s).value(), 2.0);
  EXPECT_DOUBLE_EQ((3.5_J).value(), 3.5);
  EXPECT_DOUBLE_EQ((512_MB).value(), 512.0);
}

TEST(Units, AdditionAndSubtraction) {
  EXPECT_DOUBLE_EQ((100_W + 50_W).value(), 150.0);
  EXPECT_DOUBLE_EQ((100_W - 50_W).value(), 50.0);
  EXPECT_DOUBLE_EQ((-(30_W)).value(), -30.0);
}

TEST(Units, CompoundAssignment) {
  Watts w{10.0};
  w += 5_W;
  EXPECT_DOUBLE_EQ(w.value(), 15.0);
  w -= 3_W;
  EXPECT_DOUBLE_EQ(w.value(), 12.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 24.0);
  w /= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 6.0);
}

TEST(Units, ScalarMultiplication) {
  EXPECT_DOUBLE_EQ((10_W * 3.0).value(), 30.0);
  EXPECT_DOUBLE_EQ((3.0 * 10_W).value(), 30.0);
  EXPECT_DOUBLE_EQ((10_W / 4.0).value(), 2.5);
}

TEST(Units, SameUnitRatioIsDimensionless) {
  const double ratio = 30_W / 60_W;
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Units, Comparisons) {
  EXPECT_LT(10_W, 20_W);
  EXPECT_GT(20_W, 10_W);
  EXPECT_EQ(15_W, 15_W);
  EXPECT_LE(15_W, 15_W);
  EXPECT_GE(15_W, 15_W);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = 100_W * 10_s;
  EXPECT_DOUBLE_EQ(e.value(), 1000.0);
  const Joules e2 = 10_s * 100_W;
  EXPECT_DOUBLE_EQ(e2.value(), 1000.0);
}

TEST(Units, EnergyOverTimeIsPower) {
  const Watts p = 1000_J / 10_s;
  EXPECT_DOUBLE_EQ(p.value(), 100.0);
}

TEST(Units, PositivePartClampsNegatives) {
  EXPECT_DOUBLE_EQ(positive_part(5_W - 3_W).value(), 2.0);
  EXPECT_DOUBLE_EQ(positive_part(3_W - 5_W).value(), 0.0);
  EXPECT_DOUBLE_EQ(positive_part(Watts{0.0}).value(), 0.0);
}

TEST(Units, MinMax) {
  EXPECT_EQ(min(3_W, 7_W), 3_W);
  EXPECT_EQ(max(3_W, 7_W), 7_W);
  EXPECT_EQ(min(7_W, 7_W), 7_W);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << 42.5_W;
  EXPECT_EQ(os.str(), "42.5");
}

}  // namespace
}  // namespace willow::util
