// EventBus semantics: tick stamping, sink fan-out, deterministic shard
// merging, and the stock sinks (ring buffer, counting, JSONL, log bridge).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/bus.h"
#include "obs/event.h"
#include "obs/sink.h"
#include "util/logging.h"

namespace willow::obs {
namespace {

Event make(EventType type, std::uint32_t node, double value = 0.0) {
  Event e;
  e.type = type;
  e.node = node;
  e.value = value;
  return e;
}

TEST(EventBus, DisabledWithoutSinksEnabledWithOne) {
  EventBus bus;
  EXPECT_FALSE(bus.enabled());
  bus.add_sink(std::make_shared<CountingSink>());
  EXPECT_TRUE(bus.enabled());
}

TEST(EventBus, StampsCurrentTickOnEmit) {
  EventBus bus;
  auto ring = std::make_shared<RingBufferSink>(8);
  bus.add_sink(ring);
  bus.set_tick(17);
  bus.emit(make(EventType::kMigration, 3));
  bus.set_tick(18);
  bus.emit(make(EventType::kDrop, 4));
  ASSERT_EQ(ring->events().size(), 2u);
  EXPECT_EQ(ring->events()[0].tick, 17);
  EXPECT_EQ(ring->events()[1].tick, 18);
}

TEST(EventBus, FansOutToEverySink) {
  EventBus bus;
  auto a = std::make_shared<CountingSink>();
  auto b = std::make_shared<CountingSink>();
  bus.add_sink(a);
  bus.add_sink(b);
  bus.emit(make(EventType::kSleep, 1));
  bus.emit(make(EventType::kWake, 1));
  EXPECT_EQ(a->total(), 2u);
  EXPECT_EQ(b->total(), 2u);
  EXPECT_EQ(a->count(EventType::kSleep), 1u);
  EXPECT_EQ(b->count(EventType::kWake), 1u);
}

TEST(EventBus, ShardDrainOrderIsSlotOrderNotDepositOrder) {
  EventBus bus;
  auto ring = std::make_shared<RingBufferSink>(16);
  bus.add_sink(ring);
  bus.begin_shards(4);
  // Deposit out of order, as racing workers would.
  bus.emit_shard(3, make(EventType::kDemandReport, 3));
  bus.emit_shard(0, make(EventType::kDemandReport, 0));
  bus.emit_shard(2, make(EventType::kDemandReport, 2));
  bus.emit_shard(1, make(EventType::kDemandReport, 1));
  EXPECT_EQ(ring->events().size(), 0u) << "staged events leaked early";
  bus.end_shards();
  ASSERT_EQ(ring->events().size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring->events()[i].node, i);
  }
}

TEST(EventBus, ShardSlotKeepsWithinSlotOrderAndEmptySlotsAreFine) {
  EventBus bus;
  auto ring = std::make_shared<RingBufferSink>(16);
  bus.add_sink(ring);
  bus.begin_shards(3);
  bus.emit_shard(2, make(EventType::kDemandReport, 2, 1.0));
  bus.emit_shard(2, make(EventType::kDemandReport, 2, 2.0));
  bus.end_shards();
  ASSERT_EQ(ring->events().size(), 2u);
  EXPECT_EQ(ring->events()[0].value, 1.0);
  EXPECT_EQ(ring->events()[1].value, 2.0);
}

TEST(EventBus, CountsEmittedEventsInRegistry) {
  EventBus bus;
  bus.add_sink(std::make_shared<CountingSink>());
  bus.emit(make(EventType::kMigration, 0));
  bus.begin_shards(2);
  bus.emit_shard(1, make(EventType::kDemandReport, 1));
  bus.end_shards();
  EXPECT_EQ(bus.metrics().snapshot().counter_or_zero("obs.events_emitted"),
            2u);
}

TEST(RingBufferSink, EvictsOldestBeyondCapacity) {
  RingBufferSink ring(2);
  ring.on_event(make(EventType::kDrop, 1));
  ring.on_event(make(EventType::kDrop, 2));
  ring.on_event(make(EventType::kDrop, 3));
  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.events()[0].node, 2u);
  EXPECT_EQ(ring.events()[1].node, 3u);
  EXPECT_EQ(ring.total_seen(), 3u);
}

TEST(JsonlTraceSink, WritesHeaderAndOneLinePerEvent) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  sink.on_event(make(EventType::kMigration, 5, 2.5));
  sink.flush();
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"migration\""), std::string::npos);
  EXPECT_EQ(sink.lines_written(), 1u);
  // Header + one event line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(EventNames, StableIdentifiers) {
  EXPECT_STREQ(to_string(EventType::kBudgetDirective), "budget_directive");
  EXPECT_STREQ(to_string(EventType::kLinkMessage), "link_message");
  EXPECT_STREQ(to_string(Reason::kSupplyDeficit), "supply_deficit");
  EXPECT_STREQ(to_string(Reason::kShedding), "shedding");
  EXPECT_STREQ(to_string(LinkDirection::kDown), "down");
}

TEST(BusLogSink, RoutesLogLinesAsEvents) {
  EventBus bus;
  auto ring = std::make_shared<RingBufferSink>(8);
  bus.add_sink(ring);
  BusLogSink bridge(&bus, util::LogLevel::kInfo);
  auto* previous = util::set_log_sink(&bridge);
  WILLOW_INFO() << "narrative line";
  WILLOW_DEBUG() << "suppressed";
  util::set_log_sink(previous);
  ASSERT_EQ(ring->events().size(), 1u);
  EXPECT_EQ(ring->events()[0].type, EventType::kLog);
  EXPECT_EQ(ring->events()[0].text, "narrative line");
  EXPECT_EQ(ring->events()[0].value,
            static_cast<double>(util::LogLevel::kInfo));
  // After restoring, macros no longer reach the bus.
  WILLOW_INFO() << "after restore";
  EXPECT_EQ(ring->events().size(), 1u);
}

}  // namespace
}  // namespace willow::obs
