// MetricsRegistry: get-or-create semantics, instrument behaviour, and the
// deterministic (name-sorted) snapshot.
#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.h"

namespace willow::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  auto& c = reg.counter("a");
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Get-or-create returns the same instrument.
  EXPECT_EQ(reg.counter("a").value(), 42u);
}

TEST(Metrics, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(-2.5);
  EXPECT_EQ(reg.gauge("g").value(), -2.5);
}

TEST(Metrics, HistogramBucketsAndSum) {
  MetricsRegistry reg;
  auto& h = reg.histogram("h", {1.0, 4.0});
  h.observe(0.5);   // bucket <=1
  h.observe(2.0);   // bucket <=4
  h.observe(100.0); // +inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 102.5);
  const auto cum = h.cumulative_counts();
  ASSERT_EQ(cum.size(), 3u);  // two bounds + inf
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[1], 2u);
  EXPECT_EQ(cum[2], 3u);
}

TEST(Metrics, HistogramBoundsOnlyConsultedOnFirstRegistration) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  auto& again = reg.histogram("h", {99.0});
  EXPECT_EQ(again.upper_bounds().size(), 2u);
  EXPECT_EQ(again.count(), 1u);
}

TEST(Metrics, TimerAccumulatesViaScopedTimer) {
  MetricsRegistry reg;
  auto& t = reg.timer("t");
  {
    ScopedTimer s(&t);
  }
  {
    ScopedTimer s(&t);
  }
  EXPECT_EQ(t.count(), 2u);
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
  EXPECT_THROW(reg.timer("x"), std::logic_error);
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zebra").increment();
  reg.counter("alpha").increment(2);
  reg.gauge("mid").set(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zebra");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counter_or_zero("zebra"), 1u);
  EXPECT_EQ(snap.counter_or_zero("missing"), 0u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

}  // namespace
}  // namespace willow::obs
