// The tentpole contract of the observability layer: a JSONL trace is a pure
// function of the scenario — byte-identical whether the tick engine runs
// serially or sharded across a pool.  Also checks the paper's Property 3 on
// the evented control traffic: at most two control messages cross a PMU link
// per demand period (one report up, one directive down).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/sink.h"
#include "sim/simulation.h"

namespace willow::sim {
namespace {

using namespace willow::util::literals;

SimConfig base_config(double utilization, unsigned long long seed) {
  SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = utilization;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = seed;
  return cfg;
}

std::string trace_of(SimConfig cfg, std::size_t threads) {
  std::ostringstream os;
  cfg.threads = threads;
  cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(os));
  run_simulation(std::move(cfg));
  return os.str();
}

void expect_trace_byte_identical(const SimConfig& cfg) {
  const std::string serial = trace_of(cfg, 1);
  const std::string sharded = trace_of(cfg, 4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded)
      << "JSONL trace depends on the thread count; first divergence at byte "
      << std::mismatch(serial.begin(), serial.end(), sharded.begin(),
                       sharded.end())
                 .first -
             serial.begin();
}

TEST(TraceDeterminism, ChurnScenario) {
  auto cfg = base_config(0.6, 7);
  cfg.churn_probability = 0.1;
  cfg.report_loss_probability = 0.05;
  expect_trace_byte_identical(cfg);
}

TEST(TraceDeterminism, AmbientEventScenario) {
  auto cfg = base_config(0.5, 99);
  cfg.ambient_events.push_back({12, 0, 8, 45_degC});
  cfg.ambient_events.push_back({30, 0, 8, 25_degC});
  expect_trace_byte_identical(cfg);
}

TEST(TraceDeterminism, UpsSupplyScenario) {
  auto cfg = base_config(0.5, 5);
  std::vector<util::Watts> levels(50, 480_W);
  levels[25] = 150_W;
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);
  cfg.ups = power::Ups(util::Joules{600.0}, 300_W, 100_W, 1.0);
  expect_trace_byte_identical(cfg);
}

TEST(TraceDeterminism, TraceLineCountMatchesEmittedCounter) {
  auto cfg = base_config(0.6, 7);
  cfg.churn_probability = 0.1;
  std::ostringstream os;
  auto sink = std::make_shared<obs::JsonlTraceSink>(os);
  cfg.sinks.push_back(sink);
  const auto result = run_simulation(std::move(cfg));
  EXPECT_GT(sink->lines_written(), 0u);
  EXPECT_EQ(sink->lines_written(),
            result.metrics.counter_or_zero("obs.events_emitted"));
}

TEST(TraceProperty3, AtMostTwoLinkMessagesPerLinkPerTick) {
  // Stationary, supply-unconstrained scenario: no wakes re-run the supply
  // division mid-tick, so the evented link traffic must show the paper's
  // Property 3 exactly — per link and demand period, at most one report up
  // and one directive down.  Consolidation is disabled because sleeping
  // servers get woken again as demand regrows, and each wake re-divides
  // supply within the same period.
  auto cfg = base_config(0.4, 11);
  cfg.controller.consolidation_threshold = 0.0;
  auto ring = std::make_shared<obs::RingBufferSink>(1u << 22);
  cfg.sinks.push_back(ring);
  const auto result = run_simulation(std::move(cfg));
  ASSERT_EQ(result.controller_stats.wakes, 0u)
      << "scenario drifted: wakes re-divide supply and void the strict bound";

  std::map<std::pair<long, std::uint32_t>, int> up, down;
  for (const auto& e : ring->events()) {
    if (e.type != obs::EventType::kLinkMessage) continue;
    auto key = std::make_pair(e.tick, e.node);
    if (e.direction == obs::LinkDirection::kUp) {
      ++up[key];
    } else {
      ++down[key];
    }
  }
  EXPECT_FALSE(up.empty());
  for (const auto& [key, count] : up) {
    ASSERT_LE(count, 1) << "link " << key.second << " tick " << key.first;
  }
  for (const auto& [key, count] : down) {
    ASSERT_LE(count, 1) << "link " << key.second << " tick " << key.first;
    // Combined: never more than 2 messages on one link in one period.
    const auto it = up.find(key);
    ASSERT_LE((it != up.end() ? it->second : 0) + count, 2);
  }
}

}  // namespace
}  // namespace willow::sim
