#include <gtest/gtest.h>

#include "net/fabric.h"

namespace willow::net {
namespace {

using hier::NodeKind;
using hier::Tree;

struct Fixture {
  Tree tree{0.5};
  NodeId root, r0, r1;
  std::vector<NodeId> servers;

  Fixture() {
    root = tree.add_root("dc");
    r0 = tree.add_child(root, "r0", NodeKind::kRack);
    r1 = tree.add_child(root, "r1", NodeKind::kRack);
    for (NodeId rack : {r0, r1}) {
      for (int s = 0; s < 2; ++s) {
        servers.push_back(tree.add_child(rack, "srv", NodeKind::kServer));
      }
    }
  }
};

TEST(FlowTraffic, CoLocatedFlowsAreFree) {
  Fixture f;
  Fabric fabric(f.tree, FabricConfig{});
  fabric.begin_period();
  EXPECT_EQ(fabric.add_flow_traffic(f.servers[0], f.servers[0], 2.0), 0u);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r0).period_flow_traffic, 0.0);
}

TEST(FlowTraffic, IntraRackCrossesOneSwitch) {
  Fixture f;
  Fabric fabric(f.tree, FabricConfig{});
  fabric.begin_period();
  EXPECT_EQ(fabric.add_flow_traffic(f.servers[0], f.servers[1], 2.0), 1u);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r0).period_flow_traffic, 2.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.root).period_flow_traffic, 0.0);
  // No migration cost for steady flows.
  EXPECT_DOUBLE_EQ(fabric.stats(f.r0).period_migration_cost.value(), 0.0);
}

TEST(FlowTraffic, CrossRackClimbsThroughRoot) {
  Fixture f;
  Fabric fabric(f.tree, FabricConfig{});
  fabric.begin_period();
  EXPECT_EQ(fabric.add_flow_traffic(f.servers[0], f.servers[2], 1.0), 3u);
  for (NodeId g : {f.r0, f.root, f.r1}) {
    EXPECT_DOUBLE_EQ(fabric.stats(g).period_flow_traffic, 1.0) << g;
  }
}

TEST(FlowTraffic, CountsSeparatelyFromMigrations) {
  Fixture f;
  Fabric fabric(f.tree, FabricConfig{});
  fabric.begin_period();
  fabric.add_flow_traffic(f.servers[0], f.servers[1], 1.0);
  fabric.add_migration(f.servers[0], f.servers[1], 2.0);
  const auto& s = fabric.stats(f.r0);
  EXPECT_DOUBLE_EQ(s.period_flow_traffic, 1.0);
  EXPECT_DOUBLE_EQ(s.period_migration_traffic, 2.0);
  EXPECT_DOUBLE_EQ(s.period_traffic, 3.0);
  EXPECT_DOUBLE_EQ(s.total_flow_traffic, 1.0);
  fabric.begin_period();
  EXPECT_DOUBLE_EQ(fabric.stats(f.r0).period_flow_traffic, 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r0).total_flow_traffic, 1.0);
}

TEST(FlowTraffic, RejectsNegativeUnits) {
  Fixture f;
  Fabric fabric(f.tree, FabricConfig{});
  EXPECT_THROW(fabric.add_flow_traffic(f.servers[0], f.servers[1], -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace willow::net
