#include "net/fabric.h"

#include <gtest/gtest.h>

namespace willow::net {
namespace {

using namespace willow::util::literals;
using hier::NodeKind;
using hier::Tree;

/// Fig.-8-style fabric over a 2-zone, 2-racks-each, 2-servers-each tree.
struct Fixture {
  Tree tree{0.5};
  NodeId root, z0, z1, r00, r01, r10, r11;
  std::vector<NodeId> servers;  // 8, in order

  Fixture() {
    root = tree.add_root("dc");
    z0 = tree.add_child(root, "z0");
    z1 = tree.add_child(root, "z1");
    r00 = tree.add_child(z0, "r00", NodeKind::kRack);
    r01 = tree.add_child(z0, "r01", NodeKind::kRack);
    r10 = tree.add_child(z1, "r10", NodeKind::kRack);
    r11 = tree.add_child(z1, "r11", NodeKind::kRack);
    for (NodeId rack : {r00, r01, r10, r11}) {
      for (int s = 0; s < 2; ++s) {
        servers.push_back(tree.add_child(rack, "srv", NodeKind::kServer));
      }
    }
  }

  FabricConfig config() {
    FabricConfig cfg;
    cfg.redundancy = 2;
    cfg.switch_capacity = 10.0;
    cfg.migration_cost_w_per_unit = 2.0;
    return cfg;
  }
};

TEST(Fabric, ValidatesConfig) {
  Fixture f;
  FabricConfig bad = f.config();
  bad.redundancy = 0;
  EXPECT_THROW(Fabric(f.tree, bad), std::invalid_argument);
  bad = f.config();
  bad.switch_capacity = 0.0;
  EXPECT_THROW(Fabric(f.tree, bad), std::invalid_argument);
}

TEST(Fabric, MirrorsInternalNodes) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  // 1 root + 2 zones + 4 racks have switch groups; servers do not.
  EXPECT_EQ(fabric.groups().size(), 7u);
  EXPECT_THROW(fabric.stats(f.servers[0]), std::out_of_range);
}

TEST(Fabric, Level1GroupsAreRacks) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  const auto l1 = fabric.level1_groups();
  ASSERT_EQ(l1.size(), 4u);
  EXPECT_EQ(l1[0], f.r00);
  EXPECT_EQ(l1[3], f.r11);
}

TEST(Fabric, ServerTrafficDepositsAlongRootPath) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 0.8);  // under r00 in z0
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_traffic, 0.8);
  EXPECT_DOUBLE_EQ(fabric.stats(f.z0).period_traffic, 0.8);
  EXPECT_DOUBLE_EQ(fabric.stats(f.root).period_traffic, 0.8);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r01).period_traffic, 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.z1).period_traffic, 0.0);
}

TEST(Fabric, NegativeTrafficRejected) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  EXPECT_THROW(fabric.add_server_traffic(f.servers[0], -0.1),
               std::invalid_argument);
  EXPECT_THROW(fabric.add_migration(f.servers[0], f.servers[1], -0.1),
               std::invalid_argument);
}

TEST(Fabric, IntraRackMigrationTouchesOnlyRackSwitch) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  const auto hops = fabric.add_migration(f.servers[0], f.servers[1], 1.5);
  EXPECT_EQ(hops, 1u);  // LCA is the rack itself
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_migration_traffic, 1.5);
  EXPECT_DOUBLE_EQ(fabric.stats(f.z0).period_migration_traffic, 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.root).period_migration_traffic, 0.0);
}

TEST(Fabric, CrossZoneMigrationClimbsToRoot) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  // servers[0] under r00/z0; servers[6] under r11/z1.
  const auto hops = fabric.add_migration(f.servers[0], f.servers[6], 1.0);
  EXPECT_EQ(hops, 5u);  // r00, z0, root, z1, r11
  for (NodeId g : {f.r00, f.z0, f.root, f.z1, f.r11}) {
    EXPECT_DOUBLE_EQ(fabric.stats(g).period_migration_traffic, 1.0) << g;
  }
  for (NodeId g : {f.r01, f.r10}) {
    EXPECT_DOUBLE_EQ(fabric.stats(g).period_migration_traffic, 0.0) << g;
  }
}

TEST(Fabric, CrossRackSameZone) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  const auto hops = fabric.add_migration(f.servers[0], f.servers[2], 1.0);
  EXPECT_EQ(hops, 3u);  // r00, z0, r01
  EXPECT_DOUBLE_EQ(fabric.stats(f.root).period_migration_traffic, 0.0);
}

TEST(Fabric, MigrationCostProportionalToPayload) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  fabric.add_migration(f.servers[0], f.servers[1], 3.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_migration_cost.value(),
                   2.0 * 3.0);
  EXPECT_DOUBLE_EQ(fabric.total_migration_cost().value(), 6.0);
}

TEST(Fabric, BeginPeriodResetsPeriodNotTotals) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 1.0);
  fabric.add_migration(f.servers[0], f.servers[1], 2.0);
  fabric.begin_period();
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_traffic, 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_migration_traffic, 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).period_migration_cost.value(), 0.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).total_traffic, 3.0);
  EXPECT_DOUBLE_EQ(fabric.stats(f.r00).total_migration_traffic, 2.0);
}

TEST(Fabric, RedundancySplitsLoadEvenly) {
  // Sec. V-B5: "the load is balanced evenly between the switches".
  Fixture f;
  Fabric fabric(f.tree, f.config());  // redundancy 2
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 4.0);
  const auto& model = fabric.config().power;
  // Per-switch power sees half the traffic.
  EXPECT_DOUBLE_EQ(fabric.switch_power(f.r00).value(),
                   model.power(2.0).value());
  EXPECT_DOUBLE_EQ(fabric.group_power(f.r00).value(),
                   2.0 * model.power(2.0).value());
}

TEST(Fabric, UtilizationAgainstGroupCapacity) {
  Fixture f;
  Fabric fabric(f.tree, f.config());  // capacity 10 x redundancy 2 = 20
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 5.0);
  EXPECT_DOUBLE_EQ(fabric.utilization(f.r00), 0.25);
}

TEST(Fabric, NormalizedMigrationTrafficAcrossFabric) {
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  EXPECT_DOUBLE_EQ(fabric.normalized_migration_traffic(), 0.0);
  fabric.add_migration(f.servers[0], f.servers[1], 7.0);  // 1 group crossed
  // Total capacity = 7 groups * 2 switches * 10 = 140.
  EXPECT_NEAR(fabric.normalized_migration_traffic(), 7.0 / 140.0, 1e-12);
}

TEST(Fabric, SingleRackTreeRoutesThroughRoot) {
  // A flat hierarchy: the root is the only switch group.
  Tree tree(0.5);
  const NodeId root = tree.add_root("dc");
  const NodeId a = tree.add_child(root, "a", NodeKind::kServer);
  const NodeId b = tree.add_child(root, "b", NodeKind::kServer);
  Fabric fabric(tree, FabricConfig{});
  EXPECT_EQ(fabric.groups().size(), 1u);
  EXPECT_EQ(fabric.level1_groups().size(), 1u);
  fabric.begin_period();
  EXPECT_EQ(fabric.add_migration(a, b, 1.0), 1u);
  EXPECT_DOUBLE_EQ(fabric.stats(root).period_migration_traffic, 1.0);
}

TEST(Fabric, RedundancyOneCarriesFullLoadPerSwitch) {
  Fixture f;
  FabricConfig cfg = f.config();
  cfg.redundancy = 1;
  Fabric fabric(f.tree, cfg);
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 4.0);
  EXPECT_DOUBLE_EQ(fabric.switch_power(f.r00).value(),
                   cfg.power.power(4.0).value());
  EXPECT_DOUBLE_EQ(fabric.group_power(f.r00).value(),
                   fabric.switch_power(f.r00).value());
  // Capacity normalization shrinks accordingly.
  EXPECT_DOUBLE_EQ(fabric.utilization(f.r00), 4.0 / 10.0);
}

TEST(Fabric, OversubscriptionShowsAboveUnityUtilization) {
  Fixture f;
  Fabric fabric(f.tree, f.config());  // capacity 10 x 2
  fabric.begin_period();
  fabric.add_server_traffic(f.servers[0], 50.0);
  EXPECT_GT(fabric.utilization(f.r00), 1.0);
}

TEST(Fabric, SelfMigrationIsDegenerate) {
  // from == to: the path is just the server's parent switch (LCA = rack).
  Fixture f;
  Fabric fabric(f.tree, f.config());
  fabric.begin_period();
  const auto hops = fabric.add_migration(f.servers[0], f.servers[0], 1.0);
  EXPECT_EQ(hops, 1u);
}

}  // namespace
}  // namespace willow::net
