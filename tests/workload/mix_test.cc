#include "workload/mix.h"

#include <gtest/gtest.h>

#include <set>

#include "util/stats.h"

namespace willow::workload {
namespace {

using namespace willow::util::literals;

MixConfig paper_mix(double target_w) {
  MixConfig cfg;
  cfg.unit_power = 10_W;
  cfg.target_mean_per_server = util::Watts{target_w};
  return cfg;
}

TEST(Mix, ValidatesInputs) {
  AppIdAllocator ids;
  util::Rng rng(1);
  MixConfig cfg = paper_mix(100.0);
  cfg.unit_power = Watts{0.0};
  EXPECT_THROW(build_mix(cfg, ids, rng), std::invalid_argument);
  std::vector<AppClass> empty;
  cfg = paper_mix(100.0);
  cfg.catalog = &empty;
  EXPECT_THROW(build_mix(cfg, ids, rng), std::invalid_argument);
}

TEST(Mix, ServerHostsAtLeastOneApp) {
  AppIdAllocator ids;
  util::Rng rng(2);
  // Target below even the smallest app: still one app placed.
  const auto apps = build_mix(paper_mix(0.1), ids, rng);
  EXPECT_GE(apps.size(), 1u);
}

TEST(Mix, TotalMeanNearTarget) {
  AppIdAllocator ids;
  util::Rng rng(3);
  util::RunningStats err;
  for (int i = 0; i < 200; ++i) {
    const auto apps = build_mix(paper_mix(200.0), ids, rng);
    err.add(total_mean_power(apps).value() - 200.0);
  }
  // Bias well within half of the largest app (45 W at unit 10).
  EXPECT_LT(std::abs(err.mean()), 25.0);
  EXPECT_LT(err.max(), 46.0);
}

TEST(Mix, AppMeansComeFromCatalog) {
  AppIdAllocator ids;
  util::Rng rng(4);
  const std::set<double> allowed{10.0, 20.0, 50.0, 90.0};
  const auto apps = build_mix(paper_mix(300.0), ids, rng);
  for (const auto& a : apps) {
    EXPECT_TRUE(allowed.contains(a.mean_power().value()))
        << a.mean_power().value();
  }
}

TEST(Mix, UsesAllClassesAcrossManyBuilds) {
  AppIdAllocator ids;
  util::Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 50; ++i) {
    for (const auto& a : build_mix(paper_mix(150.0), ids, rng)) {
      seen.insert(a.class_index());
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Mix, ImageSizeScalesWithClass) {
  AppIdAllocator ids;
  util::Rng rng(6);
  MixConfig cfg = paper_mix(300.0);
  cfg.image_per_unit = 512_MB;
  for (const auto& a : build_mix(cfg, ids, rng)) {
    const double rel = a.mean_power().value() / 10.0;
    EXPECT_DOUBLE_EQ(a.image_size().value(), 512.0 * rel);
  }
}

TEST(Mix, DatacenterMixHasUniqueIds) {
  AppIdAllocator ids;
  util::Rng rng(7);
  const auto mixes = build_datacenter_mix(paper_mix(150.0), 18, ids, rng);
  ASSERT_EQ(mixes.size(), 18u);
  std::set<AppId> all;
  for (const auto& server : mixes) {
    for (const auto& a : server) {
      EXPECT_TRUE(all.insert(a.id()).second) << "duplicate app id " << a.id();
    }
  }
}

TEST(Mix, Totals) {
  std::vector<Application> apps;
  apps.emplace_back(1, 0, 10_W, 512_MB);
  apps.emplace_back(2, 1, 20_W, 512_MB);
  apps.back().set_demand(25_W);
  EXPECT_DOUBLE_EQ(total_mean_power(apps).value(), 30.0);
  EXPECT_DOUBLE_EQ(total_demand(apps).value(), 35.0);
  apps.back().set_dropped(true);
  EXPECT_DOUBLE_EQ(total_demand(apps).value(), 10.0);
}

TEST(Mix, DeterministicForSeed) {
  AppIdAllocator ids_a, ids_b;
  util::Rng rng_a(11), rng_b(11);
  const auto a = build_mix(paper_mix(200.0), ids_a, rng_a);
  const auto b = build_mix(paper_mix(200.0), ids_b, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_index(), b[i].class_index());
  }
}

}  // namespace
}  // namespace willow::workload
