#include "workload/demand.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace willow::workload {
namespace {

using namespace willow::util::literals;

TEST(PoissonDemand, RejectsNonPositiveQuantum) {
  EXPECT_THROW(PoissonDemand(Watts{0.0}), std::invalid_argument);
  EXPECT_THROW(PoissonDemand(Watts{-1.0}), std::invalid_argument);
}

TEST(PoissonDemand, ZeroMeanSamplesZero) {
  PoissonDemand d(2_W);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(Watts{0.0}, rng).value(), 0.0);
}

TEST(PoissonDemand, SamplesAreQuantumMultiples) {
  PoissonDemand d(Watts{2.5});
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double v = d.sample(50_W, rng).value();
    const double q = v / 2.5;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(PoissonDemand, MeanMatchesTarget) {
  PoissonDemand d(2_W);
  util::Rng rng(3);
  util::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(d.sample(50_W, rng).value());
  EXPECT_NEAR(s.mean(), 50.0, 0.5);
}

TEST(PoissonDemand, VarianceScalesWithQuantum) {
  // Var = q * mean: bigger quanta => burstier demand.
  util::Rng rng(4);
  util::RunningStats fine, coarse;
  PoissonDemand fine_d(1_W), coarse_d(10_W);
  for (int i = 0; i < 20000; ++i) {
    fine.add(fine_d.sample(50_W, rng).value());
    coarse.add(coarse_d.sample(50_W, rng).value());
  }
  EXPECT_NEAR(fine.variance(), 50.0, 5.0);
  EXPECT_NEAR(coarse.variance(), 500.0, 50.0);
}

TEST(PoissonDemand, RefreshSkipsDroppedApps) {
  PoissonDemand d(2_W);
  util::Rng rng(5);
  Application a(1, 0, 50_W, 512_MB);
  a.set_dropped(true);
  d.refresh(a, rng);
  EXPECT_DOUBLE_EQ(a.demand().value(), 0.0);
}

TEST(PoissonDemand, RefreshAllTouchesEveryApp) {
  PoissonDemand d(1_W);
  util::Rng rng(6);
  std::vector<Application> apps;
  for (AppId id = 1; id <= 20; ++id) apps.emplace_back(id, 0, 100_W, 512_MB);
  d.refresh_all(apps, rng);
  int changed = 0;
  for (const auto& a : apps) {
    if (a.demand().value() != 100.0) ++changed;
  }
  // With quantum 1 and mean 100, staying exactly at 100 for many apps is
  // vanishingly unlikely.
  EXPECT_GT(changed, 10);
}

TEST(ConstantDemand, RestoresMean) {
  Application a(1, 0, 50_W, 512_MB);
  a.set_demand(10_W);
  ConstantDemand::refresh(a);
  EXPECT_DOUBLE_EQ(a.demand().value(), 50.0);
}

TEST(ConstantDemand, DroppedAppDemandsNothing) {
  Application a(1, 0, 50_W, 512_MB);
  a.set_dropped(true);
  ConstantDemand::refresh(a);
  EXPECT_DOUBLE_EQ(a.demand().value(), 0.0);
}

class PoissonMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanSweep, MeanTracksAcrossMagnitudes) {
  const double mean = GetParam();
  PoissonDemand d(1_W);
  util::Rng rng(42);
  util::RunningStats s;
  for (int i = 0; i < 10000; ++i) s.add(d.sample(Watts{mean}, rng).value());
  EXPECT_NEAR(s.mean(), mean, std::max(0.5, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanSweep,
                         ::testing::Values(1.0, 5.0, 20.0, 90.0, 400.0));

}  // namespace
}  // namespace willow::workload
