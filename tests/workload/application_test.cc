#include "workload/application.h"

#include <gtest/gtest.h>

namespace willow::workload {
namespace {

using namespace willow::util::literals;

TEST(Catalogs, SimulationCatalogMatchesPaper) {
  // Sec. V-B1: relative average power requirements 1, 2, 5, 9.
  const auto& cat = simulation_catalog();
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_DOUBLE_EQ(cat[0].relative_power, 1.0);
  EXPECT_DOUBLE_EQ(cat[1].relative_power, 2.0);
  EXPECT_DOUBLE_EQ(cat[2].relative_power, 5.0);
  EXPECT_DOUBLE_EQ(cat[3].relative_power, 9.0);
}

TEST(Catalogs, TestbedCatalogMatchesTableII) {
  // Table II: A1 = 8 W, A2 = 10 W, A3 = 15 W.
  const auto& cat = testbed_catalog();
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_EQ(cat[0].name, "A1");
  EXPECT_DOUBLE_EQ(cat[0].relative_power, 8.0);
  EXPECT_EQ(cat[1].name, "A2");
  EXPECT_DOUBLE_EQ(cat[1].relative_power, 10.0);
  EXPECT_EQ(cat[2].name, "A3");
  EXPECT_DOUBLE_EQ(cat[2].relative_power, 15.0);
}

TEST(Application, RejectsInvalidConstruction) {
  EXPECT_THROW(Application(kInvalidApp, 0, 10_W, 512_MB),
               std::invalid_argument);
  EXPECT_THROW(Application(1, 0, Watts{-1.0}, 512_MB), std::invalid_argument);
}

TEST(Application, InitialDemandEqualsMean) {
  Application a(1, 2, 50_W, 512_MB);
  EXPECT_DOUBLE_EQ(a.demand().value(), 50.0);
  EXPECT_DOUBLE_EQ(a.mean_power().value(), 50.0);
  EXPECT_EQ(a.class_index(), 2u);
  EXPECT_DOUBLE_EQ(a.image_size().value(), 512.0);
}

TEST(Application, DemandIsMutable) {
  Application a(1, 0, 50_W, 512_MB);
  a.set_demand(62_W);
  EXPECT_DOUBLE_EQ(a.demand().value(), 62.0);
}

TEST(Application, DropFlagAndMigrationStamp) {
  Application a(1, 0, 50_W, 512_MB);
  EXPECT_FALSE(a.dropped());
  a.set_dropped(true);
  EXPECT_TRUE(a.dropped());
  EXPECT_DOUBLE_EQ(a.last_migrated_at(), -1.0);
  a.set_last_migrated_at(17.0);
  EXPECT_DOUBLE_EQ(a.last_migrated_at(), 17.0);
}

TEST(AppIdAllocator, MonotonicAndNonZero) {
  AppIdAllocator ids;
  const AppId first = ids.next();
  EXPECT_NE(first, kInvalidApp);
  AppId prev = first;
  for (int i = 0; i < 100; ++i) {
    const AppId next = ids.next();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

}  // namespace
}  // namespace willow::workload
