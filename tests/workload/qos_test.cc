#include "workload/qos.h"

#include <gtest/gtest.h>

namespace willow::workload {
namespace {

TEST(ResponseInflation, MM1Formula) {
  EXPECT_DOUBLE_EQ(response_inflation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(response_inflation(0.5), 2.0);
  EXPECT_DOUBLE_EQ(response_inflation(0.8), 5.0);
  EXPECT_NEAR(response_inflation(0.9), 10.0, 1e-12);
}

TEST(ResponseInflation, OverloadSaturates) {
  EXPECT_DOUBLE_EQ(response_inflation(1.0), 100.0);
  EXPECT_DOUBLE_EQ(response_inflation(5.0), 100.0);
  EXPECT_DOUBLE_EQ(response_inflation(0.999, 50.0), 50.0);
}

TEST(ResponseInflation, Validation) {
  EXPECT_THROW((void)response_inflation(-0.1), std::invalid_argument);
  EXPECT_THROW((void)response_inflation(0.5, 0.5), std::invalid_argument);
}

TEST(ResponseInflation, MonotoneInUtilization) {
  double prev = 0.0;
  for (double rho = 0.0; rho < 1.0; rho += 0.05) {
    const double r = response_inflation(rho);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(SlaUtilizationLimit, InverseOfInflation) {
  // SLA 5x => may run to 80%.
  EXPECT_DOUBLE_EQ(sla_utilization_limit(5.0), 0.8);
  EXPECT_DOUBLE_EQ(sla_utilization_limit(2.0), 0.5);
  // Consistency: inflation at the limit equals the SLA.
  for (double sla : {1.5, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(response_inflation(sla_utilization_limit(sla)), sla, 1e-9);
  }
  EXPECT_THROW((void)sla_utilization_limit(1.0), std::invalid_argument);
}

TEST(SlaTracker, Validation) {
  EXPECT_THROW(SlaTracker(1.0), std::invalid_argument);
  SlaTracker t(5.0);
  EXPECT_THROW(t.record(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(t.record_denied(-1.0), std::invalid_argument);
}

TEST(SlaTracker, EmptyIsPerfect) {
  SlaTracker t(5.0);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 1.0);
  EXPECT_DOUBLE_EQ(t.mean_inflation(), 1.0);
}

TEST(SlaTracker, DemandWeightedSatisfaction) {
  SlaTracker t(5.0);  // limit = 80% utilization
  t.record(30.0, 0.5);   // meets
  t.record(10.0, 0.95);  // violates
  EXPECT_NEAR(t.satisfaction(), 30.0 / 40.0, 1e-12);
  EXPECT_EQ(t.samples(), 2u);
}

TEST(SlaTracker, DeniedDemandViolates) {
  SlaTracker t(5.0);
  t.record(50.0, 0.5);
  t.record_denied(50.0);
  EXPECT_NEAR(t.satisfaction(), 0.5, 1e-12);
}

TEST(SlaTracker, MeanInflationWeighted) {
  SlaTracker t(5.0);
  t.record(10.0, 0.0);  // inflation 1
  t.record(10.0, 0.5);  // inflation 2
  EXPECT_NEAR(t.mean_inflation(), 1.5, 1e-12);
}

TEST(SlaTracker, ResetClears) {
  SlaTracker t(5.0);
  t.record(10.0, 0.95);
  t.reset();
  EXPECT_DOUBLE_EQ(t.satisfaction(), 1.0);
  EXPECT_EQ(t.samples(), 0u);
}

TEST(SlaTracker, ZeroDemandRecordIgnored) {
  SlaTracker t(5.0);
  t.record(0.0, 0.99);
  EXPECT_EQ(t.samples(), 0u);
  EXPECT_DOUBLE_EQ(t.satisfaction(), 1.0);
}

}  // namespace
}  // namespace willow::workload
