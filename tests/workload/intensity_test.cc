#include "workload/intensity.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "workload/demand.h"

namespace willow::workload {
namespace {

using namespace willow::util::literals;
using util::Seconds;

TEST(ConstantIntensity, DefaultsToNominal) {
  ConstantIntensity c;
  EXPECT_DOUBLE_EQ(c.at(Seconds{0.0}), 1.0);
  EXPECT_DOUBLE_EQ(c.at(Seconds{1e9}), 1.0);
  EXPECT_THROW(ConstantIntensity(-0.1), std::invalid_argument);
}

TEST(DiurnalIntensity, Validation) {
  EXPECT_THROW(DiurnalIntensity(-1.0, 0.5, Seconds{24.0}),
               std::invalid_argument);
  EXPECT_THROW(DiurnalIntensity(1.0, -0.5, Seconds{24.0}),
               std::invalid_argument);
  EXPECT_THROW(DiurnalIntensity(1.0, 0.5, Seconds{0.0}),
               std::invalid_argument);
}

TEST(DiurnalIntensity, SineShape) {
  DiurnalIntensity d(1.0, 0.4, Seconds{24.0});
  EXPECT_NEAR(d.at(Seconds{0.0}), 1.0, 1e-12);
  EXPECT_NEAR(d.at(Seconds{6.0}), 1.4, 1e-12);   // quarter period peak
  EXPECT_NEAR(d.at(Seconds{18.0}), 0.6, 1e-12);  // trough
  EXPECT_NEAR(d.at(Seconds{24.0}), 1.0, 1e-9);   // periodic
}

TEST(DiurnalIntensity, PhaseShiftsAndClamping) {
  DiurnalIntensity shifted(1.0, 0.4, Seconds{24.0}, Seconds{6.0});
  EXPECT_NEAR(shifted.at(Seconds{12.0}), 1.4, 1e-12);
  DiurnalIntensity deep(0.2, 1.0, Seconds{24.0});
  EXPECT_DOUBLE_EQ(deep.at(Seconds{18.0}), 0.0);  // clamped at zero
}

TEST(TraceIntensity, Validation) {
  EXPECT_THROW(TraceIntensity({}, Seconds{1.0}), std::invalid_argument);
  EXPECT_THROW(TraceIntensity({1.0}, Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(TraceIntensity({1.0, -0.5}, Seconds{1.0}),
               std::invalid_argument);
}

TEST(TraceIntensity, StepsAndPersistence) {
  TraceIntensity t({0.5, 1.0, 1.5}, Seconds{2.0});
  EXPECT_DOUBLE_EQ(t.at(Seconds{-1.0}), 0.5);
  EXPECT_DOUBLE_EQ(t.at(Seconds{0.0}), 0.5);
  EXPECT_DOUBLE_EQ(t.at(Seconds{2.0}), 1.0);
  EXPECT_DOUBLE_EQ(t.at(Seconds{5.5}), 1.5);
  EXPECT_DOUBLE_EQ(t.at(Seconds{100.0}), 1.5);
}

TEST(IntensityDemand, ScalesPoissonMean) {
  PoissonDemand demand(1_W);
  util::Rng rng(9);
  Application app(1, 0, 40_W, 512_MB);
  util::RunningStats low, high;
  for (int i = 0; i < 5000; ++i) {
    demand.refresh(app, rng, 0.5);
    low.add(app.demand().value());
    demand.refresh(app, rng, 1.5);
    high.add(app.demand().value());
  }
  EXPECT_NEAR(low.mean(), 20.0, 0.5);
  EXPECT_NEAR(high.mean(), 60.0, 0.8);
}

TEST(IntensityDemand, NegativeIntensityRejected) {
  PoissonDemand demand(1_W);
  util::Rng rng(9);
  Application app(1, 0, 40_W, 512_MB);
  EXPECT_THROW(demand.refresh(app, rng, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace willow::workload
