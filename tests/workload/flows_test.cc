#include "workload/flows.h"

#include <gtest/gtest.h>

namespace willow::workload {
namespace {

TEST(FlowSet, ValidatesEndpoints) {
  FlowSet set;
  EXPECT_THROW(set.add({kInvalidApp, 2, 1.0}), std::invalid_argument);
  EXPECT_THROW(set.add({1, kInvalidApp, 1.0}), std::invalid_argument);
  EXPECT_THROW(set.add({3, 3, 1.0}), std::invalid_argument);
  EXPECT_THROW(set.add({1, 2, -1.0}), std::invalid_argument);
  EXPECT_NO_THROW(set.add({1, 2, 1.0}));
}

TEST(FlowSet, TotalsAndSize) {
  FlowSet set;
  EXPECT_TRUE(set.empty());
  set.add({1, 2, 1.5});
  set.add({2, 3, 0.5});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.total_units(), 2.0);
}

TEST(ChainFlows, WiresAdjacentPairs) {
  const auto set = chain_flows({{1, 2, 3}, {10, 11}}, 0.25);
  ASSERT_EQ(set.size(), 3u);  // (1,2), (2,3), (10,11)
  EXPECT_EQ(set.flows()[0].a, 1u);
  EXPECT_EQ(set.flows()[0].b, 2u);
  EXPECT_EQ(set.flows()[1].a, 2u);
  EXPECT_EQ(set.flows()[1].b, 3u);
  EXPECT_EQ(set.flows()[2].a, 10u);
  EXPECT_DOUBLE_EQ(set.total_units(), 0.75);
}

TEST(ChainFlows, SingletonAndEmptyGroupsProduceNothing) {
  const auto set = chain_flows({{1}, {}}, 0.25);
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace willow::workload
