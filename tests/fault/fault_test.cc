// willow_fault unit tests: config validation, per-link verdict determinism,
// and the per-server crash/sensor state machine (FaultPlane).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.h"
#include "fault/link_faults.h"
#include "fault/plane.h"
#include "util/thread_pool.h"

namespace willow::fault {
namespace {

TEST(FaultConfig, DefaultIsDisabledAndValid) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_FALSE(cfg.server_faults_enabled());
  EXPECT_FALSE(cfg.link.any());
  EXPECT_TRUE(cfg.validate("faults.").empty());
}

TEST(FaultConfig, EnabledFlagsTrackSources) {
  FaultConfig cfg;
  cfg.link.up_loss = 0.1;
  EXPECT_TRUE(cfg.enabled());
  EXPECT_FALSE(cfg.server_faults_enabled());

  FaultConfig crash;
  crash.crash_events.push_back({5, 0, 1, 3});
  EXPECT_TRUE(crash.server_faults_enabled());

  FaultConfig ups;
  ups.ups_failures.push_back({2, 4});
  EXPECT_TRUE(ups.enabled());
  EXPECT_FALSE(ups.server_faults_enabled());
}

TEST(FaultConfig, RejectsOutOfRangeKnobs) {
  FaultConfig cfg;
  cfg.link.up_loss = 1.5;
  cfg.power_sensor.dropout_probability = -0.2;
  cfg.crash_probability = 2.0;
  cfg.sensor_fault_mean_ticks = 0.5;
  cfg.crash_down_ticks = 0;
  cfg.crash_events.push_back({-1, 3, 1, 0});  // bad tick, range, down_ticks
  cfg.ups_failures.push_back({10, 5});
  const auto errors = cfg.validate("faults.");
  ASSERT_EQ(errors.size(), 9u);
  for (const auto& e : errors) {
    EXPECT_EQ(e.rfind("faults.", 0), 0u) << e;
  }
}

LinkFaultConfig half_half() {
  LinkFaultConfig link;
  link.up_loss = 0.3;
  link.up_delay = 0.3;
  link.up_duplicate = 0.3;
  link.down_loss = 0.3;
  link.down_duplicate = 0.3;
  return link;
}

TEST(LinkFaults, VerdictsAreAPureFunctionOfSeedTickNode) {
  LinkFaultModel a(half_half(), 77);
  LinkFaultModel b(half_half(), 77);
  LinkFaultModel other_seed(half_half(), 78);
  bool any_fault = false;
  bool seeds_differ = false;
  for (long tick = 0; tick < 200; ++tick) {
    a.set_tick(tick);
    b.set_tick(tick);
    other_seed.set_tick(tick);
    for (std::uint32_t node = 0; node < 8; ++node) {
      const auto ua = a.up(node);
      const auto ub = b.up(node);
      EXPECT_EQ(ua.lose, ub.lose);
      EXPECT_EQ(ua.defer, ub.defer);
      EXPECT_EQ(ua.duplicate, ub.duplicate);
      // One link, one fate per tick: a second ask returns the same verdict.
      const auto again = a.up(node);
      EXPECT_EQ(ua.lose, again.lose);
      EXPECT_EQ(ua.defer, again.defer);
      EXPECT_EQ(ua.duplicate, again.duplicate);
      const auto da = a.down(node);
      const auto db = b.down(node);
      EXPECT_EQ(da.lose, db.lose);
      EXPECT_EQ(da.duplicate, db.duplicate);
      any_fault |= ua.lose || ua.defer || ua.duplicate || da.lose;
      const auto uo = other_seed.up(node);
      seeds_differ |= uo.lose != ua.lose || uo.defer != ua.defer;
    }
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(seeds_differ);
}

TEST(LinkFaults, LossWinsAndDuplicateNeedsDelivery) {
  LinkFaultConfig link;
  link.up_loss = 1.0;
  link.up_delay = 1.0;
  link.up_duplicate = 1.0;
  link.down_loss = 1.0;
  link.down_duplicate = 1.0;
  LinkFaultModel m(link, 1);
  for (long tick = 0; tick < 10; ++tick) {
    m.set_tick(tick);
    const auto u = m.up(3);
    EXPECT_TRUE(u.lose);
    EXPECT_FALSE(u.defer);
    EXPECT_FALSE(u.duplicate);
    const auto d = m.down(3);
    EXPECT_TRUE(d.lose);
    EXPECT_FALSE(d.duplicate);
  }

  link.up_loss = 0.0;
  link.down_loss = 0.0;
  LinkFaultModel delivered(link, 1);
  delivered.set_tick(4);
  EXPECT_TRUE(delivered.up(3).defer);  // delay now wins over duplicate
  EXPECT_TRUE(delivered.down(3).duplicate);
}

TEST(LinkFaults, ZeroConfigNeverFaults) {
  LinkFaultModel m(LinkFaultConfig{}, 99);
  for (long tick = 0; tick < 50; ++tick) {
    m.set_tick(tick);
    const auto u = m.up(0);
    const auto d = m.down(0);
    EXPECT_FALSE(u.lose || u.defer || u.duplicate || d.lose || d.duplicate);
  }
}

/// Records the serial-phase callback sequence for comparison runs.
struct Recorder {
  std::vector<std::string> log;

  FaultPlane::Callbacks callbacks() {
    FaultPlane::Callbacks cb;
    cb.crash = [this](std::size_t i, long down) {
      log.push_back("crash " + std::to_string(i) + " for " +
                    std::to_string(down));
    };
    cb.restart = [this](std::size_t i) {
      log.push_back("restart " + std::to_string(i));
    };
    cb.sensor = [this](std::size_t i, const SensorOverride& o, bool temp) {
      log.push_back(std::string(temp ? "temp " : "power ") +
                    std::to_string(i) + " mode " +
                    std::to_string(static_cast<int>(o.mode)) + " param " +
                    std::to_string(o.param));
    };
    return cb;
  }
};

TEST(FaultPlane, ScheduledCrashAndRestart) {
  FaultConfig cfg;
  cfg.crash_events.push_back({3, 1, 2, 2});
  FaultPlane plane(cfg, 42, 4);
  Recorder rec;
  const auto cb = rec.callbacks();
  for (long tick = 0; tick <= 6; ++tick) plane.step(tick, nullptr, cb);
  EXPECT_EQ(rec.log, (std::vector<std::string>{
                         "crash 1 for 2",
                         "crash 2 for 2",
                         "restart 1",
                         "restart 2",
                     }));
  EXPECT_FALSE(plane.down(1));
  EXPECT_FALSE(plane.down(2));
}

TEST(FaultPlane, SkipCrashShieldsServer) {
  FaultConfig cfg;
  cfg.crash_probability = 1.0;
  cfg.crash_down_ticks = 2;
  FaultPlane plane(cfg, 42, 2);
  Recorder rec;
  auto cb = rec.callbacks();
  cb.skip_crash = [](std::size_t i) { return i == 0; };
  plane.step(0, nullptr, cb);
  EXPECT_FALSE(plane.down(0));
  EXPECT_TRUE(plane.down(1));
  EXPECT_EQ(rec.log, (std::vector<std::string>{"crash 1 for 2"}));
}

TEST(FaultPlane, SensorEpisodesOnsetAndExpire) {
  FaultConfig cfg;
  cfg.power_sensor.dropout_probability = 1.0;
  cfg.temp_sensor.bias_probability = 1.0;
  cfg.temp_sensor.bias = 3.5;
  cfg.sensor_fault_mean_ticks = 1.0;  // every episode lasts exactly one tick
  FaultPlane plane(cfg, 42, 1);
  Recorder rec;
  const auto cb = rec.callbacks();
  plane.step(0, nullptr, cb);
  EXPECT_EQ(plane.power_episode(0).mode, SensorMode::kDropout);
  EXPECT_EQ(plane.temp_episode(0).mode, SensorMode::kBias);
  EXPECT_DOUBLE_EQ(plane.temp_episode(0).param, 3.5);
  // Tick 1: both expire (recovery callbacks), then re-onset immediately.
  rec.log.clear();
  plane.step(1, nullptr, cb);
  EXPECT_EQ(rec.log, (std::vector<std::string>{
                         "power 0 mode 0 param 0.000000",
                         "power 0 mode 3 param 0.000000",
                         "temp 0 mode 0 param 0.000000",
                         "temp 0 mode 2 param 3.500000",
                     }));
}

TEST(FaultPlane, StuckOnsetLeavesParamForCaller) {
  FaultConfig cfg;
  cfg.power_sensor.stuck_probability = 1.0;
  FaultPlane plane(cfg, 42, 1);
  Recorder rec;
  const auto cb = rec.callbacks();
  plane.step(0, nullptr, cb);
  ASSERT_EQ(rec.log.size(), 1u);
  // kStuck == 1; param 0 means "capture the live plant reading".
  EXPECT_EQ(rec.log[0], "power 0 mode 1 param 0.000000");
}

TEST(FaultPlane, CallbackSequenceIndependentOfThreadCount) {
  FaultConfig cfg;
  cfg.crash_probability = 0.05;
  cfg.crash_down_ticks = 3;
  cfg.power_sensor.stuck_probability = 0.05;
  cfg.power_sensor.dropout_probability = 0.05;
  cfg.temp_sensor.bias_probability = 0.05;
  cfg.temp_sensor.bias = 2.0;
  cfg.crash_events.push_back({7, 0, 5, 2});

  Recorder serial;
  {
    FaultPlane plane(cfg, 1234, 24);
    const auto cb = serial.callbacks();
    for (long tick = 0; tick < 40; ++tick) plane.step(tick, nullptr, cb);
  }
  Recorder pooled;
  {
    util::ThreadPool pool(4);
    FaultPlane plane(cfg, 1234, 24);
    const auto cb = pooled.callbacks();
    for (long tick = 0; tick < 40; ++tick) plane.step(tick, &pool, cb);
  }
  EXPECT_FALSE(serial.log.empty());
  EXPECT_EQ(serial.log, pooled.log);
}

}  // namespace
}  // namespace willow::fault
