#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel tick engine: builds the tsan preset
# and runs the tests that exercise sharded phases and the thread pool, plus
# the shadow-diff equivalence suite (incremental vs full control plane under
# churn / ambient events / UPS, with every skip re-derived and checked).
#
#   scripts/tsan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target determinism_test trace_determinism_test scale_determinism_test \
  thread_pool_test thread_pool_stress_test simulation_test churn_test \
  shadow_diff_test
ctest --test-dir build-tsan --output-on-failure \
  -R '(determinism_test|thread_pool_test|simulation_test|churn_test)'
# Batch-engine race stress (forced worker dispatch, long contended
# schedules) — the tests TSan is pointed at by design.
ctest --test-dir build-tsan --output-on-failure -L tsan
ctest --test-dir build-tsan --output-on-failure -L shadow-diff
