#!/usr/bin/env bash
# Bench regression gate for the data-plane scaling benchmark.
#
#   scripts/check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]
#
# Compares best-of-fleet ticks-per-second per fleet size (keyed on the
# "servers" field, so scenario renames between runs don't break the gate)
# against a baseline BENCH_dataplane_scaling.json.  Fails if the candidate
# regresses more than <max_pct> percent (default 10) at the 1k or 10k fleet;
# the 100k fleet is reported but not gated (its absolute floor is asserted by
# the PR that moves it, not per-run — a full 100k point takes minutes and is
# often skipped via --quick).
#
# With no explicit baseline, the committed copy is used (git show HEAD:...),
# so you can regenerate BENCH_dataplane_scaling.json in place and gate the
# working tree against the last commit.
set -euo pipefail

CANDIDATE="${1:?usage: check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]}"
BASELINE="${2:-}"
MAX_PCT="${3:-10}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ -z "$BASELINE" ]; then
  BASELINE="$tmp/baseline.json"
  if ! git -C "$ROOT" show HEAD:BENCH_dataplane_scaling.json > "$BASELINE" 2>/dev/null; then
    # Not committed yet (first run on a fresh branch): use the repo copy.
    cp "$ROOT/BENCH_dataplane_scaling.json" "$BASELINE"
    echo "bench-regression: no committed baseline, using working-tree copy"
  fi
fi

# Best (max) ticks_per_second among a file's points with the given "servers"
# value.  The JSON is produced by bench/common.h's writer, so the fields of
# one point always appear together between braces; prints 0 if absent.
best_tps() {  # best_tps <json-file> <servers>
  tr '}' '\n' < "$1" | awk -v want="$2" '
    match($0, /"servers":[0-9]+/) {
      s = substr($0, RSTART + 10, RLENGTH - 10) + 0
      if (s == want && match($0, /"ticks_per_second":[0-9.eE+-]+/)) {
        t = substr($0, RSTART + 19, RLENGTH - 19) + 0
        if (t > best) best = t
      }
    }
    END { printf "%.6f\n", best + 0 }'
}

fail=0
for fleet in 1000 10000; do
  base="$(best_tps "$BASELINE" "$fleet")"
  cand="$(best_tps "$CANDIDATE" "$fleet")"
  if awk -v b="$base" 'BEGIN { exit !(b <= 0) }'; then
    echo "bench-regression: no baseline point for servers=$fleet, skipping"
    continue
  fi
  if awk -v c="$cand" 'BEGIN { exit !(c <= 0) }'; then
    echo "FAIL: candidate has no point for servers=$fleet" >&2
    fail=1
    continue
  fi
  delta="$(awk -v b="$base" -v c="$cand" 'BEGIN { printf "%+.1f", (c/b - 1) * 100 }')"
  if awk -v b="$base" -v c="$cand" -v p="$MAX_PCT" \
       'BEGIN { exit !(c < b * (1 - p / 100)) }'; then
    echo "FAIL: servers=$fleet regressed ${delta}% (baseline ${base} tps, candidate ${cand} tps, limit -${MAX_PCT}%)" >&2
    fail=1
  else
    echo "ok: servers=$fleet ${delta}% (baseline ${base} tps, candidate ${cand} tps)"
  fi
done

# 100k: informational — report the ratio, never gate.
base100k="$(best_tps "$BASELINE" 100000)"
cand100k="$(best_tps "$CANDIDATE" 100000)"
if awk -v b="$base100k" -v c="$cand100k" 'BEGIN { exit !(b > 0 && c > 0) }'; then
  ratio="$(awk -v b="$base100k" -v c="$cand100k" 'BEGIN { printf "%.1f", c / b }')"
  echo "info: servers=100000 ${ratio}x baseline (${base100k} -> ${cand100k} tps)"
else
  echo "info: servers=100000 point missing in baseline or candidate (--quick run?)"
fi

exit "$fail"
