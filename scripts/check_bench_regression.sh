#!/usr/bin/env bash
# Bench regression gate for the scaling benchmarks.
#
#   scripts/check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]
#
# The candidate's "bench" field picks the gate:
#
# dataplane_scaling — compares best-of-fleet ticks-per-second per fleet size
# (keyed on the "servers" field, so scenario renames between runs don't break
# the gate) against a baseline BENCH_dataplane_scaling.json.  Fails if the
# candidate regresses more than <max_pct> percent (default 10) at the 1k or
# 10k fleet.  The sustained-churn regime is gated separately, keyed on the
# scenario name (best-of-fleet would always pick the settled point): a
# >MAX_PCT tps regression on servers_1k_churn or servers_10k_churn fails too,
# so a "fast when standing still" optimization cannot slip through.  The 100k
# fleet (settled and churn) is reported but not gated — its absolute floor is
# asserted by the PR that moves it, not per-run.
#
# tick_scaling — gates the tick engine's thread scaling on the 10k-server
# scenario, threads=4 vs threads=1.  The bar depends on the "hw_threads"
# field the bench records (the machine that produced the points): with >= 4
# hardware threads, threads=4 must beat threads=1 outright; with fewer,
# speedup is physically impossible and the gate instead requires threads=4
# to stay within 10% of serial — the regime where the old one-task-per-index
# pool measured 0.41x and the batch engine must stay ~1.0x.  The threads=1
# point is also gated against the baseline's like the dataplane fleets, so
# the fused tick loop cannot quietly slow the serial path.
#
# With no explicit baseline, the committed copy is used (git show HEAD:...),
# so you can regenerate the BENCH_*.json in place and gate the working tree
# against the last commit.
set -euo pipefail

CANDIDATE="${1:?usage: check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]}"
BASELINE="${2:-}"
MAX_PCT="${3:-10}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Which benchmark is this?  The writer puts "bench" first in the object.
BENCH="$(sed -n 's/.*"bench":"\([^"]*\)".*/\1/p' "$CANDIDATE" | head -n 1)"
BENCH="${BENCH:-dataplane_scaling}"

if [ -z "$BASELINE" ]; then
  BASELINE="$tmp/baseline.json"
  if ! git -C "$ROOT" show "HEAD:BENCH_${BENCH}.json" > "$BASELINE" 2>/dev/null; then
    # Not committed yet (first run on a fresh branch): use the repo copy.
    cp "$ROOT/BENCH_${BENCH}.json" "$BASELINE"
    echo "bench-regression: no committed baseline, using working-tree copy"
  fi
fi

# Best (max) ticks_per_second among a file's points with the given "servers"
# value.  The JSON is produced by bench/common.h's writer, so the fields of
# one point always appear together between braces; prints 0 if absent.
best_tps() {  # best_tps <json-file> <servers>
  tr '}' '\n' < "$1" | awk -v want="$2" '
    match($0, /"servers":[0-9]+/) {
      s = substr($0, RSTART + 10, RLENGTH - 10) + 0
      if (s == want && match($0, /"ticks_per_second":[0-9.eE+-]+/)) {
        t = substr($0, RSTART + 19, RLENGTH - 19) + 0
        if (t > best) best = t
      }
    }
    END { printf "%.6f\n", best + 0 }'
}

# Ticks-per-second of the point with the given "scenario" name (exact
# match); prints 0 if absent.
scenario_tps() {  # scenario_tps <json-file> <scenario>
  tr '}' '\n' < "$1" | awk -v want="\"scenario\":\"$2\"" '
    index($0, want) && match($0, /"ticks_per_second":[0-9.eE+-]+/) {
      t = substr($0, RSTART + 19, RLENGTH - 19) + 0
      if (t > best) best = t
    }
    END { printf "%.6f\n", best + 0 }'
}

# Ticks-per-second of the point with the given "servers" and "threads"
# values; prints 0 if absent.
point_tps() {  # point_tps <json-file> <servers> <threads>
  tr '}' '\n' < "$1" | awk -v ws="$2" -v wt="$3" '
    match($0, /"servers":[0-9]+/) {
      s = substr($0, RSTART + 10, RLENGTH - 10) + 0
      if (s != ws || !match($0, /"threads":[0-9]+/)) next
      t = substr($0, RSTART + 10, RLENGTH - 10) + 0
      if (t != wt || !match($0, /"ticks_per_second":[0-9.eE+-]+/)) next
      tps = substr($0, RSTART + 19, RLENGTH - 19) + 0
      if (tps > best) best = tps
    }
    END { printf "%.6f\n", best + 0 }'
}

# hw_threads recorded in the file (max across points; 0 if the field is
# absent, i.e. a pre-PR-10 baseline).
file_hw_threads() {  # file_hw_threads <json-file>
  tr '}' '\n' < "$1" | awk '
    match($0, /"hw_threads":[0-9]+/) {
      h = substr($0, RSTART + 13, RLENGTH - 13) + 0
      if (h > best) best = h
    }
    END { printf "%d\n", best + 0 }'
}

fail=0
# gate <label> <baseline-tps> <candidate-tps>: fail on >MAX_PCT regression.
gate() {
  local label="$1" base="$2" cand="$3"
  if awk -v b="$base" 'BEGIN { exit !(b <= 0) }'; then
    echo "bench-regression: no baseline point for $label, skipping"
    return
  fi
  if awk -v c="$cand" 'BEGIN { exit !(c <= 0) }'; then
    echo "FAIL: candidate has no point for $label" >&2
    fail=1
    return
  fi
  local delta
  delta="$(awk -v b="$base" -v c="$cand" 'BEGIN { printf "%+.1f", (c/b - 1) * 100 }')"
  if awk -v b="$base" -v c="$cand" -v p="$MAX_PCT" \
       'BEGIN { exit !(c < b * (1 - p / 100)) }'; then
    echo "FAIL: $label regressed ${delta}% (baseline ${base} tps, candidate ${cand} tps, limit -${MAX_PCT}%)" >&2
    fail=1
  else
    echo "ok: $label ${delta}% (baseline ${base} tps, candidate ${cand} tps)"
  fi
}

if [ "$BENCH" = tick_scaling ]; then
  # --- Tick-engine thread-scaling gate (10k-server scenario) ---------------
  t1="$(point_tps "$CANDIDATE" 10000 1)"
  t4="$(point_tps "$CANDIDATE" 10000 4)"
  hw="$(file_hw_threads "$CANDIDATE")"
  if awk -v a="$t1" -v b="$t4" 'BEGIN { exit !(a <= 0 || b <= 0) }'; then
    echo "FAIL: tick_scaling candidate missing servers=10000 threads=1/4 points" >&2
    exit 1
  fi
  ratio="$(awk -v a="$t1" -v b="$t4" 'BEGIN { printf "%.3f", b / a }')"
  if [ "$hw" -ge 4 ]; then
    # Real cores available: parallel must pay for itself outright.
    if awk -v a="$t1" -v b="$t4" 'BEGIN { exit !(b < a) }'; then
      echo "FAIL: threads=4 is ${ratio}x threads=1 at 10k servers on a ${hw}-thread host (must be >= 1.0x)" >&2
      fail=1
    else
      echo "ok: threads=4 is ${ratio}x threads=1 at 10k servers (hw_threads=${hw})"
    fi
  else
    # 1-2 hardware threads: speedup is physically impossible; require the
    # engine to stay near-serial instead (the old pool measured 0.41x here).
    if awk -v a="$t1" -v b="$t4" 'BEGIN { exit !(b < a * 0.9) }'; then
      echo "FAIL: threads=4 is ${ratio}x threads=1 at 10k servers on a ${hw}-thread host (must be >= 0.9x)" >&2
      fail=1
    else
      echo "ok: threads=4 is ${ratio}x threads=1 at 10k servers (hw_threads=${hw}, near-serial bar)"
    fi
  fi
  # Serial path must not regress vs the baseline (skips if the baseline
  # predates the servers_10000 scenario).
  gate "tick_scaling servers=10000 threads=1" \
       "$(point_tps "$BASELINE" 10000 1)" "$t1"
  exit "$fail"
fi

# --- Data-plane fleet gates ------------------------------------------------
for fleet in 1000 10000; do
  gate "servers=$fleet" \
       "$(best_tps "$BASELINE" "$fleet")" \
       "$(best_tps "$CANDIDATE" "$fleet")"
done
for scenario in servers_1k_churn servers_10k_churn; do
  gate "$scenario" \
       "$(scenario_tps "$BASELINE" "$scenario")" \
       "$(scenario_tps "$CANDIDATE" "$scenario")"
done

# 100k: informational — report the ratios, never gate.
base100k="$(best_tps "$BASELINE" 100000)"
cand100k="$(best_tps "$CANDIDATE" 100000)"
if awk -v b="$base100k" -v c="$cand100k" 'BEGIN { exit !(b > 0 && c > 0) }'; then
  ratio="$(awk -v b="$base100k" -v c="$cand100k" 'BEGIN { printf "%.1f", c / b }')"
  echo "info: servers=100000 ${ratio}x baseline (${base100k} -> ${cand100k} tps)"
else
  echo "info: servers=100000 point missing in baseline or candidate (--quick run?)"
fi
base100kc="$(scenario_tps "$BASELINE" servers_100k_churn)"
cand100kc="$(scenario_tps "$CANDIDATE" servers_100k_churn)"
if awk -v b="$base100kc" -v c="$cand100kc" 'BEGIN { exit !(b > 0 && c > 0) }'; then
  ratio="$(awk -v b="$base100kc" -v c="$cand100kc" 'BEGIN { printf "%.1f", c / b }')"
  echo "info: servers_100k_churn ${ratio}x baseline (${base100kc} -> ${cand100kc} tps)"
else
  echo "info: servers_100k_churn point missing in baseline or candidate (--quick run?)"
fi

exit "$fail"
