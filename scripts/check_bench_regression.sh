#!/usr/bin/env bash
# Bench regression gate for the data-plane scaling benchmark.
#
#   scripts/check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]
#
# Compares best-of-fleet ticks-per-second per fleet size (keyed on the
# "servers" field, so scenario renames between runs don't break the gate)
# against a baseline BENCH_dataplane_scaling.json.  Fails if the candidate
# regresses more than <max_pct> percent (default 10) at the 1k or 10k fleet.
# The sustained-churn regime is gated separately, keyed on the scenario name
# (best-of-fleet would always pick the settled point): a >MAX_PCT tps
# regression on servers_1k_churn or servers_10k_churn fails too, so a
# "fast when standing still" optimization cannot slip through.  The 100k
# fleet (settled and churn) is reported but not gated — its absolute floor
# is asserted by the PR that moves it, not per-run.
#
# With no explicit baseline, the committed copy is used (git show HEAD:...),
# so you can regenerate BENCH_dataplane_scaling.json in place and gate the
# working tree against the last commit.
set -euo pipefail

CANDIDATE="${1:?usage: check_bench_regression.sh <candidate.json> [baseline.json] [max_pct]}"
BASELINE="${2:-}"
MAX_PCT="${3:-10}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ -z "$BASELINE" ]; then
  BASELINE="$tmp/baseline.json"
  if ! git -C "$ROOT" show HEAD:BENCH_dataplane_scaling.json > "$BASELINE" 2>/dev/null; then
    # Not committed yet (first run on a fresh branch): use the repo copy.
    cp "$ROOT/BENCH_dataplane_scaling.json" "$BASELINE"
    echo "bench-regression: no committed baseline, using working-tree copy"
  fi
fi

# Best (max) ticks_per_second among a file's points with the given "servers"
# value.  The JSON is produced by bench/common.h's writer, so the fields of
# one point always appear together between braces; prints 0 if absent.
best_tps() {  # best_tps <json-file> <servers>
  tr '}' '\n' < "$1" | awk -v want="$2" '
    match($0, /"servers":[0-9]+/) {
      s = substr($0, RSTART + 10, RLENGTH - 10) + 0
      if (s == want && match($0, /"ticks_per_second":[0-9.eE+-]+/)) {
        t = substr($0, RSTART + 19, RLENGTH - 19) + 0
        if (t > best) best = t
      }
    }
    END { printf "%.6f\n", best + 0 }'
}

# Ticks-per-second of the point with the given "scenario" name (exact
# match); prints 0 if absent.
scenario_tps() {  # scenario_tps <json-file> <scenario>
  tr '}' '\n' < "$1" | awk -v want="\"scenario\":\"$2\"" '
    index($0, want) && match($0, /"ticks_per_second":[0-9.eE+-]+/) {
      t = substr($0, RSTART + 19, RLENGTH - 19) + 0
      if (t > best) best = t
    }
    END { printf "%.6f\n", best + 0 }'
}

fail=0
# gate <label> <baseline-tps> <candidate-tps>: fail on >MAX_PCT regression.
gate() {
  local label="$1" base="$2" cand="$3"
  if awk -v b="$base" 'BEGIN { exit !(b <= 0) }'; then
    echo "bench-regression: no baseline point for $label, skipping"
    return
  fi
  if awk -v c="$cand" 'BEGIN { exit !(c <= 0) }'; then
    echo "FAIL: candidate has no point for $label" >&2
    fail=1
    return
  fi
  local delta
  delta="$(awk -v b="$base" -v c="$cand" 'BEGIN { printf "%+.1f", (c/b - 1) * 100 }')"
  if awk -v b="$base" -v c="$cand" -v p="$MAX_PCT" \
       'BEGIN { exit !(c < b * (1 - p / 100)) }'; then
    echo "FAIL: $label regressed ${delta}% (baseline ${base} tps, candidate ${cand} tps, limit -${MAX_PCT}%)" >&2
    fail=1
  else
    echo "ok: $label ${delta}% (baseline ${base} tps, candidate ${cand} tps)"
  fi
}

for fleet in 1000 10000; do
  gate "servers=$fleet" \
       "$(best_tps "$BASELINE" "$fleet")" \
       "$(best_tps "$CANDIDATE" "$fleet")"
done
for scenario in servers_1k_churn servers_10k_churn; do
  gate "$scenario" \
       "$(scenario_tps "$BASELINE" "$scenario")" \
       "$(scenario_tps "$CANDIDATE" "$scenario")"
done

# 100k: informational — report the ratios, never gate.
base100k="$(best_tps "$BASELINE" 100000)"
cand100k="$(best_tps "$CANDIDATE" 100000)"
if awk -v b="$base100k" -v c="$cand100k" 'BEGIN { exit !(b > 0 && c > 0) }'; then
  ratio="$(awk -v b="$base100k" -v c="$cand100k" 'BEGIN { printf "%.1f", c / b }')"
  echo "info: servers=100000 ${ratio}x baseline (${base100k} -> ${cand100k} tps)"
else
  echo "info: servers=100000 point missing in baseline or candidate (--quick run?)"
fi
base100kc="$(scenario_tps "$BASELINE" servers_100k_churn)"
cand100kc="$(scenario_tps "$CANDIDATE" servers_100k_churn)"
if awk -v b="$base100kc" -v c="$cand100kc" 'BEGIN { exit !(b > 0 && c > 0) }'; then
  ratio="$(awk -v b="$base100kc" -v c="$cand100kc" 'BEGIN { printf "%.1f", c / b }')"
  echo "info: servers_100k_churn ${ratio}x baseline (${base100kc} -> ${cand100kc} tps)"
else
  echo "info: servers_100k_churn point missing in baseline or candidate (--quick run?)"
fi

exit "$fail"
