#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite, then
# regenerate every table/figure/ablation of EXPERIMENTS.md.
#
#   scripts/reproduce.sh [build-dir] [output-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-reproduction}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

mkdir -p "$OUT_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee "$OUT_DIR/test_output.txt"

echo "== benches =="
: > "$OUT_DIR/bench_output.txt"
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "--- $name ---" | tee -a "$OUT_DIR/bench_output.txt"
  case "$name" in
    bench_perf_*) "$b" 2>&1 ;;
    *) "$b" "$OUT_DIR/$name.csv" 2>&1 ;;
  esac | tee -a "$OUT_DIR/bench_output.txt"
done

echo "== examples =="
: > "$OUT_DIR/examples_output.txt"
for e in quickstart renewable_datacenter thermal_emergency testbed_replay lean_datacenter; do
  echo "--- $e ---" | tee -a "$OUT_DIR/examples_output.txt"
  "$BUILD_DIR/examples/$e" 2>&1 | tee -a "$OUT_DIR/examples_output.txt"
done

echo
echo "Reproduction artifacts in $OUT_DIR/ (compare against EXPERIMENTS.md)."
