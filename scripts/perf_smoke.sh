#!/usr/bin/env bash
# Release-mode smoke run of the perf baselines: builds the release preset,
# runs bench_perf_tick_scaling (which includes the tracing-off overhead
# guard) and the quick controller-scaling sweep, and leaves the
# machine-readable sweeps in BENCH_tick_scaling.json (or $1) and
# BENCH_controller_scaling.json.  Gates on the incremental control plane
# actually being faster than the full recompute at 10k servers in the
# settled low-churn steady state.  Then runs willow_cli with --trace on a
# short scenario and cross-checks the JSONL event count against the
# obs.events_emitted counter, and the control plane's incremental counters
# against the trace's link-message lines.
#
#   scripts/perf_smoke.sh [output.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
OUT="${1:-BENCH_tick_scaling.json}"

cmake --preset release
cmake --build --preset release -j"$(nproc)" \
  --target bench_perf_tick_scaling bench_perf_controller_scaling willow_cli
./build-release/bench/bench_perf_tick_scaling "$OUT"

# Controller scaling: the quick sweep (1k + 10k fleets) carries the gate —
# the change-driven walk must beat the full recompute on the settled
# steady-state tick.
./build-release/bench/bench_perf_controller_scaling \
  BENCH_controller_scaling.json --quick
speedup="$(grep -o '"scenario":"servers_10k/low/incremental"[^}]*' \
  BENCH_controller_scaling.json \
  | grep -o '"speedup_vs_serial":[0-9.e+-]*' | cut -d: -f2)"
if [[ -z "$speedup" ]]; then
  echo "ERROR: 10k low-churn incremental point missing from sweep" >&2
  exit 1
fi
if ! awk -v s="$speedup" 'BEGIN { exit !(s > 1.0) }'; then
  echo "ERROR: incremental steady-state tick not faster (speedup $speedup)" >&2
  exit 1
fi
echo "(controller smoke: 10k low-churn steady-state speedup ${speedup}x)"

# Tracing smoke: JSONL line count (minus the schema header) must equal the
# run's own obs.events_emitted counter.
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cat > "$WORK/scenario.txt" <<'EOF'
schema_version = 2
utilization = 0.6
warmup_ticks = 10
measure_ticks = 50
churn_probability = 0.05
demand_quantum_w = 0
incremental_control = true
seed = 42
EOF
./build-release/tools/willow_cli "$WORK/scenario.txt" \
  --trace "$WORK/trace.jsonl" --json "$WORK/result.json" > /dev/null

events=$(( $(wc -l < "$WORK/trace.jsonl") - 1 ))
counted="$(grep -o '"obs.events_emitted":[0-9]*' "$WORK/result.json" \
  | head -n1 | cut -d: -f2)"
if [[ -z "$counted" || "$events" -ne "$counted" ]]; then
  echo "ERROR: trace has $events events but obs.events_emitted=${counted:-missing}" >&2
  exit 1
fi
echo "(trace smoke: $events JSONL events match obs.events_emitted)"

# Incremental-counter reconciliation: every demand report is one upward
# link-message line, every budget directive one downward line, and the
# dirty-set walk both skipped and re-aggregated something on a churning run.
counter() {
  grep -o "\"$1\":[0-9]*" "$WORK/result.json" | head -n1 | cut -d: -f2
}
up_lines="$(grep -c '"type":"link_message".*"dir":"up"' "$WORK/trace.jsonl")"
down_lines="$(grep -c '"type":"link_message".*"dir":"down"' "$WORK/trace.jsonl")"
reports="$(counter control.demand_reports)"
directives="$(counter control.budget_directives)"
reagg="$(counter control.nodes_reaggregated)"
skipped="$(counter control.nodes_skipped)"
if [[ "$up_lines" -ne "${reports:-missing}" ]]; then
  echo "ERROR: $up_lines up link-messages vs control.demand_reports=${reports:-missing}" >&2
  exit 1
fi
if [[ "$down_lines" -ne "${directives:-missing}" ]]; then
  echo "ERROR: $down_lines down link-messages vs control.budget_directives=${directives:-missing}" >&2
  exit 1
fi
if [[ -z "$reagg" || -z "$skipped" || "$reagg" -eq 0 || "$skipped" -eq 0 ]]; then
  echo "ERROR: dirty-set counters implausible (reaggregated=${reagg:-missing}, skipped=${skipped:-missing})" >&2
  exit 1
fi
echo "(incremental smoke: $reports reports / $directives directives match the trace;"
echo " $reagg nodes re-aggregated, $skipped skipped)"

# Consolidation-counter reconciliation: with instant migrations (this
# scenario leaves migration latency off) every drained candidate ends the
# tick asleep, so trace sleep lines equal control.consol_drained exactly;
# the examined/served split must also add up — cache hits and drains are
# disjoint outcomes of the candidates examined.
sleep_lines="$(grep -c '"type":"sleep"' "$WORK/trace.jsonl" || true)"
candidates="$(counter control.consol_candidates)"
drained="$(counter control.consol_drained)"
cache_served="$(counter control.consol_cache_served)"
if [[ -z "$candidates" || "$candidates" -eq 0 ]]; then
  echo "ERROR: control.consol_candidates=${candidates:-missing}; churn run never consolidated" >&2
  exit 1
fi
if [[ "$sleep_lines" -ne "${drained:-missing}" ]]; then
  echo "ERROR: $sleep_lines sleep trace lines vs control.consol_drained=${drained:-missing}" >&2
  exit 1
fi
if [[ $(( drained + cache_served )) -gt "$candidates" ]]; then
  echo "ERROR: consol counters inconsistent: drained=$drained + cache_served=$cache_served > candidates=$candidates" >&2
  exit 1
fi
echo "(consolidation smoke: $candidates candidates examined, $drained drained == $sleep_lines sleep lines, $cache_served cache-served)"
