#!/usr/bin/env bash
# Release-mode smoke run of the tick-engine scaling baseline: builds the
# release preset, runs bench_perf_tick_scaling, and leaves the machine-
# readable sweep in BENCH_tick_scaling.json (or $1).
#
#   scripts/perf_smoke.sh [output.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
OUT="${1:-BENCH_tick_scaling.json}"

cmake --preset release
cmake --build --preset release -j"$(nproc)" --target bench_perf_tick_scaling
./build-release/bench/bench_perf_tick_scaling "$OUT"
