#!/usr/bin/env bash
# Release-mode smoke run of the tick-engine scaling baseline: builds the
# release preset, runs bench_perf_tick_scaling (which includes the
# tracing-off overhead guard), and leaves the machine-readable sweep in
# BENCH_tick_scaling.json (or $1).  Then runs willow_cli with --trace on a
# short scenario and cross-checks the JSONL event count against the
# obs.events_emitted counter in the result JSON.
#
#   scripts/perf_smoke.sh [output.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
OUT="${1:-BENCH_tick_scaling.json}"

cmake --preset release
cmake --build --preset release -j"$(nproc)" \
  --target bench_perf_tick_scaling willow_cli
./build-release/bench/bench_perf_tick_scaling "$OUT"

# Tracing smoke: JSONL line count (minus the schema header) must equal the
# run's own obs.events_emitted counter.
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cat > "$WORK/scenario.txt" <<'EOF'
schema_version = 2
utilization = 0.6
warmup_ticks = 10
measure_ticks = 50
churn_probability = 0.05
seed = 42
EOF
./build-release/tools/willow_cli "$WORK/scenario.txt" \
  --trace "$WORK/trace.jsonl" --json "$WORK/result.json" > /dev/null

events=$(( $(wc -l < "$WORK/trace.jsonl") - 1 ))
counted="$(grep -o '"obs.events_emitted":[0-9]*' "$WORK/result.json" \
  | head -n1 | cut -d: -f2)"
if [[ -z "$counted" || "$events" -ne "$counted" ]]; then
  echo "ERROR: trace has $events events but obs.events_emitted=${counted:-missing}" >&2
  exit 1
fi
echo "(trace smoke: $events JSONL events match obs.events_emitted)"
