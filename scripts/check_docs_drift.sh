#!/usr/bin/env bash
# Docs-drift gate: the scenario-key universe must agree in three places —
# the parser (src/sim/scenario_io.cc), the key registry (willow_cli --keys),
# and the manual (docs/scenario_format.md) — in both directions.  Also
# checks that every local markdown link in README.md and docs/*.md resolves.
#
#   scripts/check_docs_drift.sh <path-to-willow_cli> [repo-root] [all|keys|links]
set -euo pipefail

CLI="${1:?usage: check_docs_drift.sh <path-to-willow_cli> [repo-root] [all|keys|links]}"
ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
MODE="${3:-all}"

fail=0
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# --- the three key sets -----------------------------------------------------

if [ "$MODE" = "all" ] || [ "$MODE" = "keys" ]; then

# 1. Parser: every `key == "..."` comparison in the scenario reader.
grep -o 'key == "[a-z0-9_]*"' "$ROOT/src/sim/scenario_io.cc" |
  sed 's/key == "\(.*\)"/\1/' | sort -u > "$tmp/parser"

# 2. Registry: the scenario_keys() table the CLI exports.
"$CLI" --keys | cut -f1 | sort -u > "$tmp/registry"

# 3. Manual: every backticked token in the FIRST column of a table row in
#    docs/scenario_format.md (handles combined rows like `eta1` / `eta2`).
awk -F'|' '/^\|/ { print $2 }' "$ROOT/docs/scenario_format.md" |
  grep -o '`[a-z0-9_]*`' | tr -d '`' | sort -u > "$tmp/docs"

compare() {  # compare <a-name> <a-file> <b-name> <b-file>
  local missing
  missing="$(comm -23 "$2" "$4")"
  if [ -n "$missing" ]; then
    echo "DRIFT: keys in $1 but not in $3:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    fail=1
  fi
}

compare "parser"   "$tmp/parser"   "registry" "$tmp/registry"
compare "registry" "$tmp/registry" "parser"   "$tmp/parser"
compare "registry" "$tmp/registry" "docs"     "$tmp/docs"
compare "docs"     "$tmp/docs"     "registry" "$tmp/registry"

n="$(wc -l < "$tmp/registry")"
echo "scenario keys: $n in parser/registry/docs, all three agree"

# The registry's samples must form a valid scenario when concatenated —
# this is what makes --keys trustworthy as documentation.
"$CLI" --keys | awk -F'\t' '{ print $1 " = " $2 }' > "$tmp/all_keys.scn"
if ! "$CLI" --check "$tmp/all_keys.scn" > /dev/null; then
  echo "DRIFT: concatenated registry samples fail --check" >&2
  fail=1
fi

fi  # keys

# --- markdown local links ---------------------------------------------------

if [ "$MODE" = "all" ] || [ "$MODE" = "links" ]; then

check_links() {  # check_links <markdown-file>
  local md="$1" dir target
  dir="$(dirname "$md")"
  # [text](target) — skip external links and pure anchors.  The greps exit
  # non-zero on a file with no local links; that is not an error.
  { grep -o '](\([^)]*\))' "$md" || true; } | sed 's/^](\(.*\))$/\1/' |
    { grep -v -e '^https\?://' -e '^mailto:' -e '^#' || true; } |
    sed 's/#.*$//' | sort -u |
  while read -r target; do
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "DEAD LINK: $md -> $target" >&2
      echo bad >> "$tmp/badlinks"
    fi
  done
}

for md in "$ROOT/README.md" "$ROOT"/docs/*.md; do
  check_links "$md"
done
if [ -s "$tmp/badlinks" ]; then
  fail=1
else
  echo "markdown links: ok"
fi

fi  # links

exit "$fail"
