// The per-server fault plane: sensor episodes and crash/restart schedules.
//
// Each tick the plane runs the simulator's standard two-phase pattern:
//
//   sample (sharded)  per-server draws from util::tick_stream
//                     (seed, tick, server, kSensor / kCrash) into a plan —
//                     read-only against plane state, so outcomes cannot
//                     depend on thread count or visit order;
//   apply  (serial)   plan entries and scheduled crash events are applied in
//                     fixed server order through caller-supplied hooks.
//
// The plane owns the fault *state machine* (which episode is active, who is
// down, when they restart); the caller (sim::Simulation) owns the plant and
// performs the actual mutations, event emission, and metrics accounting in
// its hooks.  This keeps willow_fault below core/sim in the layering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.h"
#include "util/thread_pool.h"

namespace willow::fault {

/// One sensor's active episode; until_tick is the first tick at which the
/// sensor is healthy again.
struct SensorEpisode {
  SensorMode mode = SensorMode::kOk;
  double param = 0.0;
  long until_tick = 0;
};

class FaultPlane {
 public:
  FaultPlane(const FaultConfig& config, std::uint64_t seed,
             std::size_t n_servers);

  /// Serial-phase hooks.  All receive the server *index* (paper numbering
  /// order); the caller maps indices to tree node ids.
  struct Callbacks {
    /// Servers for which crash sampling is skipped (e.g. asleep: a
    /// consolidated server has no plant activity to crash).  May be null.
    std::function<bool(std::size_t)> skip_crash;
    std::function<void(std::size_t, long down_ticks)> crash;
    std::function<void(std::size_t)> restart;
    /// A sensor override changed (onset or recovery).  For kStuck onsets the
    /// override's param is 0; the caller captures the current plant reading.
    std::function<void(std::size_t, const SensorOverride&, bool temp_sensor)>
        sensor;
  };

  /// Advance the plane by one tick.  `pool` may be null (serial sampling).
  /// Convenience wrapper over the split phases below.
  void step(long tick, util::ThreadPool* pool, const Callbacks& cb);

  /// True when the configuration has probabilistic sources (sensor episodes
  /// or crash sampling), i.e. the sample phase actually draws something.
  [[nodiscard]] bool needs_sampling() const;

  /// Split-phase API, for callers that fuse this plane's sampling into an
  /// existing per-server fan-out (the tick engine runs one fused sample
  /// batch per tick instead of one per subsystem):
  ///   begin_tick();                  // serial: reset the per-server plan
  ///   sample_range(tick, b, e, cb);  // sharded: any disjoint cover of [0,n)
  ///   apply(tick, cb);               // serial: fixed server order
  /// sample_range only reads plane state (and cb.skip_crash); outcomes are
  /// pure in (seed, tick, server), so the cover's shape cannot matter.
  void begin_tick();
  void sample_range(long tick, std::size_t begin, std::size_t end,
                    const Callbacks& cb);
  void apply(long tick, const Callbacks& cb);

  [[nodiscard]] bool down(std::size_t i) const { return state_[i].down; }
  [[nodiscard]] const SensorEpisode& power_episode(std::size_t i) const {
    return state_[i].power;
  }
  [[nodiscard]] const SensorEpisode& temp_episode(std::size_t i) const {
    return state_[i].temp;
  }

 private:
  struct ServerState {
    SensorEpisode power{};
    SensorEpisode temp{};
    bool down = false;
    long up_at = 0;
  };
  /// Sharded sampling output for one server at one tick.
  struct Proposal {
    bool crash = false;
    bool power_onset = false;
    bool temp_onset = false;
    SensorEpisode power{};
    SensorEpisode temp{};
  };

  /// Draw (at most) one new episode for a healthy sensor.  Draw order is
  /// fixed — stuck, bias, dropout, then duration — and independent of which
  /// probabilities are zero.
  template <typename Rng>
  static bool sample_sensor(Rng& rng, const SensorFaultKnobs& knobs,
                            double mean_ticks, long tick, SensorEpisode* out);

  FaultConfig config_;
  std::uint64_t seed_;
  std::vector<ServerState> state_;
  std::vector<Proposal> plan_;
};

}  // namespace willow::fault
