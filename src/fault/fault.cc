#include "fault/fault.h"

namespace willow::fault {

namespace {

void check_probability(std::vector<std::string>& out, const std::string& field,
                       double p) {
  if (p < 0.0 || p > 1.0) {
    out.push_back(field + ": probability must be in [0, 1]");
  }
}

void check_sensor(std::vector<std::string>& out, const std::string& prefix,
                  const SensorFaultKnobs& k) {
  check_probability(out, prefix + ".stuck_probability", k.stuck_probability);
  check_probability(out, prefix + ".bias_probability", k.bias_probability);
  check_probability(out, prefix + ".dropout_probability",
                    k.dropout_probability);
}

}  // namespace

bool FaultConfig::server_faults_enabled() const {
  return power_sensor.any() || temp_sensor.any() || crash_probability > 0.0 ||
         !crash_events.empty();
}

bool FaultConfig::enabled() const {
  return link.any() || server_faults_enabled() || !ups_failures.empty();
}

std::vector<std::string> FaultConfig::validate(
    const std::string& prefix) const {
  std::vector<std::string> out;
  check_probability(out, prefix + "link.up_loss", link.up_loss);
  check_probability(out, prefix + "link.up_delay", link.up_delay);
  check_probability(out, prefix + "link.up_duplicate", link.up_duplicate);
  check_probability(out, prefix + "link.down_loss", link.down_loss);
  check_probability(out, prefix + "link.down_duplicate", link.down_duplicate);
  check_sensor(out, prefix + "power_sensor", power_sensor);
  check_sensor(out, prefix + "temp_sensor", temp_sensor);
  check_probability(out, prefix + "crash_probability", crash_probability);
  if (sensor_fault_mean_ticks < 1.0) {
    out.push_back(prefix +
                  "sensor_fault_mean_ticks: mean episode must be >= 1 tick");
  }
  if (crash_down_ticks < 1) {
    out.push_back(prefix + "crash_down_ticks: must be >= 1");
  }
  for (const auto& e : crash_events) {
    if (e.tick < 0) {
      out.push_back(prefix + "crash_event: tick must be >= 0");
    }
    if (e.last_server < e.first_server) {
      out.push_back(prefix +
                    "crash_event: last_server must be >= first_server");
    }
    if (e.down_ticks < 1) {
      out.push_back(prefix + "crash_event: down_ticks must be >= 1");
    }
  }
  for (const auto& w : ups_failures) {
    if (w.first_tick < 0 || w.last_tick < w.first_tick) {
      out.push_back(prefix +
                    "ups_failure: need 0 <= first_tick <= last_tick");
    }
  }
  return out;
}

}  // namespace willow::fault
