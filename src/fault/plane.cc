#include "fault/plane.h"

#include "util/rng.h"

namespace willow::fault {

FaultPlane::FaultPlane(const FaultConfig& config, std::uint64_t seed,
                       std::size_t n_servers)
    : config_(config), seed_(seed), state_(n_servers), plan_(n_servers) {}

template <typename Rng>
bool FaultPlane::sample_sensor(Rng& rng, const SensorFaultKnobs& knobs,
                               double mean_ticks, long tick,
                               SensorEpisode* out) {
  const bool stuck = rng.chance(knobs.stuck_probability);
  const bool bias = rng.chance(knobs.bias_probability);
  const bool dropout = rng.chance(knobs.dropout_probability);
  // Episodes last at least one tick; the exponential tail reproduces the
  // bursty multi-tick outages real telemetry shows.
  const double extra =
      mean_ticks > 1.0 ? rng.exponential(mean_ticks - 1.0) : 0.0;
  if (!stuck && !bias && !dropout) return false;
  out->mode = stuck ? SensorMode::kStuck
                    : (bias ? SensorMode::kBias : SensorMode::kDropout);
  out->param = out->mode == SensorMode::kBias ? knobs.bias : 0.0;
  out->until_tick = tick + 1 + static_cast<long>(extra);
  return true;
}

bool FaultPlane::needs_sampling() const {
  return config_.power_sensor.any() || config_.temp_sensor.any() ||
         config_.crash_probability > 0.0;
}

void FaultPlane::begin_tick() { plan_.assign(state_.size(), {}); }

void FaultPlane::sample_range(long tick, std::size_t begin, std::size_t end,
                              const Callbacks& cb) {
  const bool sensors = config_.power_sensor.any() || config_.temp_sensor.any();
  const bool crashes = config_.crash_probability > 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    auto& p = plan_[i];
    const auto& st = state_[i];
    if (sensors) {
      auto rng = util::tick_stream(seed_, static_cast<std::uint64_t>(tick), i,
                                   util::stream_phase::kSensor);
      // Fixed draw order: power sensor first, then temperature.
      // Onsets are proposed regardless of current state (the draws
      // must not depend on mutable episode state) and discarded in
      // the serial phase if an episode is already active.
      p.power_onset =
          sample_sensor(rng, config_.power_sensor,
                        config_.sensor_fault_mean_ticks, tick, &p.power);
      p.temp_onset = sample_sensor(rng, config_.temp_sensor,
                                   config_.sensor_fault_mean_ticks, tick,
                                   &p.temp);
    }
    if (crashes && !st.down && !(cb.skip_crash && cb.skip_crash(i))) {
      auto rng = util::tick_stream(seed_, static_cast<std::uint64_t>(tick), i,
                                   util::stream_phase::kCrash);
      p.crash = rng.chance(config_.crash_probability);
    }
  }
}

void FaultPlane::step(long tick, util::ThreadPool* pool, const Callbacks& cb) {
  if (needs_sampling()) {
    begin_tick();
    util::parallel_for_ranges(pool, state_.size(),
                              [&](std::size_t begin, std::size_t end) {
                                sample_range(tick, begin, end, cb);
                              });
  }
  apply(tick, cb);
}

void FaultPlane::apply(long tick, const Callbacks& cb) {
  const std::size_t n = state_.size();
  const bool sensors = config_.power_sensor.any() || config_.temp_sensor.any();
  const bool crashes = config_.crash_probability > 0.0;

  // Apply phase: fixed server order, scheduled events before samples so a
  // scripted outage at tick T is not pre-empted by a probabilistic crash.
  for (const auto& ev : config_.crash_events) {
    if (ev.tick != tick) continue;
    for (std::size_t i = ev.first_server; i <= ev.last_server && i < n; ++i) {
      auto& st = state_[i];
      if (st.down || (cb.skip_crash && cb.skip_crash(i))) continue;
      st.down = true;
      st.up_at = tick + (ev.down_ticks < 1 ? 1 : ev.down_ticks);
      if (cb.crash) cb.crash(i, st.up_at - tick);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto& st = state_[i];

    // Restarts first: a server that comes back this tick rejoins the
    // control plane before any new fault can hit it next tick.
    if (st.down && tick >= st.up_at) {
      st.down = false;
      if (cb.restart) cb.restart(i);
    }

    if (sensors || crashes) {
      const auto& p = plan_[i];
      if (p.crash && !st.down) {
        st.down = true;
        st.up_at = tick + (config_.crash_down_ticks < 1
                               ? 1
                               : config_.crash_down_ticks);
        if (cb.crash) cb.crash(i, st.up_at - tick);
      }

      // Sensor episode expiry, then (if healthy) onset.
      auto advance = [&](SensorEpisode& ep, bool onset,
                         const SensorEpisode& proposed, bool is_temp) {
        if (ep.mode != SensorMode::kOk && tick >= ep.until_tick) {
          ep = SensorEpisode{};
          if (cb.sensor) cb.sensor(i, SensorOverride{}, is_temp);
        }
        if (ep.mode == SensorMode::kOk && onset && !st.down) {
          ep = proposed;
          if (cb.sensor) {
            cb.sensor(i, SensorOverride{ep.mode, ep.param}, is_temp);
          }
        }
      };
      advance(st.power, p.power_onset, p.power, /*is_temp=*/false);
      advance(st.temp, p.temp_onset, p.temp, /*is_temp=*/true);
    } else {
      // No probabilistic sources: still expire episodes left over from a
      // scheduled-crash-only configuration (none can start, but be safe).
      auto expire = [&](SensorEpisode& ep, bool is_temp) {
        if (ep.mode != SensorMode::kOk && tick >= ep.until_tick) {
          ep = SensorEpisode{};
          if (cb.sensor) cb.sensor(i, SensorOverride{}, is_temp);
        }
      };
      expire(st.power, /*is_temp=*/false);
      expire(st.temp, /*is_temp=*/true);
    }
  }
}

}  // namespace willow::fault
