// Per-message fault verdicts for the PMU tree links.
//
// The tree's report sweep and the controller's budget distributor ask this
// model, per message, whether the message is lost, deferred, or duplicated.
// Verdicts are drawn from util::tick_stream keyed by (seed, tick, node,
// phase), so asking twice within one tick returns the same answer — one
// link, one fate per tick — and the schedule is independent of thread count,
// sweep order, and how many other links are faulted.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "util/rng.h"

namespace willow::fault {

/// Fate of one upward demand report.  At most one of lose/defer is set
/// (loss wins); duplicate only applies to delivered reports.
struct UpVerdict {
  bool lose = false;
  bool defer = false;
  bool duplicate = false;
};

/// Fate of one downward budget directive.
struct DownVerdict {
  bool lose = false;
  bool duplicate = false;
};

class LinkFaultModel {
 public:
  LinkFaultModel(const LinkFaultConfig& config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  [[nodiscard]] const LinkFaultConfig& config() const { return config_; }

  /// The simulator advances the model's clock once per tick; verdicts drawn
  /// at the same tick are reproducible.
  void set_tick(long tick) { tick_ = tick; }
  [[nodiscard]] long tick() const { return tick_; }

  /// Verdict for `node`'s report to its parent at the current tick.
  [[nodiscard]] UpVerdict up(std::uint32_t node) const;

  /// Verdict for the directive from `node`'s parent down to `node` at the
  /// current tick.
  [[nodiscard]] DownVerdict down(std::uint32_t node) const;

 private:
  LinkFaultConfig config_;
  std::uint64_t seed_;
  long tick_ = 0;
};

}  // namespace willow::fault
