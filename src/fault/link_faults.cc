#include "fault/link_faults.h"

namespace willow::fault {

// Draw order is fixed (loss, delay, duplicate) and every draw always
// happens, so a verdict never depends on which probabilities are zero —
// part of the reproducibility contract documented in docs/fault_model.md.

UpVerdict LinkFaultModel::up(std::uint32_t node) const {
  auto rng = util::tick_stream(seed_, static_cast<std::uint64_t>(tick_), node,
                               util::stream_phase::kLinkUp);
  const bool lose = rng.chance(config_.up_loss);
  const bool defer = rng.chance(config_.up_delay);
  const bool duplicate = rng.chance(config_.up_duplicate);
  UpVerdict v;
  v.lose = lose;
  v.defer = !lose && defer;
  v.duplicate = !lose && !defer && duplicate;
  return v;
}

DownVerdict LinkFaultModel::down(std::uint32_t node) const {
  auto rng = util::tick_stream(seed_, static_cast<std::uint64_t>(tick_), node,
                               util::stream_phase::kLinkDown);
  const bool lose = rng.chance(config_.down_loss);
  const bool duplicate = rng.chance(config_.down_duplicate);
  DownVerdict v;
  v.lose = lose;
  v.duplicate = !lose && duplicate;
  return v;
}

}  // namespace willow::fault
