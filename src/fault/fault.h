// Fault-injection configuration — the knobs of the willow_fault plane.
//
// Willow's hierarchy (demand reports up, budget directives down) is only as
// good as its inputs; this library models the ways a real plant lies to its
// controller: control messages lost/delayed/duplicated on PMU links, sensors
// that stick, drift, or go silent, servers that crash and come back, and UPS
// batteries that fail open.  Everything is sampled from the simulator's
// counter-based per-(tick, server, phase) streams (util::tick_stream), so a
// fault schedule is a pure function of the scenario seed: traces are
// byte-identical for any SimConfig::threads, and a disabled FaultConfig
// (the default) injects nothing and costs nothing.
//
// Taxonomy, scenario keys and degraded-mode semantics: docs/fault_model.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace willow::fault {

/// What a faulty sensor reports instead of the true plant value.
enum class SensorMode : std::uint8_t {
  kOk,       ///< healthy: reading equals the plant value bitwise
  kStuck,    ///< stuck-at: reports `param` (captured at fault onset)
  kBias,     ///< additive offset: reports value + `param`
  kDropout,  ///< no reading at all (the consumer knows it is missing)
};

/// One sensor's current override, as seen by the control plane.  A default
/// constructed override is a healthy sensor.
struct SensorOverride {
  SensorMode mode = SensorMode::kOk;
  /// Stuck-at value (W or degC) for kStuck, additive offset for kBias.
  double param = 0.0;

  [[nodiscard]] bool healthy() const { return mode == SensorMode::kOk; }
};

/// Per-tick onset probabilities for one sensor class (power or temperature).
/// At most one episode is active per sensor; onset draws happen only while
/// the sensor is healthy.
struct SensorFaultKnobs {
  double stuck_probability = 0.0;
  double bias_probability = 0.0;
  double dropout_probability = 0.0;
  /// Additive offset applied during a kBias episode (W or degC).
  double bias = 0.0;

  [[nodiscard]] bool any() const {
    return stuck_probability > 0.0 || bias_probability > 0.0 ||
           dropout_probability > 0.0;
  }
};

/// Per-message fault probabilities on the PMU tree links (Fig. 2 messages).
/// `up` = demand reports child -> parent, `down` = budget directives
/// parent -> child.  A lost up-report leaves the child pending, so it
/// naturally retries next sweep; a lost directive enters the controller's
/// bounded-backoff retry queue.
struct LinkFaultConfig {
  double up_loss = 0.0;
  double up_delay = 0.0;      ///< report deferred to the next sweep
  double up_duplicate = 0.0;  ///< report delivered twice (idempotent)
  double down_loss = 0.0;
  double down_duplicate = 0.0;

  [[nodiscard]] bool any() const {
    return up_loss > 0.0 || up_delay > 0.0 || up_duplicate > 0.0 ||
           down_loss > 0.0 || down_duplicate > 0.0;
  }
};

/// A scheduled crash: at `tick`, servers with index in
/// [first_server, last_server] (0-based, inclusive) go down for `down_ticks`
/// ticks.  Mirrors SimConfig::AmbientEvent so operators can script
/// correlated outages (a rack PDU trip) alongside probabilistic crashes.
struct CrashEvent {
  long tick = 0;
  std::size_t first_server = 0;
  std::size_t last_server = 0;
  long down_ticks = 10;
};

/// A window [first_tick, last_tick] (inclusive) during which the UPS battery
/// is failed open: no charge, no discharge, deliverable = min(demand, raw).
struct UpsFailureWindow {
  long first_tick = 0;
  long last_tick = 0;
};

/// The complete fault plane configuration.  All knobs default to
/// zero/disabled; enabled() false means no fault hooks are installed and the
/// simulation output is byte-identical to a build without the subsystem.
struct FaultConfig {
  LinkFaultConfig link{};
  SensorFaultKnobs power_sensor{};
  SensorFaultKnobs temp_sensor{};
  /// Mean sensor-episode length in ticks (geometric-ish: 1 + Exp(mean-1)).
  double sensor_fault_mean_ticks = 5.0;
  /// Per-server, per-tick probability of an uncorrelated crash.
  double crash_probability = 0.0;
  /// Down time for probabilistic crashes (scheduled ones carry their own).
  long crash_down_ticks = 10;
  std::vector<CrashEvent> crash_events{};
  std::vector<UpsFailureWindow> ups_failures{};

  /// True when any per-server fault source (sensors or crashes) is active —
  /// the simulator builds a FaultPlane only then.
  [[nodiscard]] bool server_faults_enabled() const;
  /// True when any fault source at all is configured.
  [[nodiscard]] bool enabled() const;

  /// Structured validation matching SimConfig::validate(): one
  /// human-readable "field: why" string per problem, each prefixed with
  /// `prefix` (e.g. "faults.").  Empty means usable.
  [[nodiscard]] std::vector<std::string> validate(
      const std::string& prefix) const;
};

}  // namespace willow::fault
