#include "power/supply.h"

#include <cmath>
#include <stdexcept>

namespace willow::power {

namespace {
constexpr double kTwoPi = 6.283185307179586;

/// SplitMix64: cheap stateless hash used for per-interval cloud attenuation.
double hash_unit(unsigned long long seed, unsigned long long k) {
  unsigned long long z = seed + 0x9e3779b97f4a7c15ULL * (k + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}
}  // namespace

SteppedSupply::SteppedSupply(std::vector<Watts> levels, Seconds step)
    : levels_(std::move(levels)), step_(step) {
  if (levels_.empty()) {
    throw std::invalid_argument("SteppedSupply: empty trace");
  }
  if (!(step_.value() > 0.0)) {
    throw std::invalid_argument("SteppedSupply: step must be > 0");
  }
}

Watts SteppedSupply::at(Seconds t) const {
  if (t.value() < 0.0) return levels_.front();
  auto i = static_cast<std::size_t>(t.value() / step_.value());
  if (i >= levels_.size()) i = levels_.size() - 1;
  return levels_[i];
}

SinusoidSupply::SinusoidSupply(Watts base, Watts amplitude, Seconds period)
    : base_(base), amplitude_(amplitude), period_(period) {
  if (!(period.value() > 0.0)) {
    throw std::invalid_argument("SinusoidSupply: period must be > 0");
  }
}

Watts SinusoidSupply::at(Seconds t) const {
  const double v = base_.value() +
                   amplitude_.value() * std::sin(kTwoPi * t.value() / period_.value());
  return Watts{v > 0.0 ? v : 0.0};
}

SolarSupply::SolarSupply(Watts grid_floor, Watts solar_peak, Seconds day_length,
                         double cloudiness, unsigned long long seed)
    : grid_floor_(grid_floor),
      solar_peak_(solar_peak),
      day_length_(day_length),
      cloudiness_(cloudiness),
      seed_(seed) {
  if (!(day_length.value() > 0.0)) {
    throw std::invalid_argument("SolarSupply: day_length must be > 0");
  }
  if (cloudiness < 0.0 || cloudiness > 1.0) {
    throw std::invalid_argument("SolarSupply: cloudiness must be in [0,1]");
  }
}

Watts SolarSupply::at(Seconds t) const {
  const double day = day_length_.value();
  const double phase = std::fmod(t.value(), day) / day;  // [0,1)
  // Daylight between 0.25 and 0.75 of the day; half-sine irradiance bump.
  double solar = 0.0;
  if (phase > 0.25 && phase < 0.75) {
    solar = std::sin((phase - 0.25) / 0.5 * 3.141592653589793);
  }
  // Cloud attenuation changes per 1/48th of a day ("half-hour" blocks).
  const auto block = static_cast<unsigned long long>(t.value() / (day / 48.0));
  const double attenuation = 1.0 - cloudiness_ * hash_unit(seed_, block);
  return grid_floor_ + solar_peak_ * (solar * attenuation);
}

std::unique_ptr<SteppedSupply> paper_fig15_trace() {
  // Testbed draws ~203 W per server at 60% utilization (ServerPowerModel::
  // paper_testbed), so three servers need ~610 W; the idle floors alone need
  // ~478 W, which bounds how deep a plunge can go while servers stay up.
  // The trace averages above the 60%-point with the deficiency episodes
  // Section V-C4 narrates: a deep plunge at t=7 persisting through t=10,
  // and two later dips.  Each episode spans a supply period (eta1 = 4) so
  // the ΔS-sampled controller observes it.
  std::vector<Watts> w;
  const double base[] = {
      680, 682, 678, 684, 679, 681, 683,  // 0..6 comfortable
      610, 612, 610, 614,                 // 7..10 deep plunge, persists
      680, 681, 679, 683,                 // 11..14 recovery
      612, 615,                           // 15..16 second dip
      680, 678, 682, 681, 684, 680,       // 17..22 recovered
      608, 606, 605,                      // 23..25 third dip
      680, 682, 679, 683                  // 26..29 recovered
  };
  w.reserve(std::size(base));
  for (double v : base) w.emplace_back(v);
  return std::make_unique<SteppedSupply>(std::move(w), Seconds{1.0});
}

std::unique_ptr<SteppedSupply> paper_fig19_trace() {
  // Energy-plenty case: mean close to the ~750 W needed for three servers at
  // 100% utilization; mild variation, no deficiency episodes.
  std::vector<Watts> w;
  const double base[] = {760, 750, 770, 745, 755, 765, 740, 750, 760, 755,
                         748, 762, 758, 744, 752, 766, 759, 747, 753, 761,
                         756, 749, 763, 757, 745, 754, 764, 751, 746, 758};
  w.reserve(std::size(base));
  for (double v : base) w.emplace_back(v);
  return std::make_unique<SteppedSupply>(std::move(w), Seconds{1.0});
}

}  // namespace willow::power
