// Battery-backed UPS model — Section IV-C.
//
// "Because of the presence of battery backed UPS and other energy storage
//  devices, any temporary deficit in power supply in a data center is
//  integrated out.  Hence the supply side time constants are assumed to be
//  Delta_S = eta_1 * Delta_D."
//
// The Ups sits between a raw SupplyProfile and the root PMU: over each supply
// period it delivers raw supply plus bounded battery discharge (when demand
// exceeds supply) or recharges from surplus.  The effect Willow sees is a
// low-pass-filtered budget whose short dips are absorbed and whose long
// plunges still come through — exactly why ΔS can be coarser than ΔD.
#pragma once

#include "obs/bus.h"
#include "util/units.h"

namespace willow::power {

using util::Joules;
using util::Seconds;
using util::Watts;

class Ups {
 public:
  /// @param capacity        usable stored energy when full
  /// @param max_discharge   cap on battery power added to the feed
  /// @param max_charge      cap on recharge power taken from surplus
  /// @param initial_fraction initial state of charge in [0, 1]
  Ups(Joules capacity, Watts max_discharge, Watts max_charge,
      double initial_fraction = 1.0);

  [[nodiscard]] Joules capacity() const { return capacity_; }
  [[nodiscard]] Joules stored() const { return stored_; }
  [[nodiscard]] double state_of_charge() const {
    return capacity_.value() > 0.0 ? stored_ / capacity_ : 0.0;
  }

  /// Advance one supply period: the feed provides `supply`, the load wants
  /// `demand`, for `dt`.  Returns the power actually deliverable to the load
  /// over this period (supply plus discharge, capped).  Surplus beyond demand
  /// recharges the battery.
  Watts step(Watts supply, Watts demand, Seconds dt);

  /// Deliverable power right now if demand were `demand` (no state change).
  [[nodiscard]] Watts deliverable(Watts supply, Watts demand, Seconds dt) const;

  /// Attach an observability bus (not owned; may be null).  step() then emits
  /// kUpsCharge / kUpsDischarge whenever the battery exchanges power.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }
  [[nodiscard]] obs::EventBus* event_bus() const { return bus_; }

  /// Fault injection: a failed UPS passes the raw feed through untouched —
  /// no discharge support, no recharge draw — so supply dips that the
  /// battery would have integrated out hit the control plane directly.
  /// Transitions emit kUpsFail / kUpsRestore (value = state of charge).
  void set_failed(bool failed);
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  Joules capacity_;
  Joules stored_;
  Watts max_discharge_;
  Watts max_charge_;
  bool failed_ = false;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace willow::power
