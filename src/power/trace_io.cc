#include "power/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace willow::power {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("supply trace line " + std::to_string(line) + ": " +
                           message);
}

bool try_parse(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::logic_error&) {
    return false;
  }
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::unique_ptr<SteppedSupply> read_supply_csv(std::istream& in,
                                               util::Seconds default_step) {
  std::vector<double> times;
  std::vector<Watts> watts;
  bool two_column = false;
  bool first_data = true;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string text = trim(raw);
    if (text.empty()) continue;

    std::vector<std::string> fields;
    std::istringstream is(text);
    std::string field;
    while (std::getline(is, field, ',')) fields.push_back(trim(field));
    if (fields.empty()) continue;

    double first_value = 0.0;
    if (!try_parse(fields[0], first_value)) {
      if (first_data) continue;  // header line
      fail(line, "non-numeric field '" + fields[0] + "'");
    }

    if (fields.size() > 2) fail(line, "expected at most two columns");
    if (first_data) {
      two_column = fields.size() == 2;
      first_data = false;
    }
    if (two_column) {
      if (fields.size() < 2) fail(line, "expected time,watts");
      double w = 0.0;
      if (!try_parse(fields[1], w)) fail(line, "bad watts '" + fields[1] + "'");
      if (w < 0.0) fail(line, "negative watts");
      times.push_back(first_value);
      watts.emplace_back(w);
    } else {
      if (fields.size() > 1) fail(line, "expected a single watts column");
      if (first_value < 0.0) fail(line, "negative watts");
      watts.emplace_back(first_value);
    }
  }
  if (watts.empty()) throw std::runtime_error("supply trace: no samples");

  util::Seconds step = default_step;
  if (two_column && times.size() >= 2) {
    const double dt = times[1] - times[0];
    if (!(dt > 0.0)) throw std::runtime_error("supply trace: non-increasing times");
    for (std::size_t i = 2; i < times.size(); ++i) {
      if (std::abs((times[i] - times[i - 1]) - dt) > 1e-6 * std::max(1.0, dt)) {
        throw std::runtime_error("supply trace: non-uniform time steps");
      }
    }
    step = util::Seconds{dt};
  }
  return std::make_unique<SteppedSupply>(std::move(watts), step);
}

std::unique_ptr<SteppedSupply> load_supply_csv(const std::string& path,
                                               util::Seconds default_step) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open supply trace: " + path);
  return read_supply_csv(f, default_step);
}

void write_supply_csv(std::ostream& out, const SupplyProfile& profile,
                      util::Seconds step, std::size_t samples) {
  if (!(step.value() > 0.0)) {
    throw std::invalid_argument("write_supply_csv: step must be > 0");
  }
  out << "t,watts\n";
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) * step.value();
    out << t << ',' << profile.at(util::Seconds{t}).value() << '\n';
  }
}

}  // namespace willow::power
