file(REMOVE_RECURSE
  "CMakeFiles/willow_power.dir/cooling.cc.o"
  "CMakeFiles/willow_power.dir/cooling.cc.o.d"
  "CMakeFiles/willow_power.dir/server_power.cc.o"
  "CMakeFiles/willow_power.dir/server_power.cc.o.d"
  "CMakeFiles/willow_power.dir/supply.cc.o"
  "CMakeFiles/willow_power.dir/supply.cc.o.d"
  "CMakeFiles/willow_power.dir/switch_power.cc.o"
  "CMakeFiles/willow_power.dir/switch_power.cc.o.d"
  "CMakeFiles/willow_power.dir/trace_io.cc.o"
  "CMakeFiles/willow_power.dir/trace_io.cc.o.d"
  "CMakeFiles/willow_power.dir/ups.cc.o"
  "CMakeFiles/willow_power.dir/ups.cc.o.d"
  "libwillow_power.a"
  "libwillow_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
