file(REMOVE_RECURSE
  "libwillow_power.a"
)
