
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/cooling.cc" "src/power/CMakeFiles/willow_power.dir/cooling.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/cooling.cc.o.d"
  "/root/repo/src/power/server_power.cc" "src/power/CMakeFiles/willow_power.dir/server_power.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/server_power.cc.o.d"
  "/root/repo/src/power/supply.cc" "src/power/CMakeFiles/willow_power.dir/supply.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/supply.cc.o.d"
  "/root/repo/src/power/switch_power.cc" "src/power/CMakeFiles/willow_power.dir/switch_power.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/switch_power.cc.o.d"
  "/root/repo/src/power/trace_io.cc" "src/power/CMakeFiles/willow_power.dir/trace_io.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/trace_io.cc.o.d"
  "/root/repo/src/power/ups.cc" "src/power/CMakeFiles/willow_power.dir/ups.cc.o" "gcc" "src/power/CMakeFiles/willow_power.dir/ups.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
