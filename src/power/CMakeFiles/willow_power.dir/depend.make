# Empty dependencies file for willow_power.
# This may be replaced when dependencies are built.
