// CSV import/export for supply traces.
//
// Deployments have real feed recordings (PDU logs, PV inverter exports);
// this loads them as SteppedSupply profiles so recorded days can be replayed
// against the controller.  Accepted shapes:
//   one column:     watts per line (uniform step)
//   two columns:    time,watts — times must be uniformly spaced
// A header line is skipped if its first field is not numeric; '#' comment
// lines and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "power/supply.h"

namespace willow::power {

/// Parse a trace from a stream.  @param default_step step used for
/// one-column traces.  Throws std::runtime_error (with the line number) on
/// malformed input or non-uniform two-column timestamps.
std::unique_ptr<SteppedSupply> read_supply_csv(
    std::istream& in, util::Seconds default_step = util::Seconds{1.0});

/// Load a trace file; throws std::runtime_error if unreadable.
std::unique_ptr<SteppedSupply> load_supply_csv(
    const std::string& path, util::Seconds default_step = util::Seconds{1.0});

/// Write a profile sampled every `step` for `samples` points as "t,watts".
void write_supply_csv(std::ostream& out, const SupplyProfile& profile,
                      util::Seconds step, std::size_t samples);

}  // namespace willow::power
