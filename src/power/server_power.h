// Server power-vs-utilization model — Section IV-C and Table I.
//
// The paper assumes a well-apportioned server with one bottleneck resource
// (CPU), so power consumption is a monotonic, approximately linear function
// of utilization below saturation:
//
//     P(u) = P_static + (P_peak - P_static) * u,      u in [0, 1].
//
// Two calibrations ship with the library:
//  * paper_testbed(): matches Section V-C.  Table I's printed numbers are not
//    legible in the source text, so the line is calibrated to the paper's own
//    worked example — servers at (80, 40, 20)% utilization draw ~580 W total
//    and consolidating the 20% server away saves ~27.5%, which pins
//    P_static = 159.5 W; we pair it with P_peak = 232 W (slope 72.5 W).
//  * paper_simulation(): the simulation section's 450 W-class server.
#pragma once

#include "util/units.h"

namespace willow::power {

using util::Watts;

class ServerPowerModel {
 public:
  /// @param static_power draw at zero utilization (idle but active).
  /// @param peak_power   draw at 100% utilization; must be >= static_power.
  ServerPowerModel(Watts static_power, Watts peak_power);

  [[nodiscard]] Watts static_power() const { return static_power_; }
  [[nodiscard]] Watts peak_power() const { return peak_power_; }
  [[nodiscard]] Watts dynamic_range() const {
    return peak_power_ - static_power_;
  }

  /// Power drawn at utilization u (clamped to [0, 1]).
  [[nodiscard]] Watts power(double utilization) const;

  /// Inverse: the utilization that draws power p, clamped to [0, 1].
  /// For p <= static_power returns 0; for p >= peak_power returns 1.
  [[nodiscard]] double utilization(Watts p) const;

  /// Utilization supportable under a power budget (same as utilization(),
  /// named for call-site readability in the controller).
  [[nodiscard]] double utilization_under_budget(Watts budget) const {
    return utilization(budget);
  }

  /// The Section V-C testbed calibration (see file comment).
  static ServerPowerModel paper_testbed();

  /// The Section V-B simulation server: ~450 W class.  The simulation treats
  /// demand directly in watts, with a small idle floor.
  static ServerPowerModel paper_simulation();

 private:
  Watts static_power_;
  Watts peak_power_;
};

}  // namespace willow::power
