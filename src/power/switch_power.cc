#include "power/switch_power.h"

#include <algorithm>
#include <stdexcept>

namespace willow::power {

SwitchPowerModel::SwitchPowerModel(Watts static_power,
                                   double watts_per_unit_traffic)
    : static_power_(static_power), watts_per_unit_(watts_per_unit_traffic) {
  if (static_power.value() < 0.0 || watts_per_unit_traffic < 0.0) {
    throw std::invalid_argument("SwitchPowerModel: negative parameter");
  }
}

Watts SwitchPowerModel::power(double traffic) const {
  if (traffic < 0.0) {
    throw std::invalid_argument("SwitchPowerModel::power: traffic < 0");
  }
  return static_power_ + Watts{watts_per_unit_ * traffic};
}

double SwitchPowerModel::capacity_under_budget(Watts budget) const {
  if (watts_per_unit_ <= 0.0) return 0.0;
  return std::max(0.0, (budget - static_power_).value() / watts_per_unit_);
}

SwitchPowerModel SwitchPowerModel::paper_simulation() {
  return SwitchPowerModel(Watts{5.0}, 40.0);
}

}  // namespace willow::power
