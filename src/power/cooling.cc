#include "power/cooling.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace willow::power {

CoolingModel::CoolingModel(CoolingConfig config) : config_(config) {
  if (!(config.cop_at_reference > 0.0) || !(config.min_cop > 0.0)) {
    throw std::invalid_argument("CoolingModel: COPs must be > 0");
  }
  if (config.fan_floor.value() < 0.0) {
    throw std::invalid_argument("CoolingModel: negative fan floor");
  }
}

double CoolingModel::cop(Celsius outside) const {
  const double raw =
      config_.cop_at_reference +
      config_.cop_slope_per_degc *
          (outside.value() - config_.reference_outside.value());
  return std::max(config_.min_cop, raw);
}

Watts CoolingModel::cooling_power(Watts it_power, Celsius outside) const {
  if (it_power.value() < 0.0) {
    throw std::invalid_argument("CoolingModel: negative IT power");
  }
  return config_.fan_floor + Watts{it_power.value() / cop(outside)};
}

Watts CoolingModel::facility_power(Watts it_power, Celsius outside) const {
  return it_power + cooling_power(it_power, outside);
}

double CoolingModel::pue(Watts it_power, Celsius outside) const {
  if (it_power.value() <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return facility_power(it_power, outside) / it_power;
}

}  // namespace willow::power
