#include "power/server_power.h"

#include <algorithm>
#include <stdexcept>

namespace willow::power {

ServerPowerModel::ServerPowerModel(Watts static_power, Watts peak_power)
    : static_power_(static_power), peak_power_(peak_power) {
  if (static_power.value() < 0.0 || peak_power < static_power) {
    throw std::invalid_argument(
        "ServerPowerModel: need 0 <= static_power <= peak_power");
  }
}

Watts ServerPowerModel::power(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return static_power_ + dynamic_range() * u;
}

double ServerPowerModel::utilization(Watts p) const {
  if (dynamic_range().value() <= 0.0) {
    return p >= peak_power_ ? 1.0 : 0.0;
  }
  const double u = (p - static_power_) / dynamic_range();
  return std::clamp(u, 0.0, 1.0);
}

ServerPowerModel ServerPowerModel::paper_testbed() {
  return ServerPowerModel(Watts{159.5}, Watts{232.0});
}

ServerPowerModel ServerPowerModel::paper_simulation() {
  // A small idle floor: the simulation treats demand directly in watts and
  // assumes aggressive idle power control underneath (Sec. IV-E: "fine
  // grained power control in individual nodes is already being done").  The
  // floor must stay below the thermal steady-state limit of the paper's
  // constants (c2/c1 * 45 degC ~= 28 W) or an idle server would eventually
  // overheat by merely existing.
  return ServerPowerModel(Watts{10.0}, Watts{450.0});
}

}  // namespace willow::power
