// Cooling-infrastructure power model — the paper's Section VI future work:
// "In order to do a holistic power control, Willow must consider the energy
// consumed by cooling infrastructure as well in the adaptation."
//
// A simple CRAC model: removing Q watts of IT heat costs Q / COP(T_outside)
// of compressor/pump power plus a fixed fan floor.  The coefficient of
// performance falls linearly as the outside (heat-rejection) temperature
// rises — hotter days make every served watt more expensive, the coupling
// that makes thermal-aware placement pay off at the facility level.
#pragma once

#include "util/units.h"

namespace willow::power {

using util::Celsius;
using util::Watts;

struct CoolingConfig {
  /// COP at the reference outside temperature (typical chiller: ~3-4).
  double cop_at_reference = 3.5;
  Celsius reference_outside{25.0};
  /// COP change per degC of outside temperature (negative: hotter = worse).
  double cop_slope_per_degc = -0.08;
  /// COP never falls below this (compressor floor).
  double min_cop = 1.0;
  /// Fixed draw of air movers, powered whenever the plant is on.
  Watts fan_floor{20.0};
};

class CoolingModel {
 public:
  explicit CoolingModel(CoolingConfig config = CoolingConfig{});

  [[nodiscard]] const CoolingConfig& config() const { return config_; }

  /// Effective COP at the given outside temperature (>= min_cop).
  [[nodiscard]] double cop(Celsius outside) const;

  /// Cooling power needed to remove `it_power` of heat at `outside`.
  [[nodiscard]] Watts cooling_power(Watts it_power, Celsius outside) const;

  /// Facility power = IT + cooling.
  [[nodiscard]] Watts facility_power(Watts it_power, Celsius outside) const;

  /// Power usage effectiveness = facility / IT (>= 1); returns +inf for
  /// zero IT power (fans still spin).
  [[nodiscard]] double pue(Watts it_power, Celsius outside) const;

 private:
  CoolingConfig config_;
};

}  // namespace willow::power
