// Switch power model — Section V-B5.
//
// "We assume that the switch power consumption has two parts: static and
//  dynamic.  The dynamic portion ... is directly proportional to the amount
//  of traffic it handles.  The static part is fixed and is very small."
#pragma once

#include "util/units.h"

namespace willow::power {

using util::Watts;

class SwitchPowerModel {
 public:
  /// @param static_power  fixed draw while powered on (paper: "very small").
  /// @param watts_per_unit_traffic  dynamic slope; traffic is measured in the
  ///        caller's normalized traffic units (we use utilization-equivalent
  ///        load, 1.0 == one fully-utilized server's traffic).
  SwitchPowerModel(Watts static_power, double watts_per_unit_traffic);

  [[nodiscard]] Watts static_power() const { return static_power_; }
  [[nodiscard]] double slope() const { return watts_per_unit_; }

  /// Power drawn while handling `traffic` units of load (>= 0).
  [[nodiscard]] Watts power(double traffic) const;

  /// Traffic supportable under `budget` (inverse of power()); >= 0.
  [[nodiscard]] double capacity_under_budget(Watts budget) const;

  /// Calibration used by the paper's simulation: a level-1 switch serving a
  /// handful of 450 W-class servers; small static part.
  static SwitchPowerModel paper_simulation();

 private:
  Watts static_power_;
  double watts_per_unit_;
};

}  // namespace willow::power
