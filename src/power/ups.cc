#include "power/ups.h"

#include <algorithm>
#include <stdexcept>

namespace willow::power {

Ups::Ups(Joules capacity, Watts max_discharge, Watts max_charge,
         double initial_fraction)
    : capacity_(capacity),
      stored_(Joules{capacity.value() * initial_fraction}),
      max_discharge_(max_discharge),
      max_charge_(max_charge) {
  if (capacity.value() < 0.0 || max_discharge.value() < 0.0 ||
      max_charge.value() < 0.0) {
    throw std::invalid_argument("Ups: negative parameter");
  }
  if (initial_fraction < 0.0 || initial_fraction > 1.0) {
    throw std::invalid_argument("Ups: initial_fraction must be in [0,1]");
  }
}

void Ups::set_failed(bool failed) {
  if (failed == failed_) return;
  failed_ = failed;
  if (bus_ != nullptr && bus_->enabled()) {
    obs::Event e;
    e.type = failed ? obs::EventType::kUpsFail : obs::EventType::kUpsRestore;
    e.value = state_of_charge();
    bus_->emit(std::move(e));
  }
}

Watts Ups::deliverable(Watts supply, Watts demand, Seconds dt) const {
  if (failed_) return util::min(demand, supply);
  if (demand <= supply) return demand;
  const Watts deficit = demand - supply;
  Watts discharge = util::min(deficit, max_discharge_);
  if (dt.value() > 0.0) {
    const Watts energy_limited{stored_.value() / dt.value()};
    discharge = util::min(discharge, energy_limited);
  }
  return supply + discharge;
}

Watts Ups::step(Watts supply, Watts demand, Seconds dt) {
  if (dt.value() <= 0.0) throw std::invalid_argument("Ups::step: dt <= 0");
  constexpr double kEps = 1e-12;
  // A failed UPS is a straight wire: stored energy is held (neither spent
  // nor replenished) until the unit is restored.
  if (failed_) return util::min(demand, supply);
  if (demand <= supply) {
    // Surplus recharges the battery (bounded by charge rate and capacity).
    const Watts surplus = supply - demand;
    const Watts charge = util::min(surplus, max_charge_);
    const Joules before = stored_;
    stored_ = util::min(capacity_, stored_ + charge * dt);
    if (bus_ != nullptr && bus_->enabled() &&
        stored_.value() - before.value() > kEps) {
      obs::Event e;
      e.type = obs::EventType::kUpsCharge;
      e.value = (stored_ - before).value() / dt.value();
      e.aux = state_of_charge();
      bus_->emit(std::move(e));
    }
    return demand;
  }
  const Watts delivered = deliverable(supply, demand, dt);
  const Watts discharge = delivered - supply;
  stored_ = util::max(Joules{0.0}, stored_ - discharge * dt);
  if (bus_ != nullptr && bus_->enabled() && discharge.value() > kEps) {
    obs::Event e;
    e.type = obs::EventType::kUpsDischarge;
    e.value = discharge.value();
    e.aux = state_of_charge();
    bus_->emit(std::move(e));
  }
  return delivered;
}

}  // namespace willow::power
