// Power-supply profiles — the "supply side" of Energy Adaptive Computing.
//
// Section III motivates short-term energy deficiencies from renewable
// sources, under-provisioned circuits, and cooling limits; Section V drives
// both the simulation and the testbed with time-varying supply traces
// (Fig. 15: deficient regime, Fig. 19: plenty regime).  SupplyProfile is the
// common abstraction; concrete profiles cover constants, recorded step
// traces, diurnal sinusoids, and a clamped-sine solar model with cloud noise.
#pragma once

#include <memory>
#include <vector>

#include "util/units.h"

namespace willow::power {

using util::Seconds;
using util::Watts;

/// Available power as a function of time.  Implementations must be pure
/// (repeatable for the same t) so experiments stay reproducible.
class SupplyProfile {
 public:
  virtual ~SupplyProfile() = default;
  /// Available power at absolute time t (t >= 0).
  [[nodiscard]] virtual Watts at(Seconds t) const = 0;
};

/// Fixed supply.
class ConstantSupply final : public SupplyProfile {
 public:
  explicit ConstantSupply(Watts level) : level_(level) {}
  [[nodiscard]] Watts at(Seconds) const override { return level_; }

 private:
  Watts level_;
};

/// Piecewise-constant recorded trace: value i applies on [i*dt, (i+1)*dt).
/// Past the end, the last value holds (the trace "persists").
class SteppedSupply final : public SupplyProfile {
 public:
  SteppedSupply(std::vector<Watts> levels, Seconds step);
  [[nodiscard]] Watts at(Seconds t) const override;
  [[nodiscard]] const std::vector<Watts>& levels() const { return levels_; }
  [[nodiscard]] Seconds step() const { return step_; }

 private:
  std::vector<Watts> levels_;
  Seconds step_;
};

/// base + amplitude * sin(2*pi*t/period); clamped at >= 0.  A smooth diurnal
/// grid-price / demand-response shape.
class SinusoidSupply final : public SupplyProfile {
 public:
  SinusoidSupply(Watts base, Watts amplitude, Seconds period);
  [[nodiscard]] Watts at(Seconds t) const override;

 private:
  Watts base_;
  Watts amplitude_;
  Seconds period_;
};

/// Photovoltaic-style profile: a half-sine bump over [dawn, dusk] of each
/// day, scaled by deterministic pseudo-random "cloud" attenuation, on top of
/// a fixed grid floor.  Deterministic in (seed, t).
class SolarSupply final : public SupplyProfile {
 public:
  /// @param grid_floor   always-available baseline (grid / battery contract)
  /// @param solar_peak   clear-sky PV peak at solar noon
  /// @param day_length   length of a full day in simulation time
  /// @param cloudiness   in [0,1]: 0 = clear sky, 1 = fully overcast possible
  SolarSupply(Watts grid_floor, Watts solar_peak, Seconds day_length,
              double cloudiness, unsigned long long seed);
  [[nodiscard]] Watts at(Seconds t) const override;

 private:
  Watts grid_floor_;
  Watts solar_peak_;
  Seconds day_length_;
  double cloudiness_;
  unsigned long long seed_;
};

/// The Fig.-15 energy-deficient trace (Section V-C4): 30 one-"time-unit"
/// steps whose mean is just enough to run the 3-server testbed at ~60%
/// utilization, with a deep plunge at t=7 persisting through t=10 and further
/// dips at t=12 and t=25.
std::unique_ptr<SteppedSupply> paper_fig15_trace();

/// The Fig.-19 energy-plenty trace (Section V-C5): 30 steps with mean close
/// to the supply needed to run all three servers at 100% (~750 W).
std::unique_ptr<SteppedSupply> paper_fig19_trace();

}  // namespace willow::power
