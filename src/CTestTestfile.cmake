# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("thermal")
subdirs("power")
subdirs("workload")
subdirs("binpack")
subdirs("hier")
subdirs("net")
subdirs("core")
subdirs("sim")
subdirs("testbed")
