// Classical variable-sized bin packing — the problem FFDLR was defined for
// (Friesen & Langston, SIAM J. Comput. 15(1), 1986, the paper's [20]).
//
// Unlike the finite-surplus variant in pack.h, the classical problem offers
// an *unlimited supply* of each bin size and asks to pack all items while
// minimizing the total capacity of the bins used.  FFDLR's guarantee is
// total capacity <= (3/2) OPT + largest bin.
//
// Willow's planner uses the finite variant; this interface exists because a
// packing library without the textbook problem would be incomplete, and it
// is what the complexity benchmarks time.
#pragma once

#include <vector>

namespace willow::binpack {

struct VbpBin {
  double size = 0.0;                 ///< one of the offered bin sizes
  std::vector<std::size_t> items;    ///< indices into the input items
  double content = 0.0;              ///< sum of packed item sizes
};

struct VbpResult {
  std::vector<VbpBin> bins;
  double total_capacity = 0.0;       ///< sum of chosen bin sizes

  [[nodiscard]] std::size_t bin_count() const { return bins.size(); }
};

/// Pack all items (sizes > 0, each <= the largest offered bin size) into an
/// unlimited supply of the offered bin sizes, minimizing total capacity via
/// FFDLR: first-fit-decreasing into largest-size bins, then each bin's
/// contents repacked into the smallest size that holds them.
///
/// Throws std::invalid_argument if an item exceeds every bin size, any size
/// is non-positive, or `bin_sizes` is empty.
VbpResult vbp_ffdlr(const std::vector<double>& item_sizes,
                    const std::vector<double>& bin_sizes);

/// Trivial lower bound on the optimal total capacity: the sum of item sizes.
double vbp_lower_bound(const std::vector<double>& item_sizes);

/// Validate: all items packed exactly once, no bin over its size, every bin
/// size is one of the offered sizes, totals coherent.
bool vbp_validate(const VbpResult& result,
                  const std::vector<double>& item_sizes,
                  const std::vector<double>& bin_sizes);

}  // namespace willow::binpack
