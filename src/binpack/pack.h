// Variable-sized bin packing — Section IV-F ("Packing The Bins").
//
// Willow's migration planner reduces matching power deficits to surpluses to
// variable-sized bin packing: "The surpluses available in different nodes
// form the bins.  The bins are variable sized and the demands need to be
// fitted in them."  The paper picks FFDLR [Friesen & Langston 1986], which is
// O(n log n) and guarantees (3/2) OPT + 1 bins.
//
// Unlike the textbook problem (unlimited copies of each bin size, minimize
// capacity), the planner's bins are *finite* — each is one concrete node's
// surplus and can be used at most once — and items that fit nowhere are
// dropped (degraded mode).  pack() therefore solves the finite variant:
// maximize placed demand, prefer few bins (so emptied servers can be
// deactivated), never overfill.
//
// FFDLR here follows the paper's four steps: (1) normalize so the largest
// bin has size 1, (2) first-fit the demands in decreasing order into virtual
// unit bins, (3) repeat until all demands are handled, (4) repack the
// contents of each virtual bin into the smallest feasible real bin.  A final
// first-fit pass places any leftovers into residual capacity.
#pragma once

#include <cstdint>
#include <vector>

namespace willow::binpack {

/// A demand to be placed.  `group` carries locality (e.g. source rack); the
/// planner solves per-group subproblems first, so pack() itself treats it as
/// opaque.
struct Item {
  std::uint64_t key = 0;  ///< caller's identifier (e.g. application id)
  double size = 0.0;      ///< demand magnitude (watts); must be >= 0
  int group = 0;
};

/// A surplus that can absorb demands.  Capacity is consumed as items land.
struct Bin {
  std::uint64_t key = 0;  ///< caller's identifier (e.g. node id)
  double capacity = 0.0;  ///< must be >= 0
  int group = 0;
};

struct Assignment {
  std::size_t item;  ///< index into the input items
  std::size_t bin;   ///< index into the input bins
};

struct PackResult {
  std::vector<Assignment> assignments;
  std::vector<std::size_t> unplaced;  ///< item indices that fit nowhere
  double placed_size = 0.0;           ///< total size of placed items
  std::size_t bins_touched = 0;       ///< bins that received >= 1 item

  [[nodiscard]] bool all_placed() const { return unplaced.empty(); }
};

enum class Algorithm {
  kFfdlr,              ///< the paper's choice (Sec. IV-F)
  kFirstFit,           ///< input order, first bin that fits
  kFirstFitDecreasing, ///< FFD without the repack step
  kBestFitDecreasing,  ///< tightest-fitting bin
  kWorstFitDecreasing, ///< loosest-fitting bin (load-levelling baseline)
};

/// The float boundary every packing judgment uses: `capacity` can absorb
/// `size` when capacity + kCapacityEps >= size.  Exposed so callers that
/// reproduce pack()'s decisions against their own bin structures (the
/// controller's consolidation capacity index) judge the boundary with the
/// same epsilon and the same arithmetic form — a different form can flip a
/// verdict within a few ulps of the boundary.
inline constexpr double kCapacityEps = 1e-9;
[[nodiscard]] inline bool fits(double capacity, double size) {
  return capacity + kCapacityEps >= size;
}

/// Pack items into (single-use, finite) bins.  Never overfills; items are
/// never split.  Deterministic: ties break toward lower input index.
PackResult pack(const std::vector<Item>& items, const std::vector<Bin>& bins,
                Algorithm algorithm);

/// One virtual bin from FFDLR's steps 2+3: the items first-fit into it (in
/// placement order) and their summed size.
struct VirtualGroup {
  double content = 0.0;
  std::vector<std::size_t> items;  ///< indices into the input items
};

/// The outcome of FFDLR's virtual-bin phase against largest-bin size `cmax`.
struct VirtualGroups {
  /// Groups in the exact order step 4 repacks them: content descending,
  /// equal contents broken by lower leading item index.
  std::vector<VirtualGroup> groups;
  /// Items larger than cmax (+eps) that can never be placed, in decreasing
  /// size order — the order pack() reports them unplaced.
  std::vector<std::size_t> oversized;
};

/// FFDLR steps 2+3 in isolation: first-fit the items, in decreasing order,
/// into virtual bins of capacity `cmax`, and sort the resulting groups the
/// way step 4 consumes them.  pack(kFfdlr) is built on this; it is exposed
/// so callers that maintain their own capacity-ordered bin index (the
/// controller's consolidation fast path) can reproduce pack()'s group
/// placement bitwise without materializing the bin vector.
VirtualGroups ffdlr_virtual_groups(const std::vector<Item>& items,
                                   double cmax);

/// Validate a result against its inputs: every assignment in range, no item
/// assigned twice, no bin over capacity, placed_size/bins_touched coherent.
/// Returns true when consistent (used by tests and debug builds).
bool validate(const PackResult& result, const std::vector<Item>& items,
              const std::vector<Bin>& bins);

/// Lower bound on the number of bins any algorithm needs to place all items,
/// assuming every bin had the largest capacity: ceil(sum sizes / max cap).
std::size_t capacity_lower_bound(const std::vector<Item>& items,
                                 const std::vector<Bin>& bins);

}  // namespace willow::binpack
