# Empty dependencies file for willow_binpack.
# This may be replaced when dependencies are built.
