file(REMOVE_RECURSE
  "CMakeFiles/willow_binpack.dir/exact.cc.o"
  "CMakeFiles/willow_binpack.dir/exact.cc.o.d"
  "CMakeFiles/willow_binpack.dir/pack.cc.o"
  "CMakeFiles/willow_binpack.dir/pack.cc.o.d"
  "CMakeFiles/willow_binpack.dir/vbp.cc.o"
  "CMakeFiles/willow_binpack.dir/vbp.cc.o.d"
  "libwillow_binpack.a"
  "libwillow_binpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
