
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binpack/exact.cc" "src/binpack/CMakeFiles/willow_binpack.dir/exact.cc.o" "gcc" "src/binpack/CMakeFiles/willow_binpack.dir/exact.cc.o.d"
  "/root/repo/src/binpack/pack.cc" "src/binpack/CMakeFiles/willow_binpack.dir/pack.cc.o" "gcc" "src/binpack/CMakeFiles/willow_binpack.dir/pack.cc.o.d"
  "/root/repo/src/binpack/vbp.cc" "src/binpack/CMakeFiles/willow_binpack.dir/vbp.cc.o" "gcc" "src/binpack/CMakeFiles/willow_binpack.dir/vbp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
