file(REMOVE_RECURSE
  "libwillow_binpack.a"
)
