// Exact finite-bin packing by branch-and-bound, for small instances.
//
// Used only by tests and quality benches to verify the heuristics: Property 1
// of the paper claims FFDLR's quality bound survives Willow's locality
// constraints, and the (3/2) OPT + 1 bin bound needs a ground-truth OPT.
// Exponential in the worst case; callers keep items <= ~14.
#pragma once

#include "binpack/pack.h"

namespace willow::binpack {

struct ExactResult {
  /// Maximum total size placeable (primary objective).
  double max_placed = 0.0;
  /// Among placements achieving max_placed, the fewest bins touched
  /// (secondary objective — Willow deactivates emptied servers).
  std::size_t min_bins = 0;
  /// One witness assignment achieving both optima.
  std::vector<Assignment> assignments;
  /// Nodes explored (for complexity sanity checks in tests).
  std::size_t nodes = 0;
};

/// Exhaustively maximize placed size, then minimize bins touched.
/// Throws std::invalid_argument if items.size() > max_items (default guards
/// against accidental exponential blowups).
ExactResult exact_pack(const std::vector<Item>& items,
                       const std::vector<Bin>& bins,
                       std::size_t max_items = 16);

}  // namespace willow::binpack
