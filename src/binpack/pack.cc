#include "binpack/pack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace willow::binpack {

namespace {

void check_inputs(const std::vector<Item>& items, const std::vector<Bin>& bins) {
  for (const auto& it : items) {
    if (it.size < 0.0) throw std::invalid_argument("pack: negative item size");
  }
  for (const auto& b : bins) {
    if (b.capacity < 0.0) throw std::invalid_argument("pack: negative capacity");
  }
}

/// Item indices sorted by decreasing size; exact size ties break toward the
/// lower input index.  The tie-break is explicit (not just stable_sort's
/// preserved order) so the ordering is a documented function of the inputs
/// that callers — e.g. the controller's packing memo — can rely on.
std::vector<std::size_t> by_decreasing_size(const std::vector<Item>& items) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (items[a].size != items[b].size) return items[a].size > items[b].size;
    return a < b;
  });
  return order;
}

struct MutableBins {
  std::vector<double> residual;
  std::vector<bool> touched;

  explicit MutableBins(const std::vector<Bin>& bins)
      : residual(bins.size()), touched(bins.size(), false) {
    for (std::size_t i = 0; i < bins.size(); ++i) residual[i] = bins[i].capacity;
  }

  void place(PackResult& r, const std::vector<Item>& items, std::size_t item,
             std::size_t bin) {
    residual[bin] -= items[item].size;
    r.assignments.push_back({item, bin});
    r.placed_size += items[item].size;
    if (!touched[bin]) {
      touched[bin] = true;
      ++r.bins_touched;
    }
  }
};

// Local alias for the exported boundary epsilon (pack.h): the slack forms
// below spell the same judgment as fits(), kept in their historical
// arithmetic shape so results stay bitwise stable.
constexpr double kEps = kCapacityEps;

/// Generic one-pass heuristic over a fixed item order.
PackResult greedy(const std::vector<Item>& items, const std::vector<Bin>& bins,
                  const std::vector<std::size_t>& order, Algorithm algo) {
  PackResult result;
  MutableBins state(bins);
  for (std::size_t item : order) {
    const double size = items[item].size;
    std::size_t chosen = bins.size();
    switch (algo) {
      case Algorithm::kFirstFit:
      case Algorithm::kFirstFitDecreasing:
        for (std::size_t b = 0; b < bins.size(); ++b) {
          if (fits(state.residual[b], size)) {
            chosen = b;
            break;
          }
        }
        break;
      case Algorithm::kBestFitDecreasing: {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t b = 0; b < bins.size(); ++b) {
          const double slack = state.residual[b] - size;
          if (slack >= -kEps && slack < best) {
            best = slack;
            chosen = b;
          }
        }
        break;
      }
      case Algorithm::kWorstFitDecreasing: {
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t b = 0; b < bins.size(); ++b) {
          const double slack = state.residual[b] - size;
          if (slack >= -kEps && slack > best) {
            best = slack;
            chosen = b;
          }
        }
        break;
      }
      case Algorithm::kFfdlr:
        throw std::logic_error("greedy: FFDLR handled separately");
    }
    if (chosen < bins.size()) {
      state.place(result, items, item, chosen);
    } else {
      result.unplaced.push_back(item);
    }
  }
  return result;
}

/// FFDLR, Sec. IV-F, adapted to single-use finite bins (see pack.h).
PackResult ffdlr(const std::vector<Item>& items, const std::vector<Bin>& bins) {
  PackResult result;
  if (bins.empty()) {
    result.unplaced.resize(items.size());
    std::iota(result.unplaced.begin(), result.unplaced.end(), std::size_t{0});
    return result;
  }

  // Step 1: normalize so the largest bin has size 1.
  double cmax = 0.0;
  for (const auto& b : bins) cmax = std::max(cmax, b.capacity);
  if (cmax <= 0.0) {
    result.unplaced.resize(items.size());
    std::iota(result.unplaced.begin(), result.unplaced.end(), std::size_t{0});
    return result;
  }

  // Steps 2+3 (shared with the consolidation fast path; see pack.h).
  VirtualGroups vg = ffdlr_virtual_groups(items, cmax);
  result.unplaced = std::move(vg.oversized);
  const std::vector<VirtualGroup>& virt = vg.groups;

  // Step 4: repack each virtual bin's contents into the smallest feasible
  // real bin.  Virtual bins are taken largest-content first so the scarce
  // big real bins go to the groups that need them.
  std::vector<std::size_t> real_by_cap(bins.size());
  std::iota(real_by_cap.begin(), real_by_cap.end(), std::size_t{0});
  std::stable_sort(real_by_cap.begin(), real_by_cap.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (bins[a].capacity != bins[b].capacity) {
                       return bins[a].capacity < bins[b].capacity;
                     }
                     return a < b;
                   });

  MutableBins state(bins);
  std::vector<bool> bin_used(bins.size(), false);
  std::vector<std::size_t> leftovers;
  for (const auto& vb : virt) {
    // Smallest unused real bin that fits the whole group.
    std::size_t chosen = bins.size();
    for (std::size_t b : real_by_cap) {
      if (!bin_used[b] && fits(bins[b].capacity, vb.content)) {
        chosen = b;
        break;
      }
    }
    if (chosen < bins.size()) {
      bin_used[chosen] = true;
      for (std::size_t item : vb.items) {
        state.place(result, items, item, chosen);
      }
    } else {
      // No single unused bin can hold the group; retry its items singly below.
      leftovers.insert(leftovers.end(), vb.items.begin(), vb.items.end());
    }
  }

  // Final pass: leftovers (still in decreasing order within each group) go
  // best-fit into remaining residual capacity, including bins already used —
  // the planner prefers filling servers completely (Sec. IV-F: "repacking
  // into smaller bins means we try to run every server at full utilization").
  std::stable_sort(leftovers.begin(), leftovers.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (items[a].size != items[b].size) {
                       return items[a].size > items[b].size;
                     }
                     return a < b;
                   });
  for (std::size_t item : leftovers) {
    const double size = items[item].size;
    std::size_t chosen = bins.size();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < bins.size(); ++b) {
      const double slack = state.residual[b] - size;
      if (slack >= -kEps && slack < best) {
        best = slack;
        chosen = b;
      }
    }
    if (chosen < bins.size()) {
      state.place(result, items, item, chosen);
    } else {
      result.unplaced.push_back(item);
    }
  }
  return result;
}

}  // namespace

VirtualGroups ffdlr_virtual_groups(const std::vector<Item>& items,
                                   double cmax) {
  VirtualGroups out;

  // Items larger than the largest bin can never be placed.
  std::vector<std::size_t> order;
  for (std::size_t i : by_decreasing_size(items)) {
    if (!fits(cmax, items[i].size)) {
      out.oversized.push_back(i);
    } else {
      order.push_back(i);
    }
  }

  // Step 2+3: first-fit decreasing into virtual bins of (normalized) size 1.
  for (std::size_t item : order) {
    const double size = items[item].size;
    bool placed = false;
    for (auto& vb : out.groups) {
      if (fits(cmax, vb.content + size)) {
        vb.content += size;
        vb.items.push_back(item);
        placed = true;
        break;
      }
    }
    if (!placed) {
      out.groups.push_back({size, {item}});
    }
  }

  // Step 4's consumption order: largest content first.  Equal content: the
  // earlier-created group (lower leading item index) first — explicit, not
  // relying on stability alone.
  std::stable_sort(out.groups.begin(), out.groups.end(),
                   [](const VirtualGroup& a, const VirtualGroup& b) {
                     if (a.content != b.content) return a.content > b.content;
                     return a.items.front() < b.items.front();
                   });
  return out;
}

PackResult pack(const std::vector<Item>& items, const std::vector<Bin>& bins,
                Algorithm algorithm) {
  check_inputs(items, bins);
  switch (algorithm) {
    case Algorithm::kFfdlr:
      return ffdlr(items, bins);
    case Algorithm::kFirstFit: {
      std::vector<std::size_t> order(items.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      return greedy(items, bins, order, algorithm);
    }
    case Algorithm::kFirstFitDecreasing:
    case Algorithm::kBestFitDecreasing:
    case Algorithm::kWorstFitDecreasing:
      return greedy(items, bins, by_decreasing_size(items), algorithm);
  }
  throw std::invalid_argument("pack: unknown algorithm");
}

bool validate(const PackResult& result, const std::vector<Item>& items,
              const std::vector<Bin>& bins) {
  std::vector<bool> seen(items.size(), false);
  std::vector<double> load(bins.size(), 0.0);
  std::vector<bool> touched(bins.size(), false);
  double placed = 0.0;
  for (const auto& a : result.assignments) {
    if (a.item >= items.size() || a.bin >= bins.size()) return false;
    if (seen[a.item]) return false;
    seen[a.item] = true;
    load[a.bin] += items[a.item].size;
    touched[a.bin] = true;
    placed += items[a.item].size;
  }
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (load[b] > bins[b].capacity + 1e-6) return false;
  }
  for (std::size_t u : result.unplaced) {
    if (u >= items.size() || seen[u]) return false;
    seen[u] = true;
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  if (std::abs(placed - result.placed_size) > 1e-6) return false;
  std::size_t t = 0;
  for (bool b : touched) t += b ? 1 : 0;
  return t == result.bins_touched;
}

std::size_t capacity_lower_bound(const std::vector<Item>& items,
                                 const std::vector<Bin>& bins) {
  double total = 0.0;
  for (const auto& it : items) total += it.size;
  double cmax = 0.0;
  for (const auto& b : bins) cmax = std::max(cmax, b.capacity);
  if (total <= 0.0) return 0;
  if (cmax <= 0.0) return items.empty() ? 0 : std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(std::ceil(total / cmax - 1e-9));
}

}  // namespace willow::binpack
