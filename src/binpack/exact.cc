#include "binpack/exact.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace willow::binpack {

namespace {
constexpr double kEps = 1e-9;

struct Search {
  const std::vector<Item>& items;
  const std::vector<Bin>& bins;
  std::vector<std::size_t> order;      // items by decreasing size
  std::vector<double> residual;
  std::vector<int> bin_items;          // items currently in each bin
  std::vector<std::size_t> current;    // current[i] = bin or bins.size()
  std::vector<double> suffix_sum;      // sum of sizes from order[i..]

  double best_placed = -1.0;
  std::size_t best_bins = 0;
  std::vector<std::size_t> best_assign;
  std::size_t nodes = 0;

  Search(const std::vector<Item>& it, const std::vector<Bin>& b)
      : items(it), bins(b), residual(b.size()), bin_items(b.size(), 0),
        current(it.size(), b.size()) {
    order.resize(items.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return items[x].size > items[y].size;
                     });
    for (std::size_t i = 0; i < bins.size(); ++i) residual[i] = bins[i].capacity;
    suffix_sum.assign(items.size() + 1, 0.0);
    for (std::size_t i = items.size(); i-- > 0;) {
      suffix_sum[i] = suffix_sum[i + 1] + items[order[i]].size;
    }
  }

  [[nodiscard]] std::size_t bins_touched() const {
    std::size_t t = 0;
    for (int c : bin_items) t += c > 0 ? 1 : 0;
    return t;
  }

  void consider(double placed) {
    const std::size_t touched = bins_touched();
    if (placed > best_placed + kEps ||
        (placed > best_placed - kEps && touched < best_bins)) {
      best_placed = std::max(placed, best_placed);
      best_bins = touched;
      best_assign = current;
    }
  }

  void dfs(std::size_t depth, double placed) {
    ++nodes;
    if (depth == order.size()) {
      consider(placed);
      return;
    }
    // Bound: even placing every remaining item cannot beat the incumbent.
    if (placed + suffix_sum[depth] < best_placed - kEps) return;

    const std::size_t item = order[depth];
    const double size = items[item].size;

    // Try each distinct feasible bin.  Bins with identical residuals are
    // symmetric; skip repeats to tame the branching factor.
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (residual[b] + kEps < size) continue;
      bool symmetric_repeat = false;
      for (std::size_t p = 0; p < b; ++p) {
        if (std::abs(residual[p] - residual[b]) < kEps &&
            std::abs(bins[p].capacity - bins[b].capacity) < kEps) {
          symmetric_repeat = true;
          break;
        }
      }
      if (symmetric_repeat) continue;
      residual[b] -= size;
      ++bin_items[b];
      current[item] = b;
      dfs(depth + 1, placed + size);
      current[item] = bins.size();
      --bin_items[b];
      residual[b] += size;
    }
    // Or leave the item unplaced.
    dfs(depth + 1, placed);
  }
};
}  // namespace

ExactResult exact_pack(const std::vector<Item>& items,
                       const std::vector<Bin>& bins, std::size_t max_items) {
  if (items.size() > max_items) {
    throw std::invalid_argument("exact_pack: instance too large");
  }
  for (const auto& it : items) {
    if (it.size < 0.0) throw std::invalid_argument("exact_pack: negative size");
  }
  Search s(items, bins);
  s.dfs(0, 0.0);
  ExactResult r;
  r.max_placed = std::max(0.0, s.best_placed);
  r.min_bins = s.best_bins;
  r.nodes = s.nodes;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (s.best_assign.size() == items.size() && s.best_assign[i] < bins.size()) {
      r.assignments.push_back({i, s.best_assign[i]});
    }
  }
  return r;
}

}  // namespace willow::binpack
