#include "binpack/vbp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace willow::binpack {

namespace {
constexpr double kEps = 1e-9;
}

VbpResult vbp_ffdlr(const std::vector<double>& item_sizes,
                    const std::vector<double>& bin_sizes) {
  if (bin_sizes.empty()) {
    throw std::invalid_argument("vbp_ffdlr: no bin sizes offered");
  }
  for (double s : bin_sizes) {
    if (!(s > 0.0)) throw std::invalid_argument("vbp_ffdlr: bin size <= 0");
  }
  const double largest = *std::max_element(bin_sizes.begin(), bin_sizes.end());
  for (double s : item_sizes) {
    if (!(s > 0.0)) throw std::invalid_argument("vbp_ffdlr: item size <= 0");
    if (s > largest + kEps) {
      throw std::invalid_argument("vbp_ffdlr: item exceeds every bin size");
    }
  }

  // Phase 1: first-fit decreasing into bins of the largest size.
  std::vector<std::size_t> order(item_sizes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return item_sizes[a] > item_sizes[b];
  });
  VbpResult result;
  for (std::size_t item : order) {
    bool placed = false;
    for (auto& bin : result.bins) {
      if (bin.content + item_sizes[item] <= largest + kEps) {
        bin.items.push_back(item);
        bin.content += item_sizes[item];
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.bins.push_back({largest, {item}, item_sizes[item]});
    }
  }

  // Phase 2 ("LR"): repack each bin's contents into the smallest offered
  // size that holds them.
  std::vector<double> sizes_sorted = bin_sizes;
  std::sort(sizes_sorted.begin(), sizes_sorted.end());
  for (auto& bin : result.bins) {
    for (double s : sizes_sorted) {
      if (bin.content <= s + kEps) {
        bin.size = s;
        break;
      }
    }
    result.total_capacity += bin.size;
  }
  return result;
}

double vbp_lower_bound(const std::vector<double>& item_sizes) {
  return std::accumulate(item_sizes.begin(), item_sizes.end(), 0.0);
}

bool vbp_validate(const VbpResult& result,
                  const std::vector<double>& item_sizes,
                  const std::vector<double>& bin_sizes) {
  std::vector<bool> seen(item_sizes.size(), false);
  double capacity = 0.0;
  for (const auto& bin : result.bins) {
    if (std::none_of(bin_sizes.begin(), bin_sizes.end(), [&](double s) {
          return std::abs(s - bin.size) < kEps;
        })) {
      return false;
    }
    double content = 0.0;
    for (std::size_t item : bin.items) {
      if (item >= item_sizes.size() || seen[item]) return false;
      seen[item] = true;
      content += item_sizes[item];
    }
    if (std::abs(content - bin.content) > 1e-6) return false;
    if (content > bin.size + 1e-6) return false;
    capacity += bin.size;
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  return std::abs(capacity - result.total_capacity) < 1e-6;
}

}  // namespace willow::binpack
