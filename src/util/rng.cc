#include "util/rng.h"

namespace willow::util {

std::uint64_t splitmix64_mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  // Fold each coordinate through the full mix with distinct odd offsets so
  // (seed, a, b, c) and permutations of it key different streams.
  std::uint64_t h = splitmix64_mix(seed + 0x9E3779B97F4A7C15ULL);
  h = splitmix64_mix(h ^ (a + 0xBF58476D1CE4E5B9ULL));
  h = splitmix64_mix(h ^ (b + 0x94D049BB133111EBULL));
  h = splitmix64_mix(h ^ (c + 0xD6E8FEB86659FD93ULL));
  return h;
}

}  // namespace willow::util
