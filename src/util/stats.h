// Small statistics helpers used by the metric recorders and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace willow::util {

/// Streaming mean/variance/min/max (Welford's algorithm); O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  RunningStats& operator+=(const RunningStats& o) {
    if (o.n_ == 0) return *this;
    if (n_ == 0) {
      *this = o;
      return *this;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * o.mean_) / (na + nb);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    return *this;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A recorded scalar time series: (t, value) samples in arrival order.
class TimeSeries {
 public:
  void record(double t, double value) {
    times_.push_back(t);
    values_.push_back(value);
    stats_.add(value);
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }

  [[nodiscard]] double at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] double last() const {
    if (values_.empty()) throw std::out_of_range("TimeSeries::last: empty");
    return values_.back();
  }

  /// Mean over samples with t in [t0, t1].
  [[nodiscard]] double mean_between(double t0, double t1) const {
    RunningStats s;
    for (std::size_t i = 0; i < times_.size(); ++i) {
      if (times_[i] >= t0 && times_[i] <= t1) s.add(values_[i]);
    }
    return s.mean();
  }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
  RunningStats stats_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    if (!(hi > lo) || buckets == 0) {
      throw std::invalid_argument("Histogram: bad range or bucket count");
    }
  }

  void add(double x) {
    const double f = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<std::ptrdiff_t>(f * static_cast<double>(counts_.size()));
    b = std::clamp<std::ptrdiff_t>(b, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(b)];
    ++total_;
  }

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t b) const { return counts_.at(b); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_low(std::size_t b) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace willow::util
