// Minimal leveled logger.
//
// The simulator is deterministic and its results are reported through metric
// recorders, so logging exists for narrative traces (what migrated where and
// why) rather than data.  Off by default; benches/examples raise the level.
#pragma once

#include <sstream>
#include <string>

namespace willow::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` (already filtered by the macros below).
void log_message(LogLevel level, const std::string& text);

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel l) : level(l) {}
  ~LogLine() { log_message(level, os.str()); }
};
}  // namespace detail

}  // namespace willow::util

#define WILLOW_LOG(level_enum)                                      \
  if (::willow::util::log_level() < (level_enum)) {                 \
  } else                                                            \
    ::willow::util::detail::LogLine(level_enum).os

#define WILLOW_ERROR() WILLOW_LOG(::willow::util::LogLevel::kError)
#define WILLOW_WARN() WILLOW_LOG(::willow::util::LogLevel::kWarn)
#define WILLOW_INFO() WILLOW_LOG(::willow::util::LogLevel::kInfo)
#define WILLOW_DEBUG() WILLOW_LOG(::willow::util::LogLevel::kDebug)
#define WILLOW_TRACE() WILLOW_LOG(::willow::util::LogLevel::kTrace)
