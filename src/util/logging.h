// Leveled narrative logging behind an injectable sink.
//
// The simulator is deterministic and its results are reported through metric
// recorders and the obs event bus, so logging exists for narrative traces
// (what migrated where and why) rather than data.  Call sites use the
// WILLOW_* macros; where those lines *go* is decided by the installed
// LogSink:
//
//   * the built-in default writes to stderr (off until raised, exactly the
//     old process-wide behaviour — set_log_level() still works as a shim),
//   * obs::BusLogSink routes lines through an EventBus as kLog events so a
//     JSONL trace interleaves the narrative with the typed event stream,
//   * tests install their own sink to capture output without touching fds.
//
// The macro filters on the sink's level() before evaluating the stream
// expression, so suppressed lines cost one load and one compare.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace willow::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Where WILLOW_* lines go.  Implementations must tolerate concurrent
/// write() calls (sharded phases may log from workers).
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// Messages above this threshold are discarded before formatting.
  [[nodiscard]] virtual LogLevel level() const = 0;
  virtual void write(LogLevel level, const std::string& text) = 0;
};

/// The built-in default: mutex-serialized "[willow LEVEL] ..." lines on
/// stderr, threshold kOff until raised.
class StderrLogSink final : public LogSink {
 public:
  explicit StderrLogSink(LogLevel level = LogLevel::kOff);
  [[nodiscard]] LogLevel level() const override;
  void set_level(LogLevel level);
  void write(LogLevel level, const std::string& text) override;

 private:
  std::atomic<LogLevel> level_;
  std::mutex mutex_;
};

/// The currently installed sink; never null (defaults to the stderr sink).
[[nodiscard]] LogSink* log_sink();
/// Install `sink` for the WILLOW_* macros (not owned; must outlive its
/// installation).  nullptr restores the built-in stderr sink.  Returns the
/// previously installed sink so callers can scope the swap.
LogSink* set_log_sink(LogSink* sink);
/// The built-in stderr sink (for level adjustments while it is installed).
[[nodiscard]] StderrLogSink& default_log_sink();

/// Legacy shims: adjust/read the threshold of the *built-in* sink.  Existing
/// call sites (benches, examples) keep working; code that installed a custom
/// sink manages that sink's level itself.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a message through the installed sink (already level-filtered by the
/// macros below).
void log_message(LogLevel level, const std::string& text);

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel l) : level(l) {}
  ~LogLine() { log_message(level, os.str()); }
};
}  // namespace detail

}  // namespace willow::util

#define WILLOW_LOG(level_enum)                                      \
  if (::willow::util::log_sink()->level() < (level_enum)) {         \
  } else                                                            \
    ::willow::util::detail::LogLine(level_enum).os

#define WILLOW_ERROR() WILLOW_LOG(::willow::util::LogLevel::kError)
#define WILLOW_WARN() WILLOW_LOG(::willow::util::LogLevel::kWarn)
#define WILLOW_INFO() WILLOW_LOG(::willow::util::LogLevel::kInfo)
#define WILLOW_DEBUG() WILLOW_LOG(::willow::util::LogLevel::kDebug)
#define WILLOW_TRACE() WILLOW_LOG(::willow::util::LogLevel::kTrace)
