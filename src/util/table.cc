#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace willow::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(std::string v) {
  if (rows_.empty()) row();
  rows_.back().emplace_back(std::move(v));
  return *this;
}

Table& Table::add(const char* v) { return add(std::string(v)); }

Table& Table::add(double v) {
  if (rows_.empty()) row();
  rows_.back().emplace_back(v);
  return *this;
}

Table& Table::add(long long v) {
  if (rows_.empty()) row();
  rows_.back().emplace_back(v);
  return *this;
}

std::string Table::format_cell(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<long long>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& r : rows_) {
    auto& out = rendered.emplace_back();
    for (std::size_t i = 0; i < r.size(); ++i) {
      out.push_back(format_cell(r[i]));
      if (i < widths.size()) widths[i] = std::max(widths[i], out.back().size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      const std::string& text = i < cells.size() ? cells[i] : std::string{};
      os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[i]))
         << text;
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rendered) emit(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? "," : "") << csv_escape(columns_[i]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i ? "," : "") << csv_escape(format_cell(r[i]));
    }
    os << '\n';
  }
}

bool Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace willow::util
