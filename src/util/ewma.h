// Exponentially weighted moving average — Eq. (4) of the paper:
//
//   CP = alpha * CP_now + (1 - alpha) * CP_old,   0 < alpha < 1.
//
// Used to smooth per-node power-demand observations before the supply side
// divides budgets proportionally to demand.  The paper notes that ARIMA-class
// models are possible but simple exponential smoothing is "often adequate".
#pragma once

#include <stdexcept>

namespace willow::util {

template <typename T>
class Ewma {
 public:
  /// @param alpha smoothing weight of the newest sample, in (0, 1].
  ///        alpha == 1 degenerates to "no smoothing" (pass-through).
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
      throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
    }
  }

  /// Feed one observation; returns the updated smoothed value.
  /// The first observation initializes the state (no bias toward zero).
  T update(T sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  [[nodiscard]] T value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Forget all history; the next update() re-seeds.
  void reset() {
    seeded_ = false;
    value_ = T{};
  }

 private:
  double alpha_;
  T value_{};
  bool seeded_ = false;
};

}  // namespace willow::util
