// Minimal JSON writer — enough to export simulation results for downstream
// analysis (pandas, jq) without dragging in a dependency.
//
// Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("ticks").value(60);
//   w.key("series").begin_array();
//   for (double v : xs) w.value(v);
//   w.end_array();
//   w.end_object();
//
// The writer validates nesting (begin/end mismatch throws) and emits commas
// and string escaping correctly.  Numbers are written with enough precision
// to round-trip doubles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace willow::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  /// Destructor does NOT auto-close containers; callers must end what they
  /// begin (checked by finish()).
  ~JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be inside an object and followed by exactly one value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + numeric array in one call.
  JsonWriter& number_array(const std::string& name,
                           const std::vector<double>& values);

  /// Throws std::logic_error if any container is still open.
  void finish() const;

 private:
  enum class Frame { kObject, kArray };

  void before_value();
  void write_escaped(const std::string& s);

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace willow::util
