#include "util/thread_pool.h"

#include <algorithm>

namespace willow::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait_idle();
}

void parallel_for_ranges(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    body(0, n);
    return;
  }
  // A few chunks per worker smooths out uneven per-index cost without
  // flooding the queue.
  const std::size_t chunks =
      std::min(n, std::max<std::size_t>(1, pool->size() * 4));
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    pool->submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  pool->wait_idle();
}

}  // namespace willow::util
