#include "util/thread_pool.h"

#include <algorithm>

namespace willow::util {
namespace {

/// Bounded spin before a worker falls back to the condvar.  The tick engine
/// issues batches every few hundred microseconds; catching the next one
/// without a futex round-trip is what lets modest fleets break even.  ~8 us
/// on current hardware — long enough to bridge the serial apply phases
/// between fan-outs, short enough not to matter when the pool goes idle.
constexpr int kSpinIters = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

constexpr std::uint64_t kChunkMask = 0xffffffffULL;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  hw_threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads == 0) threads = hw_threads_;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::size_t pending = in_flight_.load(std::memory_order_acquire);
  while (pending != 0) {
    in_flight_.wait(pending, std::memory_order_acquire);
    pending = in_flight_.load(std::memory_order_acquire);
  }
}

std::size_t ThreadPool::chunk_count(std::size_t n, std::size_t pool_size) {
  // A few chunks per worker smooths out uneven per-index cost without
  // inflating claim traffic.
  return std::min(n, std::max<std::size_t>(1, pool_size * 4));
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_bounds(std::size_t n,
                                                             std::size_t chunks,
                                                             std::size_t c) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = c * base + std::min(c, extra);
  return {begin, begin + base + (c < extra ? 1 : 0)};
}

void ThreadPool::run_batch(std::size_t n, const RangeBody& body) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n, size());
  // One hardware thread (or a trivial partition): waking workers only adds
  // context switches on the core the caller already holds, so execute the
  // same partition inline.  Results are identical either way — the partition
  // does not depend on who runs it.
  if (chunks <= 1 || workers_.size() <= 1 ||
      (hw_threads_ <= 1 && !force_dispatch_)) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = chunk_bounds(n, chunks, c);
      body(begin, end);
    }
    return;
  }

  std::uint32_t gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    gen = ++batch_gen_;
    batch_body_ = &body;
    batch_n_ = n;
    batch_chunks_ = chunks;
    batch_done_.store(0, std::memory_order_relaxed);
    batch_ticket_.store(static_cast<std::uint64_t>(gen) << 32,
                        std::memory_order_release);
  }
  cv_task_.notify_all();  // the single wake for the whole batch

  // The producer is a participant: it claims chunks like any worker, so the
  // batch completes even if every worker is busy (or asleep on a one-core
  // host under force_dispatch_).
  work_chunks(&body, n, chunks, gen);

  // Wait for stragglers still finishing claimed chunks.  Usually zero wait:
  // the producer tends to run the last chunk itself.
  std::size_t done = batch_done_.load(std::memory_order_acquire);
  while (done != chunks) {
    batch_done_.wait(done, std::memory_order_acquire);
    done = batch_done_.load(std::memory_order_acquire);
  }
}

void ThreadPool::work_chunks(const RangeBody* body, std::size_t n,
                             std::size_t chunks, std::uint32_t gen) {
  // `body` is dereferenced only after a successful claim: a claim proves the
  // producer is still blocked inside run_batch (it cannot return before
  // batch_done_ reaches batch_chunks_), so the pointee is alive.
  for (;;) {
    std::uint64_t ticket = batch_ticket_.load(std::memory_order_acquire);
    for (;;) {
      if (static_cast<std::uint32_t>(ticket >> 32) != gen) return;
      if ((ticket & kChunkMask) >= chunks) return;
      if (batch_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        break;
      }
    }
    const auto [begin, end] =
        chunk_bounds(n, chunks, static_cast<std::size_t>(ticket & kChunkMask));
    (*body)(begin, end);
    if (batch_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint32_t seen_gen = 0;
  for (;;) {
    // Spin briefly for the next batch before sleeping; see kSpinIters.
    // Never spin on a single hardware thread — it would steal the core from
    // the producer.
    if (hw_threads_ > 1) {
      for (int s = 0; s < kSpinIters; ++s) {
        const std::uint64_t ticket =
            batch_ticket_.load(std::memory_order_acquire);
        if (static_cast<std::uint32_t>(ticket >> 32) != seen_gen) break;
        if (stop_.load(std::memory_order_relaxed)) break;
        if (in_flight_.load(std::memory_order_relaxed) > 0) break;
        cpu_relax();
      }
    }

    const RangeBody* body = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::uint32_t gen = 0;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               batch_gen_ != seen_gen || !queue_.empty();
      });
      if (batch_gen_ != seen_gen) {
        // Snapshot the descriptor under the lock: a worker late to one batch
        // can never observe the next one's fields half-written.
        seen_gen = batch_gen_;
        gen = batch_gen_;
        body = batch_body_;
        n = batch_n_;
        chunks = batch_chunks_;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else {
        return;  // stop requested and nothing left to do
      }
    }
    if (body != nullptr) {
      work_chunks(body, n, chunks, gen);
      continue;
    }
    task();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      in_flight_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  parallel_for_ranges(&pool, n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

void parallel_for_ranges(ThreadPool* pool, std::size_t n,
                         const ThreadPool::RangeBody& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    body(0, n);
    return;
  }
  pool->run_batch(n, body);
}

}  // namespace willow::util
