// Deterministic random-number utilities.
//
// Every stochastic element of the simulator (Poisson demand, application
// mixes, sensor noise) draws from a Rng seeded explicitly by the scenario, so
// every experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace willow::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Poisson sample with the given mean (the paper models per-node power
  /// demand as Poisson-distributed, Sec. V-B1).
  int poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation (sensor noise).
  double gaussian(double stddev) {
    if (stddev <= 0.0) return 0.0;
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Exponential sample with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick a uniformly random index into a container of size n (n > 0).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (stable: depends only on parent seed
  /// sequence position).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace willow::util
