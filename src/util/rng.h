// Deterministic random-number utilities.
//
// Every stochastic element of the simulator (Poisson demand, application
// mixes, sensor noise) draws from a Rng seeded explicitly by the scenario, so
// every experiment in EXPERIMENTS.md is exactly reproducible.
//
// Two kinds of generators:
//
//  * Rng — the sequential scenario generator (mt19937_64).  One stream per
//    scenario; draws depend on everything drawn before them.  Used for
//    one-shot construction work (building application mixes, calibration
//    noise) where ordering is naturally serial.
//
//  * StreamRng — counter-based splittable streams for the parallel tick
//    engine.  A stream is keyed by (seed, tick, server, phase) through
//    stream_seed(); the draws of one stream are completely independent of
//    any other stream and of the order streams are consumed in.  This is
//    what makes the sharded per-server simulation phases bit-deterministic
//    for any thread count: thread scheduling can reorder *which* stream is
//    sampled first, but never what any stream yields.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace willow::util {

/// SplitMix64 finalizer: a high-quality 64-bit mix (Steele et al., "Fast
/// splittable pseudorandom number generators").  Stateless; used both to key
/// streams and as the per-draw output function of SplitMix64Engine.
[[nodiscard]] std::uint64_t splitmix64_mix(std::uint64_t x);

/// Derive the seed of an independent counter-based stream from a scenario
/// seed and up to three coordinates (e.g. tick, server index, phase tag).
/// Collision-resistant in practice: each coordinate passes through the full
/// 64-bit mix before being combined.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                                        std::uint64_t b = 0,
                                        std::uint64_t c = 0);

/// Phase tags for the per-server tick streams (keep values stable: they are
/// part of the reproducibility contract of recorded experiments).
namespace stream_phase {
inline constexpr std::uint64_t kChurn = 1;   ///< churn arrival/departure draws
inline constexpr std::uint64_t kDemand = 2;  ///< Poisson demand refresh
inline constexpr std::uint64_t kFault = 3;   ///< report-loss sampling
inline constexpr std::uint64_t kLinkUp = 4;    ///< up-link fault verdicts
inline constexpr std::uint64_t kLinkDown = 5;  ///< down-link fault verdicts
inline constexpr std::uint64_t kSensor = 6;    ///< sensor fault onset/params
inline constexpr std::uint64_t kCrash = 7;     ///< server crash sampling
}  // namespace stream_phase

/// Counter-based engine: state is a bare counter, output is splitmix64_mix of
/// it.  Satisfies UniformRandomBitGenerator; construction is two stores (no
/// mt19937-style state-table initialization), so creating one engine per
/// (tick, server, phase) is cheap enough for the hot loop.
class SplitMix64Engine {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64Engine(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    state_ += 0x9E3779B97F4A7C15ULL;
    return splitmix64_mix(state_);
  }

 private:
  std::uint64_t state_;
};

/// Distribution helpers over any UniformRandomBitGenerator engine.
template <typename Engine>
class BasicRng {
 public:
  explicit BasicRng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Poisson sample with the given mean (the paper models per-node power
  /// demand as Poisson-distributed, Sec. V-B1).
  int poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation (sensor noise).
  double gaussian(double stddev) {
    if (stddev <= 0.0) return 0.0;
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Exponential sample with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick a uniformly random index into a container of size n (n > 0).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (stable: depends only on parent seed
  /// sequence position).
  BasicRng fork() { return BasicRng(engine_()); }

  Engine& engine() { return engine_; }

 private:
  Engine engine_;
};

/// The sequential scenario generator (construction-time randomness).
using Rng = BasicRng<std::mt19937_64>;

/// One counter-based splittable stream (tick-engine randomness).
using StreamRng = BasicRng<SplitMix64Engine>;

/// The per-server stream of one tick phase.
[[nodiscard]] inline StreamRng tick_stream(std::uint64_t seed,
                                           std::uint64_t tick,
                                           std::uint64_t server,
                                           std::uint64_t phase) {
  return StreamRng(stream_seed(seed, tick, server, phase));
}

}  // namespace willow::util
