// Fixed-size worker pool with blocking parallel_for / parallel_for_ranges.
//
// Two kinds of callers fan out here: the bench harnesses, which sweep
// independent scenarios (utilization points, seeds, margin values), and the
// simulation tick engine, which shards its per-server phases (demand refresh,
// thermal stepping, churn sampling) across workers a few times per tick.
//
// The fan-out path is a *batch engine*, not a task queue.  A queue costs one
// heap-allocated std::function plus two mutex round-trips per task; at a few
// fan-outs per tick over sub-millisecond phases that overhead made threads>1
// measurably slower than serial (see DESIGN.md §8).  Instead, run_batch
// publishes one generation-counted batch descriptor (body pointer, n, chunk
// count) and wakes the persistent workers once; the caller and the workers
// then *claim* chunks of the pure partition of [0, n) from a single atomic
// ticket, and a single atomic countdown signals completion.  Per batch:
// zero allocations, one mutex acquisition by the producer, one wake.
//
// Determinism: the chunk partition is a pure function of (n, pool size) —
// chunk_count / chunk_bounds below — and never depends on which participant
// executes a chunk or when.  Callers that write per-index (or per-chunk)
// slots and reduce serially get bit-identical results for any schedule.
//
// Single-core hosts: when the machine has one hardware thread, waking
// workers only adds context switches, so run_batch executes the partition
// inline on the caller — threads>1 then costs the same as threads=1 and the
// byte-identical-results contract is unchanged.  set_force_worker_dispatch
// lets tests exercise the concurrent path regardless.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace willow::util {

class ThreadPool {
 public:
  /// body(begin, end) over one contiguous chunk of a batch's index space.
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// @param threads worker count; 0 means std::thread::hardware_concurrency()
  ///        (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker eventually.  The queue path exists
  /// for irregular background work; per-tick fan-outs use run_batch.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.  Batches complete
  /// synchronously inside run_batch and never appear here.
  void wait_idle();

  /// Execute `body` over the chunk partition of [0, n); blocks until every
  /// chunk has run.  The caller participates in executing chunks, so this
  /// completes even on a pool whose workers are busy with queued tasks.
  /// Must be called from one orchestrating thread at a time (the tick loop);
  /// nested run_batch from inside a body is not supported.
  void run_batch(std::size_t n, const RangeBody& body);

  /// Number of chunks [0, n) is split into for a pool of `pool_size`
  /// workers: min(n, pool_size * 4), at least 1.  Pure function — the
  /// partition cannot depend on scheduling.
  [[nodiscard]] static std::size_t chunk_count(std::size_t n,
                                               std::size_t pool_size);

  /// Half-open bounds of chunk `c` of the partition of [0, n) into `chunks`
  /// chunks: contiguous, sizes differing by at most one, pure in all
  /// arguments.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_bounds(
      std::size_t n, std::size_t chunks, std::size_t c);

  /// Testing hook: dispatch batches to the workers even where run_batch
  /// would run inline (single hardware thread), so the concurrent claim /
  /// countdown machinery can be exercised (and TSan-checked) anywhere.
  void set_force_worker_dispatch(bool force) { force_dispatch_ = force; }

 private:
  void worker_loop();
  /// Claim-and-run loop shared by the producer and the workers: take chunks
  /// from batch_ticket_ while it still names generation `gen`.  `body` is
  /// dereferenced only after a successful claim (see the .cc for why that
  /// keeps a late worker off a dead batch's pointee).
  void work_chunks(const RangeBody* body, std::size_t n, std::size_t chunks,
                   std::uint32_t gen);

  std::vector<std::thread> workers_;
  std::size_t hw_threads_ = 1;
  bool force_dispatch_ = false;

  // Producer/worker handshake.  The descriptor fields are published under
  // mutex_ (workers snapshot them under the same lock, so a late worker can
  // never see a half-written batch); the hot per-chunk traffic runs on the
  // two padded atomics below, off the lock.
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::queue<std::function<void()>> queue_;
  std::atomic<bool> stop_{false};
  std::uint32_t batch_gen_ = 0;       ///< guarded by mutex_
  const RangeBody* batch_body_ = nullptr;  ///< guarded by mutex_
  std::size_t batch_n_ = 0;           ///< guarded by mutex_
  std::size_t batch_chunks_ = 0;      ///< guarded by mutex_

  /// (generation << 32) | next-unclaimed-chunk.  Packing the generation into
  /// the claim word makes a stale claim impossible: a worker descheduled
  /// between snapshotting one batch and claiming cannot consume a chunk of
  /// the next one.  Padded — this line and batch_done_'s are the only
  /// cache-line traffic during a batch.
  alignas(64) std::atomic<std::uint64_t> batch_ticket_{0};
  /// Chunks completed in the current batch; the single countdown the
  /// producer blocks on.
  alignas(64) std::atomic<std::size_t> batch_done_{0};
  /// Tasks submitted and not yet finished (queue path only).
  alignas(64) std::atomic<std::size_t> in_flight_{0};
};

/// Run body(i) for i in [0, n), partitioned across `pool`; blocks until done.
/// Routed through the chunked batch engine (one claim per chunk, not one
/// queue operation per index) while keeping per-index call semantics.
/// Exceptions thrown by `body` terminate (tasks must not throw); scenario
/// code reports failures through its results instead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Run body(begin, end) over a partition of [0, n) into contiguous chunks
/// (a few per worker); blocks until done.  The partition is a pure function
/// of (n, pool.size()) — it does not depend on scheduling — so callers that
/// reduce per-chunk results indexed by chunk get identical partials on every
/// run.  With a null pool or a pool of size <= 1 the body runs inline on the
/// caller as the single chunk [0, n).
void parallel_for_ranges(ThreadPool* pool, std::size_t n,
                         const ThreadPool::RangeBody& body);

}  // namespace willow::util
