// Fixed-size worker pool with blocking parallel_for / parallel_for_ranges.
//
// Two kinds of callers fan out here: the bench harnesses, which sweep
// independent scenarios (utilization points, seeds, margin values), and the
// simulation tick engine, which shards its per-server phases (demand refresh,
// thermal stepping, churn sampling) across workers once per tick.  The
// chunked parallel_for_ranges exists for the latter: it enqueues one task per
// chunk instead of one per index, so a 1000-server phase costs a handful of
// queue operations rather than a thousand.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace willow::util {

class ThreadPool {
 public:
  /// @param threads worker count; 0 means std::thread::hardware_concurrency()
  ///        (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker eventually.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n), partitioned across `pool`; blocks until done.
/// Exceptions thrown by `body` terminate (tasks must not throw); scenario
/// code reports failures through its results instead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Run body(begin, end) over a partition of [0, n) into contiguous chunks
/// (a few per worker); blocks until done.  The partition is a pure function
/// of (n, pool.size()) — it does not depend on scheduling — so callers that
/// reduce per-chunk results indexed by chunk get identical partials on every
/// run.  With a null pool or n small enough for one chunk the body runs
/// inline on the caller.
void parallel_for_ranges(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace willow::util
