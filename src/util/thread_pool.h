// Fixed-size worker pool with a blocking parallel_for.
//
// The simulator itself is sequential (a control period is a causal chain:
// demand -> reports -> budgets -> migrations), but the bench harnesses sweep
// independent scenarios (utilization points, seeds, margin values); those
// sweeps fan out across hardware threads here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace willow::util {

class ThreadPool {
 public:
  /// @param threads worker count; 0 means std::thread::hardware_concurrency()
  ///        (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker eventually.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n), partitioned across `pool`; blocks until done.
/// Exceptions thrown by `body` terminate (tasks must not throw); scenario
/// code reports failures through its results instead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace willow::util
