#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace willow::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "     ";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& text) {
  if (log_level() < level) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[willow " << level_name(level) << "] " << text << '\n';
}

}  // namespace willow::util
