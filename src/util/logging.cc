#include "util/logging.h"

#include <iostream>

namespace willow::util {

namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "     ";
  }
}

// The installed sink.  Defaults to the built-in stderr sink; swapped by
// set_log_sink.  Atomic so the macros' level probe is a plain load even if a
// test thread swaps sinks (installation still must outlive use).
std::atomic<LogSink*> g_sink{nullptr};

}  // namespace

StderrLogSink::StderrLogSink(LogLevel level) : level_(level) {}

LogLevel StderrLogSink::level() const { return level_.load(); }

void StderrLogSink::set_level(LogLevel level) { level_.store(level); }

void StderrLogSink::write(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[willow " << level_name(level) << "] " << text << '\n';
}

StderrLogSink& default_log_sink() {
  static StderrLogSink sink;
  return sink;
}

LogSink* log_sink() {
  LogSink* s = g_sink.load();
  return s != nullptr ? s : &default_log_sink();
}

LogSink* set_log_sink(LogSink* sink) {
  LogSink* previous = g_sink.exchange(sink);
  return previous != nullptr ? previous : &default_log_sink();
}

void set_log_level(LogLevel level) { default_log_sink().set_level(level); }

LogLevel log_level() { return log_sink()->level(); }

void log_message(LogLevel level, const std::string& text) {
  LogSink* s = log_sink();
  if (s->level() < level) return;
  s->write(level, text);
}

}  // namespace willow::util
