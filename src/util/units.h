// Strong unit types for the physical quantities Willow reasons about.
//
// The control scheme mixes power budgets (W), temperatures (degrees C),
// energies (J) and durations (s) in the same expressions; a mixed-up operand
// is a silent control bug, not a crash.  Each quantity is therefore a
// distinct arithmetic wrapper: same-unit addition/subtraction and scaling by
// dimensionless doubles are allowed, cross-unit arithmetic is a compile
// error.  The few physically meaningful cross-unit products (W x s = J,
// J / s = W) are provided as explicit free operators.
#pragma once

#include <compare>
#include <ostream>

namespace willow::util {

/// CRTP-free tagged quantity: a double with unit identity.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  /// Raw magnitude in the unit's base scale (W, degC, s, J, ...).
  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    value_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    value_ /= k;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.value_ / k};
  }
  /// Ratio of two same-unit quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double value_ = 0.0;
};

struct WattsTag {};
struct CelsiusTag {};
struct SecondsTag {};
struct JoulesTag {};
struct MegabytesTag {};

/// Electrical power (also used for power budgets and demands).
using Watts = Quantity<WattsTag>;
/// Temperature; we follow the paper and use degrees Celsius throughout.
using Celsius = Quantity<CelsiusTag>;
/// Durations and simulation time.
using Seconds = Quantity<SecondsTag>;
/// Energy.
using Joules = Quantity<JoulesTag>;
/// Data volume (VM images, migration payloads).
using Megabytes = Quantity<MegabytesTag>;

/// Energy = power x time.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
/// Average power = energy / time.
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}

/// [x]+ operator from Eq. (5)/(6): negative differences are treated as zero.
template <typename Tag>
constexpr Quantity<Tag> positive_part(Quantity<Tag> q) {
  return q.value() > 0.0 ? q : Quantity<Tag>{0.0};
}

template <typename Tag>
constexpr Quantity<Tag> min(Quantity<Tag> a, Quantity<Tag> b) {
  return a < b ? a : b;
}
template <typename Tag>
constexpr Quantity<Tag> max(Quantity<Tag> a, Quantity<Tag> b) {
  return a < b ? b : a;
}

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Quantity<Tag> q) {
  return os << q.value();
}

namespace literals {
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr Celsius operator""_degC(long double v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Celsius operator""_degC(unsigned long long v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_J(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
constexpr Megabytes operator""_MB(long double v) {
  return Megabytes{static_cast<double>(v)};
}
constexpr Megabytes operator""_MB(unsigned long long v) {
  return Megabytes{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace willow::util
