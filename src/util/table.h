// Aligned text tables and CSV output for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figure series;
// Table renders them the same way the paper reports them (rows of labelled
// columns), and can also dump machine-readable CSV next to the binary.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace willow::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> columns);

  /// Start a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string v);
  Table& add(const char* v);
  Table& add(double v);
  Table& add(long long v);
  Table& add(int v) { return add(static_cast<long long>(v)); }
  Table& add(std::size_t v) { return add(static_cast<long long>(v)); }

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Fixed decimal places used when printing doubles (default 3).
  void set_precision(int digits) { precision_ = digits; }

  /// Render as an aligned text table with a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish quoting of strings containing commas).
  void write_csv(std::ostream& os) const;

  /// Convenience: write_csv to a file path; returns false on I/O failure.
  bool write_csv_file(const std::string& path) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace willow::util
