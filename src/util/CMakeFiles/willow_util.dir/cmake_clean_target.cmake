file(REMOVE_RECURSE
  "libwillow_util.a"
)
