file(REMOVE_RECURSE
  "CMakeFiles/willow_util.dir/json.cc.o"
  "CMakeFiles/willow_util.dir/json.cc.o.d"
  "CMakeFiles/willow_util.dir/logging.cc.o"
  "CMakeFiles/willow_util.dir/logging.cc.o.d"
  "CMakeFiles/willow_util.dir/rng.cc.o"
  "CMakeFiles/willow_util.dir/rng.cc.o.d"
  "CMakeFiles/willow_util.dir/table.cc.o"
  "CMakeFiles/willow_util.dir/table.cc.o.d"
  "CMakeFiles/willow_util.dir/thread_pool.cc.o"
  "CMakeFiles/willow_util.dir/thread_pool.cc.o.d"
  "libwillow_util.a"
  "libwillow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
