# Empty dependencies file for willow_util.
# This may be replaced when dependencies are built.
