#include "util/json.h"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace willow::util {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level single value
  if (stack_.back() == Frame::kObject && !pending_key_) {
    throw std::logic_error("JsonWriter: value in object without a key");
  }
  if (stack_.back() == Frame::kArray) {
    if (has_items_.back()) os_ << ',';
    has_items_.back() = true;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: dangling key");
  os_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  os_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  write_escaped(name);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

void JsonWriter::write_escaped(const std::string& s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; emit null like most tooling expects.
    os_ << "null";
    return *this;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os_ << tmp.str();
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::number_array(const std::string& name,
                                     const std::vector<double>& values) {
  key(name).begin_array();
  for (double v : values) value(v);
  return end_array();
}

void JsonWriter::finish() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers at finish");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: dangling key");
}

}  // namespace willow::util
