// Emulation of the paper's experimental testbed — Section V-C (Fig. 13).
//
// The physical set-up: three Dell servers running VMware ESX 3.5, managed
// from a remote control plane; a two-level power hierarchy (two level-1
// switches, one level-2 switch); CPU-bound web applications in VMs with the
// Table-II power profiles (A1 = 8 W, A2 = 10 W, A3 = 15 W); CPU temperature
// from the on-board sensor; power measured by an Extech analyzer at ~2 Hz;
// supply variation injected artificially.
//
// What we emulate and why it preserves the evaluated behaviour:
//  * Servers: ServerPowerModel::paper_testbed() — the linear P(u) line that
//    Table I records, calibrated so the paper's own consolidation example
//    (580 W before, ~27.5% saved) holds exactly.
//  * Thermal: the paper's fitted constants c1 = 0.2, c2 = 0.008 driving the
//    same RC model the control design assumes, plus Gaussian sensor noise.
//  * Control plane: the *identical* willow_core controller the simulator
//    uses — only the plant is emulated, never the control logic.
//  * Budget division: proportional to capacity — "the available power supply
//    is divided proportionally between the servers" (three identical Dells),
//    the reading under which low-utilization servers hold the surplus that
//    plunges migrate workload into (Fig. 16's narrative).
#pragma once

#include <memory>
#include <vector>

#include "core/controller.h"
#include "power/supply.h"
#include "util/stats.h"
#include "util/units.h"

namespace willow::testbed {

using hier::NodeId;
using util::Celsius;
using util::Seconds;
using util::Watts;

struct TestbedConfig {
  /// Control parameters; defaults reproduce Sec. V-C: ΔD = 1 time unit,
  /// capacity-proportional division, 20% consolidation threshold.
  core::ControllerConfig controller{};
  /// Stddev of Gaussian noise added to emulated sensors.
  double sensor_noise_c = 0.3;
  double power_noise_w = 1.5;
  unsigned long long seed = 7;

  TestbedConfig();
};

/// Thermal parameters of one emulated Dell server (the *plant*): 25 degC
/// ambient, 70 degC limit, and rate constants chosen so the testbed power
/// range is thermally stable (steady-state at full load ~66 degC, max
/// holdable power ~the 250 W rating).
///
/// Note: these are NOT the paper's fitted (c1 = 0.2, c2 = 0.008).  Those
/// values are dynamically unstable at testbed power levels — they imply a
/// steady-state temperature rise of c1/c2 = 25 degC *per watt*, i.e. ~5000
/// degC at 200 W — an artifact of the units of their regression.  We
/// reproduce the paper's *estimation procedure* (Fig. 14) separately with
/// paper_fitted_thermal_params() as ground truth.
thermal::ThermalParams testbed_thermal_params();

/// The constants the paper reports fitting in Sec. V-C2 (c1 = 0.2,
/// c2 = 0.008).  Used as ground truth for the Fig.-14 calibration
/// reproduction only; see testbed_thermal_params() for why the plant does
/// not run on them.
thermal::ThermalParams paper_fitted_thermal_params();

/// The emulated ESX server's Table-I calibration (see ServerPowerModel).
power::ServerPowerModel testbed_power_model();

/// Table I regenerated: emulated power-analyzer readings (with noise) at the
/// given utilization levels; one (utilization, watts) row each.
std::vector<std::pair<double, Watts>> table1_measurements(
    const std::vector<double>& utilizations, unsigned long long seed = 7);

/// Table II regenerated: per-application power increments measured by
/// running each app alone on an idle emulated server.
std::vector<std::pair<std::string, Watts>> profile_applications(
    unsigned long long seed = 7);

/// One run's recorded series (Figures 15–18) and end state (Table III).
struct RunResult {
  util::TimeSeries supply;            ///< Fig. 15 / Fig. 19 input as applied
  util::TimeSeries migrations;        ///< Fig. 16
  util::TimeSeries temperature_a;     ///< Fig. 17 (server A)
  util::TimeSeries avg_temperature;   ///< Fig. 18
  util::TimeSeries utilization[3];    ///< per server A, B, C
  util::TimeSeries consumed[3];       ///< per-server drawn power
  double final_utilization[3] = {0, 0, 0};  ///< Table III "end of experiment"
  bool asleep[3] = {false, false, false};
  core::ControllerStats stats;
  /// True iff some migrated app moved again within delta_f ticks of its
  /// previous move (Property 4 violation; expected false).
  bool ping_pong = false;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = TestbedConfig());

  [[nodiscard]] core::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] core::Controller& controller() { return *controller_; }
  [[nodiscard]] NodeId server(std::size_t i) const { return servers_.at(i); }

  /// Install VMs approximating the target CPU utilizations (composed from
  /// Table-II applications, largest-first greedy).
  void load_utilizations(double a, double b, double c);

  /// Run `ticks` demand periods against the given supply profile.
  /// @param delta_f stability window used for ping-pong detection.
  RunResult run(const power::SupplyProfile& supply, long ticks,
                long delta_f = 3);

 private:
  void install(double utilization, NodeId server);

  TestbedConfig config_;
  std::unique_ptr<core::Cluster> cluster_;
  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<util::Rng> rng_;
  workload::AppIdAllocator ids_;
  std::vector<NodeId> servers_;
};

}  // namespace willow::testbed
