#include "testbed/testbed.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace willow::testbed {

TestbedConfig::TestbedConfig() {
  controller.demand_period = Seconds{1.0};
  controller.eta1 = 4;
  controller.eta2 = 7;
  controller.margin = Watts{2.0};
  controller.migration_cost = Watts{1.0};
  // Paper: 20%.  The Table-II application quantization puts "20%-utilized"
  // server C at 15 W / 72.5 W = 20.7%, so the threshold sits just above.
  controller.consolidation_threshold = 0.21;
  controller.allocation = core::AllocationPolicy::kProportionalToCapacity;
}

thermal::ThermalParams testbed_thermal_params() {
  thermal::ThermalParams p;
  // Stable plant constants: steady-state at the 232 W full-load draw is
  // 25 + (0.08/0.45)*232 ~= 66 degC, and the steady holdable maximum is
  // (0.45/0.08)*45 ~= 253 W ~ the 250 W rating.
  p.c1 = 0.08;
  p.c2 = 0.45;
  p.ambient = Celsius{25.0};
  p.limit = Celsius{70.0};
  p.nameplate = Watts{250.0};
  return p;
}

thermal::ThermalParams paper_fitted_thermal_params() {
  thermal::ThermalParams p;
  p.c1 = 0.2;    // Sec. V-C2, Fig. 14
  p.c2 = 0.008;  // Sec. V-C2, Fig. 14
  p.ambient = Celsius{25.0};
  p.limit = Celsius{70.0};
  p.nameplate = Watts{250.0};
  return p;
}

power::ServerPowerModel testbed_power_model() {
  return power::ServerPowerModel::paper_testbed();
}

std::vector<std::pair<double, Watts>> table1_measurements(
    const std::vector<double>& utilizations, unsigned long long seed) {
  util::Rng rng(seed);
  const auto model = testbed_power_model();
  std::vector<std::pair<double, Watts>> rows;
  rows.reserve(utilizations.size());
  for (double u : utilizations) {
    // The Extech analyzer samples at ~2 Hz; average 20 noisy samples the way
    // the baseline experiment would over a 10 s hold.
    util::RunningStats samples;
    for (int i = 0; i < 20; ++i) {
      samples.add(model.power(u).value() + rng.gaussian(1.5));
    }
    rows.emplace_back(u, Watts{samples.mean()});
  }
  return rows;
}

std::vector<std::pair<std::string, Watts>> profile_applications(
    unsigned long long seed) {
  util::Rng rng(seed);
  const auto model = testbed_power_model();
  std::vector<std::pair<std::string, Watts>> rows;
  for (const auto& cls : workload::testbed_catalog()) {
    // Measure idle, then with the app running; report the increment.
    util::RunningStats idle, loaded;
    for (int i = 0; i < 20; ++i) {
      idle.add(model.static_power().value() + rng.gaussian(1.5));
      loaded.add(model.static_power().value() + cls.relative_power +
                 rng.gaussian(1.5));
    }
    rows.emplace_back(cls.name, Watts{loaded.mean() - idle.mean()});
  }
  return rows;
}

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  cluster_ = std::make_unique<core::Cluster>(0.7);
  const NodeId root = cluster_->add_root("control-plane");
  // Fig. 13: two level-1 switches under one level-2 switch; servers A and B
  // share a switch, server C hangs off the other.
  const NodeId g1 =
      cluster_->add_group(root, "switch1", hier::NodeKind::kSwitch);
  const NodeId g2 =
      cluster_->add_group(root, "switch2", hier::NodeKind::kSwitch);
  core::ServerConfig cfg;
  cfg.thermal = testbed_thermal_params();
  cfg.power_model = testbed_power_model();
  servers_.push_back(cluster_->add_server(g1, "serverA", cfg));
  servers_.push_back(cluster_->add_server(g1, "serverB", cfg));
  servers_.push_back(cluster_->add_server(g2, "serverC", cfg));
  controller_ =
      std::make_unique<core::Controller>(*cluster_, config_.controller);
}

void Testbed::install(double utilization, NodeId server) {
  const auto model = testbed_power_model();
  const Watts target = model.dynamic_range() * utilization;
  const auto& catalog = workload::testbed_catalog();
  Watts placed{0.0};
  // Largest application class first, then smaller ones to close the gap —
  // mirrors how the experiments composed A1/A2/A3 VMs to hit a CPU level.
  std::vector<std::size_t> order(catalog.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return catalog[a].relative_power > catalog[b].relative_power;
  });
  for (std::size_t cls : order) {
    const Watts step{catalog[cls].relative_power};
    while (placed + step <= target + step * 0.5 && placed < target) {
      workload::Application app(ids_.next(), cls, step,
                                util::Megabytes{2048.0});
      cluster_->place(std::move(app), server);
      placed += step;
    }
  }
}

void Testbed::load_utilizations(double a, double b, double c) {
  install(a, servers_[0]);
  install(b, servers_[1]);
  install(c, servers_[2]);
}

RunResult Testbed::run(const power::SupplyProfile& supply, long ticks,
                       long delta_f) {
  RunResult result;
  auto& tree = cluster_->tree();
  const Seconds dt = config_.controller.demand_period;
  // The testbed apps are steady CPU loads; demand variation comes from small
  // measurement noise, not Poisson queries.
  std::uint64_t prev_migrations = 0;
  std::map<workload::AppId, long> last_move;

  for (long tick = 0; tick < ticks; ++tick) {
    const double t = static_cast<double>(tick);
    cluster_->refresh_demands_constant();
    // Measurement noise on reported demand (the control plane reads scripts
    // polling ESX utilization counters).
    for (NodeId s : servers_) {
      auto& apps = cluster_->server(s).apps();
      for (auto& app : apps) {
        if (!app.dropped()) {
          const double noisy =
              app.mean_power().value() +
              rng_->gaussian(config_.power_noise_w * 0.2);
          app.set_demand(Watts{std::max(0.0, noisy)});
        }
      }
    }

    const Watts available = supply.at(Seconds{t});
    controller_->tick(available);
    cluster_->step_thermal(dt);

    // Ping-pong detection (Property 4): an app moving again within delta_f.
    for (const auto& rec : controller_->migrations_this_tick()) {
      auto it = last_move.find(rec.app);
      if (it != last_move.end() && tick - it->second < delta_f) {
        result.ping_pong = true;
      }
      last_move[rec.app] = tick;
    }

    const auto& st = controller_->stats();
    result.supply.record(t, available.value());
    result.migrations.record(
        t, static_cast<double>(st.total_migrations() - prev_migrations));
    prev_migrations = st.total_migrations();

    double temp_sum = 0.0;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      const auto& srv = cluster_->server(servers_[i]);
      const Watts budget = tree.node(servers_[i]).budget();
      const double temp = srv.thermal().temperature().value() +
                          rng_->gaussian(config_.sensor_noise_c);
      temp_sum += temp;
      if (i == 0) result.temperature_a.record(t, temp);
      result.utilization[i].record(t, srv.utilization(budget));
      result.consumed[i].record(t, srv.consumed_power(budget).value());
    }
    result.avg_temperature.record(
        t, temp_sum / static_cast<double>(servers_.size()));
  }

  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const auto& srv = cluster_->server(servers_[i]);
    result.asleep[i] = srv.asleep();
    // "Average utilization at the end of experiment": mean over the last
    // quarter of the run.
    const auto& u = result.utilization[i];
    const double t1 = static_cast<double>(ticks);
    result.final_utilization[i] = u.mean_between(t1 * 0.75, t1);
  }
  result.stats = controller_->stats();
  return result;
}

}  // namespace willow::testbed
