# Empty dependencies file for willow_testbed.
# This may be replaced when dependencies are built.
