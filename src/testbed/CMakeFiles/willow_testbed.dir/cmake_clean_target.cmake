file(REMOVE_RECURSE
  "libwillow_testbed.a"
)
