file(REMOVE_RECURSE
  "CMakeFiles/willow_testbed.dir/testbed.cc.o"
  "CMakeFiles/willow_testbed.dir/testbed.cc.o.d"
  "libwillow_testbed.a"
  "libwillow_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
