#include "obs/sink.h"

#include <stdexcept>

#include "util/json.h"

namespace willow::obs {

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(os) {
  util::JsonWriter w(os_);
  w.begin_object();
  w.key("schema_version").value(kTraceSchemaVersion);
  w.key("stream").value("willow_trace");
  w.end_object();
  w.finish();
  os_ << '\n';
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)),
      os_(*owned_) {
  if (!*owned_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
  util::JsonWriter w(os_);
  w.begin_object();
  w.key("schema_version").value(kTraceSchemaVersion);
  w.key("stream").value("willow_trace");
  w.end_object();
  w.finish();
  os_ << '\n';
}

void JsonlTraceSink::on_event(const Event& e) {
  util::JsonWriter w(os_);
  w.begin_object();
  w.key("t").value(static_cast<long long>(e.tick));
  w.key("type").value(to_string(e.type));
  if (e.node != kNoNode) w.key("node").value(static_cast<long long>(e.node));
  if (e.node2 != kNoNode) {
    w.key("node2").value(static_cast<long long>(e.node2));
  }
  if (e.app != 0) w.key("app").value(static_cast<long long>(e.app));
  if (e.reason != Reason::kNone) w.key("reason").value(to_string(e.reason));
  if (e.type == EventType::kLinkMessage || e.type == EventType::kLinkDrop ||
      e.type == EventType::kLinkDefer) {
    w.key("dir").value(to_string(e.direction));
  }
  w.key("v").value(e.value);
  if (e.aux != 0.0) w.key("aux").value(e.aux);
  if (!e.text.empty()) w.key("msg").value(e.text);
  w.end_object();
  w.finish();
  os_ << '\n';
  ++lines_;
}

void JsonlTraceSink::flush() { os_.flush(); }

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RingBufferSink: capacity must be > 0");
  }
}

void RingBufferSink::on_event(const Event& e) {
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(e);
  ++total_;
}

void RingBufferSink::clear() {
  events_.clear();
  total_ = 0;
}

void CountingSink::on_event(const Event& e) {
  const auto idx = static_cast<std::size_t>(e.type);
  if (idx < by_type_.size()) ++by_type_[idx];
  ++total_;
}

std::uint64_t CountingSink::count(EventType type) const {
  const auto idx = static_cast<std::size_t>(type);
  return idx < by_type_.size() ? by_type_[idx] : 0;
}

BusLogSink::BusLogSink(EventBus* bus, util::LogLevel level)
    : bus_(bus), level_(level) {
  if (!bus_) throw std::invalid_argument("BusLogSink: null bus");
}

void BusLogSink::write(util::LogLevel level, const std::string& text) {
  Event e;
  e.type = EventType::kLog;
  e.value = static_cast<double>(static_cast<int>(level));
  e.text = text;
  bus_->emit(std::move(e));
}

}  // namespace willow::obs
