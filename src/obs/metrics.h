// Metrics registry — named counters, gauges, histograms, and wall-clock
// timers, snapshotted at end of run.
//
// Registered instruments live for the registry's lifetime and are looked up
// once (the returned references stay valid), so hot paths pay one pointer
// write per update, not a map probe.  Instruments are updated from serial
// code only (the controller is serial; the simulator updates around — not
// inside — its sharded phases), so no atomics are needed.
//
// A MetricsSnapshot is a plain value sorted by instrument name, so its JSON
// rendering is deterministic.  Timer values are wall-clock and therefore the
// one intentionally non-deterministic quantity in a SimResult; they are kept
// out of the event trace, whose byte-determinism tests rely on replayable
// content only.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace willow::obs {

class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bound histogram (upper bounds ascending; an implicit +inf bucket
/// catches the rest).  Tracks count and sum like a Prometheus histogram.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Cumulative counts per bound, plus the final +inf bucket (== count()).
  [[nodiscard]] std::vector<std::uint64_t> cumulative_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> bucket_counts_;  ///< per-bucket, incl. +inf
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Accumulating wall-clock timer; use ScopedTimer to time a block.
class Timer {
 public:
  void add(double seconds) {
    total_seconds_ += seconds;
    ++count_;
  }
  [[nodiscard]] double total_seconds() const { return total_seconds_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  double total_seconds_ = 0.0;
  std::uint64_t count_ = 0;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (!timer_) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    timer_->add(elapsed.count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> cumulative_counts;  ///< incl. trailing +inf
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct TimerValue {
    std::string name;
    std::uint64_t count = 0;
    double total_seconds = 0.0;
  };

  std::vector<CounterValue> counters;      ///< sorted by name
  std::vector<GaugeValue> gauges;          ///< sorted by name
  std::vector<HistogramValue> histograms;  ///< sorted by name
  std::vector<TimerValue> timers;          ///< sorted by name

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           timers.empty();
  }
  /// Counter value by name, or 0 if absent (test/tooling convenience).
  [[nodiscard]] std::uint64_t counter_or_zero(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Get-or-create; the reference stays valid for the registry's lifetime.
  /// Re-registering a name with a different instrument kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is only consulted on first registration.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  Timer& timer(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kTimer };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Timer> timer;
  };
  Entry& entry(const std::string& name, Kind kind);

  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace willow::obs
