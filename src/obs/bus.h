// The event bus: emitters on one side, pluggable sinks on the other.
//
// Emission discipline (the determinism contract):
//
//   * Serial code (controller phases, tree sweeps, UPS stepping) calls
//     emit(); events reach the sinks immediately, in call order.
//   * Sharded code (the simulator's parallel_for_ranges phases) must NOT
//     call emit() — workers would interleave nondeterministically.  Instead
//     the phase brackets itself with begin_shards(n) / end_shards() and each
//     worker deposits via emit_shard(slot, e) into the slot it owns (slot ==
//     server index; the range partition gives each index to exactly one
//     worker, so slots need no locks).  end_shards() drains the slots in
//     ascending index order, making the merged stream a pure function of the
//     configuration — bit-identical for any SimConfig::threads.
//
// The bus stamps every event with the current tick (set_tick) so emitters
// deep in the stack need no tick plumbing.  With no sinks attached the bus
// is disabled and every emission path is a cheap branch; emitters should
// gate event construction on enabled() (or the WILLOW_OBS_EMIT convenience)
// so tracing-off runs pay nothing.
//
// The bus also owns the run's MetricsRegistry: one wiring point hands a
// subsystem both its event stream and its instruments.
#pragma once

#include <memory>
#include <vector>

#include "obs/event.h"
#include "obs/metrics.h"

namespace willow::obs {

/// Receives every event the bus dispatches.  Implementations live in
/// obs/sink.h (JSONL trace writer, ring buffer); tests write their own.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Called when the producer finished a run (flush file buffers etc.).
  virtual void flush() {}
};

class EventBus {
 public:
  void add_sink(std::shared_ptr<Sink> sink);

  /// True once any sink is attached; emitters gate on this.
  [[nodiscard]] bool enabled() const { return !sinks_.empty(); }

  /// Current tick, stamped onto every event at dispatch.
  void set_tick(long tick) { tick_ = tick; }
  [[nodiscard]] long tick() const { return tick_; }

  /// Serial emission: stamp the tick and dispatch immediately.
  void emit(Event event);

  /// Bracket a sharded phase: size (and clear) the per-slot staging area.
  void begin_shards(std::size_t slots);
  /// Deposit from a worker into the slot it owns.  No locking: each slot
  /// must be written by exactly one worker per phase.
  void emit_shard(std::size_t slot, Event event);
  /// Drain slots 0..n-1 in order through the sinks and clear the staging.
  void end_shards();

  /// Ask all sinks to flush (end of run).
  void flush();

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  void dispatch(const Event& event);

  /// One staging slot per server, padded to a cache line: neighbouring slots
  /// are written by different workers during a sharded phase (the chunk
  /// partition hands adjacent indices to whoever claims the chunk), and an
  /// unpadded vector header is 24 bytes — three slots per line, i.e. false
  /// sharing on every boundary push_back.
  struct alignas(64) ShardSlot {
    std::vector<Event> events;
  };

  std::vector<std::shared_ptr<Sink>> sinks_;
  std::vector<ShardSlot> shard_staging_;
  MetricsRegistry metrics_;
  long tick_ = 0;
};

}  // namespace willow::obs

/// Gate event construction on an attached-and-enabled bus:
///   WILLOW_OBS_EMIT(bus_, ({.type = ..., .value = ...}));
/// expands to nothing observable when `bus` is null or has no sinks.
#define WILLOW_OBS_EMIT(bus, ...)                  \
  do {                                             \
    auto* wob_ = (bus);                            \
    if (wob_ != nullptr && wob_->enabled()) {      \
      wob_->emit(::willow::obs::Event __VA_ARGS__); \
    }                                              \
  } while (0)
