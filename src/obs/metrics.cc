#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace willow::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  bucket_counts_.assign(bounds_.size() + 1, 0);  // + implicit +inf
}

void Histogram::observe(double v) {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  ++bucket_counts_[b];
  ++count_;
  sum_ += v;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out(bucket_counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    running += bucket_counts_[i];
    out[i] = running;
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter_or_zero(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(name, Entry{kind, nullptr, nullptr, nullptr, nullptr})
             .first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& e = entry(name, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Entry& e = entry(name, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  Entry& e = entry(name, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *e.histogram;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  Entry& e = entry(name, Kind::kTimer);
  if (!e.timer) e.timer = std::make_unique<Timer>();
  return *e.timer;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.counters.push_back({name, e.counter->value()});
        break;
      case Kind::kGauge:
        out.gauges.push_back({name, e.gauge->value()});
        break;
      case Kind::kHistogram:
        out.histograms.push_back({name, e.histogram->upper_bounds(),
                                  e.histogram->cumulative_counts(),
                                  e.histogram->count(), e.histogram->sum()});
        break;
      case Kind::kTimer:
        out.timers.push_back({name, e.timer->count(),
                              e.timer->total_seconds()});
        break;
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  std::sort(out.timers.begin(), out.timers.end(), by_name);
  return out;
}

}  // namespace willow::obs
