// Typed observability events — the vocabulary of the Willow telemetry layer.
//
// Every externally meaningful action in a run — a budget directive pushed
// down the PMU tree, a demand report flowing up, a migration with its reason
// code, a thermal throttle, UPS charge/discharge, a control message crossing
// a PMU link — is one Event.  Events are plain values: emitters fill the
// fields that apply and leave the rest at their defaults, and sinks decide
// what to do with them (see obs/sink.h).  The layer sits below hier/core/sim
// so every subsystem can emit without dependency cycles; node ids are raw
// 32-bit values (hier::NodeId is a typedef of the same width).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace willow::obs {

/// Sentinel matching hier::kNoNode (obs cannot include hier headers).
constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

enum class EventType : std::uint8_t {
  kBudgetDirective,   ///< node's budget set by the supply divider (TP_{l,i})
  kDemandReport,      ///< node reported demand up the tree (CP observation)
  kLinkMessage,       ///< one control message crossed the node<->parent link
  kMigration,         ///< application migration applied (or transfer started)
  kMigrationLanded,   ///< latency mode: in-flight transfer completed
  kThermalThrottle,   ///< per-ΔD clamp of a server budget to its hard limit
  kUpsCharge,         ///< UPS absorbed surplus into the battery
  kUpsDischarge,      ///< UPS covered a supply deficit from the battery
  kDrop,              ///< application shut down (degraded mode)
  kDegrade,           ///< application service level reduced
  kRevive,            ///< dropped application brought back
  kRestore,           ///< degraded application restored to full service
  kSleep,             ///< server consolidated to sleep
  kWake,              ///< server woken for unplaceable demand
  kLog,               ///< narrative log line routed through the bus
  // Fault-injection and degraded-mode vocabulary (docs/fault_model.md).
  // Appended after kLog so earlier types keep their numeric values; traces
  // from fault-free runs are unchanged (schema version stays 1).
  kLinkDrop,          ///< a control message was lost on a PMU link
  kLinkDefer,         ///< a demand report was delayed (delivered next sweep)
  kSensorFault,       ///< sensor override changed (aux encodes kind+mode)
  kNodeDown,          ///< server crashed; its subtree goes dark
  kNodeUp,            ///< crashed server restarted
  kFallbackBudget,    ///< conservative budget clamp on a dark server
  kStaleTimeout,      ///< demand reports stale past the timeout; decay begins
  kResyncComplete,    ///< control plane re-dirtied after a node recovery
  kUpsFail,           ///< UPS failure window opened (battery unavailable)
  kUpsRestore,        ///< UPS failure window closed
};

/// Why a migration (or shedding action) happened — the paper's Sec. IV
/// adaptation triggers, made explicit per event.
enum class Reason : std::uint8_t {
  kNone,           ///< not applicable
  kSupplyDeficit,  ///< budget shortfall from the supply division (Sec. IV-D)
  kThermal,        ///< thermal/circuit hard-limit clamp forced the move
  kConsolidation,  ///< low-utilization drain (Sec. IV-C/E)
  kShedding,       ///< unplaceable demand degraded/dropped (degraded mode)
};

/// Direction of a kLinkMessage relative to the tree (Fig. 2).
enum class LinkDirection : std::uint8_t {
  kUp,    ///< demand report, child -> parent
  kDown,  ///< budget directive, parent -> child
};

struct Event {
  EventType type = EventType::kLog;
  long tick = 0;
  std::uint32_t node = kNoNode;   ///< primary node (server/PMU)
  std::uint32_t node2 = kNoNode;  ///< secondary node (migration target/parent)
  std::uint64_t app = 0;          ///< application id; 0 = not app-scoped
  Reason reason = Reason::kNone;
  LinkDirection direction = LinkDirection::kUp;  ///< kLinkMessage only
  double value = 0.0;  ///< primary quantity (W moved / new budget / J stored)
  double aux = 0.0;    ///< secondary quantity (previous budget, raw W, ...)
  std::string text;    ///< kLog payload; empty otherwise
};

/// Stable lowercase identifiers used in JSONL traces and tooling.
[[nodiscard]] const char* to_string(EventType type);
[[nodiscard]] const char* to_string(Reason reason);
[[nodiscard]] const char* to_string(LinkDirection direction);

/// Human-readable one-liner (CLI, debugging).
[[nodiscard]] std::string describe(const Event& event);

}  // namespace willow::obs
