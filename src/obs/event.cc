#include "obs/event.h"

#include <sstream>

namespace willow::obs {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kBudgetDirective: return "budget_directive";
    case EventType::kDemandReport: return "demand_report";
    case EventType::kLinkMessage: return "link_message";
    case EventType::kMigration: return "migration";
    case EventType::kMigrationLanded: return "migration_landed";
    case EventType::kThermalThrottle: return "thermal_throttle";
    case EventType::kUpsCharge: return "ups_charge";
    case EventType::kUpsDischarge: return "ups_discharge";
    case EventType::kDrop: return "drop";
    case EventType::kDegrade: return "degrade";
    case EventType::kRevive: return "revive";
    case EventType::kRestore: return "restore";
    case EventType::kSleep: return "sleep";
    case EventType::kWake: return "wake";
    case EventType::kLog: return "log";
    case EventType::kLinkDrop: return "link_drop";
    case EventType::kLinkDefer: return "link_defer";
    case EventType::kSensorFault: return "sensor_fault";
    case EventType::kNodeDown: return "node_down";
    case EventType::kNodeUp: return "node_up";
    case EventType::kFallbackBudget: return "fallback_budget";
    case EventType::kStaleTimeout: return "stale_timeout";
    case EventType::kResyncComplete: return "resync_complete";
    case EventType::kUpsFail: return "ups_fail";
    case EventType::kUpsRestore: return "ups_restore";
  }
  return "unknown";
}

const char* to_string(Reason reason) {
  switch (reason) {
    case Reason::kNone: return "none";
    case Reason::kSupplyDeficit: return "supply_deficit";
    case Reason::kThermal: return "thermal";
    case Reason::kConsolidation: return "consolidation";
    case Reason::kShedding: return "shedding";
  }
  return "unknown";
}

const char* to_string(LinkDirection direction) {
  return direction == LinkDirection::kUp ? "up" : "down";
}

std::string describe(const Event& e) {
  std::ostringstream os;
  os << "t=" << e.tick << ' ' << to_string(e.type);
  if (e.node != kNoNode) os << " node=" << e.node;
  if (e.node2 != kNoNode) os << " node2=" << e.node2;
  if (e.app != 0) os << " app=" << e.app;
  if (e.reason != Reason::kNone) os << " reason=" << to_string(e.reason);
  if (e.type == EventType::kLinkMessage || e.type == EventType::kLinkDrop ||
      e.type == EventType::kLinkDefer) {
    os << " dir=" << to_string(e.direction);
  }
  os << " value=" << e.value;
  if (!e.text.empty()) os << " \"" << e.text << '"';
  return os.str();
}

}  // namespace willow::obs
