# Empty dependencies file for willow_obs.
# This may be replaced when dependencies are built.
