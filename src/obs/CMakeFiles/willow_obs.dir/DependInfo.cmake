
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/bus.cc" "src/obs/CMakeFiles/willow_obs.dir/bus.cc.o" "gcc" "src/obs/CMakeFiles/willow_obs.dir/bus.cc.o.d"
  "/root/repo/src/obs/event.cc" "src/obs/CMakeFiles/willow_obs.dir/event.cc.o" "gcc" "src/obs/CMakeFiles/willow_obs.dir/event.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/willow_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/willow_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/sink.cc" "src/obs/CMakeFiles/willow_obs.dir/sink.cc.o" "gcc" "src/obs/CMakeFiles/willow_obs.dir/sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
