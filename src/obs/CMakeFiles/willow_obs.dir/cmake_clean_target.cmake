file(REMOVE_RECURSE
  "libwillow_obs.a"
)
