file(REMOVE_RECURSE
  "CMakeFiles/willow_obs.dir/bus.cc.o"
  "CMakeFiles/willow_obs.dir/bus.cc.o.d"
  "CMakeFiles/willow_obs.dir/event.cc.o"
  "CMakeFiles/willow_obs.dir/event.cc.o.d"
  "CMakeFiles/willow_obs.dir/metrics.cc.o"
  "CMakeFiles/willow_obs.dir/metrics.cc.o.d"
  "CMakeFiles/willow_obs.dir/sink.cc.o"
  "CMakeFiles/willow_obs.dir/sink.cc.o.d"
  "libwillow_obs.a"
  "libwillow_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
