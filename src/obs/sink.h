// Pluggable event sinks.
//
//   JsonlTraceSink   one JSON object per line; the machine-readable audit
//                    stream (jq / pandas friendly).  Byte-deterministic: the
//                    bytes are a pure function of the event sequence, which
//                    the bus guarantees is a pure function of the scenario.
//   RingBufferSink   in-memory tail of the stream, for tests and the CLI.
//   CountingSink     per-type event counts, no storage (overhead probes).
//   BusLogSink       adapter routing WILLOW_* narrative log lines through an
//                    EventBus as kLog events (see util/logging.h).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/bus.h"
#include "util/logging.h"

namespace willow::obs {

/// Version of the JSONL trace line schema; bumped when line shape changes.
constexpr int kTraceSchemaVersion = 1;

class JsonlTraceSink final : public Sink {
 public:
  /// Write to a caller-owned stream.  A one-line header carrying the schema
  /// version is written immediately.
  explicit JsonlTraceSink(std::ostream& os);
  /// Open (truncate) `path` and write there; throws if unopenable.
  explicit JsonlTraceSink(const std::string& path);

  void on_event(const Event& event) override;
  void flush() override;

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream& os_;
  std::uint64_t lines_ = 0;
};

/// Keeps the most recent `capacity` events (and a total count).
class RingBufferSink final : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const Event& event) override;

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::uint64_t total_seen() const { return total_; }
  void clear();

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t total_ = 0;
};

/// Counts events by type; stores nothing.  Useful for overhead probes and
/// cross-checking trace line counts against registry counters.
class CountingSink final : public Sink {
 public:
  void on_event(const Event& event) override;

  [[nodiscard]] std::uint64_t count(EventType type) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::array<std::uint64_t, 32> by_type_{};
  std::uint64_t total_ = 0;
};

/// util::LogSink adapter: narrative WILLOW_* log lines become kLog events on
/// the bus (value = numeric level), unifying the two streams.  Install with
/// util::set_log_sink(&bridge) for the scope of a run.
class BusLogSink final : public util::LogSink {
 public:
  BusLogSink(EventBus* bus, util::LogLevel level);

  [[nodiscard]] util::LogLevel level() const override { return level_; }
  void set_level(util::LogLevel level) { level_ = level; }
  void write(util::LogLevel level, const std::string& text) override;

 private:
  EventBus* bus_;
  util::LogLevel level_;
};

}  // namespace willow::obs
