#include "obs/bus.h"

#include <stdexcept>

namespace willow::obs {

void EventBus::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) throw std::invalid_argument("EventBus: null sink");
  sinks_.push_back(std::move(sink));
}

void EventBus::dispatch(const Event& event) {
  metrics_.counter("obs.events_emitted").increment();
  for (const auto& sink : sinks_) sink->on_event(event);
}

void EventBus::emit(Event event) {
  if (!enabled()) return;
  event.tick = tick_;
  dispatch(event);
}

void EventBus::begin_shards(std::size_t slots) {
  if (!enabled()) return;
  shard_staging_.resize(slots);
  for (auto& slot : shard_staging_) slot.events.clear();
}

void EventBus::emit_shard(std::size_t slot, Event event) {
  if (!enabled()) return;
  event.tick = tick_;
  shard_staging_[slot].events.push_back(std::move(event));
}

void EventBus::end_shards() {
  if (!enabled()) return;
  for (auto& slot : shard_staging_) {
    for (const Event& e : slot.events) dispatch(e);
    slot.events.clear();
  }
}

void EventBus::flush() {
  for (const auto& sink : sinks_) sink->flush();
}

}  // namespace willow::obs
