#include "core/stability.h"

#include <cmath>
#include <stdexcept>

namespace willow::core {

double ewma_step_response(double alpha, int periods) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("ewma_step_response: alpha must be in (0,1]");
  }
  if (periods < 0) {
    throw std::invalid_argument("ewma_step_response: negative periods");
  }
  return 1.0 - std::pow(1.0 - alpha, periods);
}

int ewma_settling_periods(double alpha, double tolerance) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument(
        "ewma_settling_periods: alpha must be in (0,1]");
  }
  if (!(tolerance > 0.0) || tolerance >= 1.0) {
    throw std::invalid_argument(
        "ewma_settling_periods: tolerance must be in (0,1)");
  }
  if (alpha == 1.0) return 1;
  return static_cast<int>(
      std::ceil(std::log(tolerance) / std::log(1.0 - alpha)));
}

util::Watts ewma_step_error_after_supply_period(double alpha, int eta1,
                                                util::Watts step_w) {
  if (eta1 < 1) {
    throw std::invalid_argument(
        "ewma_step_error_after_supply_period: eta1 must be >= 1");
  }
  const double remaining = 1.0 - ewma_step_response(alpha, eta1);
  return step_w * remaining;
}

StabilityAssessment assess_stability(const hier::Tree& tree,
                                     const ControllerConfig& config,
                                     util::Seconds per_level_latency,
                                     util::Watts demand_fluctuation,
                                     double smoothing_alpha) {
  StabilityAssessment a;
  const auto convergence =
      hier::analyze_convergence(tree, per_level_latency, 10.0);
  a.delta = convergence.delta;
  a.recommended_period = convergence.recommended_period;
  a.convergence_ok =
      hier::period_is_safe(convergence, config.demand_period);

  a.estimator_settling_periods = ewma_settling_periods(smoothing_alpha, 0.05);
  a.estimator_ok = a.estimator_settling_periods <= config.eta1;

  a.margin_headroom = config.margin - demand_fluctuation;
  a.margin_ok = a.margin_headroom.value() > 0.0;

  a.deadband_ok = config.report_deadband.value() >= 0.0 &&
                  config.report_deadband.value() < config.margin.value();
  return a;
}

}  // namespace willow::core
