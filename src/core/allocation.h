// Proportional budget allocation with hard constraints — Section IV-D.
//
// "The available power budget of any level l+1 is allocated among the nodes
//  in level l proportional to their demands", subject to each child's hard
//  constraint (thermal limit + circuit rating).  When the budget exceeds the
//  total demand, the paper's three-step rule applies: (1) under-provisioned
//  nodes get just enough to satisfy demand, (2) surplus may be harnessed by
//  bringing in additional workload (the controller's revival/wake logic),
//  (3) remaining surplus is spread over children proportional to demand.
//
// allocate_proportional() implements steps (1) and (3) as a capped
// water-filling; whatever cannot be placed under the caps is returned as
// `unallocated` (the quantity step (2) may harness).
#pragma once

#include <vector>

#include "util/units.h"

namespace willow::core {

using util::Watts;

struct AllocationResult {
  std::vector<Watts> budgets;  ///< one per input entry
  Watts unallocated{0.0};      ///< budget no child could absorb (all capped)
};

/// Allocate `total` among entries with the given demands and hard caps.
///
/// Phase 1 (deficit regime): each entry receives a share proportional to its
/// demand, iteratively clamped at min(demand, cap) — nodes whose share
/// exceeds what they can take are frozen and the leftover re-divided among
/// the rest, so no watt idles while an unsatisfied demand remains.
/// Phase 2 (surplus regime): once every demand is met, the remainder is
/// spread proportional to demand over entries still below cap (entries with
/// zero demand share the remainder proportional to cap headroom instead,
/// so a fully idle level still banks its surplus downstream).
///
/// Invariants (tested): sum(budgets) + unallocated == total (within 1e-9);
/// budgets[i] <= caps[i]; budgets[i] >= 0.
AllocationResult allocate_proportional(Watts total,
                                       const std::vector<Watts>& demands,
                                       const std::vector<Watts>& caps);

}  // namespace willow::core
