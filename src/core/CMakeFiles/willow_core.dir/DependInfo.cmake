
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/willow_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/willow_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/balance.cc" "src/core/CMakeFiles/willow_core.dir/balance.cc.o" "gcc" "src/core/CMakeFiles/willow_core.dir/balance.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/willow_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/willow_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/willow_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/willow_core.dir/controller.cc.o.d"
  "/root/repo/src/core/stability.cc" "src/core/CMakeFiles/willow_core.dir/stability.cc.o" "gcc" "src/core/CMakeFiles/willow_core.dir/stability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  "/root/repo/src/hier/CMakeFiles/willow_hier.dir/DependInfo.cmake"
  "/root/repo/src/thermal/CMakeFiles/willow_thermal.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/willow_power.dir/DependInfo.cmake"
  "/root/repo/src/workload/CMakeFiles/willow_workload.dir/DependInfo.cmake"
  "/root/repo/src/binpack/CMakeFiles/willow_binpack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
