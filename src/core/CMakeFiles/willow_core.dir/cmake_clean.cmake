file(REMOVE_RECURSE
  "CMakeFiles/willow_core.dir/allocation.cc.o"
  "CMakeFiles/willow_core.dir/allocation.cc.o.d"
  "CMakeFiles/willow_core.dir/balance.cc.o"
  "CMakeFiles/willow_core.dir/balance.cc.o.d"
  "CMakeFiles/willow_core.dir/cluster.cc.o"
  "CMakeFiles/willow_core.dir/cluster.cc.o.d"
  "CMakeFiles/willow_core.dir/controller.cc.o"
  "CMakeFiles/willow_core.dir/controller.cc.o.d"
  "CMakeFiles/willow_core.dir/stability.cc.o"
  "CMakeFiles/willow_core.dir/stability.cc.o.d"
  "libwillow_core.a"
  "libwillow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
