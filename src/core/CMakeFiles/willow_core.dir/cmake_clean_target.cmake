file(REMOVE_RECURSE
  "libwillow_core.a"
)
