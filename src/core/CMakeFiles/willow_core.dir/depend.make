# Empty dependencies file for willow_core.
# This may be replaced when dependencies are built.
