#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/allocation.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace willow::core {

namespace {
constexpr double kEps = 1e-9;

obs::Event make_event(obs::EventType type, NodeId node,
                      NodeId node2 = hier::kNoNode, workload::AppId app = 0,
                      obs::Reason reason = obs::Reason::kNone,
                      double value = 0.0, double aux = 0.0) {
  obs::Event e;
  e.type = type;
  e.node = node;
  e.node2 = node2;
  e.app = app;
  e.reason = reason;
  e.value = value;
  e.aux = aux;
  return e;
}

// FNV-1a over 64-bit words; used to fingerprint packing problems.  Collisions
// would silently reuse a stale verdict, but at 64 bits the collision rate is
// negligible against the ~1e7 fingerprints of even a long 100k-server run,
// and the shadow-diff mode exists to catch exactly this class of error.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
}

std::string to_string(const ControlEvent& e) {
  std::string out = "t=" + std::to_string(e.tick) + " ";
  switch (e.kind) {
    case EventKind::kMigrationInitiated:
      out += "migrate app " + std::to_string(e.app) + " " +
             std::to_string(e.node) + " -> " + std::to_string(e.node2);
      break;
    case EventKind::kMigrationCompleted:
      out += "landed app " + std::to_string(e.app) + " on " +
             std::to_string(e.node2);
      break;
    case EventKind::kDrop:
      out += "drop app " + std::to_string(e.app) + " on " +
             std::to_string(e.node);
      break;
    case EventKind::kDegrade:
      out += "degrade app " + std::to_string(e.app) + " on " +
             std::to_string(e.node);
      break;
    case EventKind::kRevive:
      out += "revive app " + std::to_string(e.app) + " on " +
             std::to_string(e.node);
      break;
    case EventKind::kRestore:
      out += "restore app " + std::to_string(e.app) + " on " +
             std::to_string(e.node);
      break;
    case EventKind::kSleep:
      out += "sleep server " + std::to_string(e.node);
      break;
    case EventKind::kWake:
      out += "wake server " + std::to_string(e.node);
      break;
  }
  out += " (" + std::to_string(e.amount.value()) + " W)";
  return out;
}

void ControllerConfig::validate() const {
  if (!(demand_period.value() > 0.0)) {
    throw std::invalid_argument("ControllerConfig: demand_period must be > 0");
  }
  if (eta1 < 1 || eta2 <= eta1) {
    throw std::invalid_argument("ControllerConfig: need 1 <= eta1 < eta2");
  }
  if (margin.value() < 0.0 || migration_cost.value() < 0.0) {
    throw std::invalid_argument("ControllerConfig: negative margin/cost");
  }
  if (consolidation_threshold < 0.0 || consolidation_threshold > 1.0) {
    throw std::invalid_argument(
        "ControllerConfig: consolidation_threshold must be in [0,1]");
  }
  if (migration_cost_periods < 1) {
    throw std::invalid_argument(
        "ControllerConfig: migration_cost_periods must be >= 1");
  }
  if (!(degraded_service_level > 0.0) || degraded_service_level >= 1.0) {
    throw std::invalid_argument(
        "ControllerConfig: degraded_service_level must be in (0,1)");
  }
  if (!(target_fill_fraction > 0.0) || target_fill_fraction > 1.0) {
    throw std::invalid_argument(
        "ControllerConfig: target_fill_fraction must be in (0,1]");
  }
  if (report_deadband.value() < 0.0) {
    throw std::invalid_argument(
        "ControllerConfig: report_deadband must be >= 0");
  }
  if (report_deadband.value() > 0.0 &&
      report_deadband.value() >= margin.value()) {
    // Property 4 only holds if demand movement too small to be reported is
    // also too small to warrant a migration; see stability.cc.
    throw std::invalid_argument(
        "ControllerConfig: report_deadband must stay below margin");
  }
  if (stale_timeout_ticks < 0) {
    throw std::invalid_argument(
        "ControllerConfig: stale_timeout_ticks must be >= 0");
  }
  if (!(stale_decay > 0.0) || stale_decay > 1.0) {
    throw std::invalid_argument(
        "ControllerConfig: stale_decay must be in (0, 1]");
  }
  if (directive_retry_limit < 0) {
    throw std::invalid_argument(
        "ControllerConfig: directive_retry_limit must be >= 0");
  }
}

Controller::Controller(Cluster& cluster, ControllerConfig config)
    : cluster_(cluster), config_(config) {
  config_.validate();
  budget_reduced_.assign(cluster_.tree().size(), false);
  absorbed_w_.assign(cluster_.tree().size(), 0.0);
  reserved_in_w_.assign(cluster_.tree().size(), 0.0);
  outbound_in_flight_w_.assign(cluster_.tree().size(), 0.0);
  // The report sweep's walk policy lives in the tree; push ours down so the
  // whole control plane runs one mode.
  auto& tree = cluster_.tree();
  tree.set_incremental(config_.incremental);
  tree.set_report_deadband(config_.report_deadband);
  tree.set_shadow_diff(config_.shadow_diff);
}

bool Controller::budget_reduced(NodeId node) const {
  return node < budget_reduced_.size() && budget_reduced_[node];
}

void Controller::ensure_topology_cache() {
  const auto& tree = cluster_.tree();
  if (cache_tree_size_ == tree.size()) return;
  cache_tree_size_ = tree.size();
  bottom_up_ = tree.bottom_up();
  top_down_ = tree.top_down();
  server_children_.assign(tree.size(), {});
  is_group_parent_.assign(tree.size(), 0);
  group_parents_.clear();
  // Per-subtree server enumeration lives in the arena now: contiguous slot
  // spans in creation order replace the old per-node `subtree_servers_`
  // vectors (same membership, same iteration order, O(1) per node).
  cluster_.arena().build_subtree_index(tree);
  for (NodeId s : cluster_.server_ids()) {
    const NodeId parent = tree.node(s).parent();
    if (parent != hier::kNoNode) {
      server_children_[parent].push_back(s);
      is_group_parent_[parent] = 1;
    }
  }
  for (NodeId id : bottom_up_) {
    if (!tree.node(id).is_leaf() && is_group_parent_[id]) {
      group_parents_.push_back(id);
    }
  }

  // Incremental-state reset: a new (or re-shaped) tree starts all-dirty so
  // the first pass of every phase is a full recompute that seeds the caches.
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  change_epoch_ = 0;
  subtree_epoch_.assign(tree.size(), 0);
  division_dirty_.assign(tree.size(), 1);
  limit_dirty_.assign(tree.size(), 1);
  const std::size_t ns = cluster_.server_count();
  cached_leaf_limit_.assign(ns, 0.0);
  cached_limit_version_.assign(ns, kNever);
  cached_sensor_version_.assign(ns, kNever);
  pending_directives_.clear();
  consol_entry_.assign(ns, {});
  consol_entry_epoch_.assign(ns, kNever);
  server_envelope_.assign(ns, 0.0);
  server_envelope_version_.assign(ns, kNever);
  cached_fleet_envelope_ = -1.0;
  consol_order_.clear();
  consol_order_valid_ = false;
  consol_fail_local_.assign(ns, {});
  consol_fail_root_.assign(ns, {});
  pack_memo_ = {};
}

void Controller::touch(NodeId node) {
  ++change_epoch_;
  const auto& tree = cluster_.tree();
  for (NodeId cur = node; cur != hier::kNoNode; cur = tree.node(cur).parent()) {
    subtree_epoch_[cur] = change_epoch_;
  }
}

void Controller::note_external_change(NodeId node) {
  if (!config_.incremental) return;
  ensure_topology_cache();
  touch(node);
  cluster_.tree().mark_report_dirty(node);
}

void Controller::note_availability_change(NodeId node) {
  // Same dirtying as the sleep/wake paths: the active flip changes the
  // parent's roll-up and division, and the node must re-report on recovery.
  // Unconditional (not gated on config_.incremental): the dirty flags are
  // only consulted by the incremental walk, and the full walk ignores them.
  ensure_topology_cache();
  auto& tree = cluster_.tree();
  const NodeId p = tree.node(node).parent();
  if (p != hier::kNoNode) {
    limit_dirty_[p] = 1;
    division_dirty_[p] = 1;
  }
  tree.mark_report_dirty(node);
  touch(node);
}

void Controller::set_link_faults(const fault::LinkFaultModel* faults) {
  link_faults_ = faults;
  cluster_.tree().set_link_faults(faults);
  resolve_fault_instruments();
}

Watts Controller::leaf_limit(std::size_t server_index) {
  const auto& srv = cluster_.server_at(server_index);
  const std::uint64_t v = srv.thermal().state_version();
  const std::uint64_t sv = srv.sensor_version();
  if (cached_limit_version_[server_index] != v ||
      cached_sensor_version_[server_index] != sv) {
    cached_limit_version_[server_index] = v;
    cached_sensor_version_[server_index] = sv;
    const auto& th = srv.thermal();
    Watts thermal_limit{0.0};
    switch (srv.temp_sensor().mode) {
      case fault::SensorMode::kOk:
        // "So that the temperature does not exceed T_limit during the next
        // adjustment window" (Sec. III-A): the window is one demand period.
        thermal_limit = th.power_limit(config_.demand_period);
        break;
      case fault::SensorMode::kDropout: {
        // Known-missing reading: fail safe to the steady-state envelope,
        // which keeps T <= T_limit from *any* starting temperature — the
        // conservative choice when the controller is blind.
        const Watts ss = th.steady_state_power_limit();
        thermal_limit = util::min(util::positive_part(ss),
                                  th.params().nameplate);
        break;
      }
      case fault::SensorMode::kStuck:
      case fault::SensorMode::kBias:
        // The controller believes the lying sensor — that is the fault being
        // modeled.  A stuck-low sensor over-budgets a hot server; the plant
        // keeps evolving on the true temperature.
        thermal_limit = thermal::power_limit_from(
            th.params(), srv.sensed_temperature(), config_.demand_period);
        break;
    }
    cached_leaf_limit_[server_index] =
        util::min(srv.circuit_limit(), thermal_limit).value();
  }
  return Watts{cached_leaf_limit_[server_index]};
}

void Controller::resolve_instruments() {
  if (bus_ == nullptr) {
    c_budget_directives_ = nullptr;
    c_divisions_memoized_ = nullptr;
    c_packings_reused_ = nullptr;
    c_shadow_checks_ = nullptr;
    c_shadow_mismatches_ = nullptr;
    c_consol_candidates_ = nullptr;
    c_consol_drained_ = nullptr;
    c_consol_cache_served_ = nullptr;
    c_consol_batched_ = nullptr;
    c_index_point_updates_ = nullptr;
    resolve_fault_instruments();
    return;
  }
  auto& m = bus_->metrics();
  c_budget_directives_ = &m.counter("control.budget_directives");
  c_divisions_memoized_ = &m.counter("control.supply_subtrees_memoized");
  c_packings_reused_ = &m.counter("control.packings_reused");
  c_shadow_checks_ = &m.counter("control.shadow_checks");
  c_shadow_mismatches_ = &m.counter("control.shadow_mismatches");
  c_consol_candidates_ = &m.counter("control.consol_candidates");
  c_consol_drained_ = &m.counter("control.consol_drained");
  c_consol_cache_served_ = &m.counter("control.consol_cache_served");
  c_consol_batched_ = &m.counter("control.consol_batched");
  c_index_point_updates_ = &m.counter("control.index_point_updates");
  resolve_fault_instruments();
}

void Controller::resolve_fault_instruments() {
  // Registered only when the degraded-mode machinery is actually armed, so a
  // fault-free run's metrics snapshot carries no fault.* names at all.
  const bool active =
      link_faults_ != nullptr || config_.stale_timeout_ticks > 0;
  if (bus_ == nullptr || !active) {
    c_directive_losses_ = nullptr;
    c_directive_retries_ = nullptr;
    c_directives_abandoned_ = nullptr;
    c_stale_timeouts_ = nullptr;
    c_fallback_budgets_ = nullptr;
    return;
  }
  auto& m = bus_->metrics();
  c_directive_losses_ = &m.counter("fault.directive_losses");
  c_directive_retries_ = &m.counter("fault.directive_retries");
  c_directives_abandoned_ = &m.counter("fault.directives_abandoned");
  c_stale_timeouts_ = &m.counter("fault.stale_timeouts");
  c_fallback_budgets_ = &m.counter("fault.fallback_budgets");
}

void Controller::count_shadow_check(bool mismatch) {
  if (c_shadow_checks_ != nullptr) {
    c_shadow_checks_->increment();
    if (mismatch) c_shadow_mismatches_->increment();
  }
}

void Controller::apply_stale_observations() {
  if (config_.stale_timeout_ticks <= 0) return;
  auto& tree = cluster_.tree();
  const bool observe = bus_ != nullptr && bus_->enabled();
  const std::size_t count = cluster_.server_count();
  for (std::size_t i = 0; i < count; ++i) {
    const auto& srv = cluster_.server_at(i);
    // A crashed server's leaf is inactive (the sweep already feeds its
    // subtree zero); synthesis only covers servers that are up but silent.
    if (srv.asleep() || srv.crashed()) continue;
    const int stale = srv.stale_ticks();
    if (stale < config_.stale_timeout_ticks || !srv.has_last_good_demand()) {
      continue;
    }
    // Decayed last-known-good: the dynamic part above the idle floor shrinks
    // geometrically the longer the silence lasts, so a dark server's claim on
    // the budget fades instead of freezing at its final report.
    const double steps =
        static_cast<double>(stale - config_.stale_timeout_ticks);
    const Watts synthetic =
        srv.idle_floor() +
        util::positive_part(srv.last_good_demand() - srv.idle_floor()) *
            std::pow(config_.stale_decay, steps);
    if (stale == config_.stale_timeout_ticks) {
      if (c_stale_timeouts_ != nullptr) c_stale_timeouts_->increment();
      if (observe) {
        bus_->emit(make_event(obs::EventType::kStaleTimeout, srv.node(),
                              hier::kNoNode, 0, obs::Reason::kNone,
                              synthetic.value(), static_cast<double>(stale)));
      }
    }
    // Through the normal EWMA/report path, so the incremental and full walks
    // see identical inputs and shadow_diff keeps holding under faults.
    tree.observe_leaf(srv.node(), synthetic);
  }
}

void Controller::apply_fallback_budgets() {
  if (config_.stale_timeout_ticks <= 0) return;
  auto& tree = cluster_.tree();
  const bool observe = bus_ != nullptr && bus_->enabled();
  const auto& sids = cluster_.server_ids();
  for (std::size_t i = 0; i < sids.size(); ++i) {
    const auto& srv = cluster_.server_at(i);
    if (srv.asleep() || srv.crashed()) continue;
    if (srv.stale_ticks() < config_.stale_timeout_ticks) continue;
    const NodeId s = sids[i];
    auto& leaf = tree.node(s);
    if (!leaf.active()) continue;
    // Safe envelope for a dark server: holdable at steady state from any
    // starting temperature, and never above the regular per-window limit —
    // the clamp only ever tightens (fail-safe toward the thermal limit).
    const auto& th = srv.thermal();
    const Watts steady = util::min(
        util::positive_part(th.steady_state_power_limit()),
        th.params().nameplate);
    const Watts safe = util::min(leaf_limit(i), steady);
    if (leaf.budget() > safe + Watts{kEps}) {
      if (observe) {
        bus_->emit(make_event(obs::EventType::kFallbackBudget, s,
                              hier::kNoNode, 0, obs::Reason::kNone,
                              safe.value(), leaf.budget().value()));
      }
      leaf.set_budget(safe);
      budget_reduced_[s] = true;
      const NodeId p = leaf.parent();
      if (p != hier::kNoNode) division_dirty_[p] = 1;
      touch(s);
      if (c_fallback_budgets_ != nullptr) c_fallback_budgets_->increment();
    }
  }
}

void Controller::deliver_directive(NodeId id, Watts budget) {
  auto& tree = cluster_.tree();
  auto& n = tree.node(id);
  if (budget < n.budget() - Watts{kEps}) budget_reduced_[id] = true;
  if (bus_ != nullptr && bus_->enabled()) {
    bus_->emit(make_event(obs::EventType::kBudgetDirective, id, hier::kNoNode,
                          0, obs::Reason::kNone, budget.value(),
                          n.budget().value()));
  }
  n.set_budget(budget);
  tree.record_budget_directive(id);
  division_dirty_[id] = 1;  // its own children now share a different pie
  touch(id);
}

void Controller::queue_directive_retry(NodeId id, Watts budget) {
  // The division above believes the child now holds `budget`; it does not.
  // Keep the dividing parent dirty so the next supply pass re-derives (and
  // re-announces) rather than memoizing outputs that never landed.
  const NodeId p = cluster_.tree().node(id).parent();
  if (p != hier::kNoNode) division_dirty_[p] = 1;
  for (auto& pd : pending_directives_) {
    if (pd.node == id) {
      pd.budget = budget;
      pd.attempts = 1;
      pd.next_retry = tick_ + 2;
      return;
    }
  }
  pending_directives_.push_back({id, budget, 1, tick_ + 2});
}

void Controller::retry_pending_directives() {
  if (pending_directives_.empty()) return;
  auto& tree = cluster_.tree();
  const bool observe = bus_ != nullptr && bus_->enabled();
  std::uint64_t directives = 0;
  auto keep = pending_directives_.begin();
  for (auto& p : pending_directives_) {
    if (p.next_retry > tick_) {
      *keep++ = p;
      continue;
    }
    auto& n = tree.node(p.node);
    if (p.budget.value() == n.budget().value()) {
      // Something else (a fresh division, a clamp) already put the node at
      // this value; resending would fabricate a spurious directive.
      continue;
    }
    fault::DownVerdict fate{};
    if (link_faults_ != nullptr) fate = link_faults_->down(p.node);
    if (fate.lose) {
      ++p.attempts;
      if (c_directive_losses_ != nullptr) c_directive_losses_->increment();
      if (observe) {
        obs::Event e = make_event(obs::EventType::kLinkDrop, p.node,
                                  hier::kNoNode, 0, obs::Reason::kNone,
                                  p.budget.value(), n.budget().value());
        e.direction = obs::LinkDirection::kDown;
        bus_->emit(std::move(e));
      }
      if (p.attempts > config_.directive_retry_limit) {
        // Abandoned: the parent stayed division-dirty the whole time, so the
        // next supply pass re-derives a fresh directive from live state.
        if (c_directives_abandoned_ != nullptr) {
          c_directives_abandoned_->increment();
        }
        continue;
      }
      p.next_retry = tick_ + (1L << std::min(p.attempts, 6));
      *keep++ = p;
      continue;
    }
    const double previous = n.budget().value();
    deliver_directive(p.node, p.budget);
    ++directives;
    if (c_directive_retries_ != nullptr) c_directive_retries_->increment();
    if (fate.duplicate) {
      // Same message applied twice: state is unchanged, but the message
      // counters and the trace must carry both copies.
      tree.record_budget_directive(p.node);
      ++directives;
      if (observe) {
        bus_->emit(make_event(obs::EventType::kBudgetDirective, p.node,
                              hier::kNoNode, 0, obs::Reason::kNone,
                              p.budget.value(), previous));
      }
    }
  }
  pending_directives_.erase(keep, pending_directives_.end());
  if (c_budget_directives_ != nullptr && directives > 0) {
    c_budget_directives_->increment(directives);
  }
}

void Controller::tick(Watts available_supply) {
  ++tick_;
  ensure_topology_cache();
  // The previous tick's transient booking (absorbed_w_/migrated_from_w_) is
  // about to reset below, which moves target_capacity() for every endpoint of
  // last tick's migrations.  Stamp those endpoints so the epoch-keyed
  // consolidation verdict caches see the reset as a change — this is what
  // lets the caches and the fleet fast path stay valid while migrations are
  // in flight instead of being quiescence-gated.
  for (const auto& rec : migrations_this_tick_) {
    touch(rec.from);
    touch(rec.to);
  }
  migrations_this_tick_.clear();
  events_this_tick_.clear();
  targets_this_tick_.clear();
  absorbed_w_.assign(cluster_.tree().size(), 0.0);
  migrated_from_w_.assign(cluster_.tree().size(), 0.0);

  complete_due_migrations();

  cluster_.observe_leaf_demands();
  apply_stale_observations();
  auto& tree = cluster_.tree();
  tree.report_demands();
  // Every report that fired is a change the decision phases must see: the
  // reporter's subtree moved (consolidation epochs) and its parent's child
  // demand vector moved (budget division).
  for (NodeId r : tree.reported_last_sweep()) {
    touch(r);
    const NodeId p = tree.node(r).parent();
    if (p != hier::kNoNode) division_dirty_[p] = 1;
  }
  retry_pending_directives();

  last_supply_ = available_supply;
  if (tick_ == 1 || tick_ % config_.eta1 == 0) {
    supply_adaptation(available_supply);
  }
  enforce_thermal_limits();
  apply_fallback_budgets();

  demand_adaptation();

  if (tick_ % config_.eta2 == 0) {
    consolidate();
  }

  revive_dropped();
  cluster_.age_temporary_demands();
}

void Controller::shadow_check_hard_limit(NodeId id) {
  const auto& tree = cluster_.tree();
  const auto& n = tree.node(id);
  Watts sum{0.0};
  for (NodeId c : n.children()) {
    if (tree.node(c).active()) sum += tree.node(c).hard_limit();
  }
  if (const auto rating = cluster_.group_circuit_limit(id)) {
    sum = util::min(sum, *rating);
  }
  const bool mismatch = sum.value() != n.hard_limit().value();
  count_shadow_check(mismatch);
  if (mismatch) {
    throw std::logic_error(
        "Controller shadow diff: hard-limit roll-up skipped node " +
        std::to_string(id) + " whose children's limits changed");
  }
}

void Controller::update_hard_limits() {
  auto& tree = cluster_.tree();
  const bool inc = config_.incremental;
  // Leaves first, by server index (flat scans, no id-hash lookups): a
  // server's limit moves only with its thermal state version, which
  // leaf_limit() caches on.
  const auto& sids = cluster_.server_ids();
  for (std::size_t i = 0; i < sids.size(); ++i) {
    auto& n = tree.node(sids[i]);
    const Watts lim = leaf_limit(i);
    if (lim.value() != n.hard_limit().value()) {
      n.set_hard_limit(lim);
      const NodeId p = n.parent();
      if (p != hier::kNoNode) {
        limit_dirty_[p] = 1;
        division_dirty_[p] = 1;
      }
    }
  }
  // Internal roll-up, children before parents; clean subtrees keep their
  // cached sums.  (Non-server leaves keep their infinite default, as in the
  // full walk, which never touched them either.)
  for (NodeId id : bottom_up_) {
    auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    if (inc && !limit_dirty_[id]) {
      if (config_.shadow_diff) shadow_check_hard_limit(id);
      continue;
    }
    limit_dirty_[id] = 0;
    Watts sum{0.0};
    for (NodeId c : n.children()) {
      if (tree.node(c).active()) sum += tree.node(c).hard_limit();
    }
    // An under-designed rack/zone feed caps the subtree regardless of what
    // its members could individually draw (Sec. I lean-design scenario).
    if (const auto rating = cluster_.group_circuit_limit(id)) {
      sum = util::min(sum, *rating);
    }
    if (sum.value() != n.hard_limit().value()) {
      n.set_hard_limit(sum);
      const NodeId p = n.parent();
      if (p != hier::kNoNode) {
        limit_dirty_[p] = 1;
        division_dirty_[p] = 1;
      }
    }
  }
}

void Controller::shadow_check_division(NodeId id) {
  auto& tree = cluster_.tree();
  const auto& n = tree.node(id);
  const auto& kids = n.children();
  std::vector<Watts> demands(kids.size()), caps(kids.size());
  for (std::size_t i = 0; i < kids.size(); ++i) {
    const auto& child = tree.node(kids[i]);
    caps[i] = child.active() ? child.hard_limit() : Watts{0.0};
    demands[i] = config_.allocation == AllocationPolicy::kProportionalToDemand
                     ? (child.active() ? child.reported_demand() : Watts{0.0})
                     : caps[i];
  }
  const AllocationResult alloc =
      allocate_proportional(n.budget(), demands, caps);
  bool mismatch = false;
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (alloc.budgets[i].value() != tree.node(kids[i]).budget().value()) {
      mismatch = true;
    }
  }
  count_shadow_check(mismatch);
  if (mismatch) {
    throw std::logic_error(
        "Controller shadow diff: memoized division under node " +
        std::to_string(id) + " no longer matches a fresh allocation");
  }
}

void Controller::supply_adaptation(Watts available_supply) {
  auto& tree = cluster_.tree();
  ensure_topology_cache();
  update_hard_limits();
  if (budget_reduced_.size() != tree.size()) {
    budget_reduced_.assign(tree.size(), false);
  } else {
    for (NodeId id = 0; id < budget_reduced_.size(); ++id) {
      if (budget_reduced_[id]) {
        budget_reduced_[id] = false;
        // Clearing the flag changes this node's eligibility under the
        // unidirectional rule even though no budget moved; stamp it so
        // cached consolidation verdicts that saw the old flag die.
        touch(id);
      }
    }
  }

  const bool observe = bus_ != nullptr && bus_->enabled();
  const bool inc = config_.incremental;
  std::uint64_t directives = 0;
  std::uint64_t memoized = 0;
  // Queued retries carry point-in-time values; once a fresh division speaks
  // for a node (same value or a delivered replacement), the queued copy is
  // stale and resending it would fabricate a directive.
  auto drop_pending = [&](NodeId id) {
    if (pending_directives_.empty()) return;
    std::erase_if(pending_directives_,
                  [id](const PendingDirective& p) { return p.node == id; });
  };
  // Event-driven directive: a budget message flows down only when the value
  // actually changed (bitwise).  Identical decisions in both walk modes: the
  // full walk re-derives every budget but announces only the changed ones.
  auto mark_and_set = [&](NodeId id, Watts budget) {
    auto& n = tree.node(id);
    if (budget.value() == n.budget().value()) {
      drop_pending(id);
      return;
    }
    // The root's budget assignment crosses no link — it is the division's
    // input, not a directive to anyone — so it can neither be lost nor
    // counted (the directive counter reconciles against downward
    // link-message trace lines).
    fault::DownVerdict fate{};
    if (link_faults_ != nullptr && !n.is_root()) fate = link_faults_->down(id);
    if (fate.lose) {
      if (c_directive_losses_ != nullptr) c_directive_losses_->increment();
      if (observe) {
        obs::Event e = make_event(obs::EventType::kLinkDrop, id, hier::kNoNode,
                                  0, obs::Reason::kNone, budget.value(),
                                  n.budget().value());
        e.direction = obs::LinkDirection::kDown;
        bus_->emit(std::move(e));
      }
      queue_directive_retry(id, budget);
      return;
    }
    const double previous = n.budget().value();
    deliver_directive(id, budget);
    drop_pending(id);
    if (!n.is_root()) ++directives;
    if (fate.duplicate) {
      // Same message applied twice: state is unchanged, but the message
      // counters and the trace must carry both copies.
      tree.record_budget_directive(id);
      ++directives;
      if (observe) {
        bus_->emit(make_event(obs::EventType::kBudgetDirective, id,
                              hier::kNoNode, 0, obs::Reason::kNone,
                              budget.value(), previous));
      }
    }
  };

  const NodeId root = tree.root();
  mark_and_set(root, util::min(available_supply, tree.node(root).hard_limit()));

  for (NodeId id : top_down_) {
    auto& n = tree.node(id);
    if (n.is_leaf()) continue;
    if (inc && !division_dirty_[id]) {
      // Own budget, child demand vector and child capacities all unchanged
      // since this division last ran: the children's budgets stand.
      ++memoized;
      if (config_.shadow_diff) shadow_check_division(id);
      continue;
    }
    division_dirty_[id] = 0;
    const auto& kids = n.children();
    auto& demands = alloc_demands_scratch_;
    auto& caps = alloc_caps_scratch_;
    demands.resize(kids.size());
    caps.resize(kids.size());
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const auto& child = tree.node(kids[i]);
      caps[i] = child.active() ? child.hard_limit() : Watts{0.0};
      demands[i] =
          config_.allocation == AllocationPolicy::kProportionalToDemand
              ? (child.active() ? child.reported_demand() : Watts{0.0})
              : caps[i];
    }
    const AllocationResult alloc =
        allocate_proportional(n.budget(), demands, caps);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      mark_and_set(kids[i], alloc.budgets[i]);
    }
    if (id == root) root_unallocated_ = alloc.unallocated;
  }
  if (c_budget_directives_ != nullptr) {
    c_budget_directives_->increment(directives);
    c_divisions_memoized_->increment(memoized);
  }
}

void Controller::enforce_thermal_limits() {
  auto& tree = cluster_.tree();
  if (thermally_clamped_.size() != tree.size()) {
    thermally_clamped_.assign(tree.size(), 0);
  } else {
    std::fill(thermally_clamped_.begin(), thermally_clamped_.end(), 0);
  }
  const auto& sids = cluster_.server_ids();
  const bool observe = bus_ != nullptr && bus_->enabled();
  for (std::size_t i = 0; i < sids.size(); ++i) {
    const NodeId s = sids[i];
    auto& leaf = tree.node(s);
    if (!leaf.active()) continue;
    const Watts limit = leaf_limit(i);
    if (leaf.budget() > limit + Watts{kEps}) {
      if (observe) {
        bus_->emit(make_event(obs::EventType::kThermalThrottle, s,
                              hier::kNoNode, 0, obs::Reason::kThermal,
                              limit.value(), leaf.budget().value()));
      }
      leaf.set_budget(limit);
      budget_reduced_[s] = true;
      thermally_clamped_[s] = 1;
      // The clamp knocked this leaf off its parent's allocation; the next
      // supply pass must re-divide (and will re-announce) or the two walk
      // modes would diverge on where the budget sits between passes.
      const NodeId p = leaf.parent();
      if (p != hier::kNoNode) division_dirty_[p] = 1;
      touch(s);
    }
  }
}

bool Controller::eligible_target(NodeId target_server, NodeId scope) const {
  if (!config_.enforce_unidirectional) return true;
  // The rule bans migrating *into a subtree* whose budget the triggering
  // event reduced ("no migrations are allowed into that rack") — i.e. it
  // gates the internal nodes a migration crosses, not the target server
  // itself.  A reduction only disqualifies a subtree that the cut left
  // unable to cover its own aggregate demand: a rack whose budget shrank but
  // still holds surplus is a legitimate destination (otherwise a
  // datacenter-wide plunge could never migrate anything, contradicting the
  // paper's own Fig. 16 testbed narrative).
  const auto& tree = cluster_.tree();
  for (NodeId cur = tree.node(target_server).parent();
       cur != scope && cur != hier::kNoNode; cur = tree.node(cur).parent()) {
    if (budget_reduced_[cur] &&
        reported_deficit(tree.node(cur)).value() > kEps) {
      return false;
    }
  }
  return true;
}

Watts Controller::target_capacity(NodeId server) const {
  const auto& leaf = cluster_.tree().node(server);
  if (!leaf.active()) return Watts{0.0};
  // Budget surplus (Eq. 6), additionally capped by the *sustainable* thermal
  // headroom: a cold server's window-based budget (Eq. 3) is transiently
  // generous, but demand parked on it must also be holdable at steady state
  // or it would be re-migrated as soon as the host warms up — exactly the
  // ping-pong the margins exist to prevent.
  const auto& srv = cluster_.server(server);
  // Sustainable ceiling, derated by the fill fraction on the dynamic part
  // (the latency-power tradeoff knob; see ControllerConfig).
  const Watts allowed =
      srv.idle_floor() +
      (srv.thermal().steady_state_power_limit() - srv.idle_floor()) *
          config_.target_fill_fraction;
  const Watts sustainable_headroom = allowed - leaf.reported_demand();
  const Watts cap = util::min(reported_surplus(leaf), sustainable_headroom) -
                    config_.margin - Watts{absorbed_w_[server]} -
                    Watts{reserved_in_w_[server]};
  return util::positive_part(cap);
}

std::vector<Controller::PlanItem> Controller::select_victims(
    NodeId server, Watts needed, MigrationCause cause, obs::Reason reason) {
  auto& apps = cluster_.server(server).apps();
  auto& sorted = victim_scratch_;
  sorted.clear();
  sorted.reserve(apps.size());
  for (const auto& a : apps) {
    if (a.dropped() || a.demand().value() <= kEps) continue;
    if (apps_in_flight_.contains(a.id())) continue;  // already committed
    sorted.push_back(&a);
  }
  // Deterministic victim order independent of the container's history: by
  // demand, app id breaking exact ties.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Application* a, const Application* b) {
                     if (a->demand().value() != b->demand().value()) {
                       return a->demand() > b->demand();
                     }
                     return a->id() < b->id();
                   });
  std::vector<PlanItem> items;
  Watts covered{0.0};
  for (const Application* a : sorted) {
    if (covered >= needed) break;
    items.push_back({a->id(), server, a->demand() + config_.migration_cost,
                     a->demand(), cause, reason});
    covered += a->demand();
  }
  return items;
}

void Controller::complete_due_migrations() {
  if (in_flight_.empty()) return;
  auto keep = in_flight_.begin();
  for (auto& m : in_flight_) {
    if (m.completes_at > tick_) {
      *keep++ = m;
      continue;
    }
    // The application may have been removed (workload churn) mid-transfer:
    // release the bookkeeping and move on.
    if (cluster_.host_of(m.app) != m.source) {
      reserved_in_w_[m.target] =
          std::max(0.0, reserved_in_w_[m.target] - m.demand.value());
      outbound_in_flight_w_[m.source] =
          std::max(0.0, outbound_in_flight_w_[m.source] - m.demand.value());
      apps_in_flight_.erase(m.app);
      touch(m.target);
      touch(m.source);
      continue;
    }
    cluster_.move_app(m.app, m.source, m.target);
    if (Application* app = cluster_.find_app(m.app)) {
      app->set_last_migrated_at(static_cast<double>(tick_));
    }
    reserved_in_w_[m.target] =
        std::max(0.0, reserved_in_w_[m.target] - m.demand.value());
    outbound_in_flight_w_[m.source] =
        std::max(0.0, outbound_in_flight_w_[m.source] - m.demand.value());
    apps_in_flight_.erase(m.app);
    touch(m.target);
    touch(m.source);
    events_this_tick_.push_back({EventKind::kMigrationCompleted, tick_, m.app,
                                 m.source, m.target, m.demand});
    if (bus_ != nullptr && bus_->enabled()) {
      bus_->emit(make_event(obs::EventType::kMigrationLanded, m.source,
                            m.target, m.app, obs::Reason::kNone,
                            m.demand.value()));
    }
    WILLOW_DEBUG() << "migration of app " << m.app << " landed on "
                   << m.target;
  }
  in_flight_.erase(keep, in_flight_.end());
}

void Controller::apply_migration(const PlanItem& item, NodeId target) {
  int transfer_periods = 0;
  if (config_.migration_periods_per_gib > 0.0) {
    if (const Application* app = cluster_.find_app(item.app)) {
      const double gib = app->image_size().value() / 1024.0;
      transfer_periods = std::max(
          1, static_cast<int>(std::ceil(gib * config_.migration_periods_per_gib)));
    }
  }
  const int cost_periods =
      std::max(config_.migration_cost_periods, transfer_periods);
  cluster_.server(item.source)
      .add_temporary_demand(config_.migration_cost, cost_periods);
  cluster_.server(target).add_temporary_demand(config_.migration_cost,
                                               cost_periods);
  if (transfer_periods == 0) {
    // The paper's model: placement changes within the decision period.
    cluster_.move_app(item.app, item.source, target);
    if (Application* app = cluster_.find_app(item.app)) {
      app->set_last_migrated_at(static_cast<double>(tick_));
    }
    migrated_from_w_[item.source] += item.demand.value();
  } else {
    // Latency mode: the VM keeps running at the source while the image
    // transfers; the target holds a capacity reservation until it lands.
    in_flight_.push_back(
        {item.app, item.source, target, tick_ + transfer_periods,
         item.demand});
    apps_in_flight_.insert(item.app);
    reserved_in_w_[target] += item.demand.value();
    outbound_in_flight_w_[item.source] += item.demand.value();
  }
  absorbed_w_[target] += item.size.value();
  targets_this_tick_.insert(target);
  touch(item.source);
  touch(target);

  const auto& tree = cluster_.tree();
  MigrationRecord rec;
  rec.app = item.app;
  rec.from = item.source;
  rec.to = target;
  rec.size = item.demand;
  rec.cause = item.cause;
  rec.tick = tick_;
  rec.local = tree.node(item.source).parent() == tree.node(target).parent();
  migrations_this_tick_.push_back(rec);
  events_this_tick_.push_back({EventKind::kMigrationInitiated, tick_, item.app,
                               item.source, target, item.demand});
  if (bus_ != nullptr && bus_->enabled()) {
    const obs::Reason reason =
        item.reason != obs::Reason::kNone
            ? item.reason
            : (item.cause == MigrationCause::kDemand
                   ? obs::Reason::kSupplyDeficit
                   : obs::Reason::kConsolidation);
    bus_->emit(make_event(obs::EventType::kMigration, item.source, target,
                          item.app, reason, item.demand.value(),
                          rec.local ? 1.0 : 0.0));
  }

  if (item.cause == MigrationCause::kDemand) {
    ++stats_.demand_migrations;
  } else {
    ++stats_.consolidation_migrations;
  }
  if (rec.local) {
    ++stats_.local_migrations;
  } else {
    ++stats_.nonlocal_migrations;
  }
  if (sink_) sink_(rec);
  WILLOW_DEBUG() << "migrate app " << item.app << " " << item.source << " -> "
                 << target << " (" << item.demand.value() << " W, "
                 << (item.cause == MigrationCause::kDemand ? "demand"
                                                           : "consolidation")
                 << ", " << (rec.local ? "local" : "non-local") << ")";
}

std::vector<std::size_t> Controller::pack_and_apply(
    std::vector<PlanItem>& items, const std::vector<NodeId>& targets) {
  if (bus_ != nullptr) {
    auto& m = bus_->metrics();
    m.counter("controller.pack_calls").increment();
    m.histogram("controller.pack_items", {1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(items.size()));
  }
  std::uint64_t items_sig = kFnvOffset;
  bp_items_scratch_.clear();
  bp_items_scratch_.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    bp_items_scratch_.push_back(
        {static_cast<std::uint64_t>(i), items[i].size.value(), 0});
    items_sig = fnv1a(items_sig, items[i].app);
    items_sig = fnv1a(items_sig, bits_of(items[i].size.value()));
  }
  std::uint64_t bins_sig = kFnvOffset;
  bp_bins_scratch_.clear();
  bin_node_scratch_.clear();
  for (NodeId t : targets) {
    const Watts cap = target_capacity(t);
    if (cap.value() > kEps) {
      bp_bins_scratch_.push_back(
          {static_cast<std::uint64_t>(t), cap.value(), 0});
      bin_node_scratch_.push_back(t);
      bins_sig = fnv1a(bins_sig, t);
      bins_sig = fnv1a(bins_sig, bits_of(cap.value()));
    }
  }
  // Previous-call reuse: when the identical all-unplaced problem comes back
  // (same items, same bins), the packer's verdict stands; only no-assignment
  // results are reusable because an applied assignment mutates the very
  // surpluses the fingerprint hashed.
  if (config_.incremental && pack_memo_.valid &&
      pack_memo_.item_count == items.size() &&
      pack_memo_.items_sig == items_sig && pack_memo_.bins_sig == bins_sig) {
    if (config_.shadow_diff) {
      const binpack::PackResult check =
          binpack::pack(bp_items_scratch_, bp_bins_scratch_, config_.packing);
      const bool mismatch = !check.assignments.empty() ||
                            check.unplaced != pack_memo_.unplaced;
      count_shadow_check(mismatch);
      if (mismatch) {
        throw std::logic_error(
            "Controller shadow diff: reused packing no longer reproduces");
      }
    }
    if (c_packings_reused_ != nullptr) c_packings_reused_->increment();
    return pack_memo_.unplaced;
  }
  const binpack::PackResult result =
      binpack::pack(bp_items_scratch_, bp_bins_scratch_, config_.packing);
  pack_memo_.valid = result.assignments.empty();
  pack_memo_.items_sig = items_sig;
  pack_memo_.bins_sig = bins_sig;
  pack_memo_.item_count = items.size();
  pack_memo_.unplaced = result.unplaced;
  for (const auto& a : result.assignments) {
    apply_migration(items[a.item], bin_node_scratch_[a.bin]);
  }
  return result.unplaced;
}

void Controller::demand_adaptation() {
  auto& tree = cluster_.tree();
  ensure_topology_cache();

  // Build per-group local problems: every internal node with >= 1 server
  // child is a "level-1" group (precomputed in group_parents_).
  struct Group {
    NodeId parent;
    std::vector<PlanItem> items;
  };
  std::vector<Group> groups;
  for (NodeId g : group_parents_) {
    std::vector<PlanItem> items;
    for (NodeId c : server_children_[g]) {
      const auto& leaf = tree.node(c);
      if (!leaf.active()) continue;
      // In-flight outbound demand is already leaving: plan only the rest.
      const Watts deficit =
          reported_deficit(leaf) - Watts{outbound_in_flight_w_[c]};
      if (deficit.value() > kEps) {
        // Attribute the move to what tightened this server's budget: the
        // per-ΔD thermal clamp if it fired here, else the supply division.
        const obs::Reason reason =
            c < thermally_clamped_.size() && thermally_clamped_[c]
                ? obs::Reason::kThermal
                : obs::Reason::kSupplyDeficit;
        auto victims = select_victims(c, deficit + config_.margin,
                                      MigrationCause::kDemand, reason);
        items.insert(items.end(), victims.begin(), victims.end());
      }
    }
    if (!items.empty()) {
      groups.push_back({g, std::move(items)});
    }
  }
  if (groups.empty()) return;

  std::vector<PlanItem> pending;

  if (config_.prefer_local) {
    // Local pass: match each group's deficits against its own surpluses.
    for (auto& grp : groups) {
      target_scratch_.clear();
      for (NodeId c : server_children_[grp.parent]) {
        if (tree.node(c).active() && eligible_target(c, grp.parent)) {
          target_scratch_.push_back(c);
        }
      }
      const auto unplaced = pack_and_apply(grp.items, target_scratch_);
      for (std::size_t idx : unplaced) pending.push_back(grp.items[idx]);
    }
    // Escalation: climb the hierarchy; at each internal node try the servers
    // of the whole subtree (the local pass already exhausted same-group
    // surpluses, so placements here are effectively non-local).
    if (!pending.empty()) {
      for (NodeId p : bottom_up_) {
        if (tree.node(p).is_leaf()) continue;
        if (is_group_parent_[p] && p != tree.root()) continue;  // local pass done
        std::vector<PlanItem> in_scope;
        std::vector<PlanItem> out_of_scope;
        for (auto& item : pending) {
          (tree.is_ancestor(p, item.source) ? in_scope : out_of_scope)
              .push_back(item);
        }
        if (in_scope.empty()) continue;
        target_scratch_.clear();
        const auto& arena = cluster_.arena();
        const SubtreeSpan span = arena.subtree(p);
        for (std::uint32_t k = 0; k < span.size(); ++k) {
          const NodeId s = arena.node_of(span[k]);
          if (tree.node(s).active() && eligible_target(s, p)) {
            target_scratch_.push_back(s);
          }
        }
        const auto unplaced = pack_and_apply(in_scope, target_scratch_);
        pending = std::move(out_of_scope);
        for (std::size_t idx : unplaced) pending.push_back(in_scope[idx]);
        if (pending.empty()) break;
      }
    }
  } else {
    // Ablation: no locality preference — one global matching at the root.
    for (auto& grp : groups) {
      pending.insert(pending.end(), grp.items.begin(), grp.items.end());
    }
    target_scratch_.clear();
    for (NodeId s : cluster_.server_ids()) {
      if (tree.node(s).active() && eligible_target(s, tree.root())) {
        target_scratch_.push_back(s);
      }
    }
    const auto unplaced = pack_and_apply(pending, target_scratch_);
    std::vector<PlanItem> rest;
    for (std::size_t idx : unplaced) rest.push_back(pending[idx]);
    pending = std::move(rest);
  }

  // Root-level leftovers: wake sleeping capacity, then drop what remains.
  if (!pending.empty() && config_.allow_wake) {
    std::vector<NodeId> asleep;
    for (NodeId s : cluster_.server_ids()) {
      if (cluster_.server(s).asleep()) asleep.push_back(s);
    }
    // Largest capacity first; explicit id tie-break keeps the order a pure
    // function of the inputs.
    std::stable_sort(asleep.begin(), asleep.end(), [&](NodeId a, NodeId b) {
      if (tree.node(a).hard_limit().value() !=
          tree.node(b).hard_limit().value()) {
        return tree.node(a).hard_limit() > tree.node(b).hard_limit();
      }
      return a < b;
    });
    // Wake in geometric batches (1, 2, 4, ...) with ONE supply re-division
    // per batch.  The per-wake re-division this replaces was O(fleet):
    // waking W servers cost W full budget divisions, and under sustained
    // churn the loop could drain a ~50k-server sleep pool chasing leftover
    // demand that fits nowhere, turning one tick into minutes of wasted
    // divisions.  Batching keeps wakes need-driven (a batch doubles only
    // after the previous batch absorbed something) while bounding division
    // work to O(log wakes) per tick, and the absorbed-nothing stop cuts the
    // pathological case to a single wasted wake: capacity that hosts no
    // leftover demand is capacity consolidation just has to re-sleep.
    const auto& root_node = tree.node(tree.root());
    std::size_t next = 0;
    std::size_t batch = 1;
    std::vector<NodeId> batch_nodes;
    while (!pending.empty() && next < asleep.size()) {
      // Headroom a wake could tap: budget the children could not absorb plus
      // raw supply beyond the active-capacity cap on the root budget.
      const Watts headroom =
          root_unallocated_ +
          util::positive_part(last_supply_ - root_node.budget());
      if (headroom.value() <= config_.margin.value()) break;
      batch_nodes.clear();
      const std::size_t take = std::min(batch, asleep.size() - next);
      for (std::size_t i = 0; i < take; ++i) {
        const NodeId s = asleep[next++];
        cluster_.wake_server(s);
        {
          // The wake flips an active flag the aggregation sweeps cannot see.
          const NodeId p = tree.node(s).parent();
          if (p != hier::kNoNode) {
            limit_dirty_[p] = 1;
            division_dirty_[p] = 1;
          }
          tree.mark_report_dirty(s);
          touch(s);
        }
        ++stats_.wakes;
        events_this_tick_.push_back(
            {EventKind::kWake, tick_, 0, s, hier::kNoNode, Watts{0.0}});
        if (bus_ != nullptr && bus_->enabled()) {
          bus_->emit(make_event(obs::EventType::kWake, s, hier::kNoNode, 0,
                                obs::Reason::kSupplyDeficit));
        }
        WILLOW_INFO() << "wake server " << s << " for unplaced demand";
        batch_nodes.push_back(s);
      }
      // Re-divide the same supply with the whole batch participating.
      supply_adaptation(last_supply_);
      const auto unplaced = pack_and_apply(pending, batch_nodes);
      const std::size_t placed = pending.size() - unplaced.size();
      std::vector<PlanItem> rest;
      rest.reserve(unplaced.size());
      for (std::size_t idx : unplaced) rest.push_back(pending[idx]);
      pending = std::move(rest);
      if (placed == 0) break;  // more capacity is not absorbing anything
      batch *= 2;
    }
  }

  if (!pending.empty() && config_.allow_drop) {
    shed_leftovers(pending);
  }
}

void Controller::shed_leftovers(std::vector<PlanItem>& pending) {
  auto& tree = cluster_.tree();
  // Sources that still have unplaceable demand.
  std::vector<NodeId> sources;
  for (const auto& item : pending) {
    if (std::find(sources.begin(), sources.end(), item.source) ==
        sources.end()) {
      sources.push_back(item.source);
    }
  }
  for (NodeId source : sources) {
    // Remaining need: the observed deficit minus what migrations already
    // moved (or are moving) off this server.
    double need = reported_deficit(tree.node(source)).value() -
                  migrated_from_w_[source] - outbound_in_flight_w_[source];
    if (need <= kEps) continue;

    // Shed candidates: every running application on the source, lowest
    // priority first; within a priority, biggest release first (fewest
    // applications touched), app id breaking exact ties.
    auto& apps = shed_scratch_;
    apps.clear();
    for (auto& a : cluster_.server(source).apps()) {
      if (a.dropped()) continue;
      if (apps_in_flight_.contains(a.id())) continue;  // mid-transfer
      apps.push_back(&a);
    }
    std::stable_sort(apps.begin(), apps.end(),
                     [](const Application* a, const Application* b) {
                       if (a->priority() != b->priority()) {
                         return a->priority() > b->priority();
                       }
                       if (a->demand().value() != b->demand().value()) {
                         return a->demand() > b->demand();
                       }
                       return a->id() < b->id();
                     });

    bool mutated = false;
    double shed = 0.0;
    if (config_.shedding == SheddingPolicy::kDegradeThenDrop) {
      // Pass 1: degrade to the reduced service level.
      for (Application* app : apps) {
        if (shed >= need - kEps) break;
        if (app->service_level() <= config_.degraded_service_level + kEps) {
          continue;
        }
        const double released =
            app->demand().value() *
            (1.0 - config_.degraded_service_level / app->service_level());
        // Degradation takes effect immediately: the live demand shrinks too,
        // so a later drop of the same app only releases the remainder.
        app->set_demand(app->demand() - Watts{released});
        app->set_service_level(config_.degraded_service_level);
        mutated = true;
        ++stats_.degrades;
        stats_.degraded_demand += Watts{released};
        shed += released;
        events_this_tick_.push_back({EventKind::kDegrade, tick_, app->id(),
                                     source, hier::kNoNode, Watts{released}});
        if (bus_ != nullptr && bus_->enabled()) {
          bus_->emit(make_event(obs::EventType::kDegrade, source,
                                hier::kNoNode, app->id(),
                                obs::Reason::kShedding, released));
        }
        WILLOW_INFO() << "degrade app " << app->id() << " on server " << source
                      << " to " << config_.degraded_service_level * 100.0
                      << "% (" << released << " W released)";
      }
    }
    // Pass 2: drop whole applications for what degradation did not cover.
    for (Application* app : apps) {
      if (shed >= need - kEps) break;
      if (app->dropped()) continue;
      const double released = app->demand().value();
      app->set_dropped(true);
      mutated = true;
      ++stats_.drops;
      stats_.dropped_demand += Watts{released};
      shed += released;
      events_this_tick_.push_back({EventKind::kDrop, tick_, app->id(), source,
                                   hier::kNoNode, Watts{released}});
      if (bus_ != nullptr && bus_->enabled()) {
        bus_->emit(make_event(obs::EventType::kDrop, source, hier::kNoNode,
                              app->id(), obs::Reason::kShedding, released));
      }
      WILLOW_INFO() << "drop app " << app->id() << " on server " << source
                    << " (" << released << " W)";
    }
    if (mutated) {
      // Dropping/degrading changed the server's live demand out from under
      // the cached per-server application sum.
      cluster_.server(source).invalidate_app_demand_cache();
      touch(source);
    }
  }
}

void Controller::consolidate() {
  auto& tree = cluster_.tree();
  const bool inc = config_.incremental;
  const bool thermal_ref = config_.utilization_reference ==
                           UtilizationReference::kThermalSustainable;
  const auto& sids = cluster_.server_ids();
  const std::size_t count = sids.size();

  // Per-server sustainable dynamic envelope, cached on the thermal state
  // version (only an ambient change can move it; the version over-counts by
  // also bumping on temperature, which merely re-derives the same value).
  // Under the thermal reference, utilization is judged against the fleet's
  // best envelope so a hot-zone server with modest load still qualifies, and
  // thermally weakest servers drain first — "Willow tries to move as much
  // work away from these servers as possible due to their high temperatures"
  // (Sec. V-B3, Fig. 7).
  double fleet_envelope = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& srv = cluster_.server_at(i);
    const std::uint64_t v = srv.thermal().state_version();
    if (server_envelope_version_[i] != v) {
      server_envelope_version_[i] = v;
      server_envelope_[i] =
          (srv.thermal().steady_state_power_limit() - srv.idle_floor())
              .value();
    }
    if (thermal_ref) {
      fleet_envelope = std::max(fleet_envelope, server_envelope_[i]);
    }
  }
  const bool envelope_shift =
      thermal_ref && fleet_envelope != cached_fleet_envelope_;
  cached_fleet_envelope_ = thermal_ref ? fleet_envelope : 0.0;

  // Candidate index refresh: an entry is a pure function of the server's
  // reported demand, budget and envelope — all epoch-stamped — plus the
  // fleet envelope, so only servers whose subtree moved are re-judged.
  // Candidates: active servers whose *demand-based* utilization sits below
  // the threshold (budget starvation must not masquerade as idleness).
  bool entries_changed = false;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId s = sids[i];
    if (inc && !envelope_shift && consol_entry_epoch_[i] == subtree_epoch_[s]) {
      if (config_.shadow_diff) {
        ConsolEntry fresh;
        const auto& leaf = tree.node(s);
        if (leaf.active() && reported_deficit(leaf).value() <= kEps) {
          const auto& srv = cluster_.server_at(i);
          const Watts dynamic =
              util::positive_part(leaf.reported_demand() - srv.idle_floor());
          const double range =
              thermal_ref ? fleet_envelope
                          : srv.power_model().dynamic_range().value();
          const double u = range > 0.0 ? dynamic.value() / range : 0.0;
          if (u < config_.consolidation_threshold) {
            fresh.eligible = true;
            fresh.utilization = u;
            fresh.envelope = server_envelope_[i];
          }
        }
        const ConsolEntry& held = consol_entry_[i];
        const bool mismatch = fresh.eligible != held.eligible ||
                              fresh.utilization != held.utilization ||
                              fresh.envelope != held.envelope;
        count_shadow_check(mismatch);
        if (mismatch) {
          throw std::logic_error(
              "Controller shadow diff: stale consolidation entry for server " +
              std::to_string(s));
        }
      }
      continue;
    }
    consol_entry_epoch_[i] = subtree_epoch_[s];
    ConsolEntry e;
    const auto& leaf = tree.node(s);
    if (leaf.active() && reported_deficit(leaf).value() <= kEps) {
      const auto& srv = cluster_.server_at(i);
      const Watts dynamic =
          util::positive_part(leaf.reported_demand() - srv.idle_floor());
      const double range = thermal_ref
                               ? fleet_envelope
                               : srv.power_model().dynamic_range().value();
      const double u = range > 0.0 ? dynamic.value() / range : 0.0;
      if (u < config_.consolidation_threshold) {
        e.eligible = true;
        e.utilization = u;
        e.envelope = server_envelope_[i];
      }
    }
    const ConsolEntry& old = consol_entry_[i];
    if (e.eligible != old.eligible || e.utilization != old.utilization ||
        e.envelope != old.envelope) {
      entries_changed = true;
    }
    consol_entry_[i] = e;
  }

  // Utilization-ordered candidate list, reused verbatim while no entry
  // changed (the kEps-banded envelope comparator is not incrementally
  // maintainable, so any change rebuilds the order from scratch).
  if (!inc || entries_changed || !consol_order_valid_) {
    consol_order_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (consol_entry_[i].eligible) {
        consol_order_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    std::stable_sort(consol_order_.begin(), consol_order_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const ConsolEntry& ea = consol_entry_[a];
                       const ConsolEntry& eb = consol_entry_[b];
                       if (thermal_ref &&
                           std::abs(ea.envelope - eb.envelope) > kEps) {
                         return ea.envelope < eb.envelope;  // hottest first
                       }
                       if (ea.utilization != eb.utilization) {
                         return ea.utilization < eb.utilization;
                       }
                       return a < b;  // explicit server-order tie-break
                     });
    consol_order_valid_ = true;
  }

  const NodeId root = tree.root();
  std::uint64_t reused = 0;
  std::uint64_t n_candidates = 0;
  std::uint64_t n_drained = 0;
  std::uint64_t n_cache_served = 0;
  std::uint64_t n_batched = 0;
  std::uint64_t index_updates = 0;

  // --- Fleet-scope capacity index -----------------------------------------
  // At fleet scope every candidate's dry run used to rescan all servers and
  // recompute every target capacity: O(candidates × fleet) per consolidate.
  // Within one consolidate() call the inputs of target_capacity() and
  // eligible_target() are stable — budgets, reported demands and the
  // budget_reduced_ flags only move in the report/distribution sweeps —
  // except for the watts a migration books on its target
  // (absorbed_w_/reserved_in_w_) and servers this pass puts to sleep.  So one
  // (capacity, server)-ordered index, point-updated after each apply,
  // reproduces pack()'s real-bin order for every candidate: capacity
  // ascending, bin index ascending, where bin index order is creation order
  // is ascending NodeId.  Built lazily on the first fleet-scope dry run, so a
  // settled fleet (all verdicts cached) pays nothing; under churn the batched
  // drain point-updates it thousands of times per pass, hence the std::set.
  const auto& arena = cluster_.arena();
  consol_index_built_ = false;
  auto consol_index_erase = [&](NodeId t) {
    if (!consol_index_built_) return;
    const std::uint32_t slot = arena.slot_of(t);
    const double key = consol_cap_of_[slot];
    if (key < 0.0) return;
    consol_cap_index_.erase(std::pair<double, NodeId>{key, t});
    consol_cap_of_[slot] = -1.0;
    ++index_updates;
  };
  auto consol_index_update = [&](NodeId t) {
    if (!consol_index_built_) return;
    consol_index_erase(t);
    const std::uint32_t slot = arena.slot_of(t);
    if (consol_root_eligible_[slot] == 0 || !tree.node(t).active()) return;
    const double cap = target_capacity(t).value();
    if (cap <= kEps) return;
    consol_cap_index_.insert(std::pair<double, NodeId>{cap, t});
    consol_cap_of_[slot] = cap;
    ++index_updates;
  };
  auto build_consol_index = [&]() {
    consol_root_eligible_.assign(count, 1);
    if (config_.enforce_unidirectional) {
      // eligible_target(t, root) bans targets whose path [parent(t), root)
      // crosses a reduced node in reported deficit; one top-down pass
      // (parents precede children by id) folds the flag along every path.
      std::vector<char> banned(tree.size(), 0);
      for (NodeId x = 0; x < static_cast<NodeId>(tree.size()); ++x) {
        if (x == root) continue;
        const auto& node = tree.node(x);
        const NodeId p = node.parent();
        banned[x] = ((budget_reduced_[x] &&
                      reported_deficit(node).value() > kEps) ||
                     (p != hier::kNoNode && p != root && banned[p] != 0))
                        ? 1
                        : 0;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const NodeId p = tree.node(sids[i]).parent();
        consol_root_eligible_[i] =
            (p == hier::kNoNode || p == root || banned[p] == 0) ? 1 : 0;
      }
    }
    // Fill a flat scratch first and feed the set with hinted end-inserts:
    // O(n log n) sort + O(n) tree construction instead of n log n node-by-
    // node insertions with cold-cache rebalancing.
    auto& flat = consol_index_build_scratch_;
    flat.clear();
    consol_cap_of_.assign(count, -1.0);
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId t = sids[i];
      if (consol_root_eligible_[i] == 0 || !tree.node(t).active()) continue;
      const double cap = target_capacity(t).value();
      if (cap > kEps) {
        flat.emplace_back(cap, t);
        consol_cap_of_[i] = cap;
      }
    }
    std::sort(flat.begin(), flat.end());
    consol_cap_index_.clear();
    for (const auto& entry : flat) {
      consol_cap_index_.insert(consol_cap_index_.end(), entry);
    }
    consol_index_built_ = true;
  };

  auto put_to_sleep = [&](NodeId s) {
    consol_index_erase(s);
    cluster_.sleep_server(s);
    tree.node(s).set_budget(Watts{0.0});
    // The sleep flips an active flag (parent's roll-up and division change)
    // and zeroes a budget outside the distributor's bookkeeping.
    const NodeId p = tree.node(s).parent();
    if (p != hier::kNoNode) {
      limit_dirty_[p] = 1;
      division_dirty_[p] = 1;
    }
    tree.mark_report_dirty(s);
    touch(s);
    ++stats_.sleeps;
    events_this_tick_.push_back(
        {EventKind::kSleep, tick_, 0, s, hier::kNoNode, Watts{0.0}});
    if (bus_ != nullptr && bus_->enabled()) {
      bus_->emit(make_event(obs::EventType::kSleep, s, hier::kNoNode, 0,
                            obs::Reason::kConsolidation));
    }
  };

  // --- Phase 1: parallel local-scope dry runs ------------------------------
  // Each candidate's first question — "does it drain within its parent
  // group?" — reads only state under that parent plus pure per-server
  // functions, so the answers are independent and can be precomputed across
  // the worker pool into disjoint plan slots.  The serial drain below
  // consumes a slot only while the scope's change epoch still matches the
  // snapshot, which proves a serial recompute would reproduce the plan
  // bitwise — the decision stream is identical for any pool size (including
  // none).  Skipped under shadow_diff so the shadow path re-derives
  // everything itself.
  const std::size_t n_cand = consol_order_.size();
  if (consol_plan_.size() < n_cand) consol_plan_.resize(n_cand);
  for (std::size_t k = 0; k < n_cand; ++k) consol_plan_[k].computed = false;
  const bool precompute = pool_ != nullptr && inc && config_.prefer_local &&
                          !config_.shadow_diff && n_cand >= 32;
  if (precompute) {
    util::parallel_for_ranges(
        pool_, n_cand, [&](std::size_t begin, std::size_t end) {
          // Worker-local pack buffers; the shared bp_*_scratch_ members stay
          // untouched until the serial phase.
          std::vector<binpack::Item> bp_items;
          std::vector<binpack::Bin> bp_bins;
          std::vector<NodeId> bin_nodes;
          for (std::size_t k = begin; k < end; ++k) {
            const std::uint32_t ci = consol_order_[k];
            const NodeId s = sids[ci];
            const NodeId scope = tree.node(s).parent();
            if (scope == hier::kNoNode || scope == root) continue;
            // Mirror the serial skip checks (cheap reads, frozen during this
            // phase); a candidate skipped here just recomputes serially.
            if (targets_this_tick_.contains(s)) continue;
            if (reserved_in_w_[s] > kEps || outbound_in_flight_w_[s] > kEps) {
              continue;
            }
            const auto& srv = cluster_.server_at(ci);
            if (srv.apps().empty()) continue;
            bool hosts_in_flight = false;
            for (const auto& a : srv.apps()) {
              if (apps_in_flight_.contains(a.id())) {
                hosts_in_flight = true;
                break;
              }
            }
            if (hosts_in_flight) continue;
            ConsolPlan& plan = consol_plan_[k];
            std::uint64_t sig = kFnvOffset;
            plan.items.clear();
            for (const auto& a : srv.apps()) {
              sig = fnv1a(sig, a.id());
              sig = fnv1a(sig, bits_of(a.dropped() ? 0.0 : a.demand().value()));
              plan.items.push_back({a.id(), s,
                                    (a.dropped() ? Watts{0.0} : a.demand()) +
                                        config_.migration_cost,
                                    a.dropped() ? Watts{0.0} : a.demand(),
                                    MigrationCause::kConsolidation,
                                    obs::Reason::kConsolidation});
            }
            // The local failure cache already answers at this epoch: the
            // serial phase will take that path without needing a plan.
            if (consol_fail_local_[ci].valid &&
                consol_fail_local_[ci].epoch == subtree_epoch_[scope] &&
                consol_fail_local_[ci].item_sig == sig) {
              continue;
            }
            bp_items.clear();
            for (std::size_t i = 0; i < plan.items.size(); ++i) {
              bp_items.push_back({i, plan.items[i].size.value(), 0});
            }
            bp_bins.clear();
            bin_nodes.clear();
            const SubtreeSpan span = arena.subtree(scope);
            for (const std::uint32_t slot : span) {
              const NodeId t = arena.node_of(slot);
              if (t == s) continue;
              if (!tree.node(t).active()) continue;
              if (!eligible_target(t, scope)) continue;
              const Watts cap = target_capacity(t);
              if (cap.value() > kEps) {
                bp_bins.push_back({static_cast<std::uint64_t>(t), cap.value(), 0});
                bin_nodes.push_back(t);
              }
            }
            const binpack::PackResult result =
                binpack::pack(bp_items, bp_bins, config_.packing);
            plan.assign.clear();
            for (const auto& a : result.assignments) {
              plan.assign.emplace_back(a.item, bin_nodes[a.bin]);
            }
            plan.placed_all = result.all_placed();
            plan.sig = sig;
            plan.scope_epoch = subtree_epoch_[scope];
            plan.computed = true;
          }
        });
  }

  // --- Phase 2: serial drain in candidate order ----------------------------
  for (std::size_t k = 0; k < n_cand; ++k) {
    const std::uint32_t ci = consol_order_[k];
    const NodeId s = sids[ci];
    if (targets_this_tick_.contains(s)) continue;
    // Latency mode: leave servers with transfers in either direction alone
    // until the dust settles.
    if (reserved_in_w_[s] > kEps || outbound_in_flight_w_[s] > kEps) continue;
    auto& srv = cluster_.server_at(ci);
    bool hosts_in_flight = false;
    for (const auto& a : srv.apps()) {
      if (apps_in_flight_.contains(a.id())) {
        hosts_in_flight = true;
        break;
      }
    }
    if (hosts_in_flight) continue;
    ++n_candidates;
    if (srv.apps().empty()) {
      put_to_sleep(s);
      ++n_drained;
      continue;
    }

    // Fingerprint of what would be drained: the packing outcome depends on
    // each hosted app's identity and live demand, which churn can change
    // without moving the epoch-stamped aggregate (sums can collide bitwise).
    std::uint64_t sig = kFnvOffset;
    for (const auto& a : srv.apps()) {
      sig = fnv1a(sig, a.id());
      sig = fnv1a(sig, bits_of(a.dropped() ? 0.0 : a.demand().value()));
    }

    const bool cached_root_fail =
        inc && consol_fail_root_[ci].valid &&
        consol_fail_root_[ci].epoch == subtree_epoch_[root] &&
        consol_fail_root_[ci].item_sig == sig;
    if (cached_root_fail && !config_.shadow_diff) {
      // Nothing anywhere in the tree changed since this candidate last
      // failed to drain at fleet scope: it fails again.
      ++reused;
      ++n_cache_served;
      continue;
    }

    // All-or-nothing: every hosted app (even dropped ones — a sleeping host
    // cannot retain VMs) must find a berth, else the server stays up.  The
    // item list lives in the candidate's plan slot (member scratch — no
    // per-candidate allocation) and is reused verbatim from phase 1 when the
    // scope epoch proves it unchanged.
    ConsolPlan& plan = consol_plan_[k];
    const NodeId local_scope = tree.node(s).parent();
    const bool plan_fresh = plan.computed && plan.sig == sig &&
                            local_scope != hier::kNoNode &&
                            plan.scope_epoch == subtree_epoch_[local_scope];
    if (!plan_fresh) {
      plan.items.clear();
      for (const auto& a : srv.apps()) {
        plan.items.push_back({a.id(), s,
                              (a.dropped() ? Watts{0.0} : a.demand()) +
                                  config_.migration_cost,
                              a.dropped() ? Watts{0.0} : a.demand(),
                              MigrationCause::kConsolidation,
                              obs::Reason::kConsolidation});
      }
    }
    std::vector<PlanItem>& items = plan.items;
    auto collect_targets = [&](NodeId scope) -> const std::vector<NodeId>& {
      target_scratch_.clear();
      const SubtreeSpan span = arena.subtree(scope);
      for (std::uint32_t k = 0; k < span.size(); ++k) {
        const NodeId t = arena.node_of(span[k]);
        if (t == s) continue;
        if (!tree.node(t).active()) continue;
        if (!eligible_target(t, scope)) continue;
        target_scratch_.push_back(t);
      }
      return target_scratch_;
    };
    // Fills bin_node_scratch_ as a side effect; consumed by the apply loop.
    auto dry_run = [&](const std::vector<NodeId>& targets) {
      bp_items_scratch_.clear();
      for (std::size_t i = 0; i < items.size(); ++i) {
        bp_items_scratch_.push_back({i, items[i].size.value(), 0});
      }
      bp_bins_scratch_.clear();
      bin_node_scratch_.clear();
      for (NodeId t : targets) {
        const Watts cap = target_capacity(t);
        if (cap.value() > kEps) {
          bp_bins_scratch_.push_back(
              {static_cast<std::uint64_t>(t), cap.value(), 0});
          bin_node_scratch_.push_back(t);
        }
      }
      return binpack::pack(bp_items_scratch_, bp_bins_scratch_,
                           config_.packing);
    };
    // Fleet-scope fast path: reproduce pack(kFfdlr)'s verdict from the shared
    // capacity index instead of rebuilding all fleet bins per candidate.  The
    // virtual groups depend only on the items and cmax; each group then lands
    // in the first unused index entry with capacity + eps >= content — the
    // bin pack() would pick, because the index order equals pack()'s
    // real-bin order.  Groups that fit no single unused bin spill into
    // pack()'s final best-fit pass, replayed here over the index plus the
    // residuals of already-touched bins, so every verdict is two-valued:
    // true = placed-all (plan in fast_assign_scratch_, pack()'s emission
    // order), false = pack() would leave something unplaced.
    auto fast_root_pack = [&]() -> bool {
      if (!consol_index_built_) build_consol_index();
      double cmax = 0.0;
      for (auto it = consol_cap_index_.rbegin(); it != consol_cap_index_.rend();
           ++it) {
        if (it->second != s) {
          cmax = it->first;
          break;
        }
      }
      if (cmax <= 0.0) return false;  // no usable bin anywhere in the fleet
      bp_items_scratch_.clear();
      for (std::size_t i = 0; i < items.size(); ++i) {
        bp_items_scratch_.push_back({i, items[i].size.value(), 0});
      }
      const binpack::VirtualGroups vg =
          binpack::ffdlr_virtual_groups(bp_items_scratch_, cmax);
      if (!vg.oversized.empty()) return false;  // unplaceable regardless
      fast_assign_scratch_.clear();
      // Bins this plan already used, as (node, residual) in touch order, and
      // the items that fell out of whole-group placement.  Both are tiny
      // (bounded by the candidate's app count), so linear membership scans
      // beat any indexed structure.
      auto& touched = fast_touched_scratch_;
      touched.clear();
      auto& leftovers = fast_leftover_scratch_;
      leftovers.clear();
      auto is_touched = [&](NodeId t) {
        for (const auto& e : touched) {
          if (e.first == t) return true;
        }
        return false;
      };
      for (const auto& g : vg.groups) {
        // Start at the first entry that could pass capacity + eps >= content
        // (the two boundary forms differ far below eps at watt magnitudes)
        // and advance with pack()'s exact predicate.
        auto it = consol_cap_index_.lower_bound(
            std::pair<double, NodeId>{g.content - 2 * kEps, NodeId{0}});
        NodeId chosen = hier::kNoNode;
        double chosen_cap = 0.0;
        for (; it != consol_cap_index_.end(); ++it) {
          if (!binpack::fits(it->first, g.content)) continue;
          if (it->second == s || is_touched(it->second)) continue;
          chosen = it->second;
          chosen_cap = it->first;
          break;
        }
        if (chosen == hier::kNoNode) {
          // No single unused bin holds the whole group; its items retry
          // singly below, exactly as pack() spills them.
          leftovers.insert(leftovers.end(), g.items.begin(), g.items.end());
          continue;
        }
        double residual = chosen_cap;
        for (const std::size_t item : g.items) {
          fast_assign_scratch_.emplace_back(item, chosen);
          // Sequential subtraction, like MutableBins::place — the running
          // residual must match pack()'s bits, and float subtraction is not
          // associative.
          residual -= items[item].size.value();
        }
        touched.emplace_back(chosen, residual);
      }
      if (leftovers.empty()) return true;
      // pack()'s final pass: leftovers re-sorted globally (size descending,
      // input index ascending), each best-fit into the minimal feasible
      // slack; ties go to the lowest bin input index, i.e. lowest NodeId.
      std::stable_sort(leftovers.begin(), leftovers.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (items[a].size.value() != items[b].size.value()) {
                           return items[a].size.value() > items[b].size.value();
                         }
                         return a < b;
                       });
      for (const std::size_t item : leftovers) {
        const double size = items[item].size.value();
        NodeId chosen = hier::kNoNode;
        double best = std::numeric_limits<double>::infinity();
        // Best untouched bin: capacity order makes slack monotone, so the
        // first feasible entry minimizes it.  Entries whose slack rounds to
        // the same double form a contiguous run (fl(x - size) is monotone in
        // x); scan the run for the lowest NodeId, because pack()'s
        // input-order scan keeps the first — lowest-NodeId — minimal bin.
        auto it = consol_cap_index_.lower_bound(
            std::pair<double, NodeId>{size - 2 * kEps, NodeId{0}});
        for (; it != consol_cap_index_.end(); ++it) {
          const double slack = it->first - size;  // pack()'s exact slack form
          if (!(slack >= -kEps)) continue;
          if (it->second == s || is_touched(it->second)) continue;
          if (chosen == hier::kNoNode) {
            best = slack;
            chosen = it->second;
          } else if (slack == best) {
            if (it->second < chosen) chosen = it->second;
          } else {
            break;  // slack only grows from here
          }
        }
        // Touched bins compete with their shrunken residuals under the same
        // (slack, NodeId) minimization.
        std::size_t chosen_touched = touched.size();
        for (std::size_t ti = 0; ti < touched.size(); ++ti) {
          const double slack = touched[ti].second - size;
          if (!(slack >= -kEps)) continue;
          if (slack < best || (slack == best && touched[ti].first < chosen)) {
            best = slack;
            chosen = touched[ti].first;
            chosen_touched = ti;
          }
        }
        if (chosen == hier::kNoNode) return false;  // fits nowhere: not all placed
        fast_assign_scratch_.emplace_back(item, chosen);
        if (chosen_touched < touched.size()) {
          touched[chosen_touched].second -= size;
        } else {
          // First subtraction from an untouched bin is capacity - size,
          // which is exactly the slack already computed.
          touched.emplace_back(chosen, best);
        }
      }
      return true;
    };
    // Dry-run one scope.  On every path the placement plan lands in
    // fast_assign_scratch_ as (item, target) pairs in pack()'s assignment
    // emission order, so the apply loop below has one shape.
    auto run_scope = [&](NodeId scope) -> bool {
      if (inc && scope == root) {
        const bool verdict = fast_root_pack();
        ++n_batched;
        if (config_.shadow_diff) {
          const auto full = dry_run(collect_targets(root));
          bool mismatch = full.all_placed() != verdict;
          if (!mismatch && verdict) {
            mismatch = full.assignments.size() != fast_assign_scratch_.size();
            for (std::size_t j = 0;
                 !mismatch && j < fast_assign_scratch_.size(); ++j) {
              mismatch =
                  full.assignments[j].item != fast_assign_scratch_[j].first ||
                  bin_node_scratch_[full.assignments[j].bin] !=
                      fast_assign_scratch_[j].second;
            }
            if (!mismatch) {
              // The full result drives the apply loop below in shadow mode;
              // keep the two plans interchangeable bit for bit.
              fast_assign_scratch_.clear();
              for (const auto& a : full.assignments) {
                fast_assign_scratch_.emplace_back(a.item,
                                                  bin_node_scratch_[a.bin]);
              }
            }
          }
          count_shadow_check(mismatch);
          if (mismatch) {
            throw std::logic_error(
                "Controller shadow diff: consolidation fast path diverged "
                "for server " +
                std::to_string(s));
          }
        }
        return verdict;
      }
      const auto result = dry_run(collect_targets(scope));
      fast_assign_scratch_.clear();
      for (const auto& a : result.assignments) {
        fast_assign_scratch_.emplace_back(a.item, bin_node_scratch_[a.bin]);
      }
      return result.all_placed();
    };

    NodeId scope = config_.prefer_local ? local_scope : root;
    bool placed_all = false;
    if (inc && scope != root && consol_fail_local_[ci].valid &&
        consol_fail_local_[ci].epoch == subtree_epoch_[scope] &&
        consol_fail_local_[ci].item_sig == sig) {
      // Known local failure at this scope epoch: go straight to fleet scope.
      ++reused;
      if (config_.shadow_diff) {
        const auto check = dry_run(collect_targets(scope));
        count_shadow_check(check.all_placed());
        if (check.all_placed()) {
          throw std::logic_error(
              "Controller shadow diff: cached local consolidation failure for "
              "server " +
              std::to_string(s) + " now succeeds");
        }
      }
      scope = root;
      placed_all = run_scope(scope);
    } else {
      if (plan_fresh && scope != root) {
        // Phase-1 verdict still valid: nothing under the scope moved since
        // the precompute, so a serial dry run would reproduce it bitwise.
        placed_all = plan.placed_all;
        fast_assign_scratch_.assign(plan.assign.begin(), plan.assign.end());
      } else {
        placed_all = run_scope(scope);
      }
      if (!placed_all && config_.prefer_local && scope != root) {
        consol_fail_local_[ci] = {subtree_epoch_[scope], sig, true};
        scope = root;
        placed_all = run_scope(scope);
      }
    }
    if (!placed_all) {
      if (scope == root) {
        consol_fail_root_[ci] = {subtree_epoch_[root], sig, true};
      } else {
        consol_fail_local_[ci] = {subtree_epoch_[scope], sig, true};
      }
      if (cached_root_fail) count_shadow_check(false);  // verdict held
      continue;
    }
    if (cached_root_fail) {
      // Shadow mode re-ran a cached fleet-scope failure and it placed.
      count_shadow_check(true);
      throw std::logic_error(
          "Controller shadow diff: cached root consolidation failure for "
          "server " +
          std::to_string(s) + " now succeeds");
    }
    for (const auto& [item_idx, tgt] : fast_assign_scratch_) {
      apply_migration(items[item_idx], tgt);
      consol_index_update(tgt);  // capacity shrank; no-op if index not built
    }
    ++n_drained;
    if (srv.apps().empty()) {
      put_to_sleep(s);
      WILLOW_INFO() << "consolidated server " << s << " to sleep";
    } else {
      // Latency mode: the VMs are still transferring; the server sleeps at a
      // later ΔA once it is empty (the in-flight guard keeps it untouched
      // until then).
      WILLOW_INFO() << "consolidation of server " << s
                    << " deferred until transfers land";
    }
  }
  if (c_packings_reused_ != nullptr && reused > 0) {
    c_packings_reused_->increment(reused);
  }
  if (c_consol_candidates_ != nullptr) {
    c_consol_candidates_->increment(n_candidates);
    c_consol_drained_->increment(n_drained);
    c_consol_cache_served_->increment(n_cache_served);
    c_consol_batched_->increment(n_batched);
    c_index_point_updates_->increment(index_updates);
  }
}

void Controller::revive_dropped() {
  auto& tree = cluster_.tree();
  // Fleet-wide skip: the stats counters bound the number of currently
  // dropped (drops - revivals) and degraded (degrades - restores) apps from
  // above, so equal pairs mean the whole scan would be a no-op.
  // Conservative: an app churned away while dropped leaves its drop
  // unmatched forever and the scan keeps running — still correct.
  if (config_.incremental && stats_.drops == stats_.revivals &&
      stats_.degrades == stats_.restores) {
    if (config_.shadow_diff) {
      bool mismatch = false;
      for (std::size_t i = 0; i < cluster_.server_count(); ++i) {
        for (const auto& a : cluster_.server_at(i).apps()) {
          if (a.dropped() || a.degraded()) {
            mismatch = true;
            break;
          }
        }
        if (mismatch) break;
      }
      count_shadow_check(mismatch);
      if (mismatch) {
        throw std::logic_error(
            "Controller shadow diff: revive scan skipped while dropped or "
            "degraded applications exist");
      }
    }
    return;
  }
  for (NodeId s : cluster_.server_ids()) {
    const auto& leaf = tree.node(s);
    if (!leaf.active()) continue;
    // The unidirectional rule applied to admission: do not bring workload
    // back under any node whose budget was just reduced.
    if (config_.enforce_unidirectional) {
      bool reduced_path = false;
      for (NodeId cur = s; cur != hier::kNoNode; cur = tree.node(cur).parent()) {
        if (budget_reduced_[cur]) {
          reduced_path = true;
          break;
        }
      }
      if (reduced_path) continue;
    }
    Watts headroom =
        reported_surplus(leaf) - config_.margin - Watts{absorbed_w_[s]};
    if (headroom.value() <= kEps) continue;
    auto& apps = cluster_.server(s).apps();

    // Phase 1: bring shut-down applications back (highest priority first,
    // then cheapest, then app id).  A revived app returns at its current
    // service level.
    std::vector<Application*> dropped;
    for (auto& a : apps) {
      if (a.dropped()) dropped.push_back(&a);
    }
    std::stable_sort(dropped.begin(), dropped.end(),
                     [](const Application* a, const Application* b) {
                       if (a->priority() != b->priority()) {
                         return a->priority() < b->priority();
                       }
                       if (a->effective_mean_power().value() !=
                           b->effective_mean_power().value()) {
                         return a->effective_mean_power() <
                                b->effective_mean_power();
                       }
                       return a->id() < b->id();
                     });
    bool revived_any = false;
    for (Application* a : dropped) {
      if (a->effective_mean_power() <= headroom) {
        a->set_dropped(false);
        revived_any = true;
        headroom -= a->effective_mean_power();
        ++stats_.revivals;
        events_this_tick_.push_back({EventKind::kRevive, tick_, a->id(), s,
                                     hier::kNoNode, a->effective_mean_power()});
        if (bus_ != nullptr && bus_->enabled()) {
          bus_->emit(make_event(obs::EventType::kRevive, s, hier::kNoNode,
                                a->id(), obs::Reason::kNone,
                                a->effective_mean_power().value()));
        }
        WILLOW_INFO() << "revive app " << a->id() << " on server " << s;
      }
    }
    if (revived_any) {
      // A revived app re-enters the live-demand sum immediately.
      cluster_.server(s).invalidate_app_demand_cache();
      touch(s);
    }

    // Phase 2: restore degraded service levels (highest priority first,
    // then cheapest upgrade, then app id).
    std::vector<Application*> degraded;
    for (auto& a : apps) {
      if (!a.dropped() && a.degraded()) degraded.push_back(&a);
    }
    std::stable_sort(degraded.begin(), degraded.end(),
                     [](const Application* a, const Application* b) {
                       if (a->priority() != b->priority()) {
                         return a->priority() < b->priority();
                       }
                       const Watts ga =
                           a->mean_power() - a->effective_mean_power();
                       const Watts gb =
                           b->mean_power() - b->effective_mean_power();
                       if (ga.value() != gb.value()) return ga < gb;
                       return a->id() < b->id();
                     });
    bool restored_any = false;
    for (Application* a : degraded) {
      const Watts gain = a->mean_power() - a->effective_mean_power();
      if (gain <= headroom) {
        a->set_service_level(1.0);
        restored_any = true;
        headroom -= gain;
        ++stats_.restores;
        events_this_tick_.push_back(
            {EventKind::kRestore, tick_, a->id(), s, hier::kNoNode, gain});
        if (bus_ != nullptr && bus_->enabled()) {
          bus_->emit(make_event(obs::EventType::kRestore, s, hier::kNoNode,
                                a->id(), obs::Reason::kNone, gain.value()));
        }
        WILLOW_INFO() << "restore app " << a->id() << " to full service on "
                      << s;
      }
    }
    if (restored_any) {
      // The restored level changes the next demand draw's mean; stamp the
      // subtree so consolidation re-judges it alongside that draw.
      touch(s);
    }
  }
}

}  // namespace willow::core
