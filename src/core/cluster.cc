#include "core/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"
#include "workload/mix.h"

namespace willow::core {

ManagedServer::ManagedServer(NodeId node, const ServerConfig& cfg)
    : node_(node),
      thermal_(cfg.thermal),
      power_model_(cfg.power_model),
      circuit_limit_(cfg.circuit_limit.value_or(cfg.thermal.nameplate)) {}

void ManagedServer::add_temporary_demand(Watts w, int periods) {
  if (w.value() < 0.0 || periods <= 0) {
    throw std::invalid_argument("add_temporary_demand: bad arguments");
  }
  temp_.emplace_back(w, periods);
  temp_demand_ += w;
}

void ManagedServer::age_temporary_demand() {
  Watts remaining{0.0};
  auto keep = temp_.begin();
  for (auto& [w, periods] : temp_) {
    if (--periods > 0) {
      *keep++ = {w, periods};
      remaining += w;
    }
  }
  temp_.erase(keep, temp_.end());
  temp_demand_ = remaining;
}

Watts ManagedServer::power_demand() const {
  if (asleep_ || crashed_) return Watts{0.0};
  const Watts apps = app_demand_valid_ ? cached_app_demand_
                                       : workload::total_demand(apps_);
  return idle_floor() + apps + temp_demand_;
}

Watts ManagedServer::sensed_demand() const {
  const Watts actual = power_demand();
  switch (power_sensor_.mode) {
    case fault::SensorMode::kStuck:
      return Watts{power_sensor_.param < 0.0 ? 0.0 : power_sensor_.param};
    case fault::SensorMode::kBias:
      return util::max(Watts{0.0}, actual + Watts{power_sensor_.param});
    case fault::SensorMode::kOk:
    case fault::SensorMode::kDropout:
      break;
  }
  return actual;
}

util::Celsius ManagedServer::sensed_temperature() const {
  const util::Celsius actual = thermal_.temperature();
  switch (temp_sensor_.mode) {
    case fault::SensorMode::kStuck:
      return util::Celsius{temp_sensor_.param};
    case fault::SensorMode::kBias:
      return actual + util::Celsius{temp_sensor_.param};
    case fault::SensorMode::kOk:
    case fault::SensorMode::kDropout:
      break;
  }
  return actual;
}

Watts ManagedServer::consumed_power(Watts budget) const {
  if (asleep_ || crashed_) return Watts{0.0};
  return util::min(power_demand(), util::max(budget, idle_floor()));
}

double ManagedServer::utilization(Watts budget) const {
  if (asleep_ || crashed_) return 0.0;
  const Watts dynamic = consumed_power(budget) - idle_floor();
  const Watts range = power_model_.dynamic_range();
  if (range.value() <= 0.0) return 0.0;
  return std::clamp(dynamic / range, 0.0, 1.0);
}

Cluster::Cluster(double smoothing_alpha) : tree_(smoothing_alpha) {}

NodeId Cluster::add_root(std::string name) {
  return tree_.add_root(std::move(name), hier::NodeKind::kDatacenter);
}

NodeId Cluster::add_group(NodeId parent, std::string name, hier::NodeKind kind) {
  return tree_.add_child(parent, std::move(name), kind);
}

NodeId Cluster::add_server(NodeId parent, std::string name,
                           const ServerConfig& cfg) {
  const NodeId id =
      tree_.add_child(parent, std::move(name), hier::NodeKind::kServer);
  arena_.add(id);
  servers_.emplace_back(id, cfg);
  return id;
}

ManagedServer& Cluster::server(NodeId id) {
  return servers_[arena_.checked_slot_of(id)];
}

const ManagedServer& Cluster::server(NodeId id) const {
  return servers_[arena_.checked_slot_of(id)];
}

bool Cluster::is_server(NodeId id) const {
  return arena_.slot_of(id) != ServerArena::kNoSlot;
}

void Cluster::place(Application app, NodeId server_id) {
  if (app_host_.contains(app.id())) {
    throw std::logic_error("Cluster::place: application already placed");
  }
  const ServerHandle h = arena_.find(server_id);
  auto& s = server(h);  // throws on a non-server target
  app_host_[app.id()] = h;
  s.apps().push_back(std::move(app));
  s.invalidate_app_demand_cache();
}

ServerHandle Cluster::host_handle_of(AppId app) const {
  auto it = app_host_.find(app);
  return it == app_host_.end() ? ServerHandle{} : it->second;
}

NodeId Cluster::host_of(AppId app) const {
  const ServerHandle h = host_handle_of(app);
  return h.valid() ? node_of(h) : hier::kNoNode;
}

Application* Cluster::find_app(AppId app) {
  const ServerHandle h = host_handle_of(app);
  if (!h.valid()) return nullptr;
  for (auto& a : server(h).apps()) {
    if (a.id() == app) return &a;
  }
  return nullptr;
}

const Application* Cluster::find_app(AppId app) const {
  return const_cast<Cluster*>(this)->find_app(app);
}

void Cluster::move_app(AppId app, NodeId from, NodeId to) {
  auto& src = server(from).apps();
  auto it = std::find_if(src.begin(), src.end(),
                         [&](const Application& a) { return a.id() == app; });
  if (it == src.end()) {
    throw std::logic_error("Cluster::move_app: app not hosted on source");
  }
  Application moving = std::move(*it);
  src.erase(it);
  server(to).apps().push_back(std::move(moving));
  app_host_[app] = arena_.find(to);
  server(from).invalidate_app_demand_cache();
  server(to).invalidate_app_demand_cache();
}

Application Cluster::remove_app(AppId app) {
  const ServerHandle h = host_handle_of(app);
  if (!h.valid()) {
    throw std::logic_error("Cluster::remove_app: unknown application");
  }
  auto& apps = server(h).apps();
  auto it = std::find_if(apps.begin(), apps.end(),
                         [&](const Application& a) { return a.id() == app; });
  Application removed = std::move(*it);
  apps.erase(it);
  app_host_.erase(app);
  server(h).invalidate_app_demand_cache();
  return removed;
}

void Cluster::sleep_server(NodeId id) {
  auto& s = server(id);
  if (!s.apps().empty()) {
    throw std::logic_error("Cluster::sleep_server: server still hosts apps");
  }
  s.set_asleep(true);
  tree_.node(id).set_active(false);
}

void Cluster::wake_server(NodeId id) {
  server(id).set_asleep(false);
  tree_.node(id).set_active(true);
}

void Cluster::crash_server(NodeId id) {
  auto& s = server(id);
  s.set_crashed(true);
  tree_.node(id).set_active(false);
}

void Cluster::restore_server(NodeId id) {
  auto& s = server(id);
  s.set_crashed(false);
  tree_.node(id).set_active(s.asleep() ? false : true);
}

void Cluster::set_group_circuit_limit(NodeId group, Watts limit) {
  if (is_server(group) || tree_.node(group).is_leaf()) {
    throw std::invalid_argument(
        "set_group_circuit_limit: node is not an internal group");
  }
  if (limit.value() < 0.0) {
    throw std::invalid_argument("set_group_circuit_limit: negative rating");
  }
  group_circuit_limits_[group] = limit;
}

std::optional<Watts> Cluster::group_circuit_limit(NodeId group) const {
  auto it = group_circuit_limits_.find(group);
  if (it == group_circuit_limits_.end()) return std::nullopt;
  return it->second;
}

void Cluster::refresh_demands(const workload::PoissonDemand& process,
                              util::Rng& rng, double intensity) {
  for (auto& s : servers_) {
    process.refresh_all(s.apps(), rng, intensity);
    s.set_cached_app_demand(workload::total_demand(s.apps()));
  }
}

void Cluster::refresh_demands(const workload::PoissonDemand& process,
                              std::uint64_t seed, long tick, double intensity,
                              util::ThreadPool* pool,
                              const PerServerHook* per_server) {
  // The one tick phase that emits from inside a sharded region: each server's
  // fresh demand sample becomes a kDemandReport deposited into the per-server
  // shard slot; end_shards() merges them in server order so the trace is
  // identical no matter how the range was partitioned.
  const bool observe = bus_ != nullptr && bus_->enabled();
  if (observe) bus_->begin_shards(servers_.size());
  util::parallel_for_ranges(
      pool, servers_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto rng = util::tick_stream(seed, static_cast<std::uint64_t>(tick),
                                       i, util::stream_phase::kDemand);
          process.refresh_all(servers_[i].apps(), rng, intensity);
          servers_[i].set_cached_app_demand(
              workload::total_demand(servers_[i].apps()));
          if (observe && !servers_[i].asleep() && !servers_[i].crashed()) {
            obs::Event e;
            e.type = obs::EventType::kDemandReport;
            e.node = servers_[i].node();
            e.value = servers_[i].power_demand().value();
            bus_->emit_shard(i, std::move(e));
          }
          if (per_server != nullptr) (*per_server)(i);
        }
      });
  if (observe) bus_->end_shards();
}

void Cluster::refresh_demands_constant() {
  for (auto& s : servers_) {
    workload::ConstantDemand::refresh_all(s.apps());
    s.set_cached_app_demand(workload::total_demand(s.apps()));
  }
}

void Cluster::refresh_demands_deterministic(double intensity,
                                            util::ThreadPool* pool,
                                            const PerServerHook* per_server) {
  const bool observe = bus_ != nullptr && bus_->enabled();
  if (observe) bus_->begin_shards(servers_.size());
  util::parallel_for_ranges(
      pool, servers_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          workload::ConstantDemand::refresh_all(servers_[i].apps(), intensity);
          servers_[i].set_cached_app_demand(
              workload::total_demand(servers_[i].apps()));
          if (observe && !servers_[i].asleep() && !servers_[i].crashed()) {
            obs::Event e;
            e.type = obs::EventType::kDemandReport;
            e.node = servers_[i].node();
            e.value = servers_[i].power_demand().value();
            bus_->emit_shard(i, std::move(e));
          }
          if (per_server != nullptr) (*per_server)(i);
        }
      });
  if (observe) bus_->end_shards();
}

void Cluster::observe_leaf_demands() {
  for (auto& s : servers_) {
    // A crashed server is dark: its leaf is inactive (the sweep feeds the
    // subtree 0) and no reading arrives until restore.
    if (s.crashed()) {
      s.note_lost_observation();
      continue;
    }
    // A lost report (or power-sensor dropout) leaves the leaf acting on its
    // previous observation; the controller's stale-timeout fallback decides
    // what to do once the silence lasts (docs/fault_model.md).
    if (s.demand_reading_lost()) {
      s.note_lost_observation();
      continue;
    }
    // observe_leaf carries the incremental fast path (bitwise-unchanged
    // observation into a settled EWMA is a no-op).  A stuck/biased sensor
    // still counts as a fresh observation — a report arrived, it is just
    // wrong — so staleness tracks silence, not accuracy.
    const Watts seen = s.sensed_demand();
    s.note_fresh_observation(seen);
    tree_.observe_leaf(s.node(), seen);
  }
}

void Cluster::step_thermal(Seconds dt) { step_thermal(dt, nullptr); }

void Cluster::step_thermal(Seconds dt, util::ThreadPool* pool,
                           const PerServerHook* per_server) {
  util::parallel_for_ranges(
      pool, servers_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto& s = servers_[i];
          const Watts consumed = s.consumed_power(tree_.node(s.node()).budget());
          s.thermal().step(consumed, dt);
          if (per_server != nullptr) (*per_server)(i);
        }
      });
}

void Cluster::age_temporary_demands() {
  for (auto& s : servers_) s.age_temporary_demand();
}

Watts Cluster::total_consumed() const {
  Watts total{0.0};
  for (const auto& s : servers_) {
    total += s.consumed_power(tree_.node(s.node()).budget());
  }
  return total;
}

std::size_t Cluster::active_server_count() const {
  std::size_t n = 0;
  for (const auto& s : servers_) n += s.asleep() ? 0 : 1;
  return n;
}

}  // namespace willow::core
