// ServerArena: dense, generation-checked server indexing for the data plane.
//
// Every server occupies one *slot* (a dense index in creation order).  The
// arena is the single authority for the slot <-> PMU-leaf mapping and
// replaces the NodeId-keyed hash lookups that used to sit on every hot path:
//
//   - `slot_of(NodeId)` is a flat vector read (was an unordered_map probe),
//   - `node_of(slot)` is the inverse array,
//   - `ServerHandle` is a slot plus a generation stamp, so stale references
//     fail loudly instead of silently addressing a reused slot,
//   - `subtree(NodeId)` enumerates the server descendants of any PMU node as
//     a contiguous span of slots whenever the fleet was built depth-first
//     (build_datacenter always is), falling back to a materialized slot list
//     for hand-built trees whose creation order interleaves subtrees.
//
// Spans iterate in server-creation order — the same order the controller's
// old per-node `subtree_servers_` vectors used — so consumers (aggregation,
// victim selection, consolidation target collection) are bitwise-identical
// drop-in replacements that stream over contiguous memory instead of
// chasing per-node heap vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/tree.h"

namespace willow::core {

/// Dense reference to a server slot.  `index` addresses the arena's arrays
/// (and any parallel payload array such as Cluster's ManagedServer storage);
/// `generation` must match the slot's current generation or the handle is
/// stale (the slot was invalidated/reused since the handle was taken).
struct ServerHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return index != kInvalidIndex; }

  friend bool operator==(ServerHandle a, ServerHandle b) {
    return a.index == b.index && a.generation == b.generation;
  }
  friend bool operator!=(ServerHandle a, ServerHandle b) { return !(a == b); }
};

/// The server descendants of one PMU node, as slots in creation order.
/// Either a dense range [first, first+count) or an indirect list (the rare
/// non-contiguous fallback); operator[] hides the difference.
class SubtreeSpan {
 public:
  SubtreeSpan() = default;
  SubtreeSpan(std::uint32_t first, std::uint32_t count,
              const std::uint32_t* indirect)
      : first_(first), count_(count), indirect_(indirect) {}

  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool contiguous() const { return indirect_ == nullptr; }
  [[nodiscard]] std::uint32_t operator[](std::uint32_t i) const {
    return indirect_ ? indirect_[i] : first_ + i;
  }

  /// Forward iteration over the span's slots, so consumers can range-for
  /// a subtree instead of hand-indexing it.  Dereferences to the slot value;
  /// the contiguous/indirect distinction stays hidden.
  class const_iterator {
   public:
    using value_type = std::uint32_t;
    using difference_type = std::int64_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const SubtreeSpan* span, std::uint32_t pos)
        : span_(span), pos_(pos) {}

    std::uint32_t operator*() const { return (*span_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++pos_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    const SubtreeSpan* span_ = nullptr;
    std::uint32_t pos_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, count_}; }

 private:
  std::uint32_t first_ = 0;
  std::uint32_t count_ = 0;
  const std::uint32_t* indirect_ = nullptr;
};

class ServerArena {
 public:
  static constexpr std::uint32_t kNoSlot = ServerHandle::kInvalidIndex;

  /// Register the server living at PMU leaf `node`; returns its slot.
  /// Slots are dense and assigned in call order.
  std::uint32_t add(hier::NodeId node);

  [[nodiscard]] std::size_t size() const { return node_of_.size(); }

  /// Slot -> PMU leaf.
  [[nodiscard]] hier::NodeId node_of(std::uint32_t slot) const {
    return node_of_[slot];
  }
  /// All leaves in slot (creation) order — the legacy server_ids() surface.
  [[nodiscard]] const std::vector<hier::NodeId>& nodes() const {
    return node_of_;
  }

  /// PMU leaf -> slot, or kNoSlot when `node` is not a registered server.
  [[nodiscard]] std::uint32_t slot_of(hier::NodeId node) const {
    return node < slot_of_node_.size() ? slot_of_node_[node] : kNoSlot;
  }
  /// As slot_of, but throws std::out_of_range for non-servers.
  [[nodiscard]] std::uint32_t checked_slot_of(hier::NodeId node) const;

  /// Current handle for a slot.
  [[nodiscard]] ServerHandle handle_at(std::uint32_t slot) const {
    return {slot, generation_[slot]};
  }
  /// Handle for a PMU leaf; invalid handle when `node` is not a server.
  [[nodiscard]] ServerHandle find(hier::NodeId node) const {
    const std::uint32_t slot = slot_of(node);
    return slot == kNoSlot ? ServerHandle{} : handle_at(slot);
  }

  /// Resolve a handle to its slot, throwing std::out_of_range when the
  /// handle is invalid or its generation is stale.
  [[nodiscard]] std::uint32_t checked_slot(ServerHandle h) const;

  /// Invalidate every outstanding handle for `slot` (bumps its generation).
  /// The slot itself stays live; this is the hook a future decommission path
  /// uses so recycled slots cannot be addressed through old handles.
  void invalidate_handles(std::uint32_t slot) { ++generation_[slot]; }

  /// (Re)build the subtree span index against `tree`.  Must be called after
  /// the fleet is complete and before subtree(); call again if the tree
  /// grows.  O(servers * depth).
  void build_subtree_index(const hier::Tree& tree);
  [[nodiscard]] bool subtree_index_built_for(const hier::Tree& tree) const {
    return indexed_tree_size_ == tree.size();
  }

  /// Server descendants of `node` (inclusive: subtree(leaf) is the leaf's
  /// own slot), in creation order.  Requires build_subtree_index().
  [[nodiscard]] SubtreeSpan subtree(hier::NodeId node) const;

  /// Diagnostics: number of nodes whose descendants were not contiguous in
  /// creation order (0 for any depth-first-built fleet).
  [[nodiscard]] std::size_t fragmented_nodes() const { return fragmented_; }

 private:
  struct SpanRec {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint32_t overflow = kNoSlot;  ///< offset into overflow_, or kNoSlot
  };

  std::vector<hier::NodeId> node_of_;        ///< slot -> leaf
  std::vector<std::uint32_t> slot_of_node_;  ///< leaf -> slot (kNoSlot gaps)
  std::vector<std::uint32_t> generation_;    ///< slot -> current generation

  std::vector<SpanRec> spans_;           ///< node -> span record
  std::vector<std::uint32_t> overflow_;  ///< materialized slot lists
  std::size_t indexed_tree_size_ = 0;
  std::size_t fragmented_ = 0;
};

}  // namespace willow::core
