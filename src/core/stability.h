// Stability analysis of the control loop — formalizing Section V-A.
//
// Willow's stability rests on three independent arguments the paper makes:
//
//  1. Convergence (Sec. V-A1): updates traverse the h-level hierarchy in
//     delta <= h*alpha_latency; picking the demand period Delta_D at least
//     ~10x that bound keeps decisions based on settled state.
//  2. Estimator dynamics (Eq. 4): the EWMA demand estimator is a first-order
//     low-pass filter; a step change in demand is tracked to within a
//     tolerance after a computable number of periods, so budget division
//     converges geometrically between disturbance events.
//  3. Decision stability (Property 4): if demand fluctuation stays below the
//     migration margin P_min, a placed demand presents no new deficit and no
//     migration reverses for at least Delta_f periods.
//
// This header provides the closed-form pieces of those arguments so
// deployments can check their parameters *before* running anything.
#pragma once

#include "core/controller.h"
#include "hier/convergence.h"

namespace willow::core {

/// Fraction of a demand step the EWMA has absorbed after `periods` updates:
/// 1 - (1 - alpha)^periods.
[[nodiscard]] double ewma_step_response(double alpha, int periods);

/// Smallest number of periods after which the EWMA tracks a step to within
/// `tolerance` (relative): ceil(log(tol) / log(1 - alpha)).  alpha = 1
/// settles instantly (returns 1); throws for alpha outside (0, 1].
[[nodiscard]] int ewma_settling_periods(double alpha, double tolerance);

/// Worst-case demand-estimate error immediately after a step of `step_w`
/// watts, one supply period (eta1 demand periods) later — the staleness the
/// budget division can act on.
[[nodiscard]] util::Watts ewma_step_error_after_supply_period(
    double alpha, int eta1, util::Watts step_w);

struct StabilityAssessment {
  /// Sec. V-A1: demand period >= safety factor * h * per-level latency.
  bool convergence_ok = false;
  /// Eq. 4: the estimator settles (to 5%) within one supply period, so
  /// budgets never chase noise older than one Delta_S.
  bool estimator_ok = false;
  /// Property 4: the margin exceeds the expected demand fluctuation.
  bool margin_ok = false;
  /// Report dead-band vs margin: demand movement a node absorbs without
  /// re-reporting must also be too small to warrant any migration, i.e.
  /// report_deadband < P_min.  A dead-band at or above the margin lets
  /// sub-report jitter accumulate into actionable (but unseen) deficits,
  /// breaking the Property 4 argument.  Trivially satisfied at dead-band 0.
  bool deadband_ok = false;

  util::Seconds delta;                ///< measured h * alpha bound
  util::Seconds recommended_period;   ///< 10x delta
  int estimator_settling_periods = 0;
  util::Watts margin_headroom{0.0};   ///< margin - fluctuation

  [[nodiscard]] bool stable() const {
    return convergence_ok && estimator_ok && margin_ok && deadband_ok;
  }
};

/// Assess a deployment: the tree shape, the controller parameters, the
/// control-network per-level latency, and the expected per-server demand
/// fluctuation amplitude (e.g. ~sqrt(quantum * mean) for Poisson demand).
[[nodiscard]] StabilityAssessment assess_stability(
    const hier::Tree& tree, const ControllerConfig& config,
    util::Seconds per_level_latency, util::Watts demand_fluctuation,
    double smoothing_alpha);

}  // namespace willow::core
