// Power deficit, surplus and imbalance — Equations (5)–(9).
//
//   P_def(l,i) = [CP_{l,i} - TP_{l,i}]+          (5)
//   P_sur(l,i) = [TP_{l,i} - CP_{l,i}]+          (6)
//   P_def(l)   = max_i P_def(l,i)                (7)
//   P_sur(l)   = max_i P_sur(l,i)                (8)
//   P_imb(l)   = P_def(l) + min(P_def(l), P_sur(l))   (9, as printed)
//
// Eq. (9) is implemented exactly as printed.  The narrative around it ("any
// supply in excess of deficit is not handled by our control scheme") also
// suggests the residual deficit after matching, which we expose separately.
#pragma once

#include "hier/tree.h"
#include "util/units.h"

namespace willow::core {

using hier::NodeId;
using hier::Tree;
using util::Watts;

/// Eq. (5): positive part of demand minus budget for one node.
[[nodiscard]] Watts node_deficit(const hier::Node& node);

/// Eq. (6): positive part of budget minus demand for one node.
[[nodiscard]] Watts node_surplus(const hier::Node& node);

/// Eq. (5)/(6) evaluated on the node's *reported* demand — what the node last
/// sent to its parent — instead of its instantaneous smoothed demand.  The
/// controller acts on these so that demand movement inside the report
/// dead-band cannot trigger any re-budgeting or migration; with a dead-band
/// of 0 they are bitwise identical to node_deficit / node_surplus.
[[nodiscard]] Watts reported_deficit(const hier::Node& node);
[[nodiscard]] Watts reported_surplus(const hier::Node& node);

struct LevelBalance {
  Watts max_deficit{0.0};      ///< Eq. (7)
  Watts max_surplus{0.0};      ///< Eq. (8)
  Watts imbalance{0.0};        ///< Eq. (9), as printed
  Watts total_deficit{0.0};    ///< sum over nodes (diagnostic)
  Watts total_surplus{0.0};    ///< sum over nodes (diagnostic)
  Watts residual_deficit{0.0}; ///< [total_deficit - total_surplus]+
};

/// Balance metrics over all *active* nodes at the given paper-level.
[[nodiscard]] LevelBalance level_balance(const Tree& tree, int level);

}  // namespace willow::core
