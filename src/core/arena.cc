#include "core/arena.h"

#include <algorithm>
#include <stdexcept>

namespace willow::core {

std::uint32_t ServerArena::add(hier::NodeId node) {
  const auto slot = static_cast<std::uint32_t>(node_of_.size());
  node_of_.push_back(node);
  generation_.push_back(1);
  if (node >= slot_of_node_.size()) {
    slot_of_node_.resize(static_cast<std::size_t>(node) + 1, kNoSlot);
  }
  if (slot_of_node_[node] != kNoSlot) {
    throw std::logic_error("ServerArena: node registered twice");
  }
  slot_of_node_[node] = slot;
  indexed_tree_size_ = 0;  // span index (if any) is stale now
  return slot;
}

std::uint32_t ServerArena::checked_slot_of(hier::NodeId node) const {
  const std::uint32_t slot = slot_of(node);
  if (slot == kNoSlot) {
    throw std::out_of_range("ServerArena: node is not a server");
  }
  return slot;
}

std::uint32_t ServerArena::checked_slot(ServerHandle h) const {
  if (h.index >= node_of_.size()) {
    throw std::out_of_range("ServerArena: invalid handle");
  }
  if (h.generation != generation_[h.index]) {
    throw std::out_of_range("ServerArena: stale handle generation");
  }
  return h.index;
}

void ServerArena::build_subtree_index(const hier::Tree& tree) {
  const std::size_t n = tree.size();
  spans_.assign(n, SpanRec{});
  overflow_.clear();
  fragmented_ = 0;

  // Pass 1: per node, the min/max slot and count of server descendants.
  // A node whose [min, max] range is exactly `count` wide holds a contiguous
  // run of creation order and needs no materialized list.
  std::vector<std::uint32_t> min_slot(n, kNoSlot);
  std::vector<std::uint32_t> max_slot(n, 0);
  for (std::uint32_t s = 0; s < node_of_.size(); ++s) {
    for (hier::NodeId cur = node_of_[s]; cur != hier::kNoNode;
         cur = tree.node(cur).parent()) {
      min_slot[cur] = std::min(min_slot[cur], s);
      max_slot[cur] = std::max(max_slot[cur], s);
      ++spans_[cur].count;
    }
  }

  std::vector<hier::NodeId> fragmented_nodes;
  for (hier::NodeId id = 0; id < n; ++id) {
    auto& rec = spans_[id];
    if (rec.count == 0) continue;
    if (max_slot[id] - min_slot[id] + 1 == rec.count) {
      rec.first = min_slot[id];
    } else {
      fragmented_nodes.push_back(id);
    }
  }
  fragmented_ = fragmented_nodes.size();

  // Pass 2 (rare): materialize explicit slot lists, preserving creation
  // order, for the nodes whose descendants interleave with other subtrees.
  if (!fragmented_nodes.empty()) {
    std::vector<std::uint32_t> cursor(fragmented_nodes.size(), 0);
    std::size_t offset = 0;
    for (std::size_t k = 0; k < fragmented_nodes.size(); ++k) {
      auto& rec = spans_[fragmented_nodes[k]];
      rec.overflow = static_cast<std::uint32_t>(offset);
      cursor[k] = rec.overflow;
      offset += rec.count;
    }
    overflow_.resize(offset);
    std::vector<std::uint32_t> frag_index(n, kNoSlot);
    for (std::size_t k = 0; k < fragmented_nodes.size(); ++k) {
      frag_index[fragmented_nodes[k]] = static_cast<std::uint32_t>(k);
    }
    for (std::uint32_t s = 0; s < node_of_.size(); ++s) {
      for (hier::NodeId cur = node_of_[s]; cur != hier::kNoNode;
           cur = tree.node(cur).parent()) {
        const std::uint32_t k = frag_index[cur];
        if (k != kNoSlot) overflow_[cursor[k]++] = s;
      }
    }
  }

  indexed_tree_size_ = n;
}

SubtreeSpan ServerArena::subtree(hier::NodeId node) const {
  if (indexed_tree_size_ == 0) {
    throw std::logic_error("ServerArena: subtree index not built");
  }
  const auto& rec = spans_.at(node);
  if (rec.count == 0) return {};
  if (rec.overflow != kNoSlot) {
    return {0, rec.count, overflow_.data() + rec.overflow};
  }
  return {rec.first, rec.count, nullptr};
}

}  // namespace willow::core
