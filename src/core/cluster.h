// Cluster: the managed plant — PMU tree + servers + hosted applications.
//
// A ManagedServer couples one leaf of the power-control hierarchy with its
// physical models (thermal RC model, power-vs-utilization curve, circuit
// rating) and the applications (VMs) it currently hosts.  The Cluster owns
// the tree and the servers and provides the placement operations the
// controller uses (migrate / drop / sleep / wake) plus the per-period plant
// evolution (demand observation, power consumption, thermal stepping).
//
// Consumption model: an active server draws
//     consumed = idle_floor + min(served demand, budget - idle_floor)
// i.e. workload beyond the budget is throttled (the paper's degraded
// operation); a sleeping server draws nothing (the paper assumes standby
// power ~0, Sec. V-C5).  The demand a server *reports* upward is
// idle_floor + total application demand + temporary migration costs.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/arena.h"
#include "fault/fault.h"
#include "hier/tree.h"
#include "obs/bus.h"
#include "power/server_power.h"
#include "thermal/thermal_model.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/application.h"
#include "workload/demand.h"

namespace willow::util {
class ThreadPool;
}

namespace willow::core {

using hier::NodeId;
using util::Seconds;
using util::Watts;
using workload::AppId;
using workload::Application;

struct ServerConfig {
  thermal::ThermalParams thermal{};
  power::ServerPowerModel power_model = power::ServerPowerModel::paper_simulation();
  /// Power-circuit hard rating (Sec. IV-D hard constraints); defaults to the
  /// thermal nameplate.
  std::optional<Watts> circuit_limit{};
};

class ManagedServer {
 public:
  ManagedServer(NodeId node, const ServerConfig& cfg);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const thermal::ThermalModel& thermal() const { return thermal_; }
  [[nodiscard]] thermal::ThermalModel& thermal() { return thermal_; }
  [[nodiscard]] const power::ServerPowerModel& power_model() const {
    return power_model_;
  }
  [[nodiscard]] Watts circuit_limit() const { return circuit_limit_; }

  [[nodiscard]] const std::vector<Application>& apps() const { return apps_; }
  [[nodiscard]] std::vector<Application>& apps() { return apps_; }

  [[nodiscard]] bool asleep() const { return asleep_; }
  void set_asleep(bool a) { asleep_ = a; }

  /// Idle draw while active (reported as part of demand).
  [[nodiscard]] Watts idle_floor() const {
    return power_model_.static_power();
  }

  /// Temporary extra power demand from in-flight migrations (Sec. IV-E:
  /// "This cost is added as a temporary power demand to the nodes involved").
  [[nodiscard]] Watts temporary_demand() const { return temp_demand_; }
  /// Add `w` of temporary demand that expires after `periods` demand periods.
  void add_temporary_demand(Watts w, int periods);
  /// Advance one demand period: expire aged temporary demand.
  void age_temporary_demand();

  /// What this server reports up the tree: 0 when asleep, otherwise
  /// idle floor + live application demand + temporary migration demand.
  [[nodiscard]] Watts power_demand() const;

  /// Application-demand sum cache: the demand refresh loops deposit the
  /// freshly summed live demand here so power_demand() — called several
  /// times per tick by observation, consumption and packing — is O(1)
  /// instead of O(apps).  Every mutation of the hosted set or of an
  /// individual app's demand/dropped state outside the refresh loops must
  /// invalidate (Cluster's placement ops and the controller's shed/revive
  /// paths do).  An invalid cache only costs the O(apps) fallback.
  void set_cached_app_demand(Watts w) {
    cached_app_demand_ = w;
    app_demand_valid_ = true;
  }
  void invalidate_app_demand_cache() { app_demand_valid_ = false; }

  /// Fault injection: while set, the server's demand report is lost — the
  /// PMU leaf keeps acting on its previous observation (stale CP).  Models
  /// the measurement/communication failures the convergence analysis
  /// (Sec. V-A1) assumes away.
  [[nodiscard]] bool report_fault() const { return report_fault_; }
  void set_report_fault(bool faulty) { report_fault_ = faulty; }

  /// Crashed: the server is down hard (no demand, no consumption, apps
  /// denied) until restarted.  Unlike sleep, a crash keeps the hosted
  /// applications in place — they resume when the server comes back.
  [[nodiscard]] bool crashed() const { return crashed_; }
  void set_crashed(bool c) { crashed_ = c; }

  /// Sensor overrides (fault injection; see docs/fault_model.md).  The
  /// controller consumes *sensed* values; the plant itself keeps evolving on
  /// the true ones.  Setting an override bumps sensor_version() so cached
  /// derived limits refresh.
  [[nodiscard]] const fault::SensorOverride& power_sensor() const {
    return power_sensor_;
  }
  void set_power_sensor(const fault::SensorOverride& o) {
    power_sensor_ = o;
    ++sensor_version_;
  }
  [[nodiscard]] const fault::SensorOverride& temp_sensor() const {
    return temp_sensor_;
  }
  void set_temp_sensor(const fault::SensorOverride& o) {
    temp_sensor_ = o;
    ++sensor_version_;
  }
  /// Bumped whenever a sensor override changes (0 on a healthy server that
  /// never faulted — cache keys stay stable for fault-free runs).
  [[nodiscard]] std::uint64_t sensor_version() const { return sensor_version_; }

  /// The power demand the PMU *sees*: power_demand() filtered through the
  /// power-sensor override.  Bitwise equal to power_demand() while healthy.
  [[nodiscard]] Watts sensed_demand() const;
  /// True when no usable demand reading reaches the PMU this tick (lost
  /// report or power-sensor dropout).
  [[nodiscard]] bool demand_reading_lost() const {
    return report_fault_ ||
           power_sensor_.mode == fault::SensorMode::kDropout;
  }

  /// The temperature the controller sees (temp-sensor override applied).
  [[nodiscard]] util::Celsius sensed_temperature() const;
  /// False during a temperature-sensor dropout: the thermal hard limit must
  /// fall back to the always-safe steady-state envelope.
  [[nodiscard]] bool temp_reading_valid() const {
    return temp_sensor_.mode != fault::SensorMode::kDropout;
  }

  /// Stale-report bookkeeping for the controller's degraded mode: ticks
  /// since the last usable demand observation, and what that observation
  /// was (the last-known-good value the fallback decays from).
  [[nodiscard]] long stale_ticks() const { return stale_ticks_; }
  [[nodiscard]] Watts last_good_demand() const { return last_good_demand_; }
  [[nodiscard]] bool has_last_good_demand() const { return have_last_good_; }
  void note_fresh_observation(Watts d) {
    last_good_demand_ = d;
    have_last_good_ = true;
    stale_ticks_ = 0;
  }
  void note_lost_observation() { ++stale_ticks_; }

  /// Actual electrical draw under the node's current budget.
  [[nodiscard]] Watts consumed_power(Watts budget) const;

  /// Utilization in [0,1]: served dynamic power / dynamic range.
  [[nodiscard]] double utilization(Watts budget) const;

 private:
  NodeId node_;
  thermal::ThermalModel thermal_;
  power::ServerPowerModel power_model_;
  Watts circuit_limit_;
  std::vector<Application> apps_;
  /// Expiring temporary demands: (watts, remaining periods).
  std::vector<std::pair<Watts, int>> temp_;
  Watts temp_demand_{0.0};
  Watts cached_app_demand_{0.0};
  bool app_demand_valid_ = false;
  bool asleep_ = false;
  bool report_fault_ = false;
  bool crashed_ = false;
  fault::SensorOverride power_sensor_{};
  fault::SensorOverride temp_sensor_{};
  std::uint64_t sensor_version_ = 0;
  long stale_ticks_ = 0;
  Watts last_good_demand_{0.0};
  bool have_last_good_ = false;
};

class Cluster {
 public:
  /// @param smoothing_alpha Eq. (4) alpha for every PMU node.
  explicit Cluster(double smoothing_alpha = 0.7);

  [[nodiscard]] hier::Tree& tree() { return tree_; }
  [[nodiscard]] const hier::Tree& tree() const { return tree_; }

  /// Build the hierarchy: root, internal PMU groups, then servers as leaves.
  NodeId add_root(std::string name);
  NodeId add_group(NodeId parent, std::string name,
                   hier::NodeKind kind = hier::NodeKind::kRack);
  NodeId add_server(NodeId parent, std::string name, const ServerConfig& cfg);

  /// The dense server index: handle resolution, NodeId <-> slot mapping and
  /// subtree spans.  The arena's slot order is server-creation order and is
  /// the index space of server_at().
  [[nodiscard]] const ServerArena& arena() const { return arena_; }
  [[nodiscard]] ServerArena& arena() { return arena_; }

  /// Handle for the server at PMU leaf `id` (invalid handle if not a server).
  [[nodiscard]] ServerHandle handle(NodeId id) const { return arena_.find(id); }
  /// Generation-checked handle access (throws std::out_of_range on a stale
  /// or invalid handle).
  [[nodiscard]] ManagedServer& server(ServerHandle h) {
    return servers_[arena_.checked_slot(h)];
  }
  [[nodiscard]] const ManagedServer& server(ServerHandle h) const {
    return servers_[arena_.checked_slot(h)];
  }
  [[nodiscard]] NodeId node_of(ServerHandle h) const {
    return arena_.node_of(arena_.checked_slot(h));
  }

  [[nodiscard]] const std::vector<NodeId>& server_ids() const {
    return arena_.nodes();
  }
  /// DEPRECATED NodeId entry points (thin shims over the arena, kept for one
  /// release — see DESIGN.md §8): prefer handle()/server(ServerHandle) or
  /// slot-based server_at() on hot paths.
  [[nodiscard]] ManagedServer& server(NodeId id);
  [[nodiscard]] const ManagedServer& server(NodeId id) const;
  [[nodiscard]] bool is_server(NodeId id) const;

  /// Index-based access in server-creation order (== server_ids() order);
  /// the sharded tick phases address servers by index to avoid the id hash
  /// lookup on every touch.
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] ManagedServer& server_at(std::size_t i) { return servers_[i]; }
  [[nodiscard]] const ManagedServer& server_at(std::size_t i) const {
    return servers_[i];
  }

  /// Place a new application on a server.
  void place(Application app, NodeId server);

  /// Locate an application; returns the hosting server's handle (invalid
  /// handle when unknown).
  [[nodiscard]] ServerHandle host_handle_of(AppId app) const;
  /// DEPRECATED shim: hosting server's PMU leaf, or kNoNode.
  [[nodiscard]] NodeId host_of(AppId app) const;
  [[nodiscard]] Application* find_app(AppId app);
  [[nodiscard]] const Application* find_app(AppId app) const;

  /// Move an application between servers (placement only; cost/traffic
  /// accounting is the controller's job).  Throws if not hosted on `from`.
  void move_app(AppId app, NodeId from, NodeId to);

  /// Remove an application entirely (workload departure/churn); returns the
  /// removed instance.  Throws if unknown.
  Application remove_app(AppId app);

  /// Sleep/wake a server, keeping the PMU node's active flag in sync.
  void sleep_server(NodeId id);
  void wake_server(NodeId id);

  /// Crash/restore a server (fault injection).  Unlike sleep, a crash is
  /// legal with applications on board: they stay placed (denied service
  /// while down) and resume seamlessly on restore.  The PMU leaf goes
  /// inactive so the subtree aggregation excludes the dark node; callers
  /// must also tell the controller (note_availability_change) so the
  /// incremental plane re-dirties.
  void crash_server(NodeId id);
  void restore_server(NodeId id);

  /// Power-circuit rating of an internal node (rack/zone feed) — the
  /// "under-designed rack power circuits" lean-design scenario of Sec. I.
  /// The node's hard limit becomes min(sum of children, this rating).
  void set_group_circuit_limit(NodeId group, Watts limit);
  /// Rating if one was set; nullopt means "feed never binds".
  [[nodiscard]] std::optional<Watts> group_circuit_limit(NodeId group) const;

  /// Refresh all application demands for one period; `intensity` scales the
  /// means (demand-side variation, Sec. I).  Sequential form: one shared
  /// generator, draw order = server order.
  void refresh_demands(const workload::PoissonDemand& process, util::Rng& rng,
                       double intensity = 1.0);
  /// Per-server piggyback hook for the fused tick fan-out: called with the
  /// server index inside the sharded region, after that server's own work.
  /// The hook must follow the sharded-phase rules (touch only server i's
  /// state / slot i of pre-sized vectors; no bus emit()).
  using PerServerHook = std::function<void(std::size_t)>;

  /// Streamed form for the parallel tick engine: server i draws from the
  /// counter-based stream (seed, tick, i, kDemand), so results are
  /// bit-identical for any thread count (including pool == nullptr, which
  /// runs serially over the same streams).  `per_server`, if non-null, runs
  /// for each server after its refresh — the tick engine fuses report-fault
  /// sampling and traffic accounting into this batch instead of paying two
  /// more fan-outs.
  void refresh_demands(const workload::PoissonDemand& process,
                       std::uint64_t seed, long tick, double intensity,
                       util::ThreadPool* pool,
                       const PerServerHook* per_server = nullptr);
  void refresh_demands_constant();
  /// Deterministic (constant-demand) counterpart of the streamed refresh:
  /// each app's demand becomes its intensity-scaled effective mean, with the
  /// same sharding, demand-cache deposit and per-server kDemandReport
  /// emission as the Poisson form.  Used when the scenario's demand quantum
  /// is 0 (no sampling noise — the steady-state regime the incremental
  /// control plane exploits).
  void refresh_demands_deterministic(double intensity, util::ThreadPool* pool,
                                     const PerServerHook* per_server = nullptr);

  /// Push each server's power_demand() into its PMU leaf (observe_demand).
  void observe_leaf_demands();

  /// Advance thermal state of every server by dt under its consumed power.
  void step_thermal(Seconds dt);
  /// Sharded form: per-server state only, so any partition of the server
  /// range yields identical results; budgets are read, never written.
  /// `per_server`, if non-null, runs for each server after its step — the
  /// tick engine fuses per-server metric recording into this batch on
  /// recorded ticks.
  void step_thermal(Seconds dt, util::ThreadPool* pool,
                    const PerServerHook* per_server = nullptr);

  /// Expire aged temporary migration demands (call once per demand period).
  void age_temporary_demands();

  /// Total consumed electrical power of all servers right now.
  [[nodiscard]] Watts total_consumed() const;

  /// Count of active (non-sleeping) servers.
  [[nodiscard]] std::size_t active_server_count() const;

  /// Attach an observability bus (not owned; may be null); also attached to
  /// the PMU tree.  The streamed refresh_demands deposits one kDemandReport
  /// per server through the bus's per-shard staging, so the merged stream is
  /// bit-identical for any thread count.
  void set_event_bus(obs::EventBus* bus) {
    bus_ = bus;
    tree_.set_event_bus(bus);
  }
  [[nodiscard]] obs::EventBus* event_bus() const { return bus_; }

 private:
  hier::Tree tree_;
  ServerArena arena_;                   ///< slot/handle index; see arena.h
  std::vector<ManagedServer> servers_;  ///< payload, parallel to arena slots
  std::unordered_map<AppId, ServerHandle> app_host_;
  std::unordered_map<NodeId, Watts> group_circuit_limits_;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace willow::core
