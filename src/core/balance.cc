#include "core/balance.h"

namespace willow::core {

Watts node_deficit(const hier::Node& node) {
  return util::positive_part(node.smoothed_demand() - node.budget());
}

Watts node_surplus(const hier::Node& node) {
  return util::positive_part(node.budget() - node.smoothed_demand());
}

Watts reported_deficit(const hier::Node& node) {
  return util::positive_part(node.reported_demand() - node.budget());
}

Watts reported_surplus(const hier::Node& node) {
  return util::positive_part(node.budget() - node.reported_demand());
}

LevelBalance level_balance(const Tree& tree, int level) {
  LevelBalance b;
  for (NodeId id : tree.nodes_at_level(level)) {
    const auto& n = tree.node(id);
    if (!n.active()) continue;
    const Watts d = node_deficit(n);
    const Watts s = node_surplus(n);
    b.max_deficit = util::max(b.max_deficit, d);
    b.max_surplus = util::max(b.max_surplus, s);
    b.total_deficit += d;
    b.total_surplus += s;
  }
  b.imbalance = b.max_deficit + util::min(b.max_deficit, b.max_surplus);
  b.residual_deficit = util::positive_part(b.total_deficit - b.total_surplus);
  return b;
}

}  // namespace willow::core
