// The Willow controller — Section IV (supply & demand side adaptation).
//
// One Controller instance drives one Cluster.  Once per demand period ΔD the
// simulator calls tick() with the currently available supply; the controller
// then executes the paper's phases at their respective granularities:
//
//   every ΔD            demand reports up the tree (Fig. 2), demand-side
//                        adaptation (deficit-driven migrations, Sec. IV-E),
//                        revival of dropped workload under surplus
//   every ΔS = η1·ΔD    supply-side adaptation: thermal/circuit hard limits
//                        recomputed, budgets divided top-down proportional to
//                        smoothed demands (Sec. IV-D)
//   every ΔA = η2·ΔD    consolidation: drain low-utilization servers and put
//                        them to sleep (Sec. IV-C, IV-E)
//
// Migration planning follows the paper's rules: local migrations (within the
// parent group) are preferred to non-local; unsatisfied demands escalate up
// the hierarchy level by level; matching demands to surpluses is the FFDLR
// bin packing of Sec. IV-F; a migration happens only if both source and
// target retain a surplus of at least P_min afterwards; migration cost is
// charged as a temporary power demand on both endpoints; demands that fit
// nowhere are dropped (degraded mode).
//
// Unidirectional rule (Sec. IV-E): migrations are triggered only by budget
// tightening, and no migration may be *destined into* a subtree whose budget
// was reduced by the triggering event.  The paper's datacenter-level case
// ("no migrations are allowed at all [into the datacenter]") concerns
// admitting additional workload from outside, which maps here to the revival
// path: dropped workload is not revived under a node whose budget shrank.
#pragma once

#include <functional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "binpack/pack.h"
#include "core/balance.h"
#include "core/cluster.h"
#include "fault/link_faults.h"
#include "obs/bus.h"
#include "util/units.h"

namespace willow::util {
class ThreadPool;
}

namespace willow::core {

/// How a node's budget is divided among its children (Sec. IV-D).
enum class AllocationPolicy {
  /// "proportional to their demands" — the design-section rule.  Under a
  /// global deficit every child shrinks proportionally (no surpluses), so
  /// relief comes from hard-limit capping, demand fluctuation and drops.
  kProportionalToDemand,
  /// Proportional to each child's hard capacity — the reading that matches
  /// the testbed narrative ("the available power supply is divided
  /// proportionally between the servers", three identical machines): equal
  /// shares leave low-utilization servers with surplus, which is what lets
  /// highly utilized servers migrate work away on a supply plunge (Fig. 16).
  kProportionalToCapacity,
};

/// What "utilization" is measured against when judging consolidation
/// candidates (Sec. IV-E: "When the utilization in a node is really small").
enum class UtilizationReference {
  /// Fraction of the power model's dynamic range — right when the electrical
  /// rating is the binding resource (the paper's testbed).
  kDynamicRange,
  /// Fraction of the thermally sustainable dynamic power
  /// (steady-state power limit minus the idle floor) — right when the
  /// thermal envelope binds long before the nameplate (the paper's
  /// simulation constants, where c2/c1*(T_limit - Ta) ~ 28 W per 450 W
  /// server).
  kThermalSustainable,
};

/// How unplaceable excess demand is shed (Sec. I names both mechanisms:
/// shutting down low-priority tasks, and altering the computation — "reducing
/// the resolution of video, use of coarser audio codecs, or computation of
/// answers to a lower precision").
enum class SheddingPolicy {
  /// Shut whole applications down (the behaviour Sec. IV-E describes).
  kDropWhole,
  /// First degrade applications to a reduced service level; drop whole
  /// applications only if degradation cannot cover the deficit.
  kDegradeThenDrop,
};

struct ControllerConfig {
  /// ΔD in simulation time units (thermal stepping uses this too).
  Seconds demand_period{1.0};
  /// ΔS = eta1 * ΔD (paper simulation: 4).
  int eta1 = 4;
  /// ΔA = eta2 * ΔD, eta2 > eta1 (paper simulation: 7).
  int eta2 = 7;
  /// P_min: surplus that must remain at source and target post-migration.
  Watts margin{10.0};
  /// Utilization below which a server becomes a consolidation candidate
  /// (the testbed experiment uses 20%, Sec. V-C5).
  double consolidation_threshold = 0.2;
  /// Matching algorithm (Sec. IV-F; kFfdlr is the paper's choice).
  binpack::Algorithm packing = binpack::Algorithm::kFfdlr;
  /// Budget division rule (see AllocationPolicy).
  AllocationPolicy allocation = AllocationPolicy::kProportionalToDemand;
  /// Denominator for consolidation utilization (see UtilizationReference).
  UtilizationReference utilization_reference = UtilizationReference::kDynamicRange;
  /// Prefer local (same parent) migrations before escalating.  Ablation knob;
  /// the paper argues locality reduces network overhead and reconfiguration.
  bool prefer_local = true;
  /// Temporary power demand charged to source and target per migration.
  Watts migration_cost{5.0};
  /// Demand periods the migration cost persists.
  int migration_cost_periods = 1;
  /// VM transfer time: demand periods per GiB of image.  0 (default) keeps
  /// the paper's instantaneous-placement model; > 0 makes a migration take
  /// ceil(GiB * this) periods, during which the application keeps running on
  /// (and drawing at) the source while the target holds a reservation.
  double migration_periods_per_gib = 0.0;
  /// Enforce the unidirectional no-migrations-into-reduced-subtrees rule.
  bool enforce_unidirectional = true;
  /// Allow waking sleeping servers when deficits cannot be placed.
  bool allow_wake = true;
  /// Allow dropping demand that fits nowhere (degraded mode).
  bool allow_drop = true;
  /// Fraction of a migration target's sustainable *dynamic* envelope that
  /// may be filled — Sec. I's latency-power tradeoff made explicit.  1.0
  /// packs servers completely (the Sec. IV-F intent, "we try to run every
  /// server at full utilization": best power, worst queueing); 0.8 keeps
  /// M/M/1 response-time inflation within 5x on consolidated hosts.
  double target_fill_fraction = 1.0;
  /// What shedding does when it must act (see SheddingPolicy).
  SheddingPolicy shedding = SheddingPolicy::kDropWhole;
  /// Service level degraded applications run at under kDegradeThenDrop.
  double degraded_service_level = 0.5;
  /// Incremental (change-driven) control plane: re-aggregate, re-divide and
  /// re-pack only where inputs changed bitwise since the previous decision —
  /// dirty report paths, memoized subtree divisions, epoch-stamped
  /// consolidation candidates and cached packing failures.  Semantically
  /// identical to the full recompute (same budgets, same migrations, same
  /// event trace); `shadow_diff` asserts that.  Disable to benchmark the full
  /// walk or to rule the machinery out while debugging.
  bool incremental = true;
  /// Dead-band (W) on demand reports: a node re-reports to its parent only
  /// when its smoothed demand moved more than this since its last report.
  /// 0 = exact (a report on every bitwise change).  Must stay below `margin`:
  /// the controller acts on reported values, so movement inside the dead-band
  /// must also be too small to trigger migrations (Property 4).
  Watts report_deadband{0.0};
  /// Debug shadow mode: every skip the incremental path takes is re-derived
  /// from scratch; any bitwise divergence throws std::logic_error.
  bool shadow_diff = false;
  /// Degraded mode (docs/fault_model.md): ticks of demand-report silence
  /// after which a server is treated as dark — its last-known-good demand is
  /// decayed toward the idle floor and its budget is clamped to the safe
  /// steady-state envelope.  0 (default) disables the machinery entirely.
  int stale_timeout_ticks = 0;
  /// Per-tick geometric decay applied to the last-known-good demand once the
  /// stale timeout has tripped (in (0, 1]; 1 = hold the value forever).
  double stale_decay = 0.9;
  /// Bounded-backoff retries for budget directives lost on a faulty link
  /// (delay doubles per attempt); after this many losses the directive is
  /// abandoned and the next supply pass re-derives it.
  int directive_retry_limit = 3;

  void validate() const;
};

enum class MigrationCause { kDemand, kConsolidation };

struct MigrationRecord {
  workload::AppId app = 0;
  NodeId from = hier::kNoNode;
  NodeId to = hier::kNoNode;
  Watts size{0.0};  ///< demand moved
  MigrationCause cause = MigrationCause::kDemand;
  long tick = 0;
  bool local = false;  ///< source and target share a parent
};

/// One entry of the controller's per-tick decision log.  Every action the
/// controller takes is recorded; `migrations_this_tick()` remains the
/// migration-specific view.
enum class EventKind {
  kMigrationInitiated,  ///< node = source, node2 = target
  kMigrationCompleted,  ///< latency mode: transfer landed (node2 = target)
  kDrop,                ///< application shut down (degraded mode)
  kDegrade,             ///< service level reduced; amount = released W
  kRevive,              ///< dropped application brought back
  kRestore,             ///< service level restored to full
  kSleep,               ///< server deactivated (node)
  kWake,                ///< server woken for unplaceable demand (node)
};

struct ControlEvent {
  EventKind kind;
  long tick = 0;
  workload::AppId app = 0;     ///< 0 for server-level events
  NodeId node = hier::kNoNode;
  NodeId node2 = hier::kNoNode;
  Watts amount{0.0};           ///< demand moved / released / restored
};

/// Human-readable one-liner for logs and the CLI.
[[nodiscard]] std::string to_string(const ControlEvent& event);

struct ControllerStats {
  std::uint64_t demand_migrations = 0;
  std::uint64_t consolidation_migrations = 0;
  std::uint64_t local_migrations = 0;
  std::uint64_t nonlocal_migrations = 0;
  std::uint64_t drops = 0;
  std::uint64_t revivals = 0;
  std::uint64_t degrades = 0;
  std::uint64_t restores = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  Watts dropped_demand{0.0};
  Watts degraded_demand{0.0};

  [[nodiscard]] std::uint64_t total_migrations() const {
    return demand_migrations + consolidation_migrations;
  }
};

class Controller {
 public:
  Controller(Cluster& cluster, ControllerConfig config);

  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] long tick_count() const { return tick_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }

  /// Migrations applied during the most recent tick().
  [[nodiscard]] const std::vector<MigrationRecord>& migrations_this_tick()
      const {
    return migrations_this_tick_;
  }

  /// Every decision taken during the most recent tick(), in order.
  [[nodiscard]] const std::vector<ControlEvent>& events_this_tick() const {
    return events_this_tick_;
  }

  /// Observer invoked for every applied migration (e.g. fabric accounting).
  void set_migration_sink(std::function<void(const MigrationRecord&)> sink) {
    sink_ = std::move(sink);
  }

  /// Attach an observability bus (not owned; may be null).  Every decision
  /// the controller takes — migrations with reason codes (supply deficit /
  /// thermal / consolidation), thermal throttles, budget directives, drops,
  /// degrades, sleeps, wakes — is emitted as a typed event, and packing
  /// attempts feed the bus's metrics registry.  The controller is serial, so
  /// all emission goes through EventBus::emit.
  void set_event_bus(obs::EventBus* bus) {
    bus_ = bus;
    resolve_instruments();
  }
  [[nodiscard]] obs::EventBus* event_bus() const { return bus_; }

  /// One demand period: reports, (possibly) supply adaptation with the given
  /// available supply, demand adaptation, (possibly) consolidation, revival.
  void tick(Watts available_supply);

  /// Whether `node`'s budget was reduced by the most recent supply event.
  [[nodiscard]] bool budget_reduced(NodeId node) const;

  /// Root-level budget that no child could absorb at the last supply event.
  [[nodiscard]] Watts root_unallocated() const { return root_unallocated_; }

  /// Migrations currently in transit (only under migration latency).
  [[nodiscard]] std::size_t migrations_in_flight() const {
    return in_flight_.size();
  }

  /// Whether the given application is currently mid-transfer (callers that
  /// churn workload must not remove such apps out from under the transfer).
  [[nodiscard]] bool app_in_flight(workload::AppId app) const {
    return apps_in_flight_.contains(app);
  }

  /// Force a supply adaptation now (tests; scenario warm-up).
  void force_supply_adaptation(Watts available_supply) {
    supply_adaptation(available_supply);
  }

  /// Tell the controller that state outside its own mutations changed under
  /// `node` (workload churn placed/removed an application, an ambient event
  /// re-zoned a server, a fault was injected).  The incremental path treats
  /// everything it has not been told about as unchanged, so the simulator
  /// must call this for every externally touched server.  No-op when the
  /// incremental machinery is off.
  void note_external_change(NodeId node);

  /// Tell the controller a server's availability flipped (crash or restore).
  /// Re-dirties the incremental plane exactly like the sleep/wake paths:
  /// the parent's aggregation, hard-limit roll-up and division must re-run,
  /// and the node's own report path is marked pending.  Safe in both walk
  /// modes.
  void note_availability_change(NodeId node);

  /// Attach a worker pool (not owned; may be null).  Used to shard the
  /// independent subtree-scope consolidation dry runs; results are merged in
  /// fixed candidate order and revalidated against the change epochs, so the
  /// decision stream is byte-identical for any pool size (including none).
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Attach a link-fault model (not owned; may be null).  Installed on the
  /// tree (up-link report faults) and consulted by the budget distributor:
  /// lost directives enter a bounded-backoff retry queue instead of being
  /// applied.  Null keeps every budget path byte-identical to a fault-free
  /// build.
  void set_link_faults(const fault::LinkFaultModel* faults);

 private:
  struct PlanItem {
    workload::AppId app;
    NodeId source;
    Watts size;  ///< demand + migration cost (what a bin must absorb)
    Watts demand;
    MigrationCause cause;
    /// Fine-grained trigger for the event stream: a demand migration off a
    /// thermally clamped server is kThermal, off a supply-starved one
    /// kSupplyDeficit; consolidation drains are kConsolidation.
    obs::Reason reason = obs::Reason::kNone;
  };

  void supply_adaptation(Watts available_supply);
  void update_hard_limits();
  /// Degrade/drop unplaceable leftovers per SheddingPolicy, lowest priority
  /// first, releasing just enough to cover each source's deficit.
  void shed_leftovers(std::vector<PlanItem>& pending);
  /// Per-ΔD local thermal throttling: clamp each active server's budget to
  /// its freshly derived thermal/circuit limit.  A clamp is a tightening
  /// event (marks the node budget-reduced), which is what drives workload
  /// out of hot zones between supply periods.
  void enforce_thermal_limits();
  void demand_adaptation();
  void consolidate();
  void revive_dropped();

  // ---- degraded mode (fault handling; docs/fault_model.md) ----------------

  /// Feed decayed last-known-good demand for servers whose reports have been
  /// silent past the stale timeout (runs between leaf observation and the
  /// report sweep; the synthetic value flows through the normal EWMA path so
  /// incremental == full holds under faults).
  void apply_stale_observations();
  /// Clamp dark servers' budgets to the always-safe steady-state envelope
  /// (fail-safe toward thermal limits, never above) — the budget-side twin
  /// of enforce_thermal_limits, with identical dirtying mechanics.
  void apply_fallback_budgets();
  /// Apply one directive to `id` with full bookkeeping (event, tree
  /// accounting, dirty marks, budget_reduced on decrease).  Shared by the
  /// normal supply pass and the retry queue.
  void deliver_directive(NodeId id, Watts budget);
  /// A directive to `id` was lost; remember it for bounded-backoff retry and
  /// keep the dividing parent dirty so supply passes re-derive it.
  void queue_directive_retry(NodeId id, Watts budget);
  /// Re-send queued directives whose backoff expired (runs every tick).
  void retry_pending_directives();

  /// Select apps on `server` whose combined demand covers `needed`;
  /// largest-demand-first, skipping dropped apps.
  std::vector<PlanItem> select_victims(NodeId server, Watts needed,
                                       MigrationCause cause,
                                       obs::Reason reason);

  /// Target eligibility under the unidirectional rule within `scope`.
  [[nodiscard]] bool eligible_target(NodeId target_server, NodeId scope) const;

  /// Pack `items` into the surpluses of `targets` and apply the resulting
  /// migrations.  Returns the item indices that could not be placed.
  std::vector<std::size_t> pack_and_apply(std::vector<PlanItem>& items,
                                          const std::vector<NodeId>& targets);

  void apply_migration(const PlanItem& item, NodeId target);

  /// Land in-flight migrations whose transfer completed (latency mode).
  void complete_due_migrations();

  /// Remaining spare capacity a target can still absorb this tick:
  /// surplus - margin - demand already migrated in this tick.
  [[nodiscard]] Watts target_capacity(NodeId server) const;

  /// Rebuild the membership-derived candidate caches if the tree changed
  /// shape.  Node membership is fixed after construction (only active flags
  /// and budgets change per tick), so these are computed once and reused by
  /// every tick instead of re-deriving them with per-node scans; the
  /// tree-size check invalidates them should a caller ever grow the tree.
  void ensure_topology_cache();

  // ---- incremental (change-driven) machinery -------------------------------
  // Shared invariant of every cache below: it is keyed on state that, when it
  // changes bitwise, provably marks the cache dirty (a report, a budget
  // directive, a thermal version bump, an epoch stamp).  A cache hit therefore
  // reproduces the full recomputation bit for bit; shadow_diff re-derives each
  // hit and throws on divergence.

  /// Stamp `node` and its whole root path with a fresh change epoch.  Every
  /// controller-visible mutation under a node funnels through this, so
  /// subtree_epoch_[n] answers "did anything below n change since epoch E?".
  void touch(NodeId node);

  /// min(circuit rating, thermal power limit over one demand period) for the
  /// server at `server_index`, cached on the server's thermal state version
  /// (the only moving input).  Shared by update_hard_limits and
  /// enforce_thermal_limits so both clamp to identical bits, and valid in
  /// both walk modes (it memoizes a pure function).
  [[nodiscard]] Watts leaf_limit(std::size_t server_index);

  /// Shadow-diff helpers: re-derive a skipped decision from scratch and throw
  /// std::logic_error on any bitwise mismatch.
  void shadow_check_division(NodeId id);
  void shadow_check_hard_limit(NodeId id);
  void count_shadow_check(bool mismatch);

  void resolve_instruments();

  /// Per-entity change epochs (see touch()).
  std::uint64_t change_epoch_ = 0;
  std::vector<std::uint64_t> subtree_epoch_;  ///< by NodeId
  /// Internal nodes whose top-down division must re-run at the next supply
  /// pass (child demand vector, child capacities or own budget moved).
  std::vector<char> division_dirty_;  ///< by NodeId
  /// Internal nodes whose hard-limit roll-up must re-run (a descendant's
  /// leaf limit or active flag moved).
  std::vector<char> limit_dirty_;  ///< by NodeId
  /// leaf_limit() memo, keyed on the thermal state version and (for
  /// fault-injected runs) the server's sensor version.
  std::vector<double> cached_leaf_limit_;             ///< by NodeId
  std::vector<std::uint64_t> cached_limit_version_;   ///< by NodeId
  std::vector<std::uint64_t> cached_sensor_version_;  ///< by server index

  /// Consolidation-candidate index: one entry per server, refreshed only when
  /// the server's subtree epoch moved (or the fleet envelope shifted), plus
  /// the utilization-ordered candidate list reused verbatim across ΔA passes
  /// while no entry changed.
  struct ConsolEntry {
    bool eligible = false;
    double utilization = 0.0;
    double envelope = 0.0;  ///< server's own sustainable dynamic power
  };
  std::vector<ConsolEntry> consol_entry_;             ///< by server index
  std::vector<std::uint64_t> consol_entry_epoch_;     ///< by server index
  std::vector<double> server_envelope_;               ///< by server index
  std::vector<std::uint64_t> server_envelope_version_;///< by server index
  double cached_fleet_envelope_ =
      -1.0;  ///< impossible (envelopes are >= 0) => first pass recomputes
  std::vector<std::uint32_t> consol_order_;  ///< sorted candidate indices
  bool consol_order_valid_ = false;
  /// Cached dry-run failures: "this candidate could not be fully drained at
  /// this scope while the scope's state was at this epoch (with these items)".
  /// Valid on every pass, including while migrations are in flight: the
  /// transient absorbed/reserved watts a dry run reads are epoch-stamped at
  /// every mutation (migration start, landing, release) *and* at their
  /// per-tick reset (tick() touches the previous tick's targets before
  /// zeroing absorbed_w_), so an unchanged scope epoch proves the verdict's
  /// inputs are bitwise unchanged.
  struct ConsolFail {
    std::uint64_t epoch = 0;
    std::uint64_t item_sig = 0;
    bool valid = false;
  };
  std::vector<ConsolFail> consol_fail_local_;  ///< by server index
  std::vector<ConsolFail> consol_fail_root_;   ///< by server index

  /// Single-entry pack_and_apply memo for the all-unplaced case: when the
  /// same items meet the same bins as last time and nothing was placed then,
  /// nothing will be placed now (FFDLR is deterministic), so the pack call is
  /// skipped.  Only no-assignment results are reusable — an applied
  /// assignment mutates the very state the fingerprint hashes.
  struct PackMemo {
    std::uint64_t items_sig = 0;
    std::uint64_t bins_sig = 0;
    std::size_t item_count = 0;
    /// The unplaced-index order the packer produced (item order matters to
    /// later escalation passes, so the memo must reproduce it exactly).
    std::vector<std::size_t> unplaced;
    bool valid = false;
  } pack_memo_;

  /// Division scratch (child demand/capacity vectors, reused per node).
  std::vector<Watts> alloc_demands_scratch_;
  std::vector<Watts> alloc_caps_scratch_;

  /// Instruments resolved once when the bus is attached (name lookups are a
  /// hash probe each; the skip paths fire per node per tick).
  obs::Counter* c_budget_directives_ = nullptr;
  obs::Counter* c_divisions_memoized_ = nullptr;
  obs::Counter* c_packings_reused_ = nullptr;
  obs::Counter* c_shadow_checks_ = nullptr;
  obs::Counter* c_shadow_mismatches_ = nullptr;
  /// Batched-consolidation effectiveness: per-ΔA candidates that passed the
  /// skip checks, candidates fully drained (plan applied or empty server
  /// slept), verdicts served whole by the fleet-scope failure cache, fleet
  /// verdicts produced by the capacity-index fast path, and point mutations
  /// (erase/insert) applied to that index.
  obs::Counter* c_consol_candidates_ = nullptr;
  obs::Counter* c_consol_drained_ = nullptr;
  obs::Counter* c_consol_cache_served_ = nullptr;
  obs::Counter* c_consol_batched_ = nullptr;
  obs::Counter* c_index_point_updates_ = nullptr;

  /// Fault instruments, resolved only when a link-fault model or the stale
  /// machinery is active so fault-free runs register no extra counters.
  void resolve_fault_instruments();
  obs::Counter* c_directive_losses_ = nullptr;
  obs::Counter* c_directive_retries_ = nullptr;
  obs::Counter* c_directives_abandoned_ = nullptr;
  obs::Counter* c_stale_timeouts_ = nullptr;
  obs::Counter* c_fallback_budgets_ = nullptr;

  /// Link-fault model (not owned; null in fault-free runs).
  const fault::LinkFaultModel* link_faults_ = nullptr;
  /// Directives lost in transit, awaiting retry with exponential backoff.
  struct PendingDirective {
    NodeId node = hier::kNoNode;
    Watts budget{0.0};
    int attempts = 0;      ///< failed sends so far
    long next_retry = 0;   ///< earliest controller tick to try again
  };
  std::vector<PendingDirective> pending_directives_;

  Cluster& cluster_;
  ControllerConfig config_;
  ControllerStats stats_;
  long tick_ = 0;
  Watts last_supply_{0.0};
  std::vector<bool> budget_reduced_;
  /// Servers whose budget this tick's thermal/circuit clamp reduced; drives
  /// the kThermal reason code on the migrations the clamp forces.
  std::vector<char> thermally_clamped_;
  Watts root_unallocated_{0.0};
  std::vector<MigrationRecord> migrations_this_tick_;
  std::vector<ControlEvent> events_this_tick_;
  /// Demand already accepted by each server during the current tick (so
  /// successive packing passes see shrunken surpluses).
  std::vector<double> absorbed_w_;
  /// Demand migrated *off* each server during the current tick (credited
  /// against its observed deficit before shedding).
  std::vector<double> migrated_from_w_;

  /// Latency-mode state: transfers in progress.
  struct InFlight {
    workload::AppId app;
    NodeId source;
    NodeId target;
    long completes_at;
    Watts demand;
  };
  std::vector<InFlight> in_flight_;
  std::unordered_set<workload::AppId> apps_in_flight_;
  /// Demand reserved at targets by inbound transfers (persists across ticks).
  std::vector<double> reserved_in_w_;
  /// Demand leaving each source via in-flight transfers (credited against
  /// its deficit so the same load is not shed or re-planned while moving).
  std::vector<double> outbound_in_flight_w_;
  /// Servers that received a migration this tick (never consolidation
  /// sources in the same tick — avoids intra-tick ping-pong).
  std::unordered_set<NodeId> targets_this_tick_;
  std::function<void(const MigrationRecord&)> sink_;
  obs::EventBus* bus_ = nullptr;

  /// Cached topology (see ensure_topology_cache).
  std::size_t cache_tree_size_ = 0;
  std::vector<NodeId> bottom_up_;
  std::vector<NodeId> top_down_;
  /// Internal nodes with >= 1 server child, in bottom-up order (the "level-1
  /// groups" demand adaptation plans over).
  std::vector<NodeId> group_parents_;
  std::vector<char> is_group_parent_;  ///< by NodeId
  /// Direct server children per node, in child order.
  std::vector<std::vector<NodeId>> server_children_;
  // (Per-node server-descendant lists moved into the cluster's ServerArena:
  // subtree spans over creation order — same membership, same iteration
  // order as the old `subtree_servers_` vectors, O(1) storage per node.)

  /// Packing scratch reused across pack_and_apply / dry-run calls (cleared
  /// per use; sized once the fleet's steady-state planning width is seen).
  std::vector<binpack::Item> bp_items_scratch_;
  std::vector<binpack::Bin> bp_bins_scratch_;
  std::vector<NodeId> bin_node_scratch_;
  std::vector<NodeId> target_scratch_;
  std::vector<const workload::Application*> victim_scratch_;
  std::vector<workload::Application*> shed_scratch_;

  /// Consolidation fleet-scope fast path (valid only within one
  /// consolidate() call; see consolidate()).  The capacity index holds every
  /// (active, root-eligible, capacity > eps) server except none — candidates
  /// skip themselves at pack time — ordered by (capacity, NodeId), which is
  /// exactly FFDLR's real-bin order when bins are enumerated in creation
  /// order.  An ordered set rather than a sorted vector: the batched drain
  /// point-updates the index after every applied migration and sleep, and
  /// under churn those point deltas number in the thousands per pass —
  /// O(log fleet) node surgery instead of O(fleet) vector memmoves.
  /// `consol_cap_of_` remembers each slot's indexed key so point updates can
  /// erase it after a migration changes the capacity.
  std::set<std::pair<double, NodeId>> consol_cap_index_;
  std::vector<std::pair<double, NodeId>> consol_index_build_scratch_;
  std::vector<double> consol_cap_of_;        ///< by slot; <0 = not indexed
  std::vector<char> consol_root_eligible_;   ///< by slot (unidirectional rule)
  bool consol_index_built_ = false;
  std::vector<std::pair<std::size_t, NodeId>> fast_assign_scratch_;
  /// Fast-path pack scratch: bins the current candidate's plan already
  /// touched, as (target, residual) in touch order, and the item indices that
  /// fell out of whole-group placement (pack()'s leftover best-fit inputs).
  std::vector<std::pair<NodeId, double>> fast_touched_scratch_;
  std::vector<std::size_t> fast_leftover_scratch_;

  /// Per-candidate drain plan, one slot per consol_order_ position, reused
  /// across ΔA passes (inner vectors keep their capacity — this is also where
  /// the per-candidate PlanItem list lives, replacing a per-candidate heap
  /// allocation).  The parallel precompute phase fills slots from worker
  /// threads (disjoint writes); the serial drain consumes a slot only if the
  /// scope's epoch has not moved since the precompute, which proves a serial
  /// recompute would reproduce it bitwise.
  struct ConsolPlan {
    std::vector<PlanItem> items;
    std::vector<std::pair<std::size_t, NodeId>> assign;
    std::uint64_t sig = 0;
    std::uint64_t scope_epoch = 0;
    bool placed_all = false;
    bool computed = false;
  };
  std::vector<ConsolPlan> consol_plan_;

  /// Worker pool for the parallel dry-run phase (not owned; may be null).
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace willow::core
