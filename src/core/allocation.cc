#include "core/allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace willow::core {

namespace {
constexpr double kEps = 1e-12;

/// Distribute `amount` over entries proportional to weights[i], clamping each
/// entry's cumulative value at limit[i].  Mutates `value`; returns leftover
/// that could not be placed.
double water_fill(double amount, const std::vector<double>& weights,
                  const std::vector<double>& limit, std::vector<double>& value) {
  const std::size_t n = weights.size();
  std::vector<bool> frozen(n, false);
  // A node with zero weight never receives anything in this pass.
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] <= kEps || limit[i] - value[i] <= kEps) frozen[i] = true;
  }
  while (amount > kEps) {
    double wsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) wsum += weights[i];
    }
    if (wsum <= kEps) break;
    bool clamped = false;
    double placed = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const double share = amount * weights[i] / wsum;
      const double headroom = limit[i] - value[i];
      if (share >= headroom - kEps) {
        value[i] += headroom;
        placed += headroom;
        frozen[i] = true;
        clamped = true;
      } else {
        value[i] += share;
        placed += share;
      }
    }
    amount -= placed;
    if (!clamped) {
      // Nobody clamped: everything proportional went in; done.
      amount = std::max(0.0, amount);
      break;
    }
  }
  return std::max(0.0, amount);
}
}  // namespace

AllocationResult allocate_proportional(Watts total,
                                       const std::vector<Watts>& demands,
                                       const std::vector<Watts>& caps) {
  if (demands.size() != caps.size()) {
    throw std::invalid_argument(
        "allocate_proportional: demands/caps size mismatch");
  }
  if (total.value() < 0.0) {
    throw std::invalid_argument("allocate_proportional: negative total");
  }
  const std::size_t n = demands.size();
  AllocationResult result;
  result.budgets.assign(n, Watts{0.0});
  if (n == 0) {
    result.unallocated = total;
    return result;
  }

  std::vector<double> demand(n), cap(n), value(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i] = std::max(0.0, demands[i].value());
    cap[i] = std::max(0.0, caps[i].value());
    if (std::isinf(cap[i])) cap[i] = std::numeric_limits<double>::max();
  }

  // Phase 1: satisfy demands (each node limited by min(demand, cap)),
  // shares proportional to demand.
  std::vector<double> phase1_limit(n);
  for (std::size_t i = 0; i < n; ++i) phase1_limit[i] = std::min(demand[i], cap[i]);
  double leftover = water_fill(total.value(), demand, phase1_limit, value);

  // Phase 2: spread surplus proportional to demand among nodes below cap.
  if (leftover > kEps) {
    leftover = water_fill(leftover, demand, cap, value);
  }
  // Phase 2b: nodes with zero demand share any remaining surplus in
  // proportion to their cap headroom.
  if (leftover > kEps) {
    std::vector<double> headroom(n);
    for (std::size_t i = 0; i < n; ++i) headroom[i] = cap[i] - value[i];
    leftover = water_fill(leftover, headroom, cap, value);
  }

  for (std::size_t i = 0; i < n; ++i) result.budgets[i] = Watts{value[i]};
  result.unallocated = Watts{leftover};
  return result;
}

}  // namespace willow::core
