// Applications (VM-hosted workloads) — Section IV-E.
//
// "The applications are hosted by one or more virtual machines (VMs) and the
//  demand is migrated between nodes by migrating these virtual machines."
//
// Demands are whole applications: Willow never splits one across servers
// (Sec. IV-E, "migrations are done at the application level").  Each
// Application carries its class, its mean power requirement, and a live
// Poisson-modulated demand; the simulator hosts them on servers and the
// controller moves them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace willow::workload {

using util::Megabytes;
using util::Watts;

/// A class of applications with a characteristic average power requirement.
struct AppClass {
  std::string name;
  /// Mean power requirement, in relative units for the simulation catalog
  /// (1, 2, 5, 9) or in absolute watts for the testbed catalog (8, 10, 15).
  double relative_power = 1.0;
};

/// The paper's simulation catalog (Sec. V-B1): "a random mix of 4 different
/// application types that have a relative average power requirement of
/// 1, 2, 5 and 9".
const std::vector<AppClass>& simulation_catalog();

/// The paper's testbed catalog (Table II): CPU-bound web applications whose
/// measured power increments are A1 = 8 W, A2 = 10 W, A3 = 15 W.
const std::vector<AppClass>& testbed_catalog();

using AppId = std::uint64_t;
constexpr AppId kInvalidApp = 0;

/// Priority of an application: 0 is the most important; larger values shed
/// first.  The paper's Section I: "In cases of serious and relatively
/// long-lived energy deficiency, the only mechanism to cope is to shut down
/// low-priority tasks."
using Priority = int;
constexpr Priority kHighestPriority = 0;

/// One running application instance (== one VM).
class Application {
 public:
  /// @param id          unique, nonzero
  /// @param class_index index into the owning catalog
  /// @param mean_power  average power this application demands
  /// @param image_size  VM image size; determines migration payload
  Application(AppId id, std::size_t class_index, Watts mean_power,
              Megabytes image_size);

  [[nodiscard]] AppId id() const { return id_; }
  [[nodiscard]] std::size_t class_index() const { return class_index_; }
  [[nodiscard]] Watts mean_power() const { return mean_power_; }
  [[nodiscard]] Megabytes image_size() const { return image_size_; }

  /// Instantaneous demand (set by the demand generator each ΔD).
  [[nodiscard]] Watts demand() const { return demand_; }
  void set_demand(Watts d) { demand_ = d; }

  /// Time (simulation clock) of the last migration that moved this app;
  /// used to verify decision stability (Property 4) and to pin freshly
  /// migrated demand.
  [[nodiscard]] double last_migrated_at() const { return last_migrated_at_; }
  void set_last_migrated_at(double t) { last_migrated_at_ = t; }

  /// Dropped applications are shut down to fit the budget (Sec. IV-E: "the
  /// excess demand is simply dropped").
  [[nodiscard]] bool dropped() const { return dropped_; }
  void set_dropped(bool d) { dropped_ = d; }

  /// Shedding priority (0 = keep longest).
  [[nodiscard]] Priority priority() const { return priority_; }
  void set_priority(Priority p) { priority_ = p; }

  /// Degraded operational mode (Sec. I: "the nature of the computation can
  /// be altered (e.g., reducing the resolution of video ...)").  The service
  /// level scales the application's effective power demand; 1 = full
  /// service.  Dropping and degrading are independent: a dropped app demands
  /// nothing regardless of its service level.
  [[nodiscard]] double service_level() const { return service_level_; }
  void set_service_level(double level);
  [[nodiscard]] bool degraded() const { return service_level_ < 1.0; }

  /// Mean power at the current service level (what the demand generators
  /// target).
  [[nodiscard]] Watts effective_mean_power() const {
    return mean_power_ * service_level_;
  }

 private:
  AppId id_;
  std::size_t class_index_;
  Watts mean_power_;
  Megabytes image_size_;
  Watts demand_{0.0};
  double last_migrated_at_ = -1.0;
  bool dropped_ = false;
  Priority priority_ = kHighestPriority;
  double service_level_ = 1.0;
};

/// Monotonic id source for applications.
class AppIdAllocator {
 public:
  AppId next() { return ++last_; }

 private:
  AppId last_ = kInvalidApp;
};

}  // namespace willow::workload
