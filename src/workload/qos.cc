#include "workload/qos.h"

#include <algorithm>
#include <stdexcept>

namespace willow::workload {

double response_inflation(double utilization, double max_inflation) {
  if (utilization < 0.0) {
    throw std::invalid_argument("response_inflation: negative utilization");
  }
  if (!(max_inflation >= 1.0)) {
    throw std::invalid_argument("response_inflation: max_inflation < 1");
  }
  if (utilization >= 1.0) return max_inflation;
  return std::min(max_inflation, 1.0 / (1.0 - utilization));
}

double sla_utilization_limit(double sla_inflation) {
  if (!(sla_inflation > 1.0)) {
    throw std::invalid_argument("sla_utilization_limit: SLA must be > 1");
  }
  return 1.0 - 1.0 / sla_inflation;
}

SlaTracker::SlaTracker(double sla_inflation) : sla_(sla_inflation) {
  if (!(sla_inflation > 1.0)) {
    throw std::invalid_argument("SlaTracker: SLA inflation must be > 1");
  }
}

void SlaTracker::record(double offered_w, double utilization) {
  if (offered_w < 0.0) {
    throw std::invalid_argument("SlaTracker::record: negative demand");
  }
  if (offered_w == 0.0) return;
  const double inflation = response_inflation(utilization);
  offered_total_ += offered_w;
  if (inflation <= sla_ + 1e-12) met_total_ += offered_w;
  inflation_weighted_ += inflation * offered_w;
  served_total_ += offered_w;
  ++samples_;
}

void SlaTracker::record_denied(double offered_w) {
  if (offered_w < 0.0) {
    throw std::invalid_argument("SlaTracker::record_denied: negative demand");
  }
  offered_total_ += offered_w;
  ++samples_;
}

double SlaTracker::satisfaction() const {
  return offered_total_ > 0.0 ? met_total_ / offered_total_ : 1.0;
}

double SlaTracker::mean_inflation() const {
  return served_total_ > 0.0 ? inflation_weighted_ / served_total_ : 1.0;
}

void SlaTracker::reset() {
  offered_total_ = met_total_ = inflation_weighted_ = served_total_ = 0.0;
  samples_ = 0;
}

}  // namespace willow::workload
