#include "workload/flows.h"

#include <stdexcept>

namespace willow::workload {

void FlowSet::add(Flow flow) {
  if (flow.a == kInvalidApp || flow.b == kInvalidApp || flow.a == flow.b) {
    throw std::invalid_argument("FlowSet::add: invalid endpoints");
  }
  if (flow.traffic_units < 0.0) {
    throw std::invalid_argument("FlowSet::add: negative traffic");
  }
  flows_.push_back(flow);
}

double FlowSet::total_units() const {
  double total = 0.0;
  for (const auto& f : flows_) total += f.traffic_units;
  return total;
}

FlowSet chain_flows(const std::vector<std::vector<AppId>>& groups,
                    double units) {
  FlowSet set;
  for (const auto& group : groups) {
    for (std::size_t i = 0; i + 1 < group.size(); ++i) {
      set.add({group[i], group[i + 1], units});
    }
  }
  return set;
}

}  // namespace willow::workload
