#include "workload/mix.h"

#include <stdexcept>

namespace willow::workload {

std::vector<Application> build_mix(const MixConfig& cfg, AppIdAllocator& ids,
                                   util::Rng& rng) {
  const auto& catalog = cfg.catalog ? *cfg.catalog : simulation_catalog();
  if (catalog.empty()) throw std::invalid_argument("build_mix: empty catalog");
  if (!(cfg.unit_power.value() > 0.0)) {
    throw std::invalid_argument("build_mix: unit_power must be > 0");
  }
  if (!cfg.class_weights.empty() &&
      cfg.class_weights.size() != catalog.size()) {
    throw std::invalid_argument(
        "build_mix: class_weights size must match the catalog");
  }
  double weight_sum = 0.0;
  for (double w : cfg.class_weights) {
    if (w < 0.0) throw std::invalid_argument("build_mix: negative weight");
    weight_sum += w;
  }
  if (!cfg.class_weights.empty() && weight_sum <= 0.0) {
    throw std::invalid_argument("build_mix: all class weights are zero");
  }
  auto pick_class = [&]() -> std::size_t {
    if (cfg.class_weights.empty()) return rng.index(catalog.size());
    double x = rng.uniform(0.0, weight_sum);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      x -= cfg.class_weights[i];
      if (x <= 0.0) return i;
    }
    return catalog.size() - 1;
  };

  std::vector<Application> apps;
  Watts total{0.0};
  for (;;) {
    const std::size_t cls = pick_class();
    const Watts mean = cfg.unit_power * catalog[cls].relative_power;
    // Stop when adding this app would overshoot the target by more than half
    // of the app's own mean; guarantees totals land near the target without
    // biasing toward small classes only.
    if (total + mean > cfg.target_mean_per_server + mean * 0.5) {
      if (!apps.empty()) break;
      // A server must host at least one application; fall through and accept.
    }
    apps.emplace_back(ids.next(), cls, mean,
                      Megabytes{cfg.image_per_unit.value() *
                                catalog[cls].relative_power});
    if (cfg.priority_levels > 1) {
      apps.back().set_priority(rng.uniform_int(0, cfg.priority_levels - 1));
    }
    total += mean;
    if (total >= cfg.target_mean_per_server) break;
  }
  return apps;
}

std::vector<std::vector<Application>> build_datacenter_mix(
    const MixConfig& cfg, std::size_t servers, AppIdAllocator& ids,
    util::Rng& rng) {
  std::vector<std::vector<Application>> out;
  out.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    out.push_back(build_mix(cfg, ids, rng));
  }
  return out;
}

Watts total_mean_power(const std::vector<Application>& apps) {
  Watts t{0.0};
  for (const auto& a : apps) t += a.mean_power();
  return t;
}

Watts total_demand(const std::vector<Application>& apps) {
  Watts t{0.0};
  for (const auto& a : apps) {
    if (!a.dropped()) t += a.demand();
  }
  return t;
}

}  // namespace willow::workload
