// Inter-application (IPC) traffic flows — the workload class the paper
// defers to future work: "We would also like to analyze the performance of
// Willow under more complex workloads where there is excessive IPC traffic
// among the servers."
//
// A Flow is a steady bidirectional traffic relationship between two
// applications (e.g. tiers of the same service).  Flows whose endpoints are
// co-located produce no fabric traffic; when migrations separate them the
// traffic crosses the switch hierarchy — the cost the locality preference
// exists to contain.
#pragma once

#include <vector>

#include "workload/application.h"

namespace willow::workload {

struct Flow {
  AppId a = kInvalidApp;
  AppId b = kInvalidApp;
  /// Steady traffic between the endpoints, in the fabric's traffic units.
  double traffic_units = 0.0;
};

class FlowSet {
 public:
  void add(Flow flow);
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] bool empty() const { return flows_.empty(); }
  [[nodiscard]] std::size_t size() const { return flows_.size(); }

  /// Total traffic over all flows.
  [[nodiscard]] double total_units() const;

 private:
  std::vector<Flow> flows_;
};

/// Wire up flows between consecutive applications of each group (a "service"
/// whose tiers start co-located): for every group of app ids, each adjacent
/// pair gets a flow of `units` traffic.
FlowSet chain_flows(const std::vector<std::vector<AppId>>& groups,
                    double units);

}  // namespace willow::workload
