// Response-time / QoS model — quantifying the paper's objective: "adapt the
// data center operations to such available power variations as far as
// possible — while still meeting the desired QoS requirements".
//
// The paper's workloads are transactional (user queries); a server throttled
// below its offered load queues requests.  We model each server as an M/M/1
// station whose service capacity is the power it is *allowed and able* to
// serve: response time inflates as 1/(1 - rho) with rho = offered/served
// capacity, saturating at a cap once the station is overloaded.  An SLA is a
// bound on that inflation factor; the tracker aggregates how much demand met
// it.
#pragma once

#include <cstddef>

namespace willow::workload {

/// M/M/1 response-time inflation R/s = 1/(1 - rho), clamped to
/// [1, max_inflation].  rho >= 1 (overload) returns max_inflation.
/// @param utilization offered load over service capacity, >= 0.
[[nodiscard]] double response_inflation(double utilization,
                                        double max_inflation = 100.0);

/// The utilization at which inflation reaches a given SLA factor:
/// rho* = 1 - 1/sla.  Running hotter than this violates the SLA.
[[nodiscard]] double sla_utilization_limit(double sla_inflation);

/// Aggregates SLA outcomes over servers and periods, demand-weighted.
class SlaTracker {
 public:
  /// @param sla_inflation response-time inflation bound (> 1).
  explicit SlaTracker(double sla_inflation);

  [[nodiscard]] double sla_inflation() const { return sla_; }

  /// Record one server-period: `offered_w` of demand served at `utilization`
  /// (offered / capacity).  Dropped demand should be reported separately via
  /// record_denied (it trivially violates any SLA).
  void record(double offered_w, double utilization);

  /// Demand that received no service at all this period.
  void record_denied(double offered_w);

  /// Demand-weighted fraction of offered work that met the SLA; 1 if nothing
  /// was offered.
  [[nodiscard]] double satisfaction() const;

  /// Demand-weighted mean inflation over served work; 1 if nothing served.
  [[nodiscard]] double mean_inflation() const;

  [[nodiscard]] std::size_t samples() const { return samples_; }

  void reset();

 private:
  double sla_;
  double offered_total_ = 0.0;
  double met_total_ = 0.0;
  double inflation_weighted_ = 0.0;
  double served_total_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace willow::workload
