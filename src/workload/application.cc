#include "workload/application.h"

#include <stdexcept>

namespace willow::workload {

const std::vector<AppClass>& simulation_catalog() {
  static const std::vector<AppClass> kCatalog = {
      {"tiny", 1.0}, {"small", 2.0}, {"medium", 5.0}, {"large", 9.0}};
  return kCatalog;
}

const std::vector<AppClass>& testbed_catalog() {
  static const std::vector<AppClass> kCatalog = {
      {"A1", 8.0}, {"A2", 10.0}, {"A3", 15.0}};
  return kCatalog;
}

Application::Application(AppId id, std::size_t class_index, Watts mean_power,
                         Megabytes image_size)
    : id_(id),
      class_index_(class_index),
      mean_power_(mean_power),
      image_size_(image_size) {
  if (id == kInvalidApp) {
    throw std::invalid_argument("Application: id must be nonzero");
  }
  if (mean_power.value() < 0.0) {
    throw std::invalid_argument("Application: mean_power must be >= 0");
  }
  demand_ = mean_power;
}

void Application::set_service_level(double level) {
  if (level < 0.0 || level > 1.0) {
    throw std::invalid_argument(
        "Application::set_service_level: level must be in [0,1]");
  }
  service_level_ = level;
}

}  // namespace willow::workload
