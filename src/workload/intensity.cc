#include "workload/intensity.h"

#include <cmath>
#include <stdexcept>

namespace willow::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

ConstantIntensity::ConstantIntensity(double factor) : factor_(factor) {
  if (factor < 0.0) {
    throw std::invalid_argument("ConstantIntensity: negative factor");
  }
}

DiurnalIntensity::DiurnalIntensity(double base, double amplitude,
                                   util::Seconds period, util::Seconds phase)
    : base_(base), amplitude_(amplitude), period_(period), phase_(phase) {
  if (base < 0.0 || amplitude < 0.0) {
    throw std::invalid_argument("DiurnalIntensity: negative parameter");
  }
  if (!(period.value() > 0.0)) {
    throw std::invalid_argument("DiurnalIntensity: period must be > 0");
  }
}

double DiurnalIntensity::at(util::Seconds t) const {
  const double v =
      base_ + amplitude_ * std::sin(kTwoPi * (t.value() - phase_.value()) /
                                    period_.value());
  return v > 0.0 ? v : 0.0;
}

TraceIntensity::TraceIntensity(std::vector<double> factors, util::Seconds step)
    : factors_(std::move(factors)), step_(step) {
  if (factors_.empty()) {
    throw std::invalid_argument("TraceIntensity: empty trace");
  }
  if (!(step.value() > 0.0)) {
    throw std::invalid_argument("TraceIntensity: step must be > 0");
  }
  for (double f : factors_) {
    if (f < 0.0) throw std::invalid_argument("TraceIntensity: negative factor");
  }
}

double TraceIntensity::at(util::Seconds t) const {
  if (t.value() < 0.0) return factors_.front();
  auto i = static_cast<std::size_t>(t.value() / step_.value());
  if (i >= factors_.size()) i = factors_.size() - 1;
  return factors_[i];
}

}  // namespace willow::workload
