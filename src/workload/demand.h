// Demand processes — Section V-B1: "The power demand in each node was
// assumed to have a Poisson distribution."
//
// PoissonDemand turns an application's mean power m into a random draw
// q * Poisson(m / q), where q is the power quantum per "query" (the paper's
// workloads are transactional; each in-flight query adds roughly fixed
// power).  The draw has mean m and variance q*m, so smaller quanta give
// steadier demand — the knob the stability tests sweep against P_min.
#pragma once

#include <stdexcept>

#include "util/rng.h"
#include "util/units.h"
#include "workload/application.h"

namespace willow::workload {

class PoissonDemand {
 public:
  /// @param quantum power per query; must be > 0.
  explicit PoissonDemand(Watts quantum);

  [[nodiscard]] Watts quantum() const { return quantum_; }

  /// One draw for an application with the given mean power.  Generic over
  /// the generator so the tick engine's per-server counter-based streams
  /// (util::StreamRng) drive the same sampling code as the sequential
  /// scenario generator (util::Rng).
  template <typename RngT>
  [[nodiscard]] Watts sample(Watts mean, RngT& rng) const {
    if (mean.value() <= 0.0) return Watts{0.0};
    const double lambda = mean.value() / quantum_.value();
    return Watts{quantum_.value() * static_cast<double>(rng.poisson(lambda))};
  }

  /// Refresh `app`'s instantaneous demand (no-op for dropped apps: a shut
  /// down application draws nothing).  `intensity` scales the mean (see
  /// workload::IntensityProfile).
  template <typename RngT>
  void refresh(Application& app, RngT& rng, double intensity = 1.0) const {
    if (intensity < 0.0) {
      throw std::invalid_argument("PoissonDemand::refresh: negative intensity");
    }
    app.set_demand(app.dropped()
                       ? Watts{0.0}
                       : sample(app.effective_mean_power() * intensity, rng));
  }

  /// Refresh a whole collection.
  template <typename RngT>
  void refresh_all(std::vector<Application>& apps, RngT& rng,
                   double intensity = 1.0) const {
    for (auto& a : apps) refresh(a, rng, intensity);
  }

 private:
  Watts quantum_;
};

/// Deterministic demand (always the mean); useful in unit tests and in the
/// convergence/stability analyses where randomness is controlled separately.
class ConstantDemand {
 public:
  /// `intensity` scales the mean exactly as PoissonDemand::refresh does, so
  /// the deterministic path follows the same demand-side intensity profile.
  static void refresh(Application& app, double intensity = 1.0) {
    if (intensity < 0.0) {
      throw std::invalid_argument(
          "ConstantDemand::refresh: negative intensity");
    }
    app.set_demand(app.dropped() ? Watts{0.0}
                                 : app.effective_mean_power() * intensity);
  }
  static void refresh_all(std::vector<Application>& apps,
                          double intensity = 1.0) {
    for (auto& a : apps) refresh(a, intensity);
  }
};

}  // namespace willow::workload
