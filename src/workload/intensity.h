// Workload-intensity profiles — the demand-side variation of Section I:
// "The demand side variations (which themselves drive variability in
// partitioning) result from variations in workload intensity and
// characteristics."
//
// An IntensityProfile is a dimensionless multiplier on every application's
// mean demand as a function of time: 1.0 = nominal load, 0.3 = a quiet
// night, 1.4 = a flash crowd.  The simulator samples it once per demand
// period and feeds the factor to the Poisson demand generator.
#pragma once

#include <memory>
#include <vector>

#include "util/units.h"

namespace willow::workload {

class IntensityProfile {
 public:
  virtual ~IntensityProfile() = default;
  /// Demand multiplier at absolute time t; must be >= 0 and pure.
  [[nodiscard]] virtual double at(util::Seconds t) const = 0;
};

/// Fixed multiplier (default 1.0 = the paper's stationary assumption).
class ConstantIntensity final : public IntensityProfile {
 public:
  explicit ConstantIntensity(double factor = 1.0);
  [[nodiscard]] double at(util::Seconds) const override { return factor_; }

 private:
  double factor_;
};

/// base + amplitude * sin(2*pi*(t - phase)/period), clamped at >= 0 — the
/// classic diurnal request-rate curve.
class DiurnalIntensity final : public IntensityProfile {
 public:
  DiurnalIntensity(double base, double amplitude, util::Seconds period,
                   util::Seconds phase = util::Seconds{0.0});
  [[nodiscard]] double at(util::Seconds t) const override;

 private:
  double base_;
  double amplitude_;
  util::Seconds period_;
  util::Seconds phase_;
};

/// Piecewise-constant recorded intensity: value i applies on
/// [i*step, (i+1)*step); the last value persists.
class TraceIntensity final : public IntensityProfile {
 public:
  TraceIntensity(std::vector<double> factors, util::Seconds step);
  [[nodiscard]] double at(util::Seconds t) const override;

 private:
  std::vector<double> factors_;
  util::Seconds step_;
};

}  // namespace willow::workload
