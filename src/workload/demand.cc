#include "workload/demand.h"

#include <stdexcept>

namespace willow::workload {

PoissonDemand::PoissonDemand(Watts quantum) : quantum_(quantum) {
  if (!(quantum.value() > 0.0)) {
    throw std::invalid_argument("PoissonDemand: quantum must be > 0");
  }
}

Watts PoissonDemand::sample(Watts mean, util::Rng& rng) const {
  if (mean.value() <= 0.0) return Watts{0.0};
  const double lambda = mean.value() / quantum_.value();
  return Watts{quantum_.value() * static_cast<double>(rng.poisson(lambda))};
}

void PoissonDemand::refresh(Application& app, util::Rng& rng,
                            double intensity) const {
  if (intensity < 0.0) {
    throw std::invalid_argument("PoissonDemand::refresh: negative intensity");
  }
  app.set_demand(app.dropped()
                     ? Watts{0.0}
                     : sample(app.effective_mean_power() * intensity, rng));
}

void PoissonDemand::refresh_all(std::vector<Application>& apps, util::Rng& rng,
                                double intensity) const {
  for (auto& a : apps) refresh(a, rng, intensity);
}

}  // namespace willow::workload
