#include "workload/demand.h"

#include <stdexcept>

namespace willow::workload {

PoissonDemand::PoissonDemand(Watts quantum) : quantum_(quantum) {
  if (!(quantum.value() > 0.0)) {
    throw std::invalid_argument("PoissonDemand: quantum must be > 0");
  }
}

}  // namespace willow::workload
