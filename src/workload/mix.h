// Placement mixes — Section V-B1: "On each server we placed a random mix of
// 4 different application types ... The average power demand in a server is
// the sum of all the average power requirements of the applications that are
// hosted in it."
#pragma once

#include <vector>

#include "util/rng.h"
#include "workload/application.h"

namespace willow::workload {

/// Configuration for building a random per-server mix.
struct MixConfig {
  /// Catalog to draw classes from (defaults to simulation_catalog()).
  const std::vector<AppClass>* catalog = nullptr;
  /// Watts represented by one relative power unit of the catalog.
  Watts unit_power{10.0};
  /// Target mean aggregate demand per server; apps are appended (random
  /// class each time) until the next app would overshoot the target by more
  /// than half its own mean.
  Watts target_mean_per_server{100.0};
  /// VM image size per relative power unit (bigger apps migrate slower).
  Megabytes image_per_unit{512.0};
  /// Number of distinct shedding priorities to assign uniformly at random
  /// (1 = every app equally important).
  int priority_levels = 1;
  /// Relative selection weight per catalog class; empty = uniform.  Must
  /// match the catalog size when non-empty.
  std::vector<double> class_weights{};
};

/// Build one server's worth of applications.
std::vector<Application> build_mix(const MixConfig& cfg, AppIdAllocator& ids,
                                   util::Rng& rng);

/// Build mixes for `servers` servers.
std::vector<std::vector<Application>> build_datacenter_mix(
    const MixConfig& cfg, std::size_t servers, AppIdAllocator& ids,
    util::Rng& rng);

/// Sum of mean power over a collection.
Watts total_mean_power(const std::vector<Application>& apps);

/// Sum of instantaneous demand over a collection (dropped apps contribute 0).
Watts total_demand(const std::vector<Application>& apps);

}  // namespace willow::workload
