file(REMOVE_RECURSE
  "CMakeFiles/willow_workload.dir/application.cc.o"
  "CMakeFiles/willow_workload.dir/application.cc.o.d"
  "CMakeFiles/willow_workload.dir/demand.cc.o"
  "CMakeFiles/willow_workload.dir/demand.cc.o.d"
  "CMakeFiles/willow_workload.dir/flows.cc.o"
  "CMakeFiles/willow_workload.dir/flows.cc.o.d"
  "CMakeFiles/willow_workload.dir/intensity.cc.o"
  "CMakeFiles/willow_workload.dir/intensity.cc.o.d"
  "CMakeFiles/willow_workload.dir/mix.cc.o"
  "CMakeFiles/willow_workload.dir/mix.cc.o.d"
  "CMakeFiles/willow_workload.dir/qos.cc.o"
  "CMakeFiles/willow_workload.dir/qos.cc.o.d"
  "libwillow_workload.a"
  "libwillow_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
