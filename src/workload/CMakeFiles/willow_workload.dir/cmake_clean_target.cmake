file(REMOVE_RECURSE
  "libwillow_workload.a"
)
