
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/application.cc" "src/workload/CMakeFiles/willow_workload.dir/application.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/application.cc.o.d"
  "/root/repo/src/workload/demand.cc" "src/workload/CMakeFiles/willow_workload.dir/demand.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/demand.cc.o.d"
  "/root/repo/src/workload/flows.cc" "src/workload/CMakeFiles/willow_workload.dir/flows.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/flows.cc.o.d"
  "/root/repo/src/workload/intensity.cc" "src/workload/CMakeFiles/willow_workload.dir/intensity.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/intensity.cc.o.d"
  "/root/repo/src/workload/mix.cc" "src/workload/CMakeFiles/willow_workload.dir/mix.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/mix.cc.o.d"
  "/root/repo/src/workload/qos.cc" "src/workload/CMakeFiles/willow_workload.dir/qos.cc.o" "gcc" "src/workload/CMakeFiles/willow_workload.dir/qos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/willow_power.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
