# Empty dependencies file for willow_workload.
# This may be replaced when dependencies are built.
