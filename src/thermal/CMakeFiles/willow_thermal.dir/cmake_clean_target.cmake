file(REMOVE_RECURSE
  "libwillow_thermal.a"
)
