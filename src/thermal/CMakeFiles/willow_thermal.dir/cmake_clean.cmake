file(REMOVE_RECURSE
  "CMakeFiles/willow_thermal.dir/calibration.cc.o"
  "CMakeFiles/willow_thermal.dir/calibration.cc.o.d"
  "CMakeFiles/willow_thermal.dir/thermal_model.cc.o"
  "CMakeFiles/willow_thermal.dir/thermal_model.cc.o.d"
  "libwillow_thermal.a"
  "libwillow_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
