# Empty dependencies file for willow_thermal.
# This may be replaced when dependencies are built.
