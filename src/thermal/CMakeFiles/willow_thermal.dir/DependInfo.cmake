
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/calibration.cc" "src/thermal/CMakeFiles/willow_thermal.dir/calibration.cc.o" "gcc" "src/thermal/CMakeFiles/willow_thermal.dir/calibration.cc.o.d"
  "/root/repo/src/thermal/thermal_model.cc" "src/thermal/CMakeFiles/willow_thermal.dir/thermal_model.cc.o" "gcc" "src/thermal/CMakeFiles/willow_thermal.dir/thermal_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
