#include "thermal/thermal_model.h"

#include <cmath>
#include <stdexcept>

namespace willow::thermal {

void ThermalParams::validate() const {
  if (!(c1 > 0.0)) throw std::invalid_argument("ThermalParams: c1 must be > 0");
  if (!(c2 > 0.0)) throw std::invalid_argument("ThermalParams: c2 must be > 0");
  if (!(nameplate.value() >= 0.0)) {
    throw std::invalid_argument("ThermalParams: nameplate must be >= 0");
  }
}

ThermalModel::ThermalModel(ThermalParams params)
    : ThermalModel(params, params.ambient) {}

ThermalModel::ThermalModel(ThermalParams params, Celsius initial)
    : params_(params), temperature_(initial) {
  params_.validate();
}

void ThermalModel::step(Watts p, Seconds dt) {
  const Celsius next = predict(p, dt);
  if (next.value() != temperature_.value()) ++state_version_;
  temperature_ = next;
}

double ThermalModel::decay_for(double dt) const {
  if (dt != cached_decay_dt_) {
    cached_decay_ = std::exp(-params_.c2 * dt);
    cached_decay_dt_ = dt;
  }
  return cached_decay_;
}

Celsius ThermalModel::predict(Watts p, Seconds dt) const {
  if (dt.value() < 0.0) throw std::invalid_argument("ThermalModel: dt < 0");
  const double decay = decay_for(dt.value());
  const double heated = p.value() * params_.c1 / params_.c2 * (1.0 - decay);
  return Celsius{params_.ambient.value() + heated +
                 (temperature_.value() - params_.ambient.value()) * decay};
}

Watts ThermalModel::power_limit(Seconds window) const {
  if (window.value() <= 0.0) {
    throw std::invalid_argument("ThermalModel::power_limit: window must be > 0");
  }
  const double decay = decay_for(window.value());
  const double headroom = params_.limit.value() - params_.ambient.value() -
                          (temperature_.value() - params_.ambient.value()) *
                              decay;
  double p = headroom * params_.c2 / (params_.c1 * (1.0 - decay));
  if (p < 0.0) p = 0.0;
  if (p > params_.nameplate.value()) p = params_.nameplate.value();
  return Watts{p};
}

Celsius ThermalModel::steady_state(Watts p) const {
  return Celsius{params_.ambient.value() +
                 p.value() * params_.c1 / params_.c2};
}

Watts ThermalModel::steady_state_power_limit() const {
  return Watts{(params_.limit.value() - params_.ambient.value()) * params_.c2 /
               params_.c1};
}

Watts power_limit_from(const ThermalParams& params, Celsius t0,
                       Seconds window) {
  if (window.value() <= 0.0) {
    throw std::invalid_argument("power_limit_from: window must be > 0");
  }
  const double decay = std::exp(-params.c2 * window.value());
  const double headroom = params.limit.value() - params.ambient.value() -
                          (t0.value() - params.ambient.value()) * decay;
  double p = headroom * params.c2 / (params.c1 * (1.0 - decay));
  if (p < 0.0) p = 0.0;
  if (p > params.nameplate.value()) p = params.nameplate.value();
  return Watts{p};
}

}  // namespace willow::thermal
