#include "thermal/calibration.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace willow::thermal {

FitResult fit_thermal_constants(const std::vector<TraceSample>& trace,
                                Celsius ambient) {
  if (trace.size() < 3) {
    throw std::invalid_argument("fit_thermal_constants: need >= 3 samples");
  }
  // Finite differences: y_k = (T_{k+1} - T_k) / dt = c1 * P_k - c2 * (T_k - Ta)
  // Least squares over unknowns (c1, c2) with regressors x1 = P_k,
  // x2 = -(T_k - Ta).  Normal equations (2x2):
  double s11 = 0, s12 = 0, s22 = 0, b1 = 0, b2 = 0;
  std::size_t n = 0;
  for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
    const double dt = trace[k + 1].dt.value();
    if (!(dt > 0.0)) {
      throw std::invalid_argument("fit_thermal_constants: dt must be > 0");
    }
    const double y =
        (trace[k + 1].temperature.value() - trace[k].temperature.value()) / dt;
    const double x1 = trace[k + 1].power.value();
    const double x2 = -(trace[k].temperature.value() - ambient.value());
    s11 += x1 * x1;
    s12 += x1 * x2;
    s22 += x2 * x2;
    b1 += x1 * y;
    b2 += x2 * y;
    ++n;
  }
  const double det = s11 * s22 - s12 * s12;
  if (std::abs(det) < 1e-12) {
    throw std::runtime_error(
        "fit_thermal_constants: trace does not excite both model terms "
        "(singular normal equations)");
  }
  FitResult r;
  r.c1 = (b1 * s22 - b2 * s12) / det;
  r.c2 = (s11 * b2 - s12 * b1) / det;
  r.samples = n;

  double ss = 0.0;
  for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
    const double dt = trace[k + 1].dt.value();
    const double y =
        (trace[k + 1].temperature.value() - trace[k].temperature.value()) / dt;
    const double pred =
        r.c1 * trace[k + 1].power.value() -
        r.c2 * (trace[k].temperature.value() - ambient.value());
    ss += (y - pred) * (y - pred);
  }
  r.rms_residual = std::sqrt(ss / static_cast<double>(n));
  return r;
}

std::vector<TraceSample> synthesize_trace(const ThermalParams& truth,
                                          const std::vector<Watts>& schedule,
                                          Seconds hold, Seconds dt,
                                          double noise_stddev,
                                          unsigned long long seed) {
  if (!(dt.value() > 0.0) || hold.value() < dt.value()) {
    throw std::invalid_argument("synthesize_trace: need 0 < dt <= hold");
  }
  util::Rng rng(seed);
  ThermalModel model(truth);
  std::vector<TraceSample> trace;
  trace.push_back({Watts{0.0}, Seconds{0.0},
                   Celsius{model.temperature().value() +
                           rng.gaussian(noise_stddev)}});
  const auto steps_per_level =
      static_cast<std::size_t>(hold.value() / dt.value());
  for (const Watts p : schedule) {
    for (std::size_t i = 0; i < steps_per_level; ++i) {
      model.step(p, dt);
      trace.push_back({p, dt,
                       Celsius{model.temperature().value() +
                               rng.gaussian(noise_stddev)}});
    }
  }
  return trace;
}

std::vector<LimitPoint> power_limit_curve(const ThermalParams& params,
                                          Celsius from, Celsius to,
                                          std::size_t steps, Seconds window) {
  if (steps < 2) {
    throw std::invalid_argument("power_limit_curve: need >= 2 steps");
  }
  std::vector<LimitPoint> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(steps - 1);
    const Celsius t0{from.value() + f * (to.value() - from.value())};
    out.push_back({t0, Celsius{params.ambient.value() - t0.value()},
                   power_limit_from(params, t0, window)});
  }
  return out;
}

std::size_t select_constants(const std::vector<ThermalParams>& candidates,
                             Seconds window) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_constants: no candidates");
  }
  std::size_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // Compare the *raw* thermal limit against the rating: clamping by the
    // nameplate itself would make every over-powered candidate tie at zero.
    ThermalParams raw = candidates[i];
    raw.nameplate = Watts{std::numeric_limits<double>::max()};
    const Watts limit = power_limit_from(raw, raw.ambient, window);
    const double err = std::abs(limit.value() - candidates[i].nameplate.value());
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

}  // namespace willow::thermal
