// First-order (RC) thermal model of a server/switch component — Section III-A
// of the paper.
//
// The paper's Eq. (1) is printed as dT = [c1 P + c2 (T - Ta)] dt, but its own
// closed-form solution (Eq. 2) decays as e^{-c2 t}; the relaxation term must
// therefore be negative.  We implement
//
//     dT/dt = c1 * P(t) - c2 * (T(t) - Ta)
//
// which reproduces Eq. (2) and Eq. (3) exactly:
//
//     T(t)     = Ta + (T0 - Ta) e^{-c2 t} + c1 e^{-c2 t} \int_0^t P(s) e^{c2 s} ds
//     T(Delta) = Ta + P c1/c2 (1 - e^{-c2 Delta}) + (T0 - Ta) e^{-c2 Delta}
//
// Units: c1 in degC / (W * time-unit), c2 in 1 / time-unit; "time-unit" is
// whatever the caller's Seconds represent (the paper's simulation uses
// abstract adjustment windows).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace willow::thermal {

using util::Celsius;
using util::Seconds;
using util::Watts;

/// Static thermal parameters of one component.
struct ThermalParams {
  double c1 = 0.08;               ///< heating coefficient (degC per W per unit time)
  double c2 = 0.05;               ///< cooling rate (per unit time)
  Celsius ambient{25.0};          ///< Ta: temperature of the medium outside
  Celsius limit{70.0};            ///< T_limit: hard thermal ceiling
  Watts nameplate{450.0};         ///< electrical rating; P_limit never exceeds it

  /// Validate invariants (c1, c2 > 0, limit > ambient achievable). Throws
  /// std::invalid_argument on violation.
  void validate() const;
};

/// Stateful thermal integrator for one component.
///
/// All evolution uses the exact solution for piecewise-constant power, so a
/// single step over [0, t] equals any subdivision of it (tested property).
class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params);
  ThermalModel(ThermalParams params, Celsius initial);

  [[nodiscard]] const ThermalParams& params() const { return params_; }
  [[nodiscard]] Celsius temperature() const { return temperature_; }

  /// Reset to a given temperature (e.g. after relocation or at scenario start).
  void set_temperature(Celsius t) {
    if (t.value() != temperature_.value()) ++state_version_;
    temperature_ = t;
  }

  /// Change the ambient temperature (hot/cold zone scenarios, Sec. V-B3).
  void set_ambient(Celsius ta) {
    if (ta.value() != params_.ambient.value()) ++state_version_;
    params_.ambient = ta;
  }

  /// Monotone counter bumped whenever state feeding power_limit() /
  /// steady_state_power_limit() changes bitwise (temperature evolution,
  /// ambient or temperature overrides).  Callers cache derived limits keyed
  /// on this and refresh only when the thermal state actually moved; once the
  /// temperature reaches its fixed point under constant power, the version
  /// stops advancing.
  [[nodiscard]] std::uint64_t state_version() const { return state_version_; }

  /// Advance by dt under constant power draw p (exact, Eq. 2).
  void step(Watts p, Seconds dt);

  /// Predicted temperature after holding power p for dt, without mutating
  /// state (Eq. 3 used predictively for migration decisions).
  [[nodiscard]] Celsius predict(Watts p, Seconds dt) const;

  /// Maximum constant power that keeps T(t + window) <= T_limit, clamped to
  /// [0, nameplate] (Eq. 3 inverted).  This is the thermal *hard constraint*
  /// on the node's power budget (Sec. IV-D).
  [[nodiscard]] Watts power_limit(Seconds window) const;

  /// Steady-state temperature under constant power p.
  [[nodiscard]] Celsius steady_state(Watts p) const;

  /// Power that yields steady-state temperature exactly T_limit
  /// (= c2 (T_limit - Ta) / c1), unclamped by nameplate.
  [[nodiscard]] Watts steady_state_power_limit() const;

  /// True when the component is currently at or above its thermal ceiling.
  [[nodiscard]] bool over_limit() const {
    return temperature_ >= params_.limit;
  }

 private:
  /// exp(-c2 * dt), memoized on dt.  Every tick-loop caller (step,
  /// power_limit, predict) evaluates the same window each period, and c2 is
  /// immutable after construction (set_ambient changes only Ta), so the
  /// transcendental is paid once per distinct dt instead of per server per
  /// tick.  Identical bits to the uncached value by construction.
  [[nodiscard]] double decay_for(double dt) const;

  ThermalParams params_;
  Celsius temperature_;
  std::uint64_t state_version_ = 0;
  mutable double cached_decay_dt_ = -1.0;  ///< invalid: dt must be >= 0
  mutable double cached_decay_ = 1.0;
};

/// Stateless form of power_limit (used by Fig. 4 / Fig. 14 sweeps): the
/// maximum constant power over `window` starting from temperature t0.
[[nodiscard]] Watts power_limit_from(const ThermalParams& params, Celsius t0,
                                     Seconds window);

}  // namespace willow::thermal
