// Estimation of the thermal constants c1 and c2 from measurements —
// Section V-B2 ("Setting Up the Thermal Constants", Fig. 4) and
// Section V-C2 ("Baseline Experiments", Fig. 14).
//
// The testbed procedure in the paper runs a known power schedule, logs the
// on-board temperature sensor (2 Hz power analyzer + sensor), and fits the
// first-order model.  We reproduce both directions:
//
//  * fit_thermal_constants(): least-squares (c1, c2) from a (P, T) trace.
//  * power_limit_curve():     P_limit as a function of current temperature
//    for candidate constants, i.e. the families of curves in Fig. 4 / the
//    fitted line of Fig. 14.
//  * select_constants():      the paper's Fig.-4 selection rule — pick the
//    candidate whose cold-start power limit matches the nameplate rating.
#pragma once

#include <vector>

#include "thermal/thermal_model.h"

namespace willow::thermal {

/// One sample of a calibration trace: power held at `power` for `dt`, after
/// which the sensor read `temperature`.
struct TraceSample {
  Watts power;
  Seconds dt;
  Celsius temperature;
};

/// Result of a least-squares fit of the thermal ODE to a trace.
struct FitResult {
  double c1 = 0.0;
  double c2 = 0.0;
  /// Root-mean-square residual of dT/dt predictions (degC per time unit).
  double rms_residual = 0.0;
  /// Number of finite-difference equations used.
  std::size_t samples = 0;
};

/// Fit (c1, c2) to a trace by ordinary least squares on the finite-difference
/// form  dT/dt = c1 P - c2 (T - Ta).  Requires >= 3 samples and a trace that
/// actually excites both terms (varying P or varying T - Ta), otherwise the
/// normal equations are singular and std::runtime_error is thrown.
FitResult fit_thermal_constants(const std::vector<TraceSample>& trace,
                                Celsius ambient);

/// Synthesize a calibration trace from ground-truth params: hold each power
/// level in `schedule` for `hold` (sampled every `dt`), with optional Gaussian
/// sensor noise.  Used to emulate the paper's testbed measurement run.
std::vector<TraceSample> synthesize_trace(const ThermalParams& truth,
                                          const std::vector<Watts>& schedule,
                                          Seconds hold, Seconds dt,
                                          double noise_stddev,
                                          unsigned long long seed);

/// One point of a Fig.-4 / Fig.-14 style curve.
struct LimitPoint {
  Celsius temperature;      ///< current component temperature T0
  Celsius delta_ambient;    ///< Ta - T0 (the paper's Fig.-14 x-axis)
  Watts power_limit;        ///< max accommodated power over `window`
};

/// Sweep current temperature from `from` to `to` in `steps` points and
/// compute the window-constrained power limit at each (Eq. 3 inverted).
std::vector<LimitPoint> power_limit_curve(const ThermalParams& params,
                                          Celsius from, Celsius to,
                                          std::size_t steps, Seconds window);

/// The paper's selection rule for simulation constants (Sec. V-B2): among
/// `candidates`, pick the pair whose power limit at cold start (T0 = Ta,
/// i.e. a component idle long enough to reach ambient) is closest to the
/// nameplate rating.  Returns the index into `candidates`.
std::size_t select_constants(const std::vector<ThermalParams>& candidates,
                             Seconds window);

}  // namespace willow::thermal
