// The multi-level power-control hierarchy — Section IV-A (Fig. 1) and the
// control-message pattern of Fig. 2.
//
// A Tree holds PMU (power-management-unit) nodes: the datacenter PMU at the
// top, rack PMUs below it, server/switch PMUs at the bottom.  Each node
// carries the per-node control state the paper names:
//
//   TP_{l,i}  power budget assigned by the parent          (budget())
//   CP_{l,i}  exponentially smoothed power demand, Eq. (4) (smoothed_demand())
//   hard limit: min(thermal P_limit, circuit rating)       (hard_limit())
//
// Control messaging is event-driven, matching the paper's Property 3
// argument that the hierarchy localizes change: a node sends a demand report
// up only when its smoothed demand moved (beyond an optional dead-band)
// since its last report, and the budget distributor sends a directive down
// only when a budget actually changed.  The tree counts messages per link so
// Property 3 ("at most 2 messages per link per Delta_D") is checkable, and
// models per-level update latency for the delta-convergence analysis of
// Section V-A1.
//
// The report sweep has two walk policies with identical outputs:
//   full        every node re-aggregates every sweep (EWMA updates included);
//   incremental only nodes whose inputs could have changed are walked — a
//               leaf observation, a child report, or an activity flip marks
//               the node pending; everything else is provably at its EWMA
//               fixed point and is skipped.
// Because a skipped update is bitwise a no-op, both policies produce the
// same smoothed values, the same reports, and the same event stream; the
// shadow-diff mode re-derives each skipped node's inputs and throws on any
// divergence.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fault/link_faults.h"
#include "obs/bus.h"
#include "util/ewma.h"
#include "util/units.h"

namespace willow::hier {

using util::Watts;

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

enum class NodeKind {
  kDatacenter,
  kRack,
  kServer,
  kSwitch,
  kGeneric,
};

/// Per-link control-message counters (link = node <-> its parent).
struct LinkCounters {
  std::uint64_t up = 0;    ///< demand reports child -> parent
  std::uint64_t down = 0;  ///< budget directives parent -> child
};

class Node {
 public:
  Node(NodeId id, NodeId parent, int depth, std::string name, NodeKind kind,
       double smoothing_alpha);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NodeId parent() const { return parent_; }
  [[nodiscard]] const std::vector<NodeId>& children() const { return children_; }
  [[nodiscard]] bool is_leaf() const { return children_.empty(); }
  [[nodiscard]] bool is_root() const { return parent_ == kNoNode; }
  /// Distance from the root (root = 0).  The paper's "level" counts from the
  /// bottom; see Tree::level_of().
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeKind kind() const { return kind_; }

  /// TP_{l,i}: the budget currently assigned by the parent.
  [[nodiscard]] Watts budget() const { return budget_; }
  /// TP^old: the budget this node held before its most recent change.
  [[nodiscard]] Watts previous_budget() const { return previous_budget_; }
  void set_budget(Watts b) {
    previous_budget_ = budget_;
    budget_ = b;
  }

  /// CP_{l,i}: smoothed demand (Eq. 4).  For internal nodes this is the
  /// aggregated, smoothed sum of children's reports.
  [[nodiscard]] Watts smoothed_demand() const { return smoothed_.value(); }
  /// Latest raw (unsmoothed) demand report.
  [[nodiscard]] Watts raw_demand() const { return raw_demand_; }
  /// The demand this node last sent to its parent (what the parent's
  /// aggregation sums).  Equals smoothed_demand() bitwise whenever the
  /// report dead-band is 0.
  [[nodiscard]] Watts reported_demand() const { return reported_; }
  /// Feed a new raw demand observation; updates the EWMA and marks the node
  /// for the next report sweep.
  void observe_demand(Watts d) {
    raw_demand_ = d;
    const double before = smoothed_.value().value();
    const bool was_seeded = smoothed_.seeded();
    smoothed_.update(d);
    settled_ = was_seeded && smoothed_.value().value() == before;
    pending_ = true;
  }
  /// True once an update with the current raw demand left the EWMA bitwise
  /// unchanged — its fixed point for that input (Eq. 4 converges to a
  /// period-1 fixed point under constant input).  Re-feeding the same raw
  /// demand is then a provable no-op.
  [[nodiscard]] bool ewma_settled() const { return settled_; }
  /// Clear smoothing history (scenario reset).
  void reset_demand() {
    raw_demand_ = Watts{0.0};
    smoothed_.reset();
    reported_ = Watts{0.0};
    reported_once_ = false;
    settled_ = false;
    pending_ = true;
  }

  /// Hard constraint on this node's budget: min(thermal limit over the next
  /// window, power-circuit rating).  Sec. IV-D "Hard Constraints".
  [[nodiscard]] Watts hard_limit() const { return hard_limit_; }
  void set_hard_limit(Watts h) { hard_limit_ = h; }

  /// Deactivated nodes (deep sleep S3/S4 after consolidation) hold no budget
  /// and report zero demand.
  [[nodiscard]] bool active() const { return active_; }
  void set_active(bool a) { active_ = a; }

  /// Control-message counters on the link to the parent.
  [[nodiscard]] const LinkCounters& link() const { return link_; }
  void count_up() { ++link_.up; }
  void count_down() { ++link_.down; }
  void reset_link() { link_ = {}; }

 private:
  friend class Tree;

  NodeId id_;
  NodeId parent_;
  std::vector<NodeId> children_;
  int depth_;
  std::string name_;
  NodeKind kind_;

  Watts budget_{0.0};
  Watts previous_budget_{0.0};
  Watts raw_demand_{0.0};
  util::Ewma<Watts> smoothed_;
  Watts reported_{0.0};
  Watts hard_limit_{std::numeric_limits<double>::infinity()};
  bool active_ = true;
  bool reported_once_ = false;  ///< first sweep always reports
  bool settled_ = false;        ///< see ewma_settled()
  bool pending_ = true;         ///< needs processing in the next sweep
  LinkCounters link_;
};

class Tree {
 public:
  /// @param smoothing_alpha Eq. (4) alpha applied at every node.
  explicit Tree(double smoothing_alpha = 0.7);

  /// Create the root; must be called exactly once, first.
  NodeId add_root(std::string name, NodeKind kind = NodeKind::kDatacenter);
  /// Create a child of `parent`.
  NodeId add_child(NodeId parent, std::string name,
                   NodeKind kind = NodeKind::kGeneric);

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }

  /// All node ids in creation order.
  [[nodiscard]] std::vector<NodeId> all_nodes() const;
  /// Leaves in creation order.
  [[nodiscard]] std::vector<NodeId> leaves() const;
  /// Leaves of a given kind.
  [[nodiscard]] std::vector<NodeId> leaves_of_kind(NodeKind kind) const;

  /// Height: number of levels (a root-only tree has height 1).
  [[nodiscard]] int height() const;

  /// The paper's level numbering: leaves' level is 0 in a uniform-depth tree;
  /// in general level = height - 1 - depth.
  [[nodiscard]] int level_of(NodeId id) const;

  /// Nodes at a given paper-level.
  [[nodiscard]] std::vector<NodeId> nodes_at_level(int level) const;

  /// Maximum branching factor at a given paper-level (over parents whose
  /// children sit at `level`); used by the complexity analysis (Sec. V-A2).
  [[nodiscard]] std::size_t max_branching_at_level(int level) const;

  /// Ids in bottom-up order (children before parents).
  [[nodiscard]] std::vector<NodeId> bottom_up() const;
  /// Ids in top-down order (parents before children).
  [[nodiscard]] std::vector<NodeId> top_down() const;

  /// Siblings of `id` (children of its parent, excluding `id`).
  [[nodiscard]] std::vector<NodeId> siblings(NodeId id) const;

  /// True if `ancestor` lies on the root path of `id` (or equals it).
  [[nodiscard]] bool is_ancestor(NodeId ancestor, NodeId id) const;

  /// Report-sweep walk policy: when true, only pending/unsettled nodes are
  /// re-aggregated (outputs are bitwise identical either way; see the file
  /// comment).  Off by default so a bare Tree behaves like the full walk.
  void set_incremental(bool on) { incremental_ = on; }
  [[nodiscard]] bool incremental() const { return incremental_; }
  /// Dead-band on demand reports (W): a node re-reports only when its
  /// smoothed demand moved more than this since its last report.  0 = exact
  /// (a report on every bitwise change).
  void set_report_deadband(Watts w) { deadband_ = w; }
  [[nodiscard]] Watts report_deadband() const { return deadband_; }
  /// Debug shadow mode: every node the incremental sweep skips is re-derived
  /// from its inputs; any divergence from the full walk throws
  /// std::logic_error.
  void set_shadow_diff(bool on) { shadow_diff_ = on; }

  /// Leaf observation with the incremental fast path: the EWMA update is
  /// skipped when the observation is bitwise identical to the previous raw
  /// demand and the EWMA already reached its fixed point for it (the update
  /// would be a no-op).  Full mode always feeds the EWMA.
  void observe_leaf(NodeId id, Watts demand);

  /// Mark `id` (and its parent's aggregation) for the next report sweep —
  /// required when an input the sweep cannot see changes, i.e. an active
  /// flag flip: the parent's sum-over-active-children changes even though no
  /// child re-reported.
  void mark_report_dirty(NodeId id);

  /// One demand-report sweep (Fig. 2, upward): every active leaf has already
  /// had its measurement observed; internal nodes then observe the sum of
  /// their children's *reported* demands, bottom-up.  A node sends a report
  /// (one `up` message + one kLinkMessage) only when its smoothed demand
  /// moved beyond the dead-band since its last report.
  void report_demands();

  /// Nodes whose report fired during the most recent report_demands() sweep,
  /// in sweep (bottom-up) order.  The controller consumes this to mark the
  /// budget-division and consolidation state dirty.
  [[nodiscard]] const std::vector<NodeId>& reported_last_sweep() const {
    return reported_last_sweep_;
  }

  /// Account one budget directive flowing parent -> `id` (called by the
  /// budget distributor after it changed `id`'s budget; the tree itself does
  /// not decide budgets).  Counts one `down` message and emits one
  /// kLinkMessage carrying the new budget.  No-op for the root.
  void record_budget_directive(NodeId id);

  /// Reset all message counters.
  void reset_link_counters();

  /// Attach an observability bus (not owned; may be null).  When attached
  /// and enabled, every control message crossing a link becomes one
  /// kLinkMessage event — the stream Property 3 ("at most 2 messages per
  /// link per ΔD") is asserted against.
  void set_event_bus(obs::EventBus* bus);
  [[nodiscard]] obs::EventBus* event_bus() const { return bus_; }

  /// Attach a link-fault model (not owned; may be null).  When set, every
  /// demand report consults it: lost/deferred reports leave the child
  /// pending (it re-sends next sweep) and emit kLinkDrop/kLinkDefer;
  /// duplicated reports cost a second link message.  Null (the default)
  /// keeps the sweep byte-identical to a fault-free build.
  void set_link_faults(const fault::LinkFaultModel* faults);
  [[nodiscard]] const fault::LinkFaultModel* link_faults() const {
    return link_faults_;
  }

 private:
  /// Shadow-diff verification of one node the incremental sweep skipped.
  void shadow_check_skipped(const Node& n) const;

  double alpha_;
  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
  int height_ = 0;  ///< maintained by add_root/add_child; see height()
  obs::EventBus* bus_ = nullptr;
  bool incremental_ = false;
  bool shadow_diff_ = false;
  Watts deadband_{0.0};
  std::vector<NodeId> reported_last_sweep_;
  /// Sweep instruments, resolved when the bus is attached (the registry
  /// outlives the tree's use of it; counters are stable references).
  obs::Counter* c_reaggregated_ = nullptr;
  obs::Counter* c_skipped_ = nullptr;
  obs::Counter* c_reports_ = nullptr;
  /// Fault instruments, resolved only when a link-fault model is installed
  /// so fault-free runs register no extra counters.
  void resolve_fault_counters();
  const fault::LinkFaultModel* link_faults_ = nullptr;
  obs::Counter* c_link_drops_up_ = nullptr;
  obs::Counter* c_link_defers_up_ = nullptr;
  obs::Counter* c_link_dups_up_ = nullptr;
};

}  // namespace willow::hier
