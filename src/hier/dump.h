// Human-readable rendering of a power-control hierarchy — the operator's
// view of Fig. 1 with live control state (budgets, demands, limits) beside
// each PMU node.
#pragma once

#include <iosfwd>
#include <string>

#include "hier/tree.h"

namespace willow::hier {

struct DumpOptions {
  /// Include TP/CP/hard-limit columns (otherwise structure only).
  bool include_state = true;
  /// Mark inactive (sleeping) nodes.
  bool mark_inactive = true;
  int precision = 1;
};

/// Render the tree as an indented ASCII outline:
///
///     datacenter  [TP 375.0 CP 400.0 cap 2250.0]
///     +- rack0  [TP 150.0 CP 180.0 cap 900.0]
///     |  +- s00  [TP 75.0 CP 110.0 cap 450.0]
///     ...
void dump_tree(const Tree& tree, std::ostream& os,
               const DumpOptions& options = DumpOptions{});

/// Convenience: dump to a string.
[[nodiscard]] std::string tree_to_string(
    const Tree& tree, const DumpOptions& options = DumpOptions{});

}  // namespace willow::hier
