// Delta-convergence analysis — Section V-A1.
//
// Definition 1 (after Torres-Rojas & Meneses): a system is delta-convergent
// if any update at time t is perceived by all sites by t + delta.  In Willow
// the update paths are one-way (demand reports leaf->root, budget directives
// root->leaf), so with at most `alpha` propagation time per level and h
// levels, delta <= h * alpha.  The paper recommends choosing the demand
// period Delta_D at least ~10x that bound (e.g. delta <= 50 ms for h <= 5
// and per-level updates of a few tens of ms, so Delta_D >= 500 ms).
#pragma once

#include <vector>

#include "hier/tree.h"
#include "util/units.h"

namespace willow::hier {

using util::Seconds;

struct ConvergenceReport {
  int levels = 0;                 ///< h
  Seconds per_level_latency{0};   ///< alpha
  Seconds delta{0};               ///< h * alpha
  Seconds recommended_period{0};  ///< safety_factor * delta
};

/// Conservative bound from the paper's argument: delta = h * alpha,
/// Delta_D >= safety_factor * delta (paper uses 10).
ConvergenceReport analyze_convergence(const Tree& tree,
                                      Seconds per_level_latency,
                                      double safety_factor = 10.0);

/// Simulated propagation: an update enters at `origin` at time 0 and crosses
/// one level per `per_level_latency` toward the root, then fans back down.
/// Returns, for every node, the time it first perceives the update.  The max
/// entry is the measured delta (<= the analytic 2 h alpha for up+down, or
/// h alpha one-way if origin is the root).
std::vector<Seconds> propagation_times(const Tree& tree, NodeId origin,
                                       Seconds per_level_latency);

/// True when the chosen demand period leaves the recommended margin over the
/// measured one-way delta.
bool period_is_safe(const ConvergenceReport& report, Seconds demand_period);

}  // namespace willow::hier
