#include "hier/tree.h"

#include <algorithm>
#include <stdexcept>

namespace willow::hier {

Node::Node(NodeId id, NodeId parent, int depth, std::string name, NodeKind kind,
           double smoothing_alpha)
    : id_(id),
      parent_(parent),
      depth_(depth),
      name_(std::move(name)),
      kind_(kind),
      smoothed_(smoothing_alpha),
      hard_limit_(Watts{std::numeric_limits<double>::infinity()}) {}

Tree::Tree(double smoothing_alpha) : alpha_(smoothing_alpha) {
  if (!(smoothing_alpha > 0.0) || smoothing_alpha > 1.0) {
    throw std::invalid_argument("Tree: smoothing alpha must be in (0,1]");
  }
}

NodeId Tree::add_root(std::string name, NodeKind kind) {
  if (root_ != kNoNode) throw std::logic_error("Tree: root already exists");
  root_ = 0;
  nodes_.emplace_back(root_, kNoNode, 0, std::move(name), kind, alpha_);
  return root_;
}

NodeId Tree::add_child(NodeId parent, std::string name, NodeKind kind) {
  if (parent >= nodes_.size()) throw std::out_of_range("Tree: bad parent id");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back(id, parent, nodes_[parent].depth() + 1, std::move(name),
                      kind, alpha_);
  nodes_[parent].children_.push_back(id);
  return id;
}

std::vector<NodeId> Tree::all_nodes() const {
  std::vector<NodeId> out(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) out[i] = i;
  return out;
}

std::vector<NodeId> Tree::leaves() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf()) out.push_back(n.id());
  }
  return out;
}

std::vector<NodeId> Tree::leaves_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf() && n.kind() == kind) out.push_back(n.id());
  }
  return out;
}

int Tree::height() const {
  int h = 0;
  for (const auto& n : nodes_) h = std::max(h, n.depth() + 1);
  return h;
}

int Tree::level_of(NodeId id) const {
  return height() - 1 - node(id).depth();
}

std::vector<NodeId> Tree::nodes_at_level(int level) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (level_of(n.id()) == level) out.push_back(n.id());
  }
  return out;
}

std::size_t Tree::max_branching_at_level(int level) const {
  std::size_t best = 0;
  for (const auto& n : nodes_) {
    if (!n.children().empty() && level_of(n.children().front()) == level) {
      best = std::max(best, n.children().size());
    }
  }
  return best;
}

std::vector<NodeId> Tree::bottom_up() const {
  // Creation order guarantees parents precede children, so the reverse of
  // creation order lists children before parents.
  std::vector<NodeId> out = all_nodes();
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Tree::top_down() const { return all_nodes(); }

std::vector<NodeId> Tree::siblings(NodeId id) const {
  const Node& n = node(id);
  std::vector<NodeId> out;
  if (n.parent() == kNoNode) return out;
  for (NodeId c : node(n.parent()).children()) {
    if (c != id) out.push_back(c);
  }
  return out;
}

bool Tree::is_ancestor(NodeId ancestor, NodeId id) const {
  for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent()) {
    if (cur == ancestor) return true;
  }
  return false;
}

void Tree::report_demands() {
  const bool observe = bus_ != nullptr && bus_->enabled();
  for (NodeId id : bottom_up()) {
    Node& n = nodes_[id];
    if (!n.is_leaf()) {
      Watts sum{0.0};
      for (NodeId c : n.children()) {
        const Node& child = nodes_[c];
        if (child.active()) sum += child.smoothed_demand();
      }
      n.observe_demand(n.active() ? sum : Watts{0.0});
    } else if (!n.active()) {
      n.observe_demand(Watts{0.0});
    }
    if (!n.is_root()) {
      n.count_up();
      if (observe) {
        obs::Event e;
        e.type = obs::EventType::kLinkMessage;
        e.node = id;
        e.node2 = n.parent();
        e.direction = obs::LinkDirection::kUp;
        e.value = n.smoothed_demand().value();
        e.aux = n.raw_demand().value();
        bus_->emit(std::move(e));
      }
    }
  }
}

void Tree::count_budget_directives() {
  const bool observe = bus_ != nullptr && bus_->enabled();
  for (auto& n : nodes_) {
    if (!n.is_root()) {
      n.count_down();
      if (observe) {
        obs::Event e;
        e.type = obs::EventType::kLinkMessage;
        e.node = n.id();
        e.node2 = n.parent();
        e.direction = obs::LinkDirection::kDown;
        e.value = n.budget().value();
        bus_->emit(std::move(e));
      }
    }
  }
}

void Tree::reset_link_counters() {
  for (auto& n : nodes_) n.reset_link();
}

}  // namespace willow::hier
