#include "hier/tree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace willow::hier {

Node::Node(NodeId id, NodeId parent, int depth, std::string name, NodeKind kind,
           double smoothing_alpha)
    : id_(id),
      parent_(parent),
      depth_(depth),
      name_(std::move(name)),
      kind_(kind),
      smoothed_(smoothing_alpha),
      hard_limit_(Watts{std::numeric_limits<double>::infinity()}) {}

Tree::Tree(double smoothing_alpha) : alpha_(smoothing_alpha) {
  if (!(smoothing_alpha > 0.0) || smoothing_alpha > 1.0) {
    throw std::invalid_argument("Tree: smoothing alpha must be in (0,1]");
  }
}

NodeId Tree::add_root(std::string name, NodeKind kind) {
  if (root_ != kNoNode) throw std::logic_error("Tree: root already exists");
  root_ = 0;
  nodes_.emplace_back(root_, kNoNode, 0, std::move(name), kind, alpha_);
  height_ = 1;
  return root_;
}

NodeId Tree::add_child(NodeId parent, std::string name, NodeKind kind) {
  if (parent >= nodes_.size()) throw std::out_of_range("Tree: bad parent id");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back(id, parent, nodes_[parent].depth() + 1, std::move(name),
                      kind, alpha_);
  nodes_[parent].children_.push_back(id);
  height_ = std::max(height_, nodes_.back().depth() + 1);
  return id;
}

std::vector<NodeId> Tree::all_nodes() const {
  std::vector<NodeId> out(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) out[i] = i;
  return out;
}

std::vector<NodeId> Tree::leaves() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf()) out.push_back(n.id());
  }
  return out;
}

std::vector<NodeId> Tree::leaves_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.is_leaf() && n.kind() == kind) out.push_back(n.id());
  }
  return out;
}

int Tree::height() const { return height_; }

int Tree::level_of(NodeId id) const {
  return height() - 1 - node(id).depth();
}

std::vector<NodeId> Tree::nodes_at_level(int level) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (level_of(n.id()) == level) out.push_back(n.id());
  }
  return out;
}

std::size_t Tree::max_branching_at_level(int level) const {
  std::size_t best = 0;
  for (const auto& n : nodes_) {
    if (!n.children().empty() && level_of(n.children().front()) == level) {
      best = std::max(best, n.children().size());
    }
  }
  return best;
}

std::vector<NodeId> Tree::bottom_up() const {
  // Creation order guarantees parents precede children, so the reverse of
  // creation order lists children before parents.
  std::vector<NodeId> out = all_nodes();
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Tree::top_down() const { return all_nodes(); }

std::vector<NodeId> Tree::siblings(NodeId id) const {
  const Node& n = node(id);
  std::vector<NodeId> out;
  if (n.parent() == kNoNode) return out;
  for (NodeId c : node(n.parent()).children()) {
    if (c != id) out.push_back(c);
  }
  return out;
}

bool Tree::is_ancestor(NodeId ancestor, NodeId id) const {
  for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent()) {
    if (cur == ancestor) return true;
  }
  return false;
}

void Tree::set_event_bus(obs::EventBus* bus) {
  bus_ = bus;
  if (bus_ != nullptr) {
    auto& m = bus_->metrics();
    c_reaggregated_ = &m.counter("control.nodes_reaggregated");
    c_skipped_ = &m.counter("control.nodes_skipped");
    c_reports_ = &m.counter("control.demand_reports");
  } else {
    c_reaggregated_ = nullptr;
    c_skipped_ = nullptr;
    c_reports_ = nullptr;
    c_link_drops_up_ = nullptr;
    c_link_defers_up_ = nullptr;
    c_link_dups_up_ = nullptr;
  }
  if (link_faults_ != nullptr) resolve_fault_counters();
}

void Tree::set_link_faults(const fault::LinkFaultModel* faults) {
  link_faults_ = faults;
  if (link_faults_ != nullptr) resolve_fault_counters();
}

void Tree::resolve_fault_counters() {
  // Resolved only when a fault model is actually installed: registering the
  // counters unconditionally would add zero-valued entries to the metrics
  // snapshot and change fault-free result JSON.
  if (bus_ == nullptr) return;
  auto& m = bus_->metrics();
  c_link_drops_up_ = &m.counter("fault.link_drops_up");
  c_link_defers_up_ = &m.counter("fault.link_defers_up");
  c_link_dups_up_ = &m.counter("fault.link_duplicates_up");
}

void Tree::observe_leaf(NodeId id, Watts demand) {
  Node& n = nodes_.at(id);
  // The update would reproduce the stored value bitwise: the EWMA is at its
  // fixed point for exactly this input.  (Demands are non-negative, so the
  // == cannot be hiding a +0/-0 sign difference.)
  if (incremental_ && n.settled_ &&
      demand.value() == n.raw_demand_.value()) {
    return;
  }
  n.observe_demand(demand);
}

void Tree::mark_report_dirty(NodeId id) {
  Node& n = nodes_.at(id);
  n.pending_ = true;
  if (n.parent_ != kNoNode) nodes_[n.parent_].pending_ = true;
}

void Tree::shadow_check_skipped(const Node& n) const {
  // A skipped node must be at its EWMA fixed point for inputs that have not
  // moved, and must owe its parent no report.
  bool ok = n.settled_;
  if (ok && !n.is_leaf()) {
    Watts sum{0.0};
    for (NodeId c : n.children_) {
      const Node& child = nodes_[c];
      if (child.active()) sum += child.reported_;
    }
    const Watts input = n.active() ? sum : Watts{0.0};
    ok = input.value() == n.raw_demand_.value();
  } else if (ok && !n.active()) {
    ok = n.raw_demand_.value() == 0.0;
  }
  if (ok && !n.is_root()) {
    const double moved =
        std::abs(n.smoothed_demand().value() - n.reported_.value());
    ok = n.reported_once_ &&
         (deadband_.value() > 0.0 ? moved <= deadband_.value() : moved == 0.0);
  }
  if (!ok) {
    throw std::logic_error(
        "Tree::report_demands shadow diff: incremental sweep skipped node " +
        std::to_string(n.id()) + " whose inputs changed");
  }
}

void Tree::report_demands() {
  const bool observe = bus_ != nullptr && bus_->enabled();
  reported_last_sweep_.clear();
  std::uint64_t processed = 0;
  std::uint64_t reports = 0;
  // Descending id == bottom-up (children before parents), the same order the
  // full walk uses, so skipping cannot reorder the event stream.
  for (NodeId id = static_cast<NodeId>(nodes_.size()); id-- > 0;) {
    Node& n = nodes_[id];
    if (incremental_ && !n.pending_ && n.settled_) {
      if (shadow_diff_) shadow_check_skipped(n);
      continue;
    }
    ++processed;
    if (!n.is_leaf()) {
      Watts sum{0.0};
      for (NodeId c : n.children_) {
        const Node& child = nodes_[c];
        if (child.active()) sum += child.reported_;
      }
      n.observe_demand(n.active() ? sum : Watts{0.0});
    } else if (!n.active()) {
      n.observe_demand(Watts{0.0});
    }
    n.pending_ = false;
    if (n.is_root()) continue;
    // Event-driven report: only when the smoothed demand moved beyond the
    // dead-band since the last report (first sweep always reports).
    const Watts smoothed = n.smoothed_demand();
    const double moved = std::abs(smoothed.value() - n.reported_.value());
    const bool changed =
        !n.reported_once_ ||
        (deadband_.value() > 0.0 ? moved > deadband_.value() : moved != 0.0);
    if (!changed) continue;
    fault::UpVerdict fate{};
    if (link_faults_ != nullptr) fate = link_faults_->up(id);
    if (fate.lose || fate.defer) {
      // The report left the node but never reached the parent: reported_ is
      // unchanged, the parent is not pended, and the node stays pending so
      // the next sweep naturally re-sends (a deferred report *is* its own
      // retransmission).  Skips stay provable: the parent's view of this
      // child did not move.
      n.pending_ = true;
      if (fate.lose) {
        if (c_link_drops_up_ != nullptr) c_link_drops_up_->increment();
      } else if (c_link_defers_up_ != nullptr) {
        c_link_defers_up_->increment();
      }
      if (observe) {
        obs::Event e;
        e.type = fate.lose ? obs::EventType::kLinkDrop
                           : obs::EventType::kLinkDefer;
        e.node = id;
        e.node2 = n.parent_;
        e.direction = obs::LinkDirection::kUp;
        e.value = smoothed.value();
        e.aux = n.raw_demand_.value();
        bus_->emit(std::move(e));
      }
      continue;
    }
    n.reported_ = smoothed;
    n.reported_once_ = true;
    nodes_[n.parent_].pending_ = true;
    n.count_up();
    ++reports;
    reported_last_sweep_.push_back(id);
    if (observe) {
      obs::Event e;
      e.type = obs::EventType::kLinkMessage;
      e.node = id;
      e.node2 = n.parent_;
      e.direction = obs::LinkDirection::kUp;
      e.value = smoothed.value();
      e.aux = n.raw_demand_.value();
      bus_->emit(std::move(e));
    }
    if (fate.duplicate) {
      // Duplicated delivery: idempotent at the parent (same payload summed
      // into the same aggregation), but one extra message on the link.
      n.count_up();
      ++reports;
      if (c_link_dups_up_ != nullptr) c_link_dups_up_->increment();
      if (observe) {
        obs::Event e;
        e.type = obs::EventType::kLinkMessage;
        e.node = id;
        e.node2 = n.parent_;
        e.direction = obs::LinkDirection::kUp;
        e.value = smoothed.value();
        e.aux = n.raw_demand_.value();
        bus_->emit(std::move(e));
      }
    }
  }
  if (c_reaggregated_ != nullptr) {
    c_reaggregated_->increment(processed);
    c_skipped_->increment(
        static_cast<std::uint64_t>(nodes_.size()) - processed);
    c_reports_->increment(reports);
  }
}

void Tree::record_budget_directive(NodeId id) {
  Node& n = nodes_.at(id);
  if (n.is_root()) return;
  n.count_down();
  if (bus_ != nullptr && bus_->enabled()) {
    obs::Event e;
    e.type = obs::EventType::kLinkMessage;
    e.node = id;
    e.node2 = n.parent_;
    e.direction = obs::LinkDirection::kDown;
    e.value = n.budget().value();
    bus_->emit(std::move(e));
  }
}

void Tree::reset_link_counters() {
  for (auto& n : nodes_) n.reset_link();
}

}  // namespace willow::hier
