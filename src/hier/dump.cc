#include "hier/dump.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace willow::hier {

namespace {

void dump_node(const Tree& tree, NodeId id, std::ostream& os,
               const DumpOptions& options, const std::string& prefix,
               bool last) {
  const Node& n = tree.node(id);
  if (!n.is_root()) {
    os << prefix << "+- ";
  }
  os << n.name();
  if (options.mark_inactive && !n.active()) os << "  (asleep)";
  if (options.include_state) {
    os << "  [TP " << std::fixed << std::setprecision(options.precision)
       << n.budget().value() << " CP " << n.smoothed_demand().value();
    const double cap = n.hard_limit().value();
    if (std::isfinite(cap)) os << " cap " << cap;
    os << "]";
  }
  os << '\n';
  const std::string child_prefix =
      n.is_root() ? "" : prefix + (last ? "   " : "|  ");
  const auto& children = n.children();
  for (std::size_t i = 0; i < children.size(); ++i) {
    dump_node(tree, children[i], os, options, child_prefix,
              i + 1 == children.size());
  }
}

}  // namespace

void dump_tree(const Tree& tree, std::ostream& os, const DumpOptions& options) {
  if (tree.size() == 0) {
    os << "(empty tree)\n";
    return;
  }
  dump_node(tree, tree.root(), os, options, "", true);
}

std::string tree_to_string(const Tree& tree, const DumpOptions& options) {
  std::ostringstream os;
  dump_tree(tree, os, options);
  return os.str();
}

}  // namespace willow::hier
