file(REMOVE_RECURSE
  "libwillow_hier.a"
)
