file(REMOVE_RECURSE
  "CMakeFiles/willow_hier.dir/convergence.cc.o"
  "CMakeFiles/willow_hier.dir/convergence.cc.o.d"
  "CMakeFiles/willow_hier.dir/dump.cc.o"
  "CMakeFiles/willow_hier.dir/dump.cc.o.d"
  "CMakeFiles/willow_hier.dir/tree.cc.o"
  "CMakeFiles/willow_hier.dir/tree.cc.o.d"
  "libwillow_hier.a"
  "libwillow_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
